#include "data/wearable.h"

#include <gtest/gtest.h>

#include <regex>

namespace icewafl {
namespace data {
namespace {

struct Columns {
  size_t time, bpm, steps, distance, calories, active;
};

Columns Cols(const SchemaPtr& schema) {
  return {schema->IndexOf("Time").ValueOrDie(),
          schema->IndexOf("BPM").ValueOrDie(),
          schema->IndexOf("Steps").ValueOrDie(),
          schema->IndexOf("Distance").ValueOrDie(),
          schema->IndexOf("CaloriesBurned").ValueOrDie(),
          schema->IndexOf("ActiveMinutes").ValueOrDie()};
}

TEST(WearableTest, DefaultCountsMatchPaperScenario) {
  auto stream = GenerateWearable();
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  const TupleVector& tuples = stream.ValueOrDie();
  ASSERT_EQ(tuples.size(), 1059u);
  const Columns c = Cols(tuples.front().schema());
  const Timestamp update = WearableUpdateTime();

  int post_update = 0;
  int non_zero_distance = 0;
  int bpm_over_100 = 0;
  int not_worn = 0;
  int anomalous = 0;
  for (const Tuple& t : tuples) {
    const Timestamp ts = t.GetTimestamp().ValueOrDie();
    const double bpm = t.value(c.bpm).AsDouble();
    const int64_t steps = t.value(c.steps).AsInt64();
    const double distance = t.value(c.distance).AsDouble();
    const double calories = t.value(c.calories).AsDouble();
    const double active = t.value(c.active).AsDouble();
    if (ts < update) continue;
    ++post_update;
    if (distance > 0.0) ++non_zero_distance;
    if (bpm > 100.0) ++bpm_over_100;
    if (bpm == 0.0 && steps == 0 && distance == 0.0 && calories == 0.0 &&
        active == 0.0) {
      ++not_worn;
    }
    if (bpm == 0.0 && steps > 0) ++anomalous;
  }
  // The exact structural counts that drive Table 1 and Figure 5.
  EXPECT_EQ(post_update, 1056);
  EXPECT_EQ(non_zero_distance, 374);
  EXPECT_EQ(bpm_over_100, 33);
  EXPECT_EQ(not_worn, 96);
  EXPECT_EQ(anomalous, 2);
}

TEST(WearableTest, SpansPaperDuration) {
  const TupleVector tuples = GenerateWearable().ValueOrDie();
  const Timestamp first = tuples.front().GetTimestamp().ValueOrDie();
  const Timestamp last = tuples.back().GetTimestamp().ValueOrDie();
  // 1058 intervals of 15 minutes: 264.5 hours between the first and last
  // tuple, 264.75 h counted inclusively as in the paper.
  EXPECT_EQ(last - first, 1058 * 900);
  // Timestamps strictly increasing at 15-minute granularity.
  for (size_t i = 1; i < tuples.size(); ++i) {
    ASSERT_EQ(tuples[i].GetTimestamp().ValueOrDie() -
                  tuples[i - 1].GetTimestamp().ValueOrDie(),
              900);
  }
}

TEST(WearableTest, WornTuplesHaveThreeDecimalCalories) {
  const TupleVector tuples = GenerateWearable().ValueOrDie();
  const Columns c = Cols(tuples.front().schema());
  const std::regex three_decimals(R"(\d+\.\d{3})");
  int checked = 0;
  for (const Tuple& t : tuples) {
    const double calories = t.value(c.calories).AsDouble();
    if (calories == 0.0) continue;
    const std::string rendered = t.value(c.calories).ToString();
    ASSERT_TRUE(std::regex_match(rendered, three_decimals))
        << rendered;
    ++checked;
  }
  // 1059 tuples minus 96 not-worn ones have calories with precision 3.
  EXPECT_EQ(checked, 1059 - 96);
}

TEST(WearableTest, ExerciseImpliesActivity) {
  const TupleVector tuples = GenerateWearable().ValueOrDie();
  const Columns c = Cols(tuples.front().schema());
  for (const Tuple& t : tuples) {
    if (t.value(c.bpm).AsDouble() > 100.0) {
      EXPECT_GT(t.value(c.steps).AsInt64(), 0);
      EXPECT_GT(t.value(c.distance).AsDouble(), 0.0);
    }
  }
}

TEST(WearableTest, StepsAlwaysExceedDistanceInKm) {
  // The precondition for the unit-conversion detection: in clean data
  // Steps >= Distance (or both zero).
  const TupleVector tuples = GenerateWearable().ValueOrDie();
  const Columns c = Cols(tuples.front().schema());
  for (const Tuple& t : tuples) {
    EXPECT_GE(static_cast<double>(t.value(c.steps).AsInt64()),
              t.value(c.distance).AsDouble());
  }
}

TEST(WearableTest, DeterministicForSeed) {
  WearableOptions options;
  options.seed = 123;
  const TupleVector a = GenerateWearable(options).ValueOrDie();
  const TupleVector b = GenerateWearable(options).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ValuesEqual(b[i])) << i;
  }
  options.seed = 124;
  const TupleVector other = GenerateWearable(options).ValueOrDie();
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].ValuesEqual(other[i])) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(WearableTest, CountsRemainExactUnderDifferentSeeds) {
  for (uint64_t seed : {1ULL, 99ULL, 31337ULL}) {
    WearableOptions options;
    options.seed = seed;
    const TupleVector tuples = GenerateWearable(options).ValueOrDie();
    const Columns c = Cols(tuples.front().schema());
    int active = 0;
    int exercise = 0;
    for (const Tuple& t : tuples) {
      if (t.value(c.distance).AsDouble() > 0.0) ++active;
      if (t.value(c.bpm).AsDouble() > 100.0) ++exercise;
    }
    EXPECT_EQ(active, 374) << seed;
    EXPECT_EQ(exercise, 33) << seed;
  }
}

TEST(WearableTest, InvalidOptionsRejected) {
  {
    WearableOptions options;
    options.total_tuples = 0;
    EXPECT_FALSE(GenerateWearable(options).ok());
  }
  {
    WearableOptions options;
    options.active_tuples = 100000;
    EXPECT_FALSE(GenerateWearable(options).ok());
  }
  {
    WearableOptions options;
    options.exercise_tuples = options.active_tuples + 1;
    EXPECT_FALSE(GenerateWearable(options).ok());
  }
}

TEST(WearableTest, CustomCountsHonored) {
  WearableOptions options;
  options.total_tuples = 500;
  options.pre_update_tuples = 3;
  options.not_worn_tuples = 40;
  options.active_tuples = 100;
  options.exercise_tuples = 10;
  options.anomalous_tuples = 1;
  const TupleVector tuples = GenerateWearable(options).ValueOrDie();
  ASSERT_EQ(tuples.size(), 500u);
  const Columns c = Cols(tuples.front().schema());
  int active = 0;
  for (const Tuple& t : tuples) {
    if (t.value(c.distance).AsDouble() > 0.0) ++active;
  }
  EXPECT_EQ(active, 100);
}

}  // namespace
}  // namespace data
}  // namespace icewafl
