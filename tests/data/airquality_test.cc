#include "data/airquality.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/impute.h"
#include "data/splits.h"

namespace icewafl {
namespace data {
namespace {

AirQualityOptions SmallOptions(size_t hours = 24 * 40) {
  AirQualityOptions options;
  options.hours = hours;
  return options;
}

TEST(AirQualityTest, SchemaHasEighteenAttributes) {
  SchemaPtr schema = AirQualitySchema();
  EXPECT_EQ(schema->num_attributes(), 18u);
  EXPECT_EQ(schema->timestamp_name(), "timestamp");
  for (const char* name : {"NO2", "TEMP", "PRES", "WSPM", "station", "WD"}) {
    EXPECT_TRUE(schema->Contains(name)) << name;
  }
}

TEST(AirQualityTest, HourlyCadenceAndCalendarColumns) {
  const TupleVector tuples = GenerateAirQuality(SmallOptions(48)).ValueOrDie();
  ASSERT_EQ(tuples.size(), 48u);
  const SchemaPtr& schema = tuples.front().schema();
  const size_t hour_idx = schema->IndexOf("hour").ValueOrDie();
  for (size_t i = 0; i < tuples.size(); ++i) {
    const Timestamp ts = tuples[i].GetTimestamp().ValueOrDie();
    if (i > 0) {
      ASSERT_EQ(ts - tuples[i - 1].GetTimestamp().ValueOrDie(),
                kSecondsPerHour);
    }
    EXPECT_EQ(tuples[i].value(hour_idx).AsInt64(), HourOfDay(ts));
  }
}

TEST(AirQualityTest, ValuesPhysicallyPlausible) {
  const TupleVector tuples = GenerateAirQuality(SmallOptions()).ValueOrDie();
  const SchemaPtr& schema = tuples.front().schema();
  const size_t no2 = schema->IndexOf("NO2").ValueOrDie();
  const size_t temp = schema->IndexOf("TEMP").ValueOrDie();
  const size_t pres = schema->IndexOf("PRES").ValueOrDie();
  const size_t wspm = schema->IndexOf("WSPM").ValueOrDie();
  for (const Tuple& t : tuples) {
    ASSERT_GT(t.value(no2).AsDouble(), 0.0);
    ASSERT_GT(t.value(temp).AsDouble(), -40.0);
    ASSERT_LT(t.value(temp).AsDouble(), 55.0);
    ASSERT_GT(t.value(pres).AsDouble(), 950.0);
    ASSERT_LT(t.value(pres).AsDouble(), 1070.0);
    ASSERT_GT(t.value(wspm).AsDouble(), 0.0);
  }
}

TEST(AirQualityTest, AnnualSeasonalityPresent) {
  AirQualityOptions options;
  options.hours = 35064;
  const TupleVector tuples = GenerateAirQuality(options).ValueOrDie();
  const auto temp = ColumnAsDoubles(tuples, "TEMP").ValueOrDie();
  // The stream starts in March; July (~hour 2950..3670 of year 1) must be
  // much warmer than January (~hour 7350..8060).
  auto mean_range = [&](size_t begin, size_t end) {
    double sum = 0.0;
    for (size_t i = begin; i < end; ++i) sum += temp[i];
    return sum / static_cast<double>(end - begin);
  };
  const double july = mean_range(2950, 3670);
  const double january = mean_range(7350, 8060);
  EXPECT_GT(july - january, 10.0);
}

TEST(AirQualityTest, No2AutocorrelationIsStrong) {
  const TupleVector tuples = GenerateAirQuality(SmallOptions()).ValueOrDie();
  const auto no2 = ColumnAsDoubles(tuples, "NO2").ValueOrDie();
  double mean = 0.0;
  for (double v : no2) mean += v;
  mean /= static_cast<double>(no2.size());
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 1; i < no2.size(); ++i) {
    num += (no2[i] - mean) * (no2[i - 1] - mean);
  }
  for (double v : no2) den += (v - mean) * (v - mean);
  const double lag1 = num / den;
  EXPECT_GT(lag1, 0.5);  // AR(1)-like memory
}

TEST(AirQualityTest, StationsDiffer) {
  AirQualityOptions a = SmallOptions(200);
  a.station = "Gucheng";
  AirQualityOptions b = SmallOptions(200);
  b.station = "Wanliu";
  const auto sa = GenerateAirQuality(a).ValueOrDie();
  const auto sb = GenerateAirQuality(b).ValueOrDie();
  const auto na = ColumnAsDoubles(sa, "NO2").ValueOrDie();
  const auto nb = ColumnAsDoubles(sb, "NO2").ValueOrDie();
  EXPECT_NE(na, nb);
  EXPECT_EQ(sa.front().Get("station").ValueOrDie().AsString(), "Gucheng");
}

TEST(AirQualityTest, UnknownStationGetsStableProfile) {
  const StationProfile p1 = StationProfileFor("SomewhereElse");
  const StationProfile p2 = StationProfileFor("SomewhereElse");
  EXPECT_EQ(p1.seed_offset, p2.seed_offset);
  EXPECT_NE(p1.seed_offset, StationProfileFor("Another").seed_offset);
}

TEST(AirQualityTest, DeterministicForSeed) {
  const auto a = GenerateAirQuality(SmallOptions(100)).ValueOrDie();
  const auto b = GenerateAirQuality(SmallOptions(100)).ValueOrDie();
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ValuesEqual(b[i])) << i;
  }
}

TEST(AirQualityTest, MissingFractionInjectsNulls) {
  AirQualityOptions options = SmallOptions(2000);
  options.missing_fraction = 0.1;
  const TupleVector tuples = GenerateAirQuality(options).ValueOrDie();
  const size_t nulls = CountNulls(tuples, "NO2").ValueOrDie();
  EXPECT_NEAR(static_cast<double>(nulls) / 2000.0, 0.1, 0.03);
  // Extraction must refuse un-imputed data.
  EXPECT_FALSE(ColumnAsDoubles(tuples, "NO2").ok());
}

TEST(AirQualityTest, InvalidOptionsRejected) {
  AirQualityOptions zero;
  zero.hours = 0;
  EXPECT_FALSE(GenerateAirQuality(zero).ok());
  AirQualityOptions bad_fraction;
  bad_fraction.missing_fraction = 1.5;
  EXPECT_FALSE(GenerateAirQuality(bad_fraction).ok());
}

TEST(AirQualityTest, GenerateAllRegionsCoversPaperRegions) {
  AirQualityOptions base = SmallOptions(100);
  auto streams = GenerateAllRegions(base);
  ASSERT_TRUE(streams.ok());
  const auto regions = PaperRegions();
  ASSERT_EQ(streams.ValueOrDie().size(), regions.size());
  for (size_t i = 0; i < regions.size(); ++i) {
    const TupleVector& stream = streams.ValueOrDie()[i];
    ASSERT_EQ(stream.size(), 100u);
    EXPECT_EQ(stream.front().Get("station").ValueOrDie().AsString(),
              regions[i]);
  }
  // Streams differ across regions.
  EXPECT_NE(ColumnAsDoubles(streams.ValueOrDie()[0], "NO2").ValueOrDie(),
            ColumnAsDoubles(streams.ValueOrDie()[2], "NO2").ValueOrDie());
}

TEST(ImputeTest, ForwardFillReplacesInteriorNulls) {
  AirQualityOptions options = SmallOptions(500);
  options.missing_fraction = 0.2;
  TupleVector tuples = GenerateAirQuality(options).ValueOrDie();
  const size_t nulls_before = CountNulls(tuples, "NO2").ValueOrDie();
  ASSERT_GT(nulls_before, 0u);
  const size_t imputed = ForwardBackwardFill(&tuples, "NO2").ValueOrDie();
  EXPECT_EQ(imputed, nulls_before);
  EXPECT_EQ(CountNulls(tuples, "NO2").ValueOrDie(), 0u);
  EXPECT_TRUE(ColumnAsDoubles(tuples, "NO2").ok());
}

TEST(ImputeTest, LeadingNullsBackFilled) {
  SchemaPtr schema =
      Schema::Make({{"ts", ValueType::kInt64}, {"v", ValueType::kDouble}},
                   "ts")
          .ValueOrDie();
  TupleVector tuples;
  tuples.emplace_back(schema,
                      std::vector<Value>{Value(int64_t{0}), Value::Null()});
  tuples.emplace_back(schema,
                      std::vector<Value>{Value(int64_t{1}), Value(5.0)});
  tuples.emplace_back(schema,
                      std::vector<Value>{Value(int64_t{2}), Value::Null()});
  ASSERT_EQ(ForwardBackwardFill(&tuples, "v").ValueOrDie(), 2u);
  EXPECT_DOUBLE_EQ(tuples[0].value(1).AsDouble(), 5.0);  // back-filled
  EXPECT_DOUBLE_EQ(tuples[2].value(1).AsDouble(), 5.0);  // forward-filled
}

TEST(ImputeTest, AllNullColumnRejected) {
  SchemaPtr schema =
      Schema::Make({{"ts", ValueType::kInt64}, {"v", ValueType::kDouble}},
                   "ts")
          .ValueOrDie();
  TupleVector tuples;
  tuples.emplace_back(schema,
                      std::vector<Value>{Value(int64_t{0}), Value::Null()});
  EXPECT_FALSE(ForwardBackwardFill(&tuples, "v").ok());
}

TEST(SplitsTest, TableTwoSemantics) {
  AirQualityOptions options;
  options.hours = 35064;  // four years, like the real dataset
  const TupleVector stream = GenerateAirQuality(options).ValueOrDie();
  const DataSplits splits = SplitByYear(stream).ValueOrDie();
  EXPECT_EQ(splits.train.size(), 8760u - 12u);
  EXPECT_EQ(splits.valid.size(), 12u);
  EXPECT_EQ(splits.eval.size(), 8760u);
  // D_valid directly follows D_train.
  EXPECT_EQ(splits.valid.front().GetTimestamp().ValueOrDie() -
                splits.train.back().GetTimestamp().ValueOrDie(),
            kSecondsPerHour);
  // D_eval is the final year.
  EXPECT_EQ(splits.eval.back().GetTimestamp().ValueOrDie(),
            stream.back().GetTimestamp().ValueOrDie());
}

TEST(SplitsTest, TooShortStreamRejected) {
  const TupleVector stream = GenerateAirQuality(SmallOptions(100)).ValueOrDie();
  EXPECT_FALSE(SplitByYear(stream).ok());
}

TEST(SplitsTest, InvalidOptionsRejected) {
  const TupleVector stream =
      GenerateAirQuality(SmallOptions(200)).ValueOrDie();
  SplitOptions options;
  options.hours_per_year = 50;
  options.valid_hours = 50;
  EXPECT_FALSE(SplitByYear(stream, options).ok());
}

}  // namespace
}  // namespace data
}  // namespace icewafl
