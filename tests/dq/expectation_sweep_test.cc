// Parameterized sweep over every expectation type: shared invariants
// that must hold regardless of the concrete check — vacuous success on
// empty streams, determinism, and counting consistency.

#include <gtest/gtest.h>

#include "dq/config.h"
#include "util/rng.h"

namespace icewafl {
namespace dq {
namespace {

// Every expectation, in its JSON form (reusing the config factory keeps
// this list in lockstep with the supported set).
const char* const kAllExpectations[] = {
    R"({"type":"expect_column_values_to_not_be_null","column":"v"})",
    R"({"type":"expect_column_values_to_be_null","column":"v"})",
    R"({"type":"expect_column_values_to_be_between","column":"v","min":-1000,"max":1000})",
    R"({"type":"expect_column_values_to_match_regex","column":"v",
        "regex":".*"})",
    R"({"type":"expect_column_values_to_be_increasing","column":"ts",
        "strictly":false})",
    R"({"type":"expect_column_pair_values_a_to_be_greater_than_b",
        "column_a":"v","column_b":"w","or_equal":true})",
    R"({"type":"expect_multicolumn_sum_to_equal","columns":["v","w"],
        "total":0,"tolerance":1e9})",
    R"({"type":"expect_column_values_to_be_in_set","column":"label",
        "values":["x","y"]})",
    R"({"type":"expect_column_values_to_be_unique","column":"ts"})",
    R"({"type":"expect_column_mean_to_be_between","column":"v",
        "min":-1000,"max":1000})",
    R"({"type":"expect_column_stdev_to_be_between","column":"v",
        "min":0,"max":1000})",
    R"({"type":"expect_column_value_lengths_to_be_between","column":"label",
        "min_length":0,"max_length":100})",
    R"({"type":"expect_column_values_to_be_of_type","column":"v",
        "value_type":"double"})",
};

SchemaPtr SweepSchema() {
  return Schema::Make({{"ts", ValueType::kInt64},
                       {"v", ValueType::kDouble},
                       {"w", ValueType::kDouble},
                       {"label", ValueType::kString}},
                      "ts")
      .ValueOrDie();
}

TupleVector SweepTuples(size_t n) {
  SchemaPtr schema = SweepSchema();
  Rng rng(3);
  TupleVector tuples;
  for (size_t i = 0; i < n; ++i) {
    tuples.emplace_back(
        schema,
        std::vector<Value>{Value(static_cast<int64_t>(i)),
                           rng.Bernoulli(0.1) ? Value::Null()
                                              : Value(rng.Gaussian(0, 10)),
                           Value(rng.Gaussian(0, 10)),
                           Value(rng.Bernoulli(0.5) ? "x" : "y")});
  }
  return tuples;
}

class ExpectationSweep : public ::testing::TestWithParam<const char*> {
 protected:
  ExpectationPtr Make() {
    auto json = Json::Parse(GetParam());
    EXPECT_TRUE(json.ok()) << GetParam();
    auto expectation = ExpectationFromJson(json.ValueOrDie());
    EXPECT_TRUE(expectation.ok()) << GetParam();
    return std::move(expectation).ValueOrDie();
  }
};

TEST_P(ExpectationSweep, EmptyStreamSucceedsVacuously) {
  ExpectationPtr expectation = Make();
  auto result = expectation->Validate({});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.ValueOrDie().success);
  EXPECT_EQ(result.ValueOrDie().evaluated, 0u);
  EXPECT_EQ(result.ValueOrDie().unexpected, 0u);
}

TEST_P(ExpectationSweep, ValidationIsDeterministic) {
  const TupleVector tuples = SweepTuples(500);
  ExpectationPtr a = Make();
  ExpectationPtr b = Make();
  auto ra = a->Validate(tuples);
  auto rb = b->Validate(tuples);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra.ValueOrDie().unexpected, rb.ValueOrDie().unexpected);
  EXPECT_EQ(ra.ValueOrDie().evaluated, rb.ValueOrDie().evaluated);
  EXPECT_EQ(ra.ValueOrDie().failures, rb.ValueOrDie().failures);
}

TEST_P(ExpectationSweep, CountsAreConsistent) {
  const TupleVector tuples = SweepTuples(500);
  ExpectationPtr expectation = Make();
  auto result = expectation->Validate(tuples);
  ASSERT_TRUE(result.ok());
  const ExpectationResult& r = result.ValueOrDie();
  EXPECT_LE(r.unexpected, r.evaluated);
  EXPECT_LE(r.evaluated, tuples.size());
  // Per-element expectations record one failure per unexpected element;
  // aggregate expectations record none.
  EXPECT_TRUE(r.failures.size() == r.unexpected || r.failures.empty());
  // success <=> no unexpected elements (aggregates set unexpected too).
  if (r.success) {
    EXPECT_EQ(r.unexpected, 0u);
  }
}

TEST_P(ExpectationSweep, JsonRoundTripPreservesBehaviour) {
  const TupleVector tuples = SweepTuples(300);
  ExpectationPtr original = Make();
  auto reparsed = ExpectationFromJson(original->ToJson());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  auto ra = original->Validate(tuples);
  auto rb = reparsed.ValueOrDie()->Validate(tuples);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra.ValueOrDie().unexpected, rb.ValueOrDie().unexpected);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, ExpectationSweep,
                         ::testing::ValuesIn(kAllExpectations));

}  // namespace
}  // namespace dq
}  // namespace icewafl
