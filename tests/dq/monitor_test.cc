#include "dq/monitor.h"

#include <gtest/gtest.h>

namespace icewafl {
namespace dq {
namespace {

SchemaPtr SensorSchema() {
  return Schema::Make({{"Time", ValueType::kInt64},
                       {"BPM", ValueType::kDouble}},
                      "Time")
      .ValueOrDie();
}

Tuple Row(const SchemaPtr& schema, Timestamp t, double bpm) {
  Tuple tuple(schema, {Value(t), Value(bpm)});
  tuple.set_id(static_cast<TupleId>(t));
  tuple.set_event_time(t);
  return tuple;
}

ExpectationSuite BpmSuite() {
  ExpectationSuite suite("bpm");
  suite.Expect<ExpectColumnValuesToBeBetween>("BPM", 20.0, 250.0);
  return suite;
}

WindowedMonitor MakeMonitor(const SchemaPtr& schema, WindowSpec window,
                            WatermarkPolicy watermark = {},
                            obs::MetricRegistry* metrics = nullptr) {
  WindowedMonitor monitor(BpmSuite(), window, watermark, metrics);
  EXPECT_TRUE(monitor.Bind(schema).ok());
  return monitor;
}

TEST(WindowedMonitorTest, TumblingWindowsBucketByEventTime) {
  SchemaPtr schema = SensorSchema();
  WindowedMonitor monitor = MakeMonitor(schema, WindowSpec::Tumbling(10));
  // Window [0,10): two clean tuples. Window [10,20): one violation.
  ASSERT_TRUE(monitor.Observe(Row(schema, 1, 70.0)).ok());
  ASSERT_TRUE(monitor.Observe(Row(schema, 5, 80.0)).ok());
  ASSERT_TRUE(monitor.Observe(Row(schema, 12, 900.0)).ok());
  ASSERT_TRUE(monitor.Flush().ok());

  ASSERT_EQ(monitor.series().size(), 2u);
  const WindowResult& w0 = monitor.series()[0];
  EXPECT_EQ(w0.start, 0);
  EXPECT_EQ(w0.end, 10);
  EXPECT_EQ(w0.tuples, 2u);
  EXPECT_EQ(w0.violations, 0u);
  EXPECT_TRUE(w0.pass);
  const WindowResult& w1 = monitor.series()[1];
  EXPECT_EQ(w1.start, 10);
  EXPECT_EQ(w1.tuples, 1u);
  EXPECT_EQ(w1.violations, 1u);
  EXPECT_FALSE(w1.pass);
  EXPECT_EQ(monitor.FailedWindowCount(), 1u);
  EXPECT_EQ(monitor.tuples_seen(), 3u);
}

TEST(WindowedMonitorTest, WatermarkClosesPassedWindowsEagerly) {
  SchemaPtr schema = SensorSchema();
  WindowedMonitor monitor = MakeMonitor(schema, WindowSpec::Tumbling(10));
  ASSERT_TRUE(monitor.Observe(Row(schema, 1, 70.0)).ok());
  EXPECT_EQ(monitor.series().size(), 0u);
  // Event time 25 pushes the watermark past [0,10) and [10,20).
  ASSERT_TRUE(monitor.Observe(Row(schema, 25, 70.0)).ok());
  EXPECT_EQ(monitor.series().size(), 1u);
  EXPECT_EQ(monitor.series()[0].start, 0);
  ASSERT_TRUE(monitor.Flush().ok());
  EXPECT_EQ(monitor.series().size(), 2u);
}

TEST(WindowedMonitorTest, LateTuplesDroppedAndCounted) {
  SchemaPtr schema = SensorSchema();
  WindowedMonitor monitor = MakeMonitor(schema, WindowSpec::Tumbling(10));
  ASSERT_TRUE(monitor.Observe(Row(schema, 25, 70.0)).ok());
  // Window [0,10) already closed: this tuple is late.
  ASSERT_TRUE(monitor.Observe(Row(schema, 3, 900.0)).ok());
  ASSERT_TRUE(monitor.Flush().ok());
  EXPECT_EQ(monitor.late_dropped(), 1u);
  // The late violation never scored.
  for (const WindowResult& w : monitor.series()) {
    EXPECT_EQ(w.violations, 0u);
  }
}

TEST(WindowedMonitorTest, AllowedLatenessAdmitsOutOfOrderTuples) {
  SchemaPtr schema = SensorSchema();
  WindowedMonitor monitor =
      MakeMonitor(schema, WindowSpec::Tumbling(10), WatermarkPolicy{20});
  ASSERT_TRUE(monitor.Observe(Row(schema, 25, 70.0)).ok());
  // Watermark is 25 - 20 = 5: window [0,10) is still open.
  ASSERT_TRUE(monitor.Observe(Row(schema, 3, 900.0)).ok());
  ASSERT_TRUE(monitor.Flush().ok());
  EXPECT_EQ(monitor.late_dropped(), 0u);
  ASSERT_GE(monitor.series().size(), 1u);
  EXPECT_EQ(monitor.series()[0].violations, 1u);
}

TEST(WindowedMonitorTest, SlidingWindowsOverlap) {
  SchemaPtr schema = SensorSchema();
  WindowedMonitor monitor = MakeMonitor(schema, WindowSpec::Sliding(10, 5));
  // Event time 7 belongs to [0,10) and [5,15).
  ASSERT_TRUE(monitor.Observe(Row(schema, 7, 900.0)).ok());
  ASSERT_TRUE(monitor.Flush().ok());
  ASSERT_EQ(monitor.series().size(), 2u);
  EXPECT_EQ(monitor.series()[0].start, 0);
  EXPECT_EQ(monitor.series()[1].start, 5);
  EXPECT_EQ(monitor.series()[0].violations, 1u);
  EXPECT_EQ(monitor.series()[1].violations, 1u);
}

TEST(WindowedMonitorTest, SeriesSortedByStartDespiteOutOfOrderInput) {
  SchemaPtr schema = SensorSchema();
  WindowedMonitor monitor =
      MakeMonitor(schema, WindowSpec::Tumbling(10), WatermarkPolicy{100});
  ASSERT_TRUE(monitor.Observe(Row(schema, 35, 70.0)).ok());
  ASSERT_TRUE(monitor.Observe(Row(schema, 5, 70.0)).ok());
  ASSERT_TRUE(monitor.Observe(Row(schema, 15, 70.0)).ok());
  ASSERT_TRUE(monitor.Flush().ok());
  ASSERT_EQ(monitor.series().size(), 3u);
  EXPECT_LT(monitor.series()[0].start, monitor.series()[1].start);
  EXPECT_LT(monitor.series()[1].start, monitor.series()[2].start);
}

TEST(WindowedMonitorTest, CsvAndJsonExports) {
  SchemaPtr schema = SensorSchema();
  WindowedMonitor monitor = MakeMonitor(schema, WindowSpec::Tumbling(10));
  ASSERT_TRUE(monitor.Observe(Row(schema, 1, 70.0)).ok());
  ASSERT_TRUE(monitor.Observe(Row(schema, 12, 900.0)).ok());
  ASSERT_TRUE(monitor.Flush().ok());

  const std::string csv = monitor.ToCsv();
  EXPECT_NE(csv.find("window_start,window_end,tuples,violations,pass"),
            std::string::npos);
  EXPECT_NE(csv.find("\n0,10,1,0,"), std::string::npos) << csv;

  const Json json = monitor.ToJson();
  EXPECT_EQ(json.GetString("suite", ""), "bpm");
  ASSERT_TRUE(json.Has("series"));
  EXPECT_EQ(json.Get("series").ValueOrDie().size(), 2u);
  EXPECT_EQ(json.GetInt("late_dropped", -1), 0);
}

TEST(WindowedMonitorTest, MetricsPublishedPerWindow) {
  SchemaPtr schema = SensorSchema();
  obs::MetricRegistry registry;
  WindowedMonitor monitor = MakeMonitor(schema, WindowSpec::Tumbling(10), {},
                                        &registry);
  ASSERT_TRUE(monitor.Observe(Row(schema, 1, 70.0)).ok());
  ASSERT_TRUE(monitor.Observe(Row(schema, 12, 900.0)).ok());
  ASSERT_TRUE(monitor.Flush().ok());
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("icewafl_dq_windows_total"), std::string::npos);
  EXPECT_NE(text.find("icewafl_dq_window_violations_total"),
            std::string::npos);
  EXPECT_NE(text.find("suite=\"bpm\""), std::string::npos);
}

TEST(WindowedMonitorTest, ObserveAllMatchesObserveLoop) {
  SchemaPtr schema = SensorSchema();
  TupleVector tuples;
  for (Timestamp t = 0; t < 50; t += 3) {
    tuples.push_back(Row(schema, t, t % 2 == 0 ? 70.0 : 900.0));
  }
  WindowedMonitor all = MakeMonitor(schema, WindowSpec::Tumbling(10));
  ASSERT_TRUE(all.ObserveAll(tuples).ok());
  ASSERT_TRUE(all.Flush().ok());
  WindowedMonitor loop = MakeMonitor(schema, WindowSpec::Tumbling(10));
  for (const Tuple& t : tuples) {
    ASSERT_TRUE(loop.Observe(t).ok());
  }
  ASSERT_TRUE(loop.Flush().ok());
  EXPECT_EQ(all.ToCsv(), loop.ToCsv());
}

}  // namespace
}  // namespace dq
}  // namespace icewafl
