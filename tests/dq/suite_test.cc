#include "dq/suite.h"

#include <gtest/gtest.h>

namespace icewafl {
namespace dq {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make(
             {{"ts", ValueType::kInt64}, {"v", ValueType::kDouble}}, "ts")
      .ValueOrDie();
}

TupleVector TestTuples() {
  SchemaPtr schema = TestSchema();
  TupleVector tuples;
  for (int i = 0; i < 10; ++i) {
    Tuple t(schema, {Value(int64_t{i * 3600}),
                     i == 3 ? Value::Null() : Value(50.0 + i)});
    t.set_id(static_cast<TupleId>(i));
    t.set_event_time(i * 3600);
    tuples.push_back(std::move(t));
  }
  return tuples;
}

TEST(SuiteTest, ValidatesAllExpectationsInOrder) {
  ExpectationSuite suite("demo");
  suite.Expect<ExpectColumnValuesToNotBeNull>("v")
      .Expect<ExpectColumnValuesToBeIncreasing>("ts")
      .Expect<ExpectColumnValuesToBeBetween>("v", 0.0, 100.0);
  EXPECT_EQ(suite.size(), 3u);
  auto r = suite.Validate(TestTuples());
  ASSERT_TRUE(r.ok());
  const SuiteResult& sr = r.ValueOrDie();
  ASSERT_EQ(sr.results.size(), 3u);
  EXPECT_FALSE(sr.results[0].success);  // one NULL
  EXPECT_TRUE(sr.results[1].success);
  EXPECT_TRUE(sr.results[2].success);
  EXPECT_FALSE(sr.success());
  EXPECT_EQ(sr.TotalUnexpected(), 1u);
}

TEST(SuiteTest, AllCleanMeansSuccess) {
  ExpectationSuite suite;
  suite.Expect<ExpectColumnValuesToBeIncreasing>("ts");
  auto r = suite.Validate(TestTuples());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie().success());
  EXPECT_EQ(r.ValueOrDie().TotalUnexpected(), 0u);
}

TEST(SuiteTest, DistinctFlaggedTuplesDeduplicatesAcrossExpectations) {
  ExpectationSuite suite;
  // Both expectations flag the same tuple (the NULL at id 3).
  suite.Expect<ExpectColumnValuesToNotBeNull>("v")
      .Expect<ExpectColumnValuesToNotBeNull>("v");
  auto r = suite.Validate(TestTuples());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().TotalUnexpected(), 2u);
  EXPECT_EQ(r.ValueOrDie().DistinctFlaggedTuples(), 1u);
}

TEST(SuiteTest, FailureHourHistogramAggregates) {
  ExpectationSuite suite;
  suite.Expect<ExpectColumnValuesToNotBeNull>("v");
  auto r = suite.Validate(TestTuples());
  ASSERT_TRUE(r.ok());
  const auto hist = r.ValueOrDie().FailureHourHistogram();
  // Tuple 3 sits at hour 3 of 1970-01-01.
  EXPECT_EQ(hist[3], 1u);
}

TEST(SuiteTest, ReportMentionsEachExpectation) {
  ExpectationSuite suite;
  suite.Expect<ExpectColumnValuesToNotBeNull>("v")
      .Expect<ExpectColumnMeanToBeBetween>("v", 0.0, 100.0);
  auto r = suite.Validate(TestTuples());
  ASSERT_TRUE(r.ok());
  const std::string report = r.ValueOrDie().ToReport();
  EXPECT_NE(report.find("expect_column_values_to_not_be_null"),
            std::string::npos);
  EXPECT_NE(report.find("expect_column_mean_to_be_between"),
            std::string::npos);
  EXPECT_NE(report.find("[FAIL]"), std::string::npos);
  EXPECT_NE(report.find("[ OK ]"), std::string::npos);
  EXPECT_NE(report.find("observed="), std::string::npos);
}

TEST(SuiteTest, ErrorInOneExpectationAborts) {
  ExpectationSuite suite;
  suite.Expect<ExpectColumnValuesToNotBeNull>("no_such_column");
  EXPECT_EQ(suite.Validate(TestTuples()).status().code(),
            StatusCode::kNotFound);
}

TEST(SuiteTest, EmptySuiteSucceeds) {
  ExpectationSuite suite;
  auto r = suite.Validate(TestTuples());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie().success());
}

TEST(SuiteTest, PublishSuiteResultExportsPassFailCounters) {
  ExpectationSuite suite("demo");
  suite.Expect<ExpectColumnValuesToNotBeNull>("v")       // fails (1 NULL)
      .Expect<ExpectColumnValuesToBeIncreasing>("ts");   // passes
  auto r = suite.Validate(TestTuples());
  ASSERT_TRUE(r.ok());
  obs::MetricRegistry registry;
  PublishSuiteResult(r.ValueOrDie(), suite.name(), &registry);
  obs::Counter* passed = registry.GetCounter(
      "icewafl_dq_expectations_total", {{"suite", "demo"}, {"result", "pass"}});
  obs::Counter* failed = registry.GetCounter(
      "icewafl_dq_expectations_total", {{"suite", "demo"}, {"result", "fail"}});
  ASSERT_NE(passed, nullptr);
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(passed->value(), 1u);
  EXPECT_EQ(failed->value(), 1u);
  obs::Counter* unexpected = registry.GetCounter(
      "icewafl_dq_unexpected_total",
      {{"suite", "demo"},
       {"expectation", "expect_column_values_to_not_be_null"},
       {"column", "v"}});
  ASSERT_NE(unexpected, nullptr);
  EXPECT_EQ(unexpected->value(), 1u);
  // Null registry is a no-op, not a crash.
  PublishSuiteResult(r.ValueOrDie(), suite.name(), nullptr);
}

}  // namespace
}  // namespace dq
}  // namespace icewafl
