#include "dq/expectation.h"

#include <gtest/gtest.h>

namespace icewafl {
namespace dq {
namespace {

SchemaPtr WearableLikeSchema() {
  return Schema::Make({{"Time", ValueType::kInt64},
                       {"BPM", ValueType::kDouble},
                       {"Steps", ValueType::kInt64},
                       {"Distance", ValueType::kDouble},
                       {"Calories", ValueType::kDouble}},
                      "Time")
      .ValueOrDie();
}

Tuple Row(const SchemaPtr& schema, int minute15, Value bpm, int64_t steps,
          Value distance, double calories) {
  const Timestamp ts =
      TimestampFromCivil({2016, 2, 27, 0, 0, 0}) + minute15 * 900;
  Tuple t(schema, {Value(ts), std::move(bpm), Value(steps),
                   std::move(distance), Value(calories)});
  t.set_id(static_cast<TupleId>(minute15));
  t.set_event_time(ts);
  return t;
}

TEST(NotNullExpectationTest, CountsNulls) {
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  tuples.push_back(Row(schema, 0, Value(70.0), 100, Value(0.1), 5.0));
  tuples.push_back(Row(schema, 1, Value::Null(), 0, Value(0.0), 0.0));
  tuples.push_back(Row(schema, 2, Value(72.0), 50, Value::Null(), 2.0));
  ExpectColumnValuesToNotBeNull expectation("BPM");
  auto r = expectation.Validate(tuples);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().evaluated, 3u);
  EXPECT_EQ(r.ValueOrDie().unexpected, 1u);
  EXPECT_FALSE(r.ValueOrDie().success);
  ASSERT_EQ(r.ValueOrDie().failures.size(), 1u);
  EXPECT_EQ(r.ValueOrDie().failures[0].id, 1u);
}

TEST(NotNullExpectationTest, CleanColumnSucceeds) {
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  tuples.push_back(Row(schema, 0, Value(70.0), 100, Value(0.1), 5.0));
  ExpectColumnValuesToNotBeNull expectation("BPM");
  auto r = expectation.Validate(tuples);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie().success);
  EXPECT_EQ(r.ValueOrDie().unexpected, 0u);
}

TEST(NullExpectationTest, InverseOfNotNull) {
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  tuples.push_back(Row(schema, 0, Value::Null(), 0, Value(0.0), 0.0));
  tuples.push_back(Row(schema, 1, Value(70.0), 0, Value(0.0), 0.0));
  ExpectColumnValuesToBeNull expectation("BPM");
  auto r = expectation.Validate(tuples);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().unexpected, 1u);
  EXPECT_EQ(r.ValueOrDie().failures[0].id, 1u);
}

TEST(BetweenExpectationTest, FlagsOutOfRangeSkipsNulls) {
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  tuples.push_back(Row(schema, 0, Value(70.0), 0, Value(0.0), 0.0));
  tuples.push_back(Row(schema, 1, Value(250.0), 0, Value(0.0), 0.0));
  tuples.push_back(Row(schema, 2, Value::Null(), 0, Value(0.0), 0.0));
  ExpectColumnValuesToBeBetween expectation("BPM", 30.0, 220.0);
  auto r = expectation.Validate(tuples);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().evaluated, 2u);  // NULL skipped
  EXPECT_EQ(r.ValueOrDie().unexpected, 1u);
  EXPECT_EQ(r.ValueOrDie().failures[0].id, 1u);
}

TEST(BetweenExpectationTest, BoundsInclusive) {
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  tuples.push_back(Row(schema, 0, Value(30.0), 0, Value(0.0), 0.0));
  tuples.push_back(Row(schema, 1, Value(220.0), 0, Value(0.0), 0.0));
  ExpectColumnValuesToBeBetween expectation("BPM", 30.0, 220.0);
  auto r = expectation.Validate(tuples);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie().success);
}

TEST(RegexExpectationTest, DetectsReducedPrecision) {
  // The software-update scenario: valid CaloriesBurned are 0 or have
  // exactly three decimal places; a round-to-2 polluter breaks that.
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  tuples.push_back(Row(schema, 0, Value(70.0), 0, Value(0.0), 5.123));
  tuples.push_back(Row(schema, 1, Value(70.0), 0, Value(0.0), 5.12));
  tuples.push_back(Row(schema, 2, Value(70.0), 0, Value(0.0), 0.0));
  ExpectColumnValuesToMatchRegex expectation(
      "Calories", R"(0|\d+\.\d{3,})");
  auto r = expectation.Validate(tuples);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().unexpected, 1u);
  EXPECT_EQ(r.ValueOrDie().failures[0].id, 1u);
}

TEST(RegexExpectationTest, MatchesWholeValue) {
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  tuples.push_back(Row(schema, 0, Value(70.0), 0, Value(0.0), 12.5));
  ExpectColumnValuesToMatchRegex expectation("Calories", R"(\d+)");
  auto r = expectation.Validate(tuples);
  ASSERT_TRUE(r.ok());
  // "12.5" does not fully match \d+.
  EXPECT_EQ(r.ValueOrDie().unexpected, 1u);
}

TEST(IncreasingExpectationTest, DetectsDelayedTuples) {
  // A delayed tuple appears late in the stream: its Time attribute breaks
  // the strictly increasing order (Experiment 3.1.3 detection).
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  tuples.push_back(Row(schema, 0, Value(70.0), 0, Value(0.0), 0.0));
  tuples.push_back(Row(schema, 2, Value(70.0), 0, Value(0.0), 0.0));
  tuples.push_back(Row(schema, 1, Value(70.0), 0, Value(0.0), 0.0));  // late
  tuples.push_back(Row(schema, 3, Value(70.0), 0, Value(0.0), 0.0));
  ExpectColumnValuesToBeIncreasing expectation("Time");
  auto r = expectation.Validate(tuples);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().unexpected, 1u);
  EXPECT_EQ(r.ValueOrDie().failures[0].id, 1u);
}

TEST(IncreasingExpectationTest, StrictVsNonStrict) {
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  tuples.push_back(Row(schema, 0, Value(70.0), 0, Value(0.0), 0.0));
  tuples.push_back(Row(schema, 0, Value(70.0), 0, Value(0.0), 0.0));  // tie
  ExpectColumnValuesToBeIncreasing strict("Time", true);
  ExpectColumnValuesToBeIncreasing lax("Time", false);
  EXPECT_EQ(strict.Validate(tuples).ValueOrDie().unexpected, 1u);
  EXPECT_EQ(lax.Validate(tuples).ValueOrDie().unexpected, 0u);
}

TEST(IncreasingExpectationTest, ConsecutiveInversionsEachFlagged) {
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  for (int i : {5, 4, 3, 6}) {
    tuples.push_back(Row(schema, i, Value(70.0), 0, Value(0.0), 0.0));
  }
  ExpectColumnValuesToBeIncreasing expectation("Time");
  EXPECT_EQ(expectation.Validate(tuples).ValueOrDie().unexpected, 2u);
}

TEST(PairGreaterExpectationTest, DetectsUnitConversion) {
  // Clean: Steps >= Distance (km). After km->cm, Distance explodes.
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  tuples.push_back(Row(schema, 0, Value(70.0), 1000, Value(0.8), 0.0));
  tuples.push_back(Row(schema, 1, Value(70.0), 1000, Value(80000.0), 0.0));
  tuples.push_back(Row(schema, 2, Value(70.0), 0, Value(0.0), 0.0));
  ExpectColumnPairValuesAToBeGreaterThanB expectation("Steps", "Distance",
                                                      /*or_equal=*/true);
  auto r = expectation.Validate(tuples);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().unexpected, 1u);
  EXPECT_EQ(r.ValueOrDie().failures[0].id, 1u);
}

TEST(PairGreaterExpectationTest, StrictModeFlagsTies) {
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  tuples.push_back(Row(schema, 0, Value(70.0), 0, Value(0.0), 0.0));
  ExpectColumnPairValuesAToBeGreaterThanB strict("Steps", "Distance", false);
  EXPECT_EQ(strict.Validate(tuples).ValueOrDie().unexpected, 1u);
}

TEST(PairGreaterExpectationTest, NullPairsSkipped) {
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  tuples.push_back(Row(schema, 0, Value(70.0), 10, Value::Null(), 0.0));
  ExpectColumnPairValuesAToBeGreaterThanB expectation("Steps", "Distance",
                                                      true);
  auto r = expectation.Validate(tuples);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().evaluated, 0u);
  EXPECT_TRUE(r.ValueOrDie().success);
}

TEST(MulticolumnSumExpectationTest, DetectsZeroedBpmWithActivity) {
  // "BPM == 0 while the tracker shows movement" — the detector for the
  // BPM-set-to-0 polluter. The suite validates sum(Steps, Distance) == 0
  // over tuples where BPM is 0 by filtering beforehand.
  SchemaPtr schema = WearableLikeSchema();
  TupleVector bpm_zero_tuples;
  // Legit: not worn.
  bpm_zero_tuples.push_back(Row(schema, 0, Value(0.0), 0, Value(0.0), 0.0));
  // Polluted: BPM zeroed during exercise.
  bpm_zero_tuples.push_back(
      Row(schema, 1, Value(0.0), 2000, Value(1.5), 50.0));
  ExpectMulticolumnSumToEqual expectation({"Steps", "Distance"}, 0.0);
  auto r = expectation.Validate(bpm_zero_tuples);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().unexpected, 1u);
  EXPECT_EQ(r.ValueOrDie().failures[0].id, 1u);
}

TEST(MulticolumnSumExpectationTest, RowConditionRestrictsEvaluation) {
  // The paper's exact setup: sum(ActiveMinutes, Distance, Steps) == 0 is
  // only expected for tuples whose BPM is 0.
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  tuples.push_back(Row(schema, 0, Value(0.0), 0, Value(0.0), 0.0));    // ok
  tuples.push_back(Row(schema, 1, Value(0.0), 2000, Value(1.5), 0.0)); // bad
  tuples.push_back(Row(schema, 2, Value(80.0), 2000, Value(1.5), 0.0)); // skip
  tuples.push_back(Row(schema, 3, Value::Null(), 500, Value(0.3), 0.0)); // skip
  ExpectMulticolumnSumToEqual expectation({"Steps", "Distance"}, 0.0);
  expectation.WhereColumnEquals("BPM", 0.0);
  auto r = expectation.Validate(tuples);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().evaluated, 2u);
  EXPECT_EQ(r.ValueOrDie().unexpected, 1u);
  EXPECT_EQ(r.ValueOrDie().failures[0].id, 1u);
}

TEST(MulticolumnSumExpectationTest, ToleranceAndNullSkip) {
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  tuples.push_back(Row(schema, 0, Value(1.0), 2, Value(3.0), 0.0));
  tuples.push_back(Row(schema, 1, Value::Null(), 2, Value(3.0), 0.0));
  ExpectMulticolumnSumToEqual expectation({"BPM", "Steps", "Distance"}, 6.0,
                                          0.5);
  auto r = expectation.Validate(tuples);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().evaluated, 1u);  // NULL row skipped
  EXPECT_TRUE(r.ValueOrDie().success);
}

TEST(InSetExpectationTest, FlagsUnknownCategories) {
  SchemaPtr schema =
      Schema::Make({{"ts", ValueType::kInt64}, {"wd", ValueType::kString}},
                   "ts")
          .ValueOrDie();
  TupleVector tuples;
  tuples.emplace_back(schema, std::vector<Value>{Value(int64_t{0}),
                                                 Value("N")});
  tuples.emplace_back(schema, std::vector<Value>{Value(int64_t{1}),
                                                 Value("XX")});
  ExpectColumnValuesToBeInSet expectation("wd", {"N", "S", "E", "W"});
  auto r = expectation.Validate(tuples);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().unexpected, 1u);
}

TEST(UniqueExpectationTest, FlagsSecondOccurrence) {
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  tuples.push_back(Row(schema, 0, Value(1.0), 0, Value(0.0), 0.0));
  tuples.push_back(Row(schema, 1, Value(2.0), 0, Value(0.0), 0.0));
  tuples.push_back(Row(schema, 2, Value(1.0), 0, Value(0.0), 0.0));
  ExpectColumnValuesToBeUnique expectation("BPM");
  auto r = expectation.Validate(tuples);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().unexpected, 1u);
  EXPECT_EQ(r.ValueOrDie().failures[0].id, 2u);
}

TEST(MeanExpectationTest, ObservedValueAndBounds) {
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  for (double v : {10.0, 20.0, 30.0}) {
    tuples.push_back(Row(schema, static_cast<int>(v), Value(v), 0,
                         Value(0.0), 0.0));
  }
  ExpectColumnMeanToBeBetween good("BPM", 15.0, 25.0);
  auto r = good.Validate(tuples);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie().success);
  EXPECT_DOUBLE_EQ(r.ValueOrDie().observed, 20.0);
  ExpectColumnMeanToBeBetween bad("BPM", 0.0, 15.0);
  EXPECT_FALSE(bad.Validate(tuples).ValueOrDie().success);
}

TEST(StdevExpectationTest, DetectsInjectedNoise) {
  SchemaPtr schema = WearableLikeSchema();
  TupleVector quiet;
  TupleVector noisy;
  for (int i = 0; i < 100; ++i) {
    quiet.push_back(Row(schema, i, Value(50.0 + (i % 3)), 0, Value(0.0), 0.0));
    noisy.push_back(
        Row(schema, i, Value(50.0 + (i % 2 == 0 ? 40.0 : -40.0)), 0,
            Value(0.0), 0.0));
  }
  ExpectColumnStdevToBeBetween expectation("BPM", 0.0, 5.0);
  EXPECT_TRUE(expectation.Validate(quiet).ValueOrDie().success);
  EXPECT_FALSE(expectation.Validate(noisy).ValueOrDie().success);
}

TEST(ValueLengthsExpectationTest, CatchesTruncationAndInsertions) {
  SchemaPtr schema =
      Schema::Make({{"ts", ValueType::kInt64}, {"code", ValueType::kString}},
                   "ts")
          .ValueOrDie();
  TupleVector tuples;
  int64_t ts = 0;
  for (const char* code : {"AB-1234", "AB-12", "AB-12345678", "CD-9999"}) {
    tuples.emplace_back(schema,
                        std::vector<Value>{Value(ts++), Value(code)});
  }
  ExpectColumnValueLengthsToBeBetween expectation("code", 7, 7);
  auto r = expectation.Validate(tuples);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().unexpected, 2u);  // too short + too long
}

TEST(ValueLengthsExpectationTest, NumbersUseRenderedLength) {
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  tuples.push_back(Row(schema, 0, Value(70.0), 0, Value(0.0), 1.234));
  tuples.push_back(Row(schema, 1, Value(70.0), 0, Value(0.0), 1.2));
  // "1.234" has length 5, "1.2" has length 3.
  ExpectColumnValueLengthsToBeBetween expectation("Calories", 5, 10);
  auto r = expectation.Validate(tuples);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().unexpected, 1u);
  EXPECT_EQ(r.ValueOrDie().failures[0].id, 1u);
}

TEST(OfTypeExpectationTest, FlagsForeignTypes) {
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  tuples.push_back(Row(schema, 0, Value(70.0), 0, Value(0.0), 0.0));
  Tuple corrupted = Row(schema, 1, Value(70.0), 0, Value(0.0), 0.0);
  corrupted.set_value(1, Value("seventy"));  // BPM became a string
  tuples.push_back(corrupted);
  tuples.push_back(Row(schema, 2, Value::Null(), 0, Value(0.0), 0.0));
  ExpectColumnValuesToBeOfType expectation("BPM", ValueType::kDouble);
  auto r = expectation.Validate(tuples);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().evaluated, 2u);  // NULL skipped
  EXPECT_EQ(r.ValueOrDie().unexpected, 1u);
  EXPECT_EQ(r.ValueOrDie().failures[0].id, 1u);
}

TEST(ExpectationTest, MissingColumnIsError) {
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  tuples.push_back(Row(schema, 0, Value(70.0), 0, Value(0.0), 0.0));
  ExpectColumnValuesToNotBeNull expectation("NoSuchColumn");
  EXPECT_EQ(expectation.Validate(tuples).status().code(),
            StatusCode::kNotFound);
}

TEST(ExpectationTest, EmptyStreamSucceedsVacuously) {
  ExpectColumnValuesToNotBeNull expectation("BPM");
  auto r = expectation.Validate({});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie().success);
  EXPECT_EQ(r.ValueOrDie().evaluated, 0u);
}

TEST(ExpectationResultTest, FailureHourHistogram) {
  SchemaPtr schema = WearableLikeSchema();
  TupleVector tuples;
  // 15-minute slots: slot 4*h lands in hour h.
  tuples.push_back(Row(schema, 0, Value::Null(), 0, Value(0.0), 0.0));
  tuples.push_back(Row(schema, 4, Value::Null(), 0, Value(0.0), 0.0));
  tuples.push_back(Row(schema, 5, Value::Null(), 0, Value(0.0), 0.0));
  ExpectColumnValuesToNotBeNull expectation("BPM");
  auto r = expectation.Validate(tuples);
  ASSERT_TRUE(r.ok());
  const auto hist = r.ValueOrDie().FailureHourHistogram();
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_DOUBLE_EQ(r.ValueOrDie().UnexpectedFraction(), 1.0);
}

}  // namespace
}  // namespace dq
}  // namespace icewafl
