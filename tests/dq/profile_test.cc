#include "dq/profile.h"

#include <gtest/gtest.h>

#include "core/errors_value.h"
#include "core/process.h"
#include "data/wearable.h"

namespace icewafl {
namespace dq {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make({{"ts", ValueType::kInt64},
                       {"v", ValueType::kDouble},
                       {"label", ValueType::kString}},
                      "ts")
      .ValueOrDie();
}

TupleVector TestTuples() {
  SchemaPtr schema = TestSchema();
  TupleVector tuples;
  for (int i = 0; i < 10; ++i) {
    tuples.emplace_back(
        schema,
        std::vector<Value>{Value(int64_t{i}),
                           i == 9 ? Value::Null()
                                  : Value(10.0 + static_cast<double>(i)),
                           Value(i % 2 == 0 ? "even" : "odd")});
  }
  return tuples;
}

TEST(ProfileTest, BasicStatistics) {
  auto profiles = ProfileColumns(TestTuples());
  ASSERT_TRUE(profiles.ok());
  const auto& p = profiles.ValueOrDie();
  ASSERT_EQ(p.size(), 3u);

  EXPECT_EQ(p[0].column, "ts");
  EXPECT_EQ(p[0].total, 10u);
  EXPECT_EQ(p[0].nulls, 0u);
  EXPECT_DOUBLE_EQ(p[0].min, 0.0);
  EXPECT_DOUBLE_EQ(p[0].max, 9.0);

  EXPECT_EQ(p[1].nulls, 1u);
  EXPECT_EQ(p[1].numeric_count, 9u);
  EXPECT_DOUBLE_EQ(p[1].min, 10.0);
  EXPECT_DOUBLE_EQ(p[1].max, 18.0);
  EXPECT_DOUBLE_EQ(p[1].mean, 14.0);
  EXPECT_NEAR(p[1].NullFraction(), 0.1, 1e-12);

  EXPECT_EQ(p[2].distinct, 2u);
  EXPECT_EQ(p[2].distinct_values,
            (std::vector<std::string>{"even", "odd"}));
}

TEST(ProfileTest, DistinctCapStopsTracking) {
  SchemaPtr schema = TestSchema();
  TupleVector tuples;
  for (int i = 0; i < 100; ++i) {
    // Built via append to dodge a GCC 12 -Wrestrict false positive
    // (PR105651) on operator+ with a short string literal.
    std::string label = "v";
    label += std::to_string(i);
    tuples.emplace_back(schema,
                        std::vector<Value>{Value(int64_t{i}), Value(1.0),
                                           Value(std::move(label))});
  }
  ProfileOptions options;
  options.distinct_cap = 10;
  auto profiles = ProfileColumns(tuples, options);
  ASSERT_TRUE(profiles.ok());
  EXPECT_TRUE(profiles.ValueOrDie()[2].distinct_exceeded);
  EXPECT_TRUE(profiles.ValueOrDie()[2].distinct_values.empty());
}

TEST(ProfileTest, TypeMismatchesCounted) {
  SchemaPtr schema = TestSchema();
  TupleVector tuples = TestTuples();
  tuples[0].set_value(1, Value("not a number"));
  auto profiles = ProfileColumns(tuples);
  ASSERT_TRUE(profiles.ok());
  EXPECT_EQ(profiles.ValueOrDie()[1].type_mismatches, 1u);
}

TEST(ProfileTest, EmptyStreamYieldsNoProfiles) {
  auto profiles = ProfileColumns({});
  ASSERT_TRUE(profiles.ok());
  EXPECT_TRUE(profiles.ValueOrDie().empty());
}

TEST(ProfileTest, ReportContainsColumns) {
  auto profiles = ProfileColumns(TestTuples());
  ASSERT_TRUE(profiles.ok());
  const std::string report = ProfilesToReport(profiles.ValueOrDie());
  EXPECT_NE(report.find("ts"), std::string::npos);
  EXPECT_NE(report.find("label"), std::string::npos);
  EXPECT_NE(report.find("14"), std::string::npos);  // mean of v
}

TEST(SuggestSuiteTest, CleanStreamPassesItsOwnSuite) {
  const TupleVector tuples = TestTuples();
  auto suite = SuggestSuite(tuples);
  ASSERT_TRUE(suite.ok());
  EXPECT_GT(suite.ValueOrDie().size(), 4u);
  auto result = suite.ValueOrDie().Validate(tuples);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.ValueOrDie().success())
      << result.ValueOrDie().ToReport();
}

TEST(SuggestSuiteTest, DetectsPollutionOfTheProfiledStream) {
  // Profile the clean wearable stream, then pollute it: the suggested
  // suite must flag the injected errors — the full
  // profile -> pollute -> detect loop.
  auto stream = data::GenerateWearable();
  ASSERT_TRUE(stream.ok());
  const TupleVector& clean = stream.ValueOrDie();
  auto suite = SuggestSuite(clean);
  ASSERT_TRUE(suite.ok());
  ASSERT_TRUE(suite.ValueOrDie().Validate(clean).ValueOrDie().success());

  PollutionPipeline pipeline("nulls");
  pipeline.Add(std::make_unique<StandardPolluter>(
      "nuller", std::make_unique<MissingValueError>(),
      std::make_unique<RandomCondition>(0.2),
      std::vector<std::string>{"BPM"}));
  VectorSource source(clean.front().schema(), clean);
  auto polluted = PollutionProcess::Pollute(&source, std::move(pipeline), 5);
  ASSERT_TRUE(polluted.ok());
  auto result =
      suite.ValueOrDie().Validate(polluted.ValueOrDie().polluted);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.ValueOrDie().success());
  EXPECT_EQ(result.ValueOrDie().TotalUnexpected(),
            polluted.ValueOrDie().log.size());
}

TEST(SuggestSuiteTest, NoNotNullForColumnsWithNulls) {
  TupleVector tuples = TestTuples();  // column v has a NULL
  auto suite = SuggestSuite(tuples);
  ASSERT_TRUE(suite.ok());
  auto result = suite.ValueOrDie().Validate(tuples);
  ASSERT_TRUE(result.ok());
  for (const auto& r : result.ValueOrDie().results) {
    if (r.expectation == "expect_column_values_to_not_be_null") {
      EXPECT_NE(r.column, "v");
    }
  }
}

}  // namespace
}  // namespace dq
}  // namespace icewafl
