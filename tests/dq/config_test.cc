#include "dq/config.h"

#include <gtest/gtest.h>

namespace icewafl {
namespace dq {
namespace {

TEST(DqConfigTest, AllExpectationTypesParse) {
  const char* kTypes[] = {
      R"({"type":"expect_column_values_to_not_be_null","column":"a"})",
      R"({"type":"expect_column_values_to_be_null","column":"a"})",
      R"({"type":"expect_column_values_to_be_between","column":"a","min":0,"max":1})",
      R"({"type":"expect_column_values_to_match_regex","column":"a","regex":"\\d+"})",
      R"({"type":"expect_column_values_to_be_increasing","column":"a"})",
      R"({"type":"expect_column_values_to_be_increasing","column":"a","strictly":false})",
      R"({"type":"expect_column_pair_values_a_to_be_greater_than_b","column_a":"a","column_b":"b","or_equal":true})",
      R"({"type":"expect_multicolumn_sum_to_equal","columns":["a","b"],"total":0})",
      R"({"type":"expect_multicolumn_sum_to_equal","columns":["a"],"total":0,"where_column":"c","where_value":0})",
      R"({"type":"expect_column_values_to_be_in_set","column":"a","values":["x","y"]})",
      R"({"type":"expect_column_values_to_be_unique","column":"a"})",
      R"({"type":"expect_column_mean_to_be_between","column":"a","min":0,"max":1})",
      R"({"type":"expect_column_stdev_to_be_between","column":"a","min":0,"max":1})",
      R"({"type":"expect_column_value_lengths_to_be_between","column":"a","min_length":1,"max_length":10})",
      R"({"type":"expect_column_values_to_be_of_type","column":"a","value_type":"double"})",
  };
  for (const char* text : kTypes) {
    auto json = Json::Parse(text);
    ASSERT_TRUE(json.ok()) << text;
    auto expectation = ExpectationFromJson(json.ValueOrDie());
    ASSERT_TRUE(expectation.ok())
        << text << ": " << expectation.status().ToString();
  }
}

TEST(DqConfigTest, UnknownTypeAndMissingFieldsRejected) {
  EXPECT_FALSE(
      ExpectationFromJson(Json::Parse(R"({"type":"zap"})").ValueOrDie()).ok());
  EXPECT_FALSE(ExpectationFromJson(
                   Json::Parse(R"({"type":"expect_column_values_to_not_be_null"})")
                       .ValueOrDie())
                   .ok());
  EXPECT_FALSE(
      ExpectationFromJson(
          Json::Parse(
              R"({"type":"expect_column_values_to_be_between","column":"a"})")
              .ValueOrDie())
          .ok());
}

TEST(DqConfigTest, SuiteParsesAndValidates) {
  auto suite = SuiteFromConfigString(R"({
    "name": "checks",
    "expectations": [
      {"type": "expect_column_values_to_not_be_null", "column": "v"},
      {"type": "expect_column_values_to_be_between", "column": "v",
       "min": 0, "max": 100}
    ]
  })");
  ASSERT_TRUE(suite.ok()) << suite.status().ToString();
  EXPECT_EQ(suite.ValueOrDie().name(), "checks");
  EXPECT_EQ(suite.ValueOrDie().size(), 2u);

  SchemaPtr schema =
      Schema::Make({{"ts", ValueType::kInt64}, {"v", ValueType::kDouble}},
                   "ts")
          .ValueOrDie();
  TupleVector tuples;
  tuples.emplace_back(schema,
                      std::vector<Value>{Value(int64_t{0}), Value(50.0)});
  tuples.emplace_back(schema,
                      std::vector<Value>{Value(int64_t{1}), Value(200.0)});
  tuples.emplace_back(schema,
                      std::vector<Value>{Value(int64_t{2}), Value::Null()});
  auto result = suite.ValueOrDie().Validate(tuples);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().TotalUnexpected(), 2u);  // null + range
}

TEST(DqConfigTest, WhereClauseApplied) {
  auto suite = SuiteFromConfigString(R"({
    "expectations": [
      {"type": "expect_multicolumn_sum_to_equal", "columns": ["v"],
       "total": 0, "where_column": "flag", "where_value": 1}
    ]
  })");
  ASSERT_TRUE(suite.ok());
  SchemaPtr schema = Schema::Make({{"ts", ValueType::kInt64},
                                   {"v", ValueType::kDouble},
                                   {"flag", ValueType::kInt64}},
                                  "ts")
                         .ValueOrDie();
  TupleVector tuples;
  tuples.emplace_back(schema, std::vector<Value>{Value(int64_t{0}),
                                                 Value(5.0), Value(0)});
  tuples.emplace_back(schema, std::vector<Value>{Value(int64_t{1}),
                                                 Value(5.0), Value(1)});
  auto result = suite.ValueOrDie().Validate(tuples);
  ASSERT_TRUE(result.ok());
  // Only the flag==1 tuple is evaluated; its sum 5 != 0.
  EXPECT_EQ(result.ValueOrDie().results[0].evaluated, 1u);
  EXPECT_EQ(result.ValueOrDie().TotalUnexpected(), 1u);
}

TEST(DqConfigTest, EveryExpectationRoundTripsThroughJson) {
  const char* kTypes[] = {
      R"({"type":"expect_column_values_to_not_be_null","column":"a"})",
      R"({"type":"expect_column_values_to_be_null","column":"a"})",
      R"({"type":"expect_column_values_to_be_between","column":"a","min":0,"max":1})",
      R"({"type":"expect_column_values_to_match_regex","column":"a","regex":"\\d+"})",
      R"({"type":"expect_column_values_to_be_increasing","column":"a","strictly":false})",
      R"({"type":"expect_column_pair_values_a_to_be_greater_than_b","column_a":"a","column_b":"b","or_equal":true})",
      R"({"type":"expect_multicolumn_sum_to_equal","columns":["a"],"total":0,"tolerance":0.5,"where_column":"c","where_value":0})",
      R"({"type":"expect_column_values_to_be_in_set","column":"a","values":["x","y"]})",
      R"({"type":"expect_column_values_to_be_unique","column":"a"})",
      R"({"type":"expect_column_mean_to_be_between","column":"a","min":0,"max":1})",
      R"({"type":"expect_column_stdev_to_be_between","column":"a","min":0,"max":1})",
      R"({"type":"expect_column_value_lengths_to_be_between","column":"a","min_length":1,"max_length":10})",
      R"({"type":"expect_column_values_to_be_of_type","column":"a","value_type":"double"})",
  };
  for (const char* text : kTypes) {
    auto parsed = ExpectationFromJson(Json::Parse(text).ValueOrDie());
    ASSERT_TRUE(parsed.ok()) << text;
    auto reparsed = ExpectationFromJson(parsed.ValueOrDie()->ToJson());
    ASSERT_TRUE(reparsed.ok())
        << text << ": " << reparsed.status().ToString();
    EXPECT_EQ(reparsed.ValueOrDie()->ToJson(),
              parsed.ValueOrDie()->ToJson())
        << text;
  }
}

TEST(DqConfigTest, SuiteRoundTripsThroughJson) {
  auto suite = SuiteFromConfigString(R"({
    "name": "roundtrip",
    "expectations": [
      {"type": "expect_column_values_to_not_be_null", "column": "v"},
      {"type": "expect_column_values_to_be_unique", "column": "id"}
    ]
  })");
  ASSERT_TRUE(suite.ok());
  auto reparsed = SuiteFromJson(suite.ValueOrDie().ToJson());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.ValueOrDie().ToJson(), suite.ValueOrDie().ToJson());
  EXPECT_EQ(reparsed.ValueOrDie().name(), "roundtrip");
}

TEST(DqConfigTest, MalformedSuiteRejected) {
  EXPECT_FALSE(SuiteFromConfigString("{oops").ok());
  EXPECT_FALSE(SuiteFromConfigString(R"({"expectations": 5})").ok());
  EXPECT_FALSE(SuiteFromConfigString("{}").ok());
  EXPECT_FALSE(SuiteFromConfigFile("/no/such/suite.json").ok());
}

}  // namespace
}  // namespace dq
}  // namespace icewafl
