#include <gtest/gtest.h>

#include "stream/executor.h"
#include "stream/micro_batch.h"
#include "stream/operator.h"
#include "stream/sink.h"
#include "stream/source.h"

namespace icewafl {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make(
             {{"ts", ValueType::kInt64}, {"v", ValueType::kDouble}}, "ts")
      .ValueOrDie();
}

TupleVector MakeTuples(const SchemaPtr& schema, int n) {
  TupleVector tuples;
  for (int i = 0; i < n; ++i) {
    Tuple t(schema, {Value(int64_t{i * 3600}), Value(static_cast<double>(i))});
    t.set_id(static_cast<TupleId>(i));
    t.set_event_time(i * 3600);
    t.set_arrival_time(i * 3600);
    tuples.push_back(std::move(t));
  }
  return tuples;
}

TEST(SourceTest, VectorSourceDrainsAndResets) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 5));
  EXPECT_EQ(source.size(), 5u);
  auto all = CollectAll(&source);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.ValueOrDie().size(), 5u);
  // Exhausted source yields nothing...
  Tuple t;
  EXPECT_FALSE(source.Next(&t).ValueOrDie());
  // ...until reset.
  ASSERT_TRUE(source.Reset().ok());
  EXPECT_TRUE(source.Next(&t).ValueOrDie());
  EXPECT_EQ(t.value(1).AsDouble(), 0.0);
}

TEST(SourceTest, GeneratorSourceBoundedByNullopt) {
  SchemaPtr schema = TestSchema();
  GeneratorSource source(schema, [&](uint64_t i) -> std::optional<Tuple> {
    if (i >= 3) return std::nullopt;
    return Tuple(schema, {Value(static_cast<int64_t>(i)),
                          Value(static_cast<double>(i) * 2.0)});
  });
  auto all = CollectAll(&source);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.ValueOrDie().size(), 3u);
  EXPECT_DOUBLE_EQ(all.ValueOrDie()[2].value(1).AsDouble(), 4.0);
  ASSERT_TRUE(source.Reset().ok());
  EXPECT_EQ(CollectAll(&source).ValueOrDie().size(), 3u);
}

TEST(SinkTest, VectorSinkCollects) {
  SchemaPtr schema = TestSchema();
  VectorSink sink;
  for (const Tuple& t : MakeTuples(schema, 4)) {
    ASSERT_TRUE(sink.Write(t).ok());
  }
  EXPECT_EQ(sink.tuples().size(), 4u);
  TupleVector taken = sink.TakeTuples();
  EXPECT_EQ(taken.size(), 4u);
  EXPECT_EQ(sink.tuples().size(), 0u);
}

TEST(SinkTest, CountingSinkChecksumIsOrderSensitive) {
  SchemaPtr schema = TestSchema();
  TupleVector tuples = MakeTuples(schema, 3);
  CountingSink forward;
  for (const Tuple& t : tuples) ASSERT_TRUE(forward.Write(t).ok());
  CountingSink reversed;
  for (auto it = tuples.rbegin(); it != tuples.rend(); ++it) {
    ASSERT_TRUE(reversed.Write(*it).ok());
  }
  EXPECT_EQ(forward.count(), 3u);
  EXPECT_EQ(reversed.count(), 3u);
  EXPECT_NE(forward.checksum(), reversed.checksum());
}

TEST(OperatorTest, MapTransformsEachTuple) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 3));
  MapOperator op([](Tuple t) -> Result<Tuple> {
    ICEWAFL_ASSIGN_OR_RETURN(Value v, t.Get("v"));
    ICEWAFL_RETURN_NOT_OK(t.Set("v", Value(v.AsDouble() + 100.0)));
    return t;
  });
  VectorSink sink;
  ASSERT_TRUE(StreamExecutor::Run(&source, {&op}, &sink).ok());
  ASSERT_EQ(sink.tuples().size(), 3u);
  EXPECT_DOUBLE_EQ(sink.tuples()[1].value(1).AsDouble(), 101.0);
}

TEST(OperatorTest, MapErrorPropagates) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 1));
  MapOperator op([](Tuple) -> Result<Tuple> {
    return Status::Internal("boom");
  });
  VectorSink sink;
  Status st = StreamExecutor::Run(&source, {&op}, &sink);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(OperatorTest, FilterDropsTuples) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 10));
  FilterOperator op([](const Tuple& t) {
    return t.value(1).AsDouble() >= 5.0;
  });
  VectorSink sink;
  ASSERT_TRUE(StreamExecutor::Run(&source, {&op}, &sink).ok());
  EXPECT_EQ(sink.tuples().size(), 5u);
}

TEST(OperatorTest, FlatMapDuplicates) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 3));
  FlatMapOperator op([](Tuple t) -> Result<TupleVector> {
    return TupleVector{t, t};
  });
  VectorSink sink;
  ASSERT_TRUE(StreamExecutor::Run(&source, {&op}, &sink).ok());
  EXPECT_EQ(sink.tuples().size(), 6u);
}

TEST(OperatorTest, ChainedOperatorsComposeInOrder) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 6));
  MapOperator add([](Tuple t) -> Result<Tuple> {
    ICEWAFL_ASSIGN_OR_RETURN(Value v, t.Get("v"));
    ICEWAFL_RETURN_NOT_OK(t.Set("v", Value(v.AsDouble() + 1.0)));
    return t;
  });
  FilterOperator even([](const Tuple& t) {
    return static_cast<int64_t>(t.value(1).AsDouble()) % 2 == 0;
  });
  VectorSink sink;
  ASSERT_TRUE(StreamExecutor::Run(&source, {&add, &even}, &sink).ok());
  // v+1 in {1..6}; evens are 2, 4, 6.
  ASSERT_EQ(sink.tuples().size(), 3u);
  EXPECT_DOUBLE_EQ(sink.tuples()[0].value(1).AsDouble(), 2.0);
}

TEST(ReorderOperatorTest, RestoresArrivalOrderWithinLateness) {
  SchemaPtr schema = TestSchema();
  TupleVector tuples = MakeTuples(schema, 5);
  // Tuple 1 is delayed by 2.5 hours: its arrival time jumps past tuples
  // 2 and 3.
  tuples[1].set_arrival_time(tuples[1].arrival_time() + 9000);
  VectorSource source(schema, tuples);
  ReorderOperator reorder(4 * 3600);
  VectorSink sink;
  ASSERT_TRUE(StreamExecutor::Run(&source, {&reorder}, &sink).ok());
  ASSERT_EQ(sink.tuples().size(), 5u);
  std::vector<TupleId> order;
  for (const Tuple& t : sink.tuples()) order.push_back(t.id());
  EXPECT_EQ(order, (std::vector<TupleId>{0, 2, 3, 1, 4}));
}

TEST(ReorderOperatorTest, FlushEmitsRemainderInOrder) {
  SchemaPtr schema = TestSchema();
  TupleVector tuples = MakeTuples(schema, 3);
  tuples[0].set_arrival_time(tuples[2].arrival_time() + 100);
  VectorSource source(schema, tuples);
  ReorderOperator reorder(1000000);  // nothing released before Finish
  VectorSink sink;
  ASSERT_TRUE(StreamExecutor::Run(&source, {&reorder}, &sink).ok());
  ASSERT_EQ(sink.tuples().size(), 3u);
  EXPECT_EQ(sink.tuples()[0].id(), 1u);
  EXPECT_EQ(sink.tuples()[1].id(), 2u);
  EXPECT_EQ(sink.tuples()[2].id(), 0u);
}

TEST(ParallelExecutorTest, MatchesSequentialResultSet) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 100));
  ParallelExecutor parallel(4);
  VectorSink sink;
  Status st = parallel.Run(
      &source,
      [](int) {
        OperatorChain chain;
        chain.push_back(std::make_unique<MapOperator>(
            [](Tuple t) -> Result<Tuple> {
              ICEWAFL_ASSIGN_OR_RETURN(Value v, t.Get("v"));
              ICEWAFL_RETURN_NOT_OK(t.Set("v", Value(v.AsDouble() * 2.0)));
              return t;
            }));
        return chain;
      },
      &sink);
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(sink.tuples().size(), 100u);
  double sum = 0.0;
  for (const Tuple& t : sink.tuples()) sum += t.value(1).AsDouble();
  // 2 * sum(0..99) = 9900.
  EXPECT_DOUBLE_EQ(sum, 9900.0);
}

TEST(ParallelExecutorTest, RejectsZeroParallelism) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 1));
  ParallelExecutor parallel(0);
  VectorSink sink;
  Status st = parallel.Run(
      &source, [](int) { return OperatorChain{}; }, &sink);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(ParallelExecutorTest, WorkerErrorsPropagate) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 8));
  ParallelExecutor parallel(2);
  VectorSink sink;
  Status st = parallel.Run(
      &source,
      [](int worker) {
        OperatorChain chain;
        chain.push_back(
            std::make_unique<MapOperator>([worker](Tuple t) -> Result<Tuple> {
              if (worker == 1) return Status::IOError("worker down");
              return t;
            }));
        return chain;
      },
      &sink);
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST(MicroBatchTest, BatchesHaveRequestedSize) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 10));
  auto batches = ToMicroBatches(&source, 4);
  ASSERT_TRUE(batches.ok());
  const auto& b = batches.ValueOrDie();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0].size(), 4u);
  EXPECT_EQ(b[1].size(), 4u);
  EXPECT_EQ(b[2].size(), 2u);
}

TEST(MicroBatchTest, ZeroBatchSizeRejected) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 2));
  EXPECT_EQ(ToMicroBatches(&source, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MicroBatchTest, MicroBatchSourceReplaysTupleWise) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 7));
  auto batches = ToMicroBatches(&source, 3).ValueOrDie();
  MicroBatchSource mb(schema, batches);
  EXPECT_EQ(mb.num_batches(), 3u);
  auto all = CollectAll(&mb);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.ValueOrDie().size(), 7u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(all.ValueOrDie()[static_cast<size_t>(i)].id(),
              static_cast<TupleId>(i));
  }
  ASSERT_TRUE(mb.Reset().ok());
  EXPECT_EQ(CollectAll(&mb).ValueOrDie().size(), 7u);
}

}  // namespace
}  // namespace icewafl
