#include "stream/schema.h"

#include <gtest/gtest.h>

namespace icewafl {
namespace {

Result<SchemaPtr> MakeTestSchema() {
  return Schema::Make(
      {{"ts", ValueType::kInt64},
       {"temp", ValueType::kDouble},
       {"station", ValueType::kString}},
      "ts");
}

TEST(SchemaTest, BasicConstruction) {
  auto schema = MakeTestSchema();
  ASSERT_TRUE(schema.ok());
  const SchemaPtr& s = schema.ValueOrDie();
  EXPECT_EQ(s->num_attributes(), 3u);
  EXPECT_EQ(s->timestamp_index(), 0u);
  EXPECT_EQ(s->timestamp_name(), "ts");
  EXPECT_EQ(s->attribute(1).name, "temp");
  EXPECT_EQ(s->attribute(1).type, ValueType::kDouble);
}

TEST(SchemaTest, IndexOf) {
  const SchemaPtr s = MakeTestSchema().ValueOrDie();
  EXPECT_EQ(s->IndexOf("station").ValueOrDie(), 2u);
  EXPECT_EQ(s->IndexOf("missing").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(s->Contains("temp"));
  EXPECT_FALSE(s->Contains("missing"));
}

TEST(SchemaTest, Names) {
  const SchemaPtr s = MakeTestSchema().ValueOrDie();
  EXPECT_EQ(s->Names(),
            (std::vector<std::string>{"ts", "temp", "station"}));
}

TEST(SchemaTest, RejectsEmptySchema) {
  EXPECT_EQ(Schema::Make({}, "ts").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsDuplicateNames) {
  auto r = Schema::Make(
      {{"ts", ValueType::kInt64}, {"ts", ValueType::kDouble}}, "ts");
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, RejectsEmptyAttributeName) {
  auto r = Schema::Make({{"", ValueType::kInt64}}, "");
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsMissingTimestampAttribute) {
  auto r = Schema::Make({{"x", ValueType::kInt64}}, "ts");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, RejectsNonIntegerTimestamp) {
  auto r = Schema::Make({{"ts", ValueType::kDouble}}, "ts");
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(SchemaTest, TimestampCanBeAnyPosition) {
  auto r = Schema::Make(
      {{"a", ValueType::kDouble}, {"time", ValueType::kInt64}}, "time");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie()->timestamp_index(), 1u);
}

TEST(SchemaTest, Equals) {
  const SchemaPtr a = MakeTestSchema().ValueOrDie();
  const SchemaPtr b = MakeTestSchema().ValueOrDie();
  EXPECT_TRUE(a->Equals(*b));
  const SchemaPtr c =
      Schema::Make({{"ts", ValueType::kInt64}}, "ts").ValueOrDie();
  EXPECT_FALSE(a->Equals(*c));
}

}  // namespace
}  // namespace icewafl
