#include "stream/merge.h"

#include <gtest/gtest.h>

#include "core/errors_temporal.h"
#include "core/polluter_operator.h"
#include "stream/executor.h"

namespace icewafl {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make(
             {{"ts", ValueType::kInt64}, {"v", ValueType::kDouble}}, "ts")
      .ValueOrDie();
}

Tuple Make(const SchemaPtr& schema, Timestamp arrival, double v,
           TupleId id) {
  Tuple t(schema, {Value(arrival), Value(v)});
  t.set_id(id);
  t.set_event_time(arrival);
  t.set_arrival_time(arrival);
  return t;
}

TEST(MergeSortedSourcesTest, MergesByArrivalTime) {
  SchemaPtr schema = TestSchema();
  VectorSource a(schema, {Make(schema, 10, 1, 0), Make(schema, 30, 1, 1),
                          Make(schema, 50, 1, 2)});
  VectorSource b(schema, {Make(schema, 20, 2, 3), Make(schema, 40, 2, 4)});
  MergeSortedSources merged({&a, &b});
  auto all = CollectAll(&merged);
  ASSERT_TRUE(all.ok());
  std::vector<Timestamp> order;
  for (const Tuple& t : all.ValueOrDie()) order.push_back(t.arrival_time());
  EXPECT_EQ(order, (std::vector<Timestamp>{10, 20, 30, 40, 50}));
}

TEST(MergeSortedSourcesTest, TiesPreferEarlierSource) {
  SchemaPtr schema = TestSchema();
  VectorSource a(schema, {Make(schema, 10, 1, 0)});
  VectorSource b(schema, {Make(schema, 10, 2, 1)});
  MergeSortedSources merged({&a, &b});
  auto all = CollectAll(&merged);
  ASSERT_TRUE(all.ok());
  EXPECT_DOUBLE_EQ(all.ValueOrDie()[0].value(1).AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(all.ValueOrDie()[1].value(1).AsDouble(), 2.0);
}

TEST(MergeSortedSourcesTest, HandlesEmptyAndUnevenSources) {
  SchemaPtr schema = TestSchema();
  VectorSource empty(schema, {});
  VectorSource a(schema, {Make(schema, 5, 1, 0), Make(schema, 6, 1, 1)});
  MergeSortedSources merged({&empty, &a});
  auto all = CollectAll(&merged);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.ValueOrDie().size(), 2u);
}

TEST(MergeSortedSourcesTest, ResetReplays) {
  SchemaPtr schema = TestSchema();
  VectorSource a(schema, {Make(schema, 1, 1, 0)});
  VectorSource b(schema, {Make(schema, 2, 2, 1)});
  MergeSortedSources merged({&a, &b});
  EXPECT_EQ(CollectAll(&merged).ValueOrDie().size(), 2u);
  ASSERT_TRUE(merged.Reset().ok());
  EXPECT_EQ(CollectAll(&merged).ValueOrDie().size(), 2u);
}

TEST(MergeSortedSourcesTest, NoSourcesIsEmptyStream) {
  MergeSortedSources merged({});
  Tuple t;
  EXPECT_FALSE(merged.Next(&t).ValueOrDie());
}

// A fully streaming delay topology: polluter (delay) -> reorder buffer.
// The output is arrival-ordered while the Time attribute exposes the
// delays — the operator-mode equivalent of the batch process's step 3.
TEST(StreamingDelayTopologyTest, DelayThenReorder) {
  SchemaPtr schema = TestSchema();
  TupleVector tuples;
  for (int i = 0; i < 200; ++i) {
    tuples.emplace_back(
        schema, std::vector<Value>{Value(int64_t{i} * 60), Value(1.0)});
  }
  PollutionPipeline pipeline("delays");
  pipeline.Add(std::make_unique<StandardPolluter>(
      "delay", std::make_unique<DelayError>(300),
      std::make_unique<RandomCondition>(0.2), std::vector<std::string>{}));
  PolluterOperator polluter(std::move(pipeline), /*seed=*/3);
  ReorderOperator reorder(/*max_lateness=*/600);
  VectorSource source(schema, tuples);
  VectorSink sink;
  ASSERT_TRUE(StreamExecutor::Run(&source, {&polluter, &reorder}, &sink).ok());
  ASSERT_EQ(sink.tuples().size(), tuples.size());
  // Output is arrival-ordered...
  int inversions = 0;
  for (size_t i = 1; i < sink.tuples().size(); ++i) {
    ASSERT_LE(sink.tuples()[i - 1].arrival_time(),
              sink.tuples()[i].arrival_time());
    // ...while the timestamp attribute shows out-of-order records.
    if (sink.tuples()[i].GetTimestamp().ValueOrDie() <
        sink.tuples()[i - 1].GetTimestamp().ValueOrDie()) {
      ++inversions;
    }
  }
  EXPECT_GT(inversions, 5);
}

}  // namespace
}  // namespace icewafl
