#include "stream/batch.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/condition.h"
#include "core/errors_numeric.h"
#include "core/errors_value.h"
#include "core/pipeline.h"
#include "core/polluter.h"
#include "gtest/gtest.h"
#include "net/wire.h"
#include "util/rng.h"

namespace icewafl {
namespace {

// Bit-exact value comparison: doubles are compared by bit pattern so
// NaN payloads, signed zeros, and denormals all count.
bool BitEq(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return a.AsBool() == b.AsBool();
    case ValueType::kInt64:
      return a.AsInt64() == b.AsInt64();
    case ValueType::kDouble: {
      uint64_t ba = 0;
      uint64_t bb = 0;
      const double da = a.AsDouble();
      const double db = b.AsDouble();
      std::memcpy(&ba, &da, sizeof(ba));
      std::memcpy(&bb, &db, sizeof(bb));
      return ba == bb;
    }
    case ValueType::kString:
      return a.AsString() == b.AsString();
  }
  return false;
}

bool TupleBitEq(const Tuple& a, const Tuple& b) {
  if (a.id() != b.id() || a.event_time() != b.event_time() ||
      a.arrival_time() != b.arrival_time() ||
      a.substream() != b.substream() ||
      a.num_values() != b.num_values()) {
    return false;
  }
  for (size_t i = 0; i < a.num_values(); ++i) {
    if (!BitEq(a.value(i), b.value(i))) return false;
  }
  return true;
}

SchemaPtr RandomSchema(Rng* rng) {
  const ValueType kinds[] = {ValueType::kBool, ValueType::kInt64,
                             ValueType::kDouble, ValueType::kString};
  std::vector<Attribute> attrs;
  attrs.push_back({"ts", ValueType::kInt64});
  const int extra = static_cast<int>(rng->UniformInt(0, 6));
  for (int i = 0; i < extra; ++i) {
    attrs.push_back({"a" + std::to_string(i),
                     kinds[rng->UniformInt(0, 3)]});
  }
  return Schema::Make(std::move(attrs), "ts").ValueOrDie();
}

Value RandomTypedValue(Rng* rng, ValueType type) {
  switch (type) {
    case ValueType::kBool:
      return Value(rng->Bernoulli(0.5));
    case ValueType::kInt64:
      return Value(rng->UniformInt(std::numeric_limits<int64_t>::min(),
                                   std::numeric_limits<int64_t>::max()));
    case ValueType::kDouble: {
      switch (rng->UniformInt(0, 6)) {
        case 0:
          return Value(std::numeric_limits<double>::quiet_NaN());
        case 1:
          return Value(std::numeric_limits<double>::infinity());
        case 2:
          return Value(-0.0);
        case 3:
          return Value(std::numeric_limits<double>::denorm_min());
        default:
          return Value(rng->Uniform(-1e12, 1e12));
      }
    }
    case ValueType::kString: {
      std::string s;
      const int len = static_cast<int>(rng->UniformInt(0, 12));
      for (int i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng->UniformInt(0, 255)));
      }
      return Value(std::move(s));
    }
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

// Declared-type value with a chance of NULL or a diverged runtime type
// (an upstream polluter may have rewritten the slot).
Value RandomCellValue(Rng* rng, ValueType declared) {
  const double roll = rng->NextDouble();
  if (roll < 0.15) return Value::Null();
  if (roll < 0.25) {
    const ValueType kinds[] = {ValueType::kBool, ValueType::kInt64,
                               ValueType::kDouble, ValueType::kString};
    return RandomTypedValue(rng, kinds[rng->UniformInt(0, 3)]);
  }
  return RandomTypedValue(rng, declared);
}

TupleVector RandomTuples(Rng* rng, const SchemaPtr& schema, size_t rows) {
  TupleVector tuples;
  tuples.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> values;
    for (const Attribute& attr : schema->attributes()) {
      values.push_back(RandomCellValue(rng, attr.type));
    }
    Tuple t(schema, std::move(values));
    t.set_id(rng->Next());
    t.set_event_time(rng->UniformInt(-1'000'000, 1'000'000));
    t.set_arrival_time(rng->UniformInt(-1'000'000, 1'000'000));
    t.set_substream(static_cast<int>(rng->UniformInt(-1, 7)));
    tuples.push_back(std::move(t));
  }
  return tuples;
}

TEST(Batch, RoundTripPropertyIsLossless) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed * 2654435761ULL + 1);
    SchemaPtr schema = RandomSchema(&rng);
    const size_t rows = static_cast<size_t>(rng.UniformInt(1, 64));
    TupleVector tuples = RandomTuples(&rng, schema, rows);

    auto transposed = Batch::FromTuples(tuples);
    ASSERT_TRUE(transposed.ok()) << transposed.status().ToString();
    const Batch& batch = transposed.ValueOrDie();
    ASSERT_EQ(batch.rows(), rows);
    TupleVector back = batch.ToTuples();
    ASSERT_EQ(back.size(), rows);
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_TRUE(TupleBitEq(tuples[r], back[r]))
          << "seed " << seed << " row " << r;
    }
  }
}

TEST(Batch, WireRoundTripMatchesTupleFramesByteExactly) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed * 40503ULL + 17);
    SchemaPtr schema = RandomSchema(&rng);
    const size_t rows = static_cast<size_t>(rng.UniformInt(1, 32));
    TupleVector tuples = RandomTuples(&rng, schema, rows);

    auto transposed = Batch::FromTuples(tuples);
    ASSERT_TRUE(transposed.ok()) << transposed.status().ToString();
    const std::string payload =
        net::EncodeBatchPayload(transposed.ValueOrDie());
    auto decoded = net::DecodeBatchPayload(payload, schema);
    ASSERT_TRUE(decoded.ok()) << "seed " << seed << ": "
                              << decoded.status().ToString();

    // The decoded batch re-encodes to the identical bytes (the frame
    // has one canonical spelling) ...
    EXPECT_EQ(net::EncodeBatchPayload(decoded.ValueOrDie()), payload)
        << "seed " << seed;
    // ... and its rows serialize to exactly the tuple frames the same
    // stream would have produced without batching.
    TupleVector back = decoded.ValueOrDie().ToTuples();
    ASSERT_EQ(back.size(), rows);
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(net::EncodeTuplePayload(back[r]),
                net::EncodeTuplePayload(tuples[r]))
          << "seed " << seed << " row " << r;
    }
  }
}

TEST(Batch, FromTuplesRejectsEmptyAndMixedSchemas) {
  EXPECT_FALSE(Batch::FromTuples(TupleVector{}).ok());

  Rng rng(7);
  SchemaPtr a = RandomSchema(&rng);
  SchemaPtr b = RandomSchema(&rng);
  TupleVector mixed = RandomTuples(&rng, a, 2);
  TupleVector other = RandomTuples(&rng, b, 1);
  mixed.push_back(other.front());
  auto transposed = Batch::FromTuples(mixed);
  ASSERT_FALSE(transposed.ok());
  EXPECT_NE(transposed.status().ToString().find("mixed schemas"),
            std::string::npos);
}

TEST(Batch, ColumnRoutesTypedNullAndDivergentWrites) {
  Column col(ValueType::kDouble);
  col.Append(Value(1.5));
  col.Append(Value::Null());
  col.Append(Value(int64_t{42}));  // diverged runtime type
  ASSERT_EQ(col.rows(), 3u);
  EXPECT_TRUE(col.IsValid(0));
  EXPECT_FALSE(col.IsValid(1));
  EXPECT_FALSE(col.IsValid(2));
  EXPECT_TRUE(BitEq(col.At(0), Value(1.5)));
  EXPECT_TRUE(BitEq(col.At(1), Value::Null()));
  EXPECT_TRUE(BitEq(col.At(2), Value(int64_t{42})));

  col.Set(1, Value(2.5));  // null -> typed slot
  EXPECT_TRUE(col.IsValid(1));
  col.Set(0, Value("diverged"));  // typed -> divergent
  EXPECT_FALSE(col.IsValid(0));
  EXPECT_TRUE(BitEq(col.At(0), Value("diverged")));
  col.SetNull(2);  // divergent -> null
  EXPECT_TRUE(BitEq(col.At(2), Value::Null()));
  EXPECT_EQ(col.divergent().size(), 1u);
}

// The columnar execution path must make exactly the tuple path's RNG
// draws in the same order — outputs are bit-identical, not just close.
TEST(Batch, ColumnarPipelineMatchesTuplePathBitExactly) {
  auto make_pipeline = [] {
    PollutionPipeline pipeline("equivalence");
    pipeline.Add(std::make_unique<StandardPolluter>(
        "noise", std::make_unique<GaussianNoiseError>(0.5),
        std::make_unique<ValueCondition>("a0", CompareOp::kGt, Value(0.0)),
        std::vector<std::string>{"a0"}));
    pipeline.Add(std::make_unique<StandardPolluter>(
        "scale", std::make_unique<ScaleError>(2.0),
        std::make_unique<TimeWindowCondition>(-500'000, 500'000),
        std::vector<std::string>{"a1"}));
    pipeline.Add(std::make_unique<StandardPolluter>(
        "drop", std::make_unique<MissingValueError>(),
        std::make_unique<RandomCondition>(0.25),
        std::vector<std::string>{"a0", "a1"}));
    return pipeline;
  };

  SchemaPtr schema =
      Schema::Make({{"ts", ValueType::kInt64},
                    {"a0", ValueType::kDouble},
                    {"a1", ValueType::kInt64}},
                   "ts")
          .ValueOrDie();

  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed + 99);
    TupleVector tuples = RandomTuples(&rng, schema, 48);

    PollutionPipeline tuple_pipeline = make_pipeline();
    ASSERT_TRUE(tuple_pipeline.Bind(schema).ok());
    tuple_pipeline.Seed(seed);
    TupleVector expected = tuples;
    for (Tuple& t : expected) {
      PollutionContext ctx;
      ctx.tau = t.event_time();
      ASSERT_TRUE(tuple_pipeline.Apply(&t, &ctx, nullptr).ok());
    }

    PollutionPipeline columnar_pipeline = make_pipeline();
    ASSERT_TRUE(columnar_pipeline.Bind(schema).ok());
    columnar_pipeline.Seed(seed);
    ASSERT_TRUE(columnar_pipeline.SupportsColumnar());
    auto transposed = Batch::FromTuples(tuples);
    ASSERT_TRUE(transposed.ok()) << transposed.status().ToString();
    Batch batch = std::move(transposed).ValueOrDie();
    std::vector<uint8_t> polluted(batch.rows(), 0);
    PollutionContext ctx;
    ASSERT_TRUE(
        columnar_pipeline.ApplyColumnar(&batch, &ctx, polluted.data()).ok());

    TupleVector actual = batch.ToTuples();
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t r = 0; r < expected.size(); ++r) {
      EXPECT_TRUE(TupleBitEq(expected[r], actual[r]))
          << "seed " << seed << " row " << r;
    }
    EXPECT_EQ(columnar_pipeline.TotalAppliedCount(),
              tuple_pipeline.TotalAppliedCount())
        << "seed " << seed;
  }
}

// A polluter whose condition and error both draw cannot be staged; the
// pipeline must fall back to the tuple path rather than silently
// reorder the draws.
TEST(Batch, TwoRngConsumersDisableColumnarExecution) {
  PollutionPipeline pipeline("two-consumers");
  pipeline.Add(std::make_unique<StandardPolluter>(
      "noisy", std::make_unique<GaussianNoiseError>(0.5),
      std::make_unique<RandomCondition>(0.5),
      std::vector<std::string>{"a0"}));
  EXPECT_FALSE(pipeline.SupportsColumnar());

  PollutionPipeline stateful("stateful-error");
  stateful.Add(std::make_unique<StandardPolluter>(
      "swap", std::make_unique<DigitSwapError>(),
      std::make_unique<AlwaysCondition>(),
      std::vector<std::string>{"a0"}));
  EXPECT_FALSE(stateful.SupportsColumnar());
}

}  // namespace
}  // namespace icewafl
