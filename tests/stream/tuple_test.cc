#include "stream/tuple.h"

#include <gtest/gtest.h>

namespace icewafl {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make({{"ts", ValueType::kInt64},
                       {"temp", ValueType::kDouble},
                       {"station", ValueType::kString}},
                      "ts")
      .ValueOrDie();
}

Tuple TestTuple() {
  return Tuple(TestSchema(), {Value(int64_t{1000}), Value(21.5), Value("S1")});
}

TEST(TupleTest, ValueAccessByIndex) {
  Tuple t = TestTuple();
  EXPECT_EQ(t.num_values(), 3u);
  EXPECT_EQ(t.value(0).AsInt64(), 1000);
  EXPECT_DOUBLE_EQ(t.value(1).AsDouble(), 21.5);
  EXPECT_EQ(t.value(2).AsString(), "S1");
}

TEST(TupleTest, GetSetByName) {
  Tuple t = TestTuple();
  EXPECT_DOUBLE_EQ(t.Get("temp").ValueOrDie().AsDouble(), 21.5);
  ASSERT_TRUE(t.Set("temp", Value(30.0)).ok());
  EXPECT_DOUBLE_EQ(t.Get("temp").ValueOrDie().AsDouble(), 30.0);
  EXPECT_EQ(t.Get("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(t.Set("missing", Value(1)).code(), StatusCode::kNotFound);
}

TEST(TupleTest, TimestampAccessors) {
  Tuple t = TestTuple();
  EXPECT_EQ(t.GetTimestamp().ValueOrDie(), 1000);
  ASSERT_TRUE(t.SetTimestamp(2000).ok());
  EXPECT_EQ(t.GetTimestamp().ValueOrDie(), 2000);
  EXPECT_EQ(t.value(0).AsInt64(), 2000);
}

TEST(TupleTest, NullTimestampIsError) {
  Tuple t = TestTuple();
  t.set_value(0, Value::Null());
  EXPECT_EQ(t.GetTimestamp().status().code(), StatusCode::kTypeError);
}

TEST(TupleTest, MetadataDefaults) {
  Tuple t = TestTuple();
  EXPECT_EQ(t.id(), kInvalidTupleId);
  EXPECT_EQ(t.event_time(), 0);
  EXPECT_EQ(t.arrival_time(), 0);
  EXPECT_EQ(t.substream(), kNoSubstream);
}

TEST(TupleTest, MetadataRoundTrip) {
  Tuple t = TestTuple();
  t.set_id(7);
  t.set_event_time(1000);
  t.set_arrival_time(4600);
  t.set_substream(2);
  EXPECT_EQ(t.id(), 7u);
  EXPECT_EQ(t.event_time(), 1000);
  EXPECT_EQ(t.arrival_time(), 4600);
  EXPECT_EQ(t.substream(), 2);
}

TEST(TupleTest, ValuesEqualIgnoresMetadata) {
  Tuple a = TestTuple();
  Tuple b = TestTuple();
  b.set_id(99);
  b.set_substream(1);
  EXPECT_TRUE(a.ValuesEqual(b));
  ASSERT_TRUE(b.Set("temp", Value(0.0)).ok());
  EXPECT_FALSE(a.ValuesEqual(b));
}

TEST(TupleTest, ToStringShowsNamesAndNull) {
  Tuple t = TestTuple();
  t.set_value(1, Value::Null());
  const std::string s = t.ToString();
  EXPECT_NE(s.find("ts=1000"), std::string::npos);
  EXPECT_NE(s.find("temp=NULL"), std::string::npos);
  EXPECT_NE(s.find("station=S1"), std::string::npos);
}

TEST(TupleTest, GetWithoutSchemaIsInternalError) {
  Tuple t;
  EXPECT_EQ(t.Get("x").status().code(), StatusCode::kInternal);
  EXPECT_EQ(t.GetTimestamp().status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace icewafl
