#include "stream/runtime.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <thread>

#include "stream/executor.h"
#include "stream/operator.h"
#include "stream/sink.h"
#include "stream/source.h"

namespace icewafl {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make(
             {{"ts", ValueType::kInt64}, {"v", ValueType::kDouble}}, "ts")
      .ValueOrDie();
}

TupleVector MakeTuples(const SchemaPtr& schema, int n) {
  TupleVector tuples;
  for (int i = 0; i < n; ++i) {
    Tuple t(schema, {Value(int64_t{i * 3600}), Value(static_cast<double>(i))});
    t.set_id(static_cast<TupleId>(i));
    t.set_event_time(i * 3600);
    t.set_arrival_time(i * 3600);
    tuples.push_back(std::move(t));
  }
  return tuples;
}

std::unique_ptr<Operator> AddOne() {
  return std::make_unique<MapOperator>([](Tuple t) -> Result<Tuple> {
    t.set_value(1, Value(t.value(1).AsDouble() + 1.0));
    return t;
  });
}

/// Buffers every tuple and re-emits the whole stream in Finish().
class HoldAllOperator : public Operator {
 public:
  Status Process(Tuple tuple, Emitter* out) override {
    (void)out;
    held_.push_back(std::move(tuple));
    return Status::OK();
  }
  Status Finish(Emitter* out) override {
    for (Tuple& t : held_) {
      ICEWAFL_RETURN_NOT_OK(out->Emit(std::move(t)));
    }
    held_.clear();
    return Status::OK();
  }

 private:
  TupleVector held_;
};

/// Fails on the tuple whose value(1) equals `bad`.
class FailOnValueOperator : public Operator {
 public:
  explicit FailOnValueOperator(double bad) : bad_(bad) {}
  Status Process(Tuple tuple, Emitter* out) override {
    if (tuple.value(1).AsDouble() == bad_) {
      return Status::Internal("poisoned tuple");
    }
    return out->Emit(std::move(tuple));
  }

 private:
  double bad_;
};

class FailingSource : public Source {
 public:
  explicit FailingSource(SchemaPtr schema, int fail_after)
      : schema_(std::move(schema)), fail_after_(fail_after) {}
  SchemaPtr schema() const override { return schema_; }
  Result<bool> Next(Tuple* out) override {
    if (produced_ >= fail_after_) return Status::IOError("source broke");
    *out = Tuple(schema_, {Value(int64_t{produced_}),
                           Value(static_cast<double>(produced_))});
    ++produced_;
    return true;
  }

 private:
  SchemaPtr schema_;
  int fail_after_;
  int produced_ = 0;
};

class FailingSink : public Sink {
 public:
  using Sink::Write;
  explicit FailingSink(uint64_t fail_after) : fail_after_(fail_after) {}
  Status Write(const Tuple& tuple) override {
    (void)tuple;
    if (written_ >= fail_after_) return Status::IOError("sink broke");
    ++written_;
    return Status::OK();
  }

 private:
  uint64_t fail_after_;
  uint64_t written_ = 0;
};

TEST(PipelineRuntimeTest, EmptySource) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, {});
  VectorSink sink;
  RuntimeOptions options;
  options.parallelism = 4;
  PipelineRuntime runtime(options);
  ASSERT_TRUE(runtime
                  .Run(&source,
                       [](int) {
                         OperatorChain chain;
                         chain.push_back(AddOne());
                         return chain;
                       },
                       &sink)
                  .ok());
  EXPECT_EQ(sink.tuples().size(), 0u);
  EXPECT_EQ(runtime.stats().source_tuples, 0u);
  EXPECT_EQ(runtime.stats().sink_tuples, 0u);
}

TEST(PipelineRuntimeTest, EmptyChainPassesThrough) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 7));
  VectorSink sink;
  PipelineRuntime runtime;
  ASSERT_TRUE(
      runtime.Run(&source, [](int) { return OperatorChain{}; }, &sink).ok());
  ASSERT_EQ(sink.tuples().size(), 7u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(sink.tuples()[i].value(1).AsDouble(), static_cast<double>(i));
  }
}

TEST(PipelineRuntimeTest, ParallelismExceedsTupleCount) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 3));
  VectorSink sink;
  RuntimeOptions options;
  options.parallelism = 8;
  PipelineRuntime runtime(options);
  ASSERT_TRUE(runtime
                  .Run(&source,
                       [](int) {
                         OperatorChain chain;
                         chain.push_back(AddOne());
                         return chain;
                       },
                       &sink)
                  .ok());
  ASSERT_EQ(sink.tuples().size(), 3u);
  double sum = 0.0;
  for (const Tuple& t : sink.tuples()) sum += t.value(1).AsDouble();
  EXPECT_DOUBLE_EQ(sum, 6.0);  // (0+1)+(1+1)+(2+1)
  EXPECT_EQ(runtime.stats().source_tuples, 3u);
  EXPECT_EQ(runtime.stats().sink_tuples, 3u);
}

TEST(PipelineRuntimeTest, ParallelismOnePreservesInputOrder) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 100));
  VectorSink sink;
  RuntimeOptions options;
  options.batch_size = 7;  // force many partial batches
  options.channel_capacity = 2;
  PipelineRuntime runtime(options);
  ASSERT_TRUE(runtime
                  .Run(&source,
                       [](int) {
                         OperatorChain chain;
                         chain.push_back(AddOne());
                         return chain;
                       },
                       &sink)
                  .ok());
  ASSERT_EQ(sink.tuples().size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(sink.tuples()[i].value(1).AsDouble(), i + 1.0);
  }
}

TEST(PipelineRuntimeTest, DeterministicAcrossRuns) {
  SchemaPtr schema = TestSchema();
  RuntimeOptions options;
  options.parallelism = 4;
  options.batch_size = 16;
  auto run_once = [&]() -> uint64_t {
    VectorSource source(schema, MakeTuples(schema, 1000));
    CountingSink sink;
    PipelineRuntime runtime(options);
    EXPECT_TRUE(runtime
                    .Run(&source,
                         [](int) {
                           OperatorChain chain;
                           chain.push_back(AddOne());
                           return chain;
                         },
                         &sink)
                    .ok());
    EXPECT_EQ(sink.count(), 1000u);
    return sink.checksum();
  };
  const uint64_t first = run_once();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(run_once(), first) << "output order changed between runs";
  }
}

TEST(PipelineRuntimeTest, FinishReemissionsFlowThroughRemainingChain) {
  // HoldAll buffers everything and re-emits in Finish(); the downstream
  // AddOne must still see (and transform) those re-emissions, and they
  // must come out in the held order.
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 10));
  VectorSink sink;
  PipelineRuntime runtime;
  ASSERT_TRUE(runtime
                  .Run(&source,
                       [](int) {
                         OperatorChain chain;
                         chain.push_back(std::make_unique<HoldAllOperator>());
                         chain.push_back(AddOne());
                         return chain;
                       },
                       &sink)
                  .ok());
  ASSERT_EQ(sink.tuples().size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(sink.tuples()[i].value(1).AsDouble(), i + 1.0)
        << "Finish re-emission skipped the downstream operator";
  }
}

TEST(PipelineRuntimeTest, FinishOrderAfterRegularTuplesPerWorker) {
  // A chain of [AddOne, HoldAll]: every processed tuple is released only
  // at Finish, after the last regular batch of that worker.
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 6));
  VectorSink sink;
  PipelineRuntime runtime;
  ASSERT_TRUE(runtime
                  .Run(&source,
                       [](int) {
                         OperatorChain chain;
                         chain.push_back(AddOne());
                         chain.push_back(std::make_unique<HoldAllOperator>());
                         return chain;
                       },
                       &sink)
                  .ok());
  ASSERT_EQ(sink.tuples().size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(sink.tuples()[i].value(1).AsDouble(), i + 1.0);
  }
}

TEST(PipelineRuntimeTest, WorkerErrorPropagates) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 64));
  VectorSink sink;
  RuntimeOptions options;
  options.parallelism = 3;
  options.batch_size = 4;
  PipelineRuntime runtime(options);
  Status status = runtime.Run(
      &source,
      [](int) {
        OperatorChain chain;
        chain.push_back(std::make_unique<FailOnValueOperator>(33.0));
        return chain;
      },
      &sink);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(PipelineRuntimeTest, SourceErrorPropagates) {
  SchemaPtr schema = TestSchema();
  FailingSource source(schema, 20);
  VectorSink sink;
  RuntimeOptions options;
  options.parallelism = 2;
  options.batch_size = 4;
  PipelineRuntime runtime(options);
  Status status = runtime.Run(
      &source,
      [](int) {
        OperatorChain chain;
        chain.push_back(AddOne());
        return chain;
      },
      &sink);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("source broke"), std::string::npos);
}

TEST(PipelineRuntimeTest, SinkErrorPropagates) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 256));
  FailingSink sink(10);
  RuntimeOptions options;
  options.parallelism = 2;
  options.batch_size = 8;
  PipelineRuntime runtime(options);
  Status status = runtime.Run(
      &source,
      [](int) {
        OperatorChain chain;
        chain.push_back(AddOne());
        return chain;
      },
      &sink);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("sink broke"), std::string::npos);
}

TEST(PipelineRuntimeTest, RawOperatorOverloadRunsChain) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 12));
  VectorSink sink;
  MapOperator add([](Tuple t) -> Result<Tuple> {
    t.set_value(1, Value(t.value(1).AsDouble() + 1.0));
    return t;
  });
  FilterOperator keep_even([](const Tuple& t) {
    return static_cast<int64_t>(t.value(1).AsDouble()) % 2 == 0;
  });
  PipelineRuntime runtime;
  ASSERT_TRUE(runtime.Run(&source, {&add, &keep_even}, &sink).ok());
  // Values 1..12 after AddOne; evens survive: 2,4,6,8,10,12.
  ASSERT_EQ(sink.tuples().size(), 6u);
  EXPECT_DOUBLE_EQ(sink.tuples().front().value(1).AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(sink.tuples().back().value(1).AsDouble(), 12.0);
}

TEST(PipelineRuntimeTest, StatsAreConsistent) {
  SchemaPtr schema = TestSchema();
  VectorSource source(schema, MakeTuples(schema, 500));
  CountingSink sink;
  RuntimeOptions options;
  options.parallelism = 4;
  options.batch_size = 16;
  options.channel_capacity = 2;
  PipelineRuntime runtime(options);
  ASSERT_TRUE(runtime
                  .Run(&source,
                       [](int) {
                         OperatorChain chain;
                         chain.push_back(AddOne());
                         return chain;
                       },
                       &sink)
                  .ok());
  const RuntimeStats& stats = runtime.stats();
  EXPECT_EQ(stats.source_tuples, 500u);
  EXPECT_EQ(stats.sink_tuples, 500u);
  EXPECT_GE(stats.batches, 500u / 16u);
  // source + 4 workers + sink
  EXPECT_EQ(stats.stages.size(), 6u);
  // Peak buffering is bounded by the channels plus the per-stage
  // in-flight batches (source accumulator, worker scratch, sink pop) —
  // O(channel_capacity * batch_size * parallelism), far below the
  // 500-tuple stream.
  EXPECT_LE(stats.peak_buffered_tuples,
            (2u * options.channel_capacity + 2u) * options.batch_size *
                static_cast<size_t>(options.parallelism));
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(PipelineRuntimeTest, BlockedPopsAggregateIntoRuntimeStats) {
  // Regression: StageStats::blocked_pops used to be collected per stage
  // but never summed into RuntimeStats nor printed by ToString(), so
  // starvation was invisible at the aggregate level.
  SchemaPtr schema = TestSchema();
  // A slow source starves the workers: their input pops find the channel
  // empty and block until the next batch arrives.
  GeneratorSource source(schema, [&](uint64_t i) -> std::optional<Tuple> {
    if (i >= 8) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return Tuple(schema, {Value(static_cast<int64_t>(i)),
                          Value(static_cast<double>(i))});
  });
  CountingSink sink;
  RuntimeOptions options;
  options.batch_size = 1;  // one batch per tuple: maximal pop pressure
  options.channel_capacity = 1;
  PipelineRuntime runtime(options);
  ASSERT_TRUE(runtime
                  .Run(&source,
                       [](int) {
                         OperatorChain chain;
                         chain.push_back(AddOne());
                         return chain;
                       },
                       &sink)
                  .ok());
  const RuntimeStats& stats = runtime.stats();
  uint64_t per_stage = 0;
  for (const StageStats& s : stats.stages) per_stage += s.blocked_pops;
  EXPECT_EQ(stats.blocked_pops, per_stage);
  EXPECT_GE(stats.blocked_pops, 1u);  // the starved worker blocked
  EXPECT_NE(stats.ToString().find("blocked_pops="), std::string::npos);
}

TEST(PipelineRuntimeTest, PublishesMetricsAndTraceWithoutPerturbingOutput) {
  SchemaPtr schema = TestSchema();
  RuntimeOptions options;
  options.parallelism = 2;
  options.batch_size = 16;

  auto run = [&](obs::MetricRegistry* metrics,
                 obs::TraceRecorder* trace) -> uint64_t {
    VectorSource source(schema, MakeTuples(schema, 200));
    CountingSink sink;
    RuntimeOptions opts = options;
    opts.metrics = metrics;
    opts.trace = trace;
    PipelineRuntime runtime(opts);
    EXPECT_TRUE(runtime
                    .Run(&source,
                         [](int) {
                           OperatorChain chain;
                           chain.push_back(AddOne());
                           return chain;
                         },
                         &sink)
                    .ok());
    return sink.checksum();
  };

  const uint64_t plain = run(nullptr, nullptr);
  obs::MetricRegistry registry;
  obs::TraceRecorder trace;
  const uint64_t instrumented = run(&registry, &trace);
  // Determinism contract: instrumentation must not change the output.
  EXPECT_EQ(plain, instrumented);

  // Stage counters agree with the runtime's own stats.
  obs::Counter* source_out = registry.GetCounter(
      "icewafl_stage_tuples_out_total", {{"stage", "source"}});
  ASSERT_NE(source_out, nullptr);
  EXPECT_EQ(source_out->value(), 200u);
  obs::Counter* sink_in = registry.GetCounter("icewafl_stage_tuples_in_total",
                                              {{"stage", "sink"}});
  ASSERT_NE(sink_in, nullptr);
  EXPECT_EQ(sink_in->value(), 200u);

  // One span per stage (source, 2 workers, sink) plus the run span.
  EXPECT_GE(trace.size(), 5u);
  const std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("icewafl_runtime_wall_seconds"), std::string::npos);
  EXPECT_NE(prom.find("icewafl_runtime_batch_tuples_bucket"),
            std::string::npos);
}

TEST(PipelineRuntimeTest, MatchesMaterializingExecutor) {
  // Same chain, same input: the pipelined ParallelExecutor facade and the
  // retained materializing baseline must agree on the multiset of
  // outputs (CountingSink count + per-worker content checks).
  SchemaPtr schema = TestSchema();
  auto factory = [](int) {
    OperatorChain chain;
    chain.push_back(AddOne());
    return chain;
  };

  VectorSource s1(schema, MakeTuples(schema, 333));
  VectorSink pipelined;
  ParallelExecutor exec(4);
  ASSERT_TRUE(exec.Run(&s1, factory, &pipelined).ok());

  VectorSource s2(schema, MakeTuples(schema, 333));
  VectorSink materialized;
  ASSERT_TRUE(exec.RunMaterializing(&s2, factory, &materialized).ok());

  ASSERT_EQ(pipelined.tuples().size(), materialized.tuples().size());
  double sum_a = 0.0, sum_b = 0.0;
  for (const Tuple& t : pipelined.tuples()) sum_a += t.value(1).AsDouble();
  for (const Tuple& t : materialized.tuples()) sum_b += t.value(1).AsDouble();
  EXPECT_DOUBLE_EQ(sum_a, sum_b);
}

}  // namespace
}  // namespace icewafl
