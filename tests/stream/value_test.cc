#include "stream/value.h"

#include <gtest/gtest.h>

namespace icewafl {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(Value::Null(), v);
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{5}).is_int64());
  EXPECT_TRUE(Value(5).is_int64());
  EXPECT_TRUE(Value(5.0).is_double());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value(std::string("s")).is_string());
}

TEST(ValueTest, IsNumeric) {
  EXPECT_TRUE(Value(1).is_numeric());
  EXPECT_TRUE(Value(1.0).is_numeric());
  EXPECT_FALSE(Value(true).is_numeric());
  EXPECT_FALSE(Value("1").is_numeric());
  EXPECT_FALSE(Value().is_numeric());
}

TEST(ValueTest, ToDoubleCoercions) {
  EXPECT_DOUBLE_EQ(Value(3).ToDouble().ValueOrDie(), 3.0);
  EXPECT_DOUBLE_EQ(Value(3.5).ToDouble().ValueOrDie(), 3.5);
  EXPECT_DOUBLE_EQ(Value(true).ToDouble().ValueOrDie(), 1.0);
  EXPECT_EQ(Value().ToDouble().status().code(), StatusCode::kTypeError);
  EXPECT_EQ(Value("x").ToDouble().status().code(), StatusCode::kTypeError);
}

TEST(ValueTest, ToInt64TruncatesDoubles) {
  EXPECT_EQ(Value(3.9).ToInt64().ValueOrDie(), 3);
  EXPECT_EQ(Value(-3.9).ToInt64().ValueOrDie(), -3);
  EXPECT_EQ(Value(7).ToInt64().ValueOrDie(), 7);
  EXPECT_FALSE(Value().ToInt64().ok());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value().ToString(), "");
  EXPECT_EQ(Value().ToString("NULL"), "NULL");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(1.5).ToString(), "1.5");
  EXPECT_EQ(Value("abc").ToString(), "abc");
}

TEST(ValueTest, StrictEqualityDistinguishesIntAndDouble) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_FALSE(Value(1) == Value(1.0));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_EQ(Value(), Value());
  EXPECT_FALSE(Value() == Value(0));
}

TEST(ValueTest, OrderingNullFirst) {
  EXPECT_TRUE(Value() < Value(0));
  EXPECT_TRUE(Value() < Value("a"));
  EXPECT_FALSE(Value(0) < Value());
  EXPECT_FALSE(Value() < Value());
}

TEST(ValueTest, CrossNumericOrdering) {
  EXPECT_TRUE(Value(1) < Value(1.5));
  EXPECT_TRUE(Value(1.5) < Value(2));
  EXPECT_FALSE(Value(2.0) < Value(2));
}

TEST(ValueTest, StringOrdering) {
  EXPECT_TRUE(Value("a") < Value("b"));
  EXPECT_FALSE(Value("b") < Value("a"));
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeName(ValueType::kNull), "null");
  EXPECT_STREQ(ValueTypeName(ValueType::kInt64), "int64");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
}

}  // namespace
}  // namespace icewafl
