#include "stream/channel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace icewafl {
namespace {

using IntChannel = BoundedChannel<int>;

TEST(ChannelTest, FifoOrder) {
  IntChannel ch(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ch.Push(i));
  ch.Close();
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ch.Pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ch.Pop(&v));
}

TEST(ChannelTest, CapacityIsClampedToOne) {
  IntChannel ch(0);
  EXPECT_EQ(ch.capacity(), 1u);
}

TEST(ChannelTest, PushBlocksWhenFullUntilPop) {
  IntChannel ch(2);
  EXPECT_TRUE(ch.Push(1));
  EXPECT_TRUE(ch.Push(2));
  EXPECT_EQ(ch.size(), 2u);

  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(ch.Push(3));  // blocks: channel full
    third_pushed.store(true);
  });

  // The producer must be parked on the full channel, not completing.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(ch.size(), 2u);

  int v = 0;
  ASSERT_TRUE(ch.Pop(&v));
  EXPECT_EQ(v, 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_GE(ch.stats().blocked_pushes, 1u);
}

TEST(ChannelTest, CloseWakesBlockedPushAndReturnsFalse) {
  IntChannel ch(1);
  EXPECT_TRUE(ch.Push(1));
  std::atomic<int> result{-1};
  std::thread producer([&] { result.store(ch.Push(2) ? 1 : 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(result.load(), -1);  // still blocked
  ch.Close();
  producer.join();
  EXPECT_EQ(result.load(), 0);  // push rejected, item dropped
  // The item queued before Close stays poppable.
  int v = 0;
  ASSERT_TRUE(ch.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(ch.Pop(&v));
}

TEST(ChannelTest, CloseWakesBlockedPopAndReturnsFalse) {
  IntChannel ch(4);
  std::atomic<int> result{-1};
  std::thread consumer([&] {
    int v = 0;
    result.store(ch.Pop(&v) ? 1 : 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(result.load(), -1);  // still blocked on empty channel
  ch.Close();
  consumer.join();
  EXPECT_EQ(result.load(), 0);
  EXPECT_GE(ch.stats().blocked_pops, 1u);
}

TEST(ChannelTest, PoisonDiscardsQueuedItems) {
  IntChannel ch(4);
  EXPECT_TRUE(ch.Push(1));
  EXPECT_TRUE(ch.Push(2));
  ch.Poison();
  int v = 0;
  EXPECT_FALSE(ch.Pop(&v));  // queue discarded, not drained
  EXPECT_FALSE(ch.Push(3));
  EXPECT_TRUE(ch.closed());
  EXPECT_EQ(ch.size(), 0u);
}

TEST(ChannelTest, PoisonWakesBlockedProducer) {
  IntChannel ch(1);
  EXPECT_TRUE(ch.Push(1));
  std::atomic<int> result{-1};
  std::thread producer([&] { result.store(ch.Push(2) ? 1 : 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ch.Poison();
  producer.join();
  EXPECT_EQ(result.load(), 0);
}

TEST(ChannelTest, FailedPushDoesNotCountAsBackpressure) {
  // Regression: a Push parked on a full channel whose wait ends because
  // of Close() used to increment blocked_pushes even though nothing was
  // enqueued — inflating the backpressure signal with aborts.
  IntChannel ch(1);
  EXPECT_TRUE(ch.Push(1));
  std::atomic<int> result{-1};
  std::thread producer([&] { result.store(ch.Push(2) ? 1 : 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(result.load(), -1);  // parked on the full channel
  ch.Close();
  producer.join();
  EXPECT_EQ(result.load(), 0);
  EXPECT_EQ(ch.stats().blocked_pushes, 0u);
  EXPECT_EQ(ch.stats().pushes, 1u);
}

TEST(ChannelTest, SuccessfulPushAfterWaitStillCounts) {
  // The complement: a wait that ends with the item actually enqueued is
  // real backpressure and must be counted.
  IntChannel ch(1);
  EXPECT_TRUE(ch.Push(1));
  std::thread producer([&] { EXPECT_TRUE(ch.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  int v = 0;
  ASSERT_TRUE(ch.Pop(&v));
  producer.join();
  EXPECT_GE(ch.stats().blocked_pushes, 1u);
  EXPECT_EQ(ch.stats().pushes, 2u);
}

TEST(ChannelTest, TryPushOutcomesAreCountedByReason) {
  // Regression: rejected TryPush calls were invisible in ChannelStats,
  // so a fanout queue that dropped frames reconciled against nothing.
  // Every kFull and kClosed outcome must land in its own counter.
  IntChannel ch(2);
  EXPECT_EQ(ch.TryPush(1), IntChannel::PushResult::kOk);
  EXPECT_EQ(ch.TryPush(2), IntChannel::PushResult::kOk);
  EXPECT_EQ(ch.TryPush(3), IntChannel::PushResult::kFull);
  EXPECT_EQ(ch.TryPush(4), IntChannel::PushResult::kFull);
  int v = 0;
  ASSERT_TRUE(ch.Pop(&v));
  EXPECT_EQ(ch.TryPush(5), IntChannel::PushResult::kOk);
  ch.Close();
  EXPECT_EQ(ch.TryPush(6), IntChannel::PushResult::kClosed);
  const ChannelStats stats = ch.stats();
  EXPECT_EQ(stats.pushes, 3u);  // only accepted items count as pushes
  EXPECT_EQ(stats.try_push_full, 2u);
  EXPECT_EQ(stats.try_push_closed, 1u);
  EXPECT_EQ(stats.blocked_pushes, 0u);  // TryPush never parks
}

TEST(ChannelTest, StatsAddSumsTryPushCounters) {
  ChannelStats a;
  a.pushes = 3;
  a.try_push_full = 2;
  a.try_push_closed = 1;
  a.peak_queued = 4;
  ChannelStats b;
  b.pushes = 5;
  b.try_push_full = 7;
  b.try_push_closed = 9;
  b.peak_queued = 2;
  a.Add(b);
  EXPECT_EQ(a.pushes, 8u);
  EXPECT_EQ(a.try_push_full, 9u);
  EXPECT_EQ(a.try_push_closed, 10u);
  EXPECT_EQ(a.peak_queued, 4u);  // max, not sum
}

TEST(ChannelTest, StatsCountTraffic) {
  IntChannel ch(8);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(ch.Push(i));
  int v = 0;
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ch.Pop(&v));
  ChannelStats stats = ch.stats();
  EXPECT_EQ(stats.pushes, 6u);
  EXPECT_EQ(stats.pops, 4u);
  EXPECT_EQ(stats.peak_queued, 6u);
  EXPECT_EQ(stats.blocked_pushes, 0u);
  EXPECT_EQ(stats.blocked_pops, 0u);
}

TEST(ChannelTest, ManyProducersOneConsumer) {
  IntChannel ch(3);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ch.Push(p * kPerProducer + i));
      }
    });
  }
  int64_t sum = 0;
  uint64_t count = 0;
  std::thread consumer([&] {
    int v = 0;
    while (ch.Pop(&v)) {
      sum += v;
      ++count;
    }
  });
  for (std::thread& t : producers) t.join();
  ch.Close();
  consumer.join();
  const int64_t n = kProducers * kPerProducer;
  EXPECT_EQ(count, static_cast<uint64_t>(n));
  EXPECT_EQ(sum, n * (n - 1) / 2);
  EXPECT_EQ(ch.stats().pushes, static_cast<uint64_t>(n));
  EXPECT_LE(ch.stats().peak_queued, 3u);
}

TEST(ChannelTest, MpmcStressWithMidStreamPoison) {
  // Many producers and consumers hammer a tiny channel while a third
  // party poisons it mid-stream. The test must terminate (no deadlock:
  // every blocked producer and consumer is woken) and the books must
  // balance: every pop observed by a consumer corresponds to a push
  // acknowledged by a producer, and the channel's own counters agree.
  // Run under the tsan preset to verify race-freedom.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  IntChannel ch(2);
  std::atomic<uint64_t> pushed{0};
  std::atomic<uint64_t> popped{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (!ch.Push(i)) return;  // poisoned: stop producing
        pushed.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int v = 0;
      while (ch.Pop(&v)) popped.fetch_add(1);
    });
  }
  // Let traffic flow, then poison while producers and consumers are
  // mid-flight (some of them parked on the full/empty channel).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.Poison();
  for (std::thread& t : producers) t.join();
  for (std::thread& t : consumers) t.join();

  const ChannelStats stats = ch.stats();
  EXPECT_EQ(stats.pushes, pushed.load());
  EXPECT_EQ(stats.pops, popped.load());
  // Poison discards queued items, so pops never exceed pushes, and the
  // gap is exactly what was queued at poison time (at most capacity).
  EXPECT_LE(popped.load(), pushed.load());
  EXPECT_LE(pushed.load() - popped.load(), ch.capacity());
  EXPECT_TRUE(ch.closed());
}

TEST(ChannelTest, BatchChannelMovesBatches) {
  BatchChannel ch(2);
  TupleVector batch;
  batch.resize(3);
  EXPECT_TRUE(ch.Push(std::move(batch)));
  TupleVector out;
  ASSERT_TRUE(ch.Pop(&out));
  EXPECT_EQ(out.size(), 3u);
}

}  // namespace
}  // namespace icewafl
