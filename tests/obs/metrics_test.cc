#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace icewafl {
namespace obs {
namespace {

TEST(CounterTest, IncrementAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddSetMax) {
  Gauge g;
  g.Set(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.Add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.SetMax(5.0);  // lower than current: no change
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.SetMax(12.0);
  EXPECT_DOUBLE_EQ(g.value(), 12.0);
}

TEST(HistogramTest, BucketCountsAndSum) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(50.0);
  h.Observe(500.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  const std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(HistogramTest, BoundaryValueLandsInItsBucket) {
  // Prometheus buckets are `le` (inclusive upper bound).
  Histogram h({1.0, 2.0});
  h.Observe(1.0);
  EXPECT_EQ(h.BucketCounts()[0], 1u);
}

TEST(HistogramTest, QuantileInterpolatesAndClamps) {
  Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h.Observe(1.5);  // all in (1, 2]
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  // Empty histogram reports 0.
  Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.Quantile(0.99), 0.0);
  // Overflow observations clamp to the largest finite bound.
  Histogram overflow({1.0, 2.0});
  overflow.Observe(100.0);
  EXPECT_DOUBLE_EQ(overflow.Quantile(0.99), 2.0);
}

TEST(ExponentialBoundsTest, CoversRange) {
  const std::vector<double> bounds = ExponentialBounds(1.0, 8.0, 2.0);
  ASSERT_GE(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1.0);
  EXPECT_GE(bounds.back(), 8.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

TEST(MetricRegistryTest, SameNameAndLabelsShareOneSeries) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("icewafl_test_total", {{"k", "v"}});
  // Label order must not matter.
  Counter* b = registry.GetCounter("icewafl_test_total",
                                   {{"k", "v"}});
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  Counter* other = registry.GetCounter("icewafl_test_total", {{"k", "w"}});
  EXPECT_NE(a, other);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricRegistryTest, LabelOrderDoesNotSplitSeries) {
  MetricRegistry registry;
  Counter* a =
      registry.GetCounter("icewafl_test_total", {{"a", "1"}, {"b", "2"}});
  Counter* b =
      registry.GetCounter("icewafl_test_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(MetricRegistryTest, TypeConflictReturnsNull) {
  MetricRegistry registry;
  ASSERT_NE(registry.GetCounter("icewafl_conflict"), nullptr);
  EXPECT_EQ(registry.GetGauge("icewafl_conflict"), nullptr);
  EXPECT_EQ(registry.GetHistogram("icewafl_conflict", {}, {1.0}), nullptr);
}

TEST(MetricRegistryTest, InvalidNameReturnsNull) {
  MetricRegistry registry;
  EXPECT_EQ(registry.GetCounter("0starts_with_digit"), nullptr);
  EXPECT_EQ(registry.GetCounter("has space"), nullptr);
  EXPECT_EQ(registry.GetCounter(""), nullptr);
  EXPECT_NE(registry.GetCounter("ok_name:with_colon"), nullptr);
}

TEST(MetricRegistryTest, PrometheusTextFormat) {
  MetricRegistry registry;
  registry.GetCounter("icewafl_events_total", {{"stage", "source"}},
                      "Events seen")->Increment(3);
  registry.GetGauge("icewafl_depth")->Set(2.5);
  Histogram* h =
      registry.GetHistogram("icewafl_latency_seconds", {}, {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(5.0);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# HELP icewafl_events_total Events seen"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE icewafl_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("icewafl_events_total{stage=\"source\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE icewafl_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE icewafl_latency_seconds histogram"),
            std::string::npos);
  // Cumulative buckets: le="1" holds the le="0.1" observation too.
  EXPECT_NE(text.find("icewafl_latency_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("icewafl_latency_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("icewafl_latency_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("icewafl_latency_seconds_count 2"), std::string::npos);
}

TEST(MetricRegistryTest, LabelValuesAreEscaped) {
  MetricRegistry registry;
  registry.GetCounter("icewafl_esc_total",
                      {{"path", "a\"b\\c\nd"}})->Increment();
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(MetricRegistryTest, ConcurrentRegistrationIsSafe) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        Counter* c = registry.GetCounter("icewafl_shared_total",
                                         {{"worker", "all"}});
        ASSERT_NE(c, nullptr);
        c->Increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  Counter* c = registry.GetCounter("icewafl_shared_total", {{"worker", "all"}});
  EXPECT_EQ(c->value(), 8000u);
}

// Regression: lazy value creation used to happen after GetSeries released
// the registry mutex, so two threads registering the same cold series
// could each construct the object and one increment could land on a
// Counter the other thread had just destroyed. All threads start behind
// a gate so the very first Get* calls collide.
TEST(MetricRegistryTest, ConcurrentFirstRegistrationSharesOneHandle) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<Counter*> counters(kThreads, nullptr);
  std::vector<Gauge*> gauges(kThreads, nullptr);
  std::vector<Histogram*> histograms(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load()) {
      }
      counters[t] = registry.GetCounter("icewafl_cold_total",
                                        {{"worker", "all"}});
      ASSERT_NE(counters[t], nullptr);
      counters[t]->Increment();
      gauges[t] = registry.GetGauge("icewafl_cold_gauge");
      ASSERT_NE(gauges[t], nullptr);
      histograms[t] =
          registry.GetHistogram("icewafl_cold_seconds", {}, {1.0, 2.0});
      ASSERT_NE(histograms[t], nullptr);
      histograms[t]->Observe(1.5);
    });
  }
  while (ready.load() < kThreads) {
  }
  go.store(true);
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(counters[t], counters[0]);
    EXPECT_EQ(gauges[t], gauges[0]);
    EXPECT_EQ(histograms[t], histograms[0]);
  }
  EXPECT_EQ(counters[0]->value(), static_cast<uint64_t>(kThreads));
  EXPECT_EQ(histograms[0]->count(), static_cast<uint64_t>(kThreads));
}

}  // namespace
}  // namespace obs
}  // namespace icewafl
