#include "obs/trace.h"

#include <gtest/gtest.h>

#include "util/json.h"

namespace icewafl {
namespace obs {
namespace {

TEST(TraceRecorderTest, RecordsCompleteAndInstantEvents) {
  TraceRecorder recorder;
  recorder.RecordComplete("span", "stage", /*tid=*/2, /*start_us=*/10,
                          /*duration_us=*/5);
  recorder.RecordInstant("marker", "runtime", /*tid=*/0);
  ASSERT_EQ(recorder.size(), 2u);
  const std::vector<TraceEvent> events = recorder.Events();
  EXPECT_EQ(events[0].name, "span");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[0].tid, 2);
  EXPECT_EQ(events[0].ts_us, 10);
  EXPECT_EQ(events[0].dur_us, 5);
  EXPECT_EQ(events[1].phase, 'i');
}

TEST(TraceRecorderTest, ChromeJsonRoundTrips) {
  TraceRecorder recorder;
  recorder.RecordComplete("pipeline_run", "runtime", 0, 0, 100);
  recorder.RecordInstant("poisoned", "channel", 1);
  auto parsed = Json::Parse(recorder.ToChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& root = parsed.ValueOrDie();
  auto events = root.Get("traceEvents");
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events.ValueOrDie().items().size(), 2u);
  const Json& complete = events.ValueOrDie().items()[0];
  EXPECT_EQ(complete.GetString("name", ""), "pipeline_run");
  EXPECT_EQ(complete.GetString("ph", ""), "X");
  EXPECT_EQ(complete.GetInt("dur", -1), 100);
  const Json& instant = events.ValueOrDie().items()[1];
  EXPECT_EQ(instant.GetString("ph", ""), "i");
  // Instant events need a scope for Chrome to render them.
  EXPECT_TRUE(instant.Has("s"));
}

TEST(TraceRecorderTest, NowMicrosIsMonotonic) {
  TraceRecorder recorder;
  const int64_t a = recorder.NowMicros();
  const int64_t b = recorder.NowMicros();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST(ScopedSpanTest, RecordsOnDestruction) {
  TraceRecorder recorder;
  {
    ScopedSpan span(&recorder, "work", "stage", 3);
    EXPECT_EQ(recorder.size(), 0u);  // nothing until the span closes
  }
  ASSERT_EQ(recorder.size(), 1u);
  const TraceEvent event = recorder.Events()[0];
  EXPECT_EQ(event.name, "work");
  EXPECT_EQ(event.category, "stage");
  EXPECT_EQ(event.tid, 3);
  EXPECT_GE(event.dur_us, 0);
}

TEST(ScopedSpanTest, NullRecorderIsNoop) {
  // The disabled-observability contract: a null recorder must be safe.
  ScopedSpan span(nullptr, "work", "stage", 0);
}

}  // namespace
}  // namespace obs
}  // namespace icewafl
