// Concurrency stress for the multi-tenant serving core, meant to run
// under the tsan preset (tools/check.sh tsan). Churn threads hammer
// AddSession/StopSession against the registry while subscriber threads
// tail a steady session end to end — the exact interleaving the lock
// hierarchy (registry -> session -> connection, DESIGN.md §12) exists
// to keep coherent. The lockdep-lite rank checks run for the whole
// test with the default abort-on-violation handler, so an ordering
// regression kills the test even without tsan.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/plan.h"
#include "net/client.h"
#include "net/server.h"
#include "scenarios/scenarios.h"
#include "stream/schema.h"
#include "stream/sink.h"
#include "stream/tuple.h"
#include "util/sync.h"

namespace icewafl {
namespace net {
namespace {

SchemaPtr MakeSchema() {
  auto schema = Schema::Make(
      {{"ts", ValueType::kInt64}, {"load", ValueType::kDouble}}, "ts");
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return schema.ValueOrDie();
}

/// A synthetic pollution run: `count` deterministic tuples, no scenario
/// machinery, so a run is milliseconds and the churn loops get hundreds
/// of registry transitions per second.
PollutionServer::SessionFn MakeCountingSession(SchemaPtr schema, int count) {
  return [schema, count](const PlanContext&, Sink* sink) -> Status {
    for (int i = 0; i < count; ++i) {
      Tuple tuple(schema, {Value(static_cast<int64_t>(i)),
                           Value(static_cast<double>(i) * 0.5)});
      tuple.set_id(static_cast<TupleId>(i));
      ICEWAFL_RETURN_NOT_OK(sink->Write(std::move(tuple)));
    }
    return sink->Flush();
  };
}

/// Tails one full run of `session_id`; returns tuples received (0 on
/// connect/stream error, which is fine mid-churn).
uint64_t TailOnce(uint16_t port, const std::string& session_id) {
  auto client = StreamClient::Connect("127.0.0.1", port, session_id);
  if (!client.ok()) return 0;
  StreamClient& stream = *client.ValueOrDie();
  Tuple tuple;
  while (true) {
    auto next = stream.Next(&tuple);
    if (!next.ok() || !next.ValueOrDie()) break;
  }
  return stream.tuples_received();
}

TEST(PollutionServerStress, SessionChurnAgainstActiveSubscribers) {
  // Rank checks on for the duration: any registry/session/connection
  // acquisition out of order aborts via the default handler.
  const bool checks_were_enabled = EnableLockRankChecks(true);

  constexpr int kTuplesPerRun = 300;
  constexpr int kChurnThreads = 3;
  constexpr int kChurnIterations = 25;
  constexpr int kSubscriberThreads = 4;
  constexpr int kTailsPerSubscriber = 6;

  SchemaPtr schema = MakeSchema();
  ServerOptions options;
  options.workers = 3;
  PollutionServer server(options);
  // The steady tenant: unlimited runs, one subscriber triggers a run.
  ASSERT_TRUE(server
                  .AddSession("steady", schema,
                              MakeCountingSession(schema, kTuplesPerRun),
                              {.min_subscribers = 1, .max_runs = 0})
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  // Churners: register a uniquely named session, stop it, repeat. Half
  // the stops race a freshly queued run; the other half hit sessions
  // still waiting. Stopping a name twice and stopping a never-added
  // name exercise the NotFound/already-retired paths.
  std::atomic<int> churned{0};
  std::vector<std::thread> churners;
  for (int t = 0; t < kChurnThreads; ++t) {
    churners.emplace_back([&, t] {
      for (int i = 0; i < kChurnIterations; ++i) {
        const std::string name =
            "churn-" + std::to_string(t) + "-" + std::to_string(i);
        Status added = server.AddSession(
            name, schema, MakeCountingSession(schema, kTuplesPerRun),
            {.min_subscribers = 1, .max_runs = 1});
        if (!added.ok()) continue;  // only legal failure: shutdown race
        if (i % 2 == 0) TailOnce(port, name);
        EXPECT_TRUE(server.StopSession(name).ok());
        EXPECT_TRUE(server.StopSession(name).ok());  // idempotent
        EXPECT_FALSE(server.StopSession(name + "-never-added").ok());
        ++churned;
      }
    });
  }

  // Subscribers: tail the steady session to completion, repeatedly,
  // concurrently with the churn.
  std::atomic<uint64_t> tuples_tailed{0};
  std::vector<std::thread> subscribers;
  for (int t = 0; t < kSubscriberThreads; ++t) {
    subscribers.emplace_back([&] {
      for (int i = 0; i < kTailsPerSubscriber; ++i) {
        tuples_tailed += TailOnce(port, "steady");
      }
    });
  }

  for (std::thread& t : churners) t.join();
  for (std::thread& t : subscribers) t.join();

  server.RequestStop();
  ASSERT_TRUE(server.Wait().ok());

  EXPECT_EQ(churned, kChurnThreads * kChurnIterations);
  // Every steady tail that connected before the stop saw complete runs.
  EXPECT_EQ(tuples_tailed % kTuplesPerRun, 0u);
  EXPECT_GT(tuples_tailed, 0u);
  EXPECT_GE(server.runs_completed(), 1u);

  EnableLockRankChecks(checks_were_enabled);
}

// Hot-reconfiguration churn: SwapPlan and UpdateSession hammer a
// plan-driven session while subscribers tail it end to end and churn
// threads add/stop ephemeral plan sessions. Every subscriber must see
// complete segment-concatenated runs — a swap lands at a tuple boundary
// or not at all — and the published version must account for exactly
// the successful swaps. Runs under the asan/tsan presets via
// tools/check.sh.
TEST(PollutionServerStress, PlanSwapChurnAgainstSubscribers) {
  const bool checks_were_enabled = EnableLockRankChecks(true);

  constexpr int kSwapThreads = 2;
  constexpr int kSwapsPerThread = 15;
  constexpr int kSubscriberThreads = 3;
  constexpr int kTailsPerSubscriber = 5;
  constexpr int kChurnIterations = 10;

  auto base_a = scenarios::BuildScenarioPlan("random_temporal", 42, 1);
  auto base_b = scenarios::BuildScenarioPlan("software_update", 42, 1);
  ASSERT_TRUE(base_a.ok()) << base_a.status().ToString();
  ASSERT_TRUE(base_b.ok()) << base_b.status().ToString();

  ServerOptions options;
  options.workers = 3;
  PollutionServer server(options);
  SessionOptions live;
  live.plan = base_a.ValueOrDie();
  live.min_subscribers = 1;
  live.max_runs = 0;
  ASSERT_TRUE(server
                  .AddSession("plan-live", nullptr,
                              scenarios::ServePlanToSink, std::move(live))
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  // Swappers: alternate between clones of the two base plans, with an
  // UpdateSession rate tweak sprinkled in. Clones start unpublished, so
  // every publish is a fresh version.
  std::atomic<int> swaps{0};
  std::vector<std::thread> swappers;
  for (int t = 0; t < kSwapThreads; ++t) {
    swappers.emplace_back([&, t] {
      for (int i = 0; i < kSwapsPerThread; ++i) {
        Status swapped;
        if (i % 3 == 2) {
          // Keep the republished rate far above the stream size so a
          // paced segment still drains in well under a second.
          swapped = server.UpdateSession(
              "plan-live", [i](PlanSnapshot* plan) {
                plan->tuples_per_sec = 100000.0 + static_cast<double>(i);
              });
        } else {
          const PlanSnapshot& base = (t + i) % 2 == 0
                                         ? *base_a.ValueOrDie()
                                         : *base_b.ValueOrDie();
          swapped = server.SwapPlan("plan-live", ClonePlan(base));
        }
        EXPECT_TRUE(swapped.ok()) << swapped.ToString();
        if (swapped.ok()) ++swaps;
      }
    });
  }

  // Subscribers: tail plan-live to completion, repeatedly, while the
  // plan underneath them is being republished.
  std::atomic<uint64_t> tuples_tailed{0};
  std::vector<std::thread> subscribers;
  for (int t = 0; t < kSubscriberThreads; ++t) {
    subscribers.emplace_back([&] {
      for (int i = 0; i < kTailsPerSubscriber; ++i) {
        tuples_tailed += TailOnce(port, "plan-live");
      }
    });
  }

  // Churn: ephemeral plan-driven tenants registered and stopped while
  // the swaps and tails are in flight, to drive the registry and the
  // plan control plane through the same lock hierarchy concurrently.
  std::thread churner([&] {
    for (int i = 0; i < kChurnIterations; ++i) {
      const std::string name = "plan-churn-" + std::to_string(i);
      SessionOptions ephemeral;
      ephemeral.plan = ClonePlan(*base_b.ValueOrDie());
      ephemeral.min_subscribers = 1;
      ephemeral.max_runs = 1;
      Status added = server.AddSession(name, nullptr,
                                       scenarios::ServePlanToSink,
                                       std::move(ephemeral));
      if (!added.ok()) continue;
      if (i % 2 == 0) TailOnce(port, name);
      EXPECT_TRUE(server.StopSession(name).ok());
      // Racing a publish against the retirement may land on either
      // side; either way it must return cleanly, never corrupt state.
      // (The deterministic "swap into retired fails" case is locked in
      // plan_swap_test.)
      (void)server.SwapPlan(name, ClonePlan(*base_a.ValueOrDie()));
    }
  });

  for (std::thread& t : swappers) t.join();
  for (std::thread& t : subscribers) t.join();
  churner.join();

  auto info = server.session_info("plan-live");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.ValueOrDie().plan_swaps,
            static_cast<uint64_t>(swaps.load()));
  EXPECT_EQ(info.ValueOrDie().plan_version,
            static_cast<uint64_t>(1 + swaps.load()));
  EXPECT_GT(tuples_tailed, 0u);

  server.RequestStop();
  ASSERT_TRUE(server.Wait().ok());

  EnableLockRankChecks(checks_were_enabled);
}

}  // namespace
}  // namespace net
}  // namespace icewafl
