// Concurrency stress for the multi-tenant serving core, meant to run
// under the tsan preset (tools/check.sh tsan). Churn threads hammer
// AddSession/StopSession against the registry while subscriber threads
// tail a steady session end to end — the exact interleaving the lock
// hierarchy (registry -> session -> connection, DESIGN.md §12) exists
// to keep coherent. The lockdep-lite rank checks run for the whole
// test with the default abort-on-violation handler, so an ordering
// regression kills the test even without tsan.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "stream/schema.h"
#include "stream/sink.h"
#include "stream/tuple.h"
#include "util/sync.h"

namespace icewafl {
namespace net {
namespace {

SchemaPtr MakeSchema() {
  auto schema = Schema::Make(
      {{"ts", ValueType::kInt64}, {"load", ValueType::kDouble}}, "ts");
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return schema.ValueOrDie();
}

/// A synthetic pollution run: `count` deterministic tuples, no scenario
/// machinery, so a run is milliseconds and the churn loops get hundreds
/// of registry transitions per second.
PollutionServer::SessionFn MakeCountingSession(SchemaPtr schema, int count) {
  return [schema, count](Sink* sink) -> Status {
    for (int i = 0; i < count; ++i) {
      Tuple tuple(schema, {Value(static_cast<int64_t>(i)),
                           Value(static_cast<double>(i) * 0.5)});
      tuple.set_id(static_cast<TupleId>(i));
      ICEWAFL_RETURN_NOT_OK(sink->Write(std::move(tuple)));
    }
    return sink->Flush();
  };
}

/// Tails one full run of `session_id`; returns tuples received (0 on
/// connect/stream error, which is fine mid-churn).
uint64_t TailOnce(uint16_t port, const std::string& session_id) {
  auto client = StreamClient::Connect("127.0.0.1", port, session_id);
  if (!client.ok()) return 0;
  StreamClient& stream = *client.ValueOrDie();
  Tuple tuple;
  while (true) {
    auto next = stream.Next(&tuple);
    if (!next.ok() || !next.ValueOrDie()) break;
  }
  return stream.tuples_received();
}

TEST(PollutionServerStress, SessionChurnAgainstActiveSubscribers) {
  // Rank checks on for the duration: any registry/session/connection
  // acquisition out of order aborts via the default handler.
  const bool checks_were_enabled = EnableLockRankChecks(true);

  constexpr int kTuplesPerRun = 300;
  constexpr int kChurnThreads = 3;
  constexpr int kChurnIterations = 25;
  constexpr int kSubscriberThreads = 4;
  constexpr int kTailsPerSubscriber = 6;

  SchemaPtr schema = MakeSchema();
  ServerOptions options;
  options.workers = 3;
  PollutionServer server(options);
  // The steady tenant: unlimited runs, one subscriber triggers a run.
  ASSERT_TRUE(server
                  .AddSession("steady", schema,
                              MakeCountingSession(schema, kTuplesPerRun),
                              {.min_subscribers = 1, .max_runs = 0})
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  // Churners: register a uniquely named session, stop it, repeat. Half
  // the stops race a freshly queued run; the other half hit sessions
  // still waiting. Stopping a name twice and stopping a never-added
  // name exercise the NotFound/already-retired paths.
  std::atomic<int> churned{0};
  std::vector<std::thread> churners;
  for (int t = 0; t < kChurnThreads; ++t) {
    churners.emplace_back([&, t] {
      for (int i = 0; i < kChurnIterations; ++i) {
        const std::string name =
            "churn-" + std::to_string(t) + "-" + std::to_string(i);
        Status added = server.AddSession(
            name, schema, MakeCountingSession(schema, kTuplesPerRun),
            {.min_subscribers = 1, .max_runs = 1});
        if (!added.ok()) continue;  // only legal failure: shutdown race
        if (i % 2 == 0) TailOnce(port, name);
        EXPECT_TRUE(server.StopSession(name).ok());
        EXPECT_TRUE(server.StopSession(name).ok());  // idempotent
        EXPECT_FALSE(server.StopSession(name + "-never-added").ok());
        ++churned;
      }
    });
  }

  // Subscribers: tail the steady session to completion, repeatedly,
  // concurrently with the churn.
  std::atomic<uint64_t> tuples_tailed{0};
  std::vector<std::thread> subscribers;
  for (int t = 0; t < kSubscriberThreads; ++t) {
    subscribers.emplace_back([&] {
      for (int i = 0; i < kTailsPerSubscriber; ++i) {
        tuples_tailed += TailOnce(port, "steady");
      }
    });
  }

  for (std::thread& t : churners) t.join();
  for (std::thread& t : subscribers) t.join();

  server.RequestStop();
  ASSERT_TRUE(server.Wait().ok());

  EXPECT_EQ(churned, kChurnThreads * kChurnIterations);
  // Every steady tail that connected before the stop saw complete runs.
  EXPECT_EQ(tuples_tailed % kTuplesPerRun, 0u);
  EXPECT_GT(tuples_tailed, 0u);
  EXPECT_GE(server.runs_completed(), 1u);

  EnableLockRankChecks(checks_were_enabled);
}

}  // namespace
}  // namespace net
}  // namespace icewafl
