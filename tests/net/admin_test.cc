// Admin control-plane tests: the JSON-RPC-style channel over
// AdminRequest/AdminResponse frames, its lint gate (IW61x envelopes,
// IW1xx..IW4xx swapped pipelines), and the live mutations it drives.

#include "net/admin.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "analysis/analyzer.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "scenarios/closed_loop.h"
#include "scenarios/scenarios.h"
#include "util/json.h"

namespace icewafl {
namespace net {
namespace {

std::shared_ptr<PlanSnapshot> ScenarioPlan(const std::string& name) {
  auto plan = scenarios::BuildScenarioPlan(name, 42, /*parallelism=*/1);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.ok() ? plan.ValueOrDie() : nullptr;
}

/// The same mutation hooks `icewafl_cli serve` installs: compile through
/// the scenarios layer, lint pipeline documents against the session's
/// schema first.
AdminHooks TestHooks(PollutionServer* server) {
  AdminHooks hooks;
  hooks.known_scenarios = scenarios::ScenarioNames();
  hooks.compile_swap = [](const PlanSnapshot& current, const Json& params,
                          Json* diagnostics)
      -> Result<std::shared_ptr<PlanSnapshot>> {
    if (params.Has("scenario")) {
      return scenarios::BuildScenarioPlan(params.GetString("scenario", ""),
                                          current.seed, current.parallelism,
                                          current.tuples_per_sec);
    }
    auto doc = params.Get("pipeline");
    if (!doc.ok()) return doc.status();
    analysis::AnalyzeOptions options;
    options.schema = current.schema;
    Diagnostics diags =
        analysis::AnalyzePipeline(doc.ValueOrDie(), options);
    if (diags.HasErrors()) {
      *diagnostics = diags.ToJson();
      return Status::InvalidArgument(diags.ToReport());
    }
    return scenarios::BuildPlanFromPipelineJson(current, doc.ValueOrDie());
  };
  hooks.compile_cleaner = [](const PlanSnapshot& current, const Json& params,
                             Json* diagnostics)
      -> Result<std::shared_ptr<PlanSnapshot>> {
    Json rules;
    if (params.Has("rules")) rules = params.Get("rules").ValueOrDie();
    if (!rules.is_null()) {
      analysis::CleanerAnalyzeOptions options;
      options.schema = current.schema;
      Diagnostics diags = analysis::AnalyzeCleanerRules(rules, options);
      if (diags.HasErrors()) {
        *diagnostics = diags.ToJson();
        return Status::InvalidArgument(diags.ToReport());
      }
    }
    return scenarios::BuildPlanWithCleaner(current, rules);
  };
  hooks.create_session = [server](const Json& params, Json*) -> Status {
    auto entry = params.Get("session");
    if (!entry.ok()) return entry.status();
    auto plan = scenarios::BuildScenarioPlan(
        entry.ValueOrDie().GetString("scenario", ""), 42, 1);
    if (!plan.ok()) return plan.status();
    SessionOptions options;
    options.plan = std::move(plan).ValueOrDie();
    return server->AddSession(entry.ValueOrDie().GetString("name", ""),
                              nullptr, scenarios::ServePlanToSink,
                              std::move(options));
  };
  return hooks;
}

Json Request(const std::string& method, Json params) {
  Json request = Json::MakeObject();
  request.Set("id", Json(static_cast<int64_t>(1)));
  request.Set("method", Json(method));
  request.Set("params", std::move(params));
  return request;
}

std::string ErrorCode(const Json& response) {
  if (!response.Has("error")) return "";
  return response.Get("error").ValueOrDie().GetString("code", "");
}

// ---------------------------------------------------------------------
// The in-process lint gate (no sockets).
// ---------------------------------------------------------------------

TEST(AdminServerTest, HandleRejectsMalformedEnvelopes) {
  PollutionServer server;
  AdminServer admin(&server, nullptr);

  // Not an object at all.
  Json bad_envelope = Json(42.0);
  EXPECT_EQ(ErrorCode(admin.Handle(bad_envelope)), "IW610");

  // Missing method.
  EXPECT_EQ(ErrorCode(admin.Handle(Json::MakeObject())), "IW610");

  // Unknown method, with the vocabulary in the diagnostics hint.
  Json response = admin.Handle(Request("frobnicate", Json::MakeObject()));
  EXPECT_EQ(ErrorCode(response), "IW611");
  ASSERT_TRUE(response.Get("error").ValueOrDie().Has("diagnostics"));

  // swap_pipeline with neither payload form.
  EXPECT_EQ(
      ErrorCode(admin.Handle(Request(
          "swap_pipeline",
          Json::Parse(R"({"session": "s"})").ValueOrDie()))),
      "IW613");

  // set_rate with a negative rate.
  EXPECT_EQ(
      ErrorCode(admin.Handle(Request(
          "set_rate",
          Json::Parse(R"({"session": "s", "tuples_per_sec": -1})")
              .ValueOrDie()))),
      "IW614");

  // Missing session target.
  EXPECT_EQ(ErrorCode(admin.Handle(Request("stop_session", Json::MakeObject()))),
            "IW612");
  server.RequestStop();
}

TEST(AdminServerTest, HandleEchoesTheRequestId) {
  PollutionServer server;
  AdminServer admin(&server, nullptr);
  Json request = Request("list_sessions", Json::MakeObject());
  request.Set("id", Json(std::string("my-id")));
  Json response = admin.Handle(request);
  EXPECT_EQ(response.GetString("id", ""), "my-id");
  EXPECT_TRUE(response.Has("result"));
  server.RequestStop();
}

// ---------------------------------------------------------------------
// The wire: AdminClient against a live endpoint.
// ---------------------------------------------------------------------

class AdminWireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    plan_ = ScenarioPlan("random_temporal");
    ASSERT_NE(plan_, nullptr);
    ServerOptions server_options;
    server_options.metrics = &registry_;
    server_ = std::make_unique<PollutionServer>(std::move(server_options));
    SessionOptions options;
    options.plan = plan_;
    ASSERT_TRUE(server_
                    ->AddSession("live", nullptr,
                                 scenarios::ServePlanToSink,
                                 std::move(options))
                    .ok());
    admin_ = std::make_unique<AdminServer>(server_.get(), &registry_,
                                           AdminOptions{},
                                           TestHooks(server_.get()));
    ASSERT_TRUE(admin_->Start().ok());
    auto client = AdminClient::Connect("127.0.0.1", admin_->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    client_ = std::move(client).ValueOrDie();
  }

  void TearDown() override {
    admin_->Stop();
    server_->RequestStop();
  }

  Json Call(const std::string& method, const std::string& params_json) {
    auto response = client_->Call(
        method, Json::Parse(params_json).ValueOrDie());
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? response.ValueOrDie() : Json();
  }

  std::shared_ptr<PlanSnapshot> plan_;
  obs::MetricRegistry registry_;
  std::unique_ptr<PollutionServer> server_;
  std::unique_ptr<AdminServer> admin_;
  std::unique_ptr<AdminClient> client_;
};

TEST_F(AdminWireTest, ListSessionsAndGetConfig) {
  Json listed = Call("list_sessions", "{}");
  ASSERT_TRUE(listed.Has("result"));
  const Json sessions =
      listed.Get("result").ValueOrDie().Get("sessions").ValueOrDie();
  ASSERT_EQ(sessions.items().size(), 1u);
  EXPECT_EQ(sessions.items()[0].GetString("id", ""), "live");
  EXPECT_EQ(sessions.items()[0].GetInt("plan_version", 0), 1);

  Json config = Call("get_config", R"({"session": "live"})");
  ASSERT_TRUE(config.Has("result"));
  const Json result = config.Get("result").ValueOrDie();
  EXPECT_EQ(result.GetString("scenario", ""), "random_temporal");
  EXPECT_EQ(result.GetInt("plan_version", 0), 1);
  EXPECT_TRUE(result.Get("pipeline").ValueOrDie().is_object());

  // Unknown session: a NotFound error response, not a dead connection.
  auto missing = client_->Call(
      "get_config", Json::Parse(R"({"session": "nope"})").ValueOrDie());
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(ErrorCode(missing.ValueOrDie()), "NotFound");
}

TEST_F(AdminWireTest, SwapSetRateAndMetrics) {
  Json swapped =
      Call("swap_pipeline", R"({"session": "live",
                                "scenario": "software_update"})");
  ASSERT_TRUE(swapped.Has("result")) << swapped.Dump();
  EXPECT_EQ(swapped.Get("result").ValueOrDie().GetInt("plan_version", 0), 2);

  Json paced =
      Call("set_rate", R"({"session": "live", "tuples_per_sec": 500})");
  ASSERT_TRUE(paced.Has("result")) << paced.Dump();
  EXPECT_EQ(paced.Get("result").ValueOrDie().GetInt("plan_version", 0), 3);
  auto published = server_->session_plan("live");
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(published.ValueOrDie()->tuples_per_sec, 500.0);
  EXPECT_EQ(published.ValueOrDie()->scenario, "software_update");

  // The swap is observable over the admin channel itself.
  Json metrics = Call("get_metrics", "{}");
  ASSERT_TRUE(metrics.Has("result"));
  const std::string text =
      metrics.Get("result").ValueOrDie().GetString("text", "");
  EXPECT_NE(text.find("icewafl_server_plan_version{session=\"live\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("icewafl_server_plan_swaps_total{session=\"live\"} 2"),
      std::string::npos)
      << text;
}

TEST_F(AdminWireTest, SwapPipelineIsLintGatedWithFullDiagnostics) {
  // A pipeline document referencing a column the wearable schema does
  // not have: rejected by the analyzer before any snapshot exists.
  auto response = client_->Call(
      "swap_pipeline",
      Json::Parse(R"({
        "session": "live",
        "pipeline": {
          "name": "broken",
          "polluters": [
            {"type": "standard", "label": "bad",
             "attributes": ["NoSuchColumn"],
             "condition": {"type": "always"},
             "error": {"type": "missing_value"}}
          ]
        }
      })")
          .ValueOrDie());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const Json& body = response.ValueOrDie();
  ASSERT_TRUE(body.Has("error")) << body.Dump();
  const Json error = body.Get("error").ValueOrDie();
  EXPECT_EQ(error.GetString("code", ""), "InvalidArgument");
  ASSERT_TRUE(error.Has("diagnostics")) << body.Dump();
  EXPECT_GE(error.Get("diagnostics").ValueOrDie().GetInt("errors", 0), 1);
  // Nothing was applied: still version 1.
  auto published = server_->session_plan("live");
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(published.ValueOrDie()->version, 1u);
}

TEST_F(AdminWireTest, ValidPipelineDocumentSwapApplies) {
  Json swapped = Call("swap_pipeline", R"({
    "session": "live",
    "pipeline": {
      "name": "null_distance",
      "polluters": [
        {"type": "standard", "label": "null_distance",
         "attributes": ["Distance"],
         "condition": {"type": "always"},
         "error": {"type": "missing_value"}}
      ]
    }
  })");
  ASSERT_TRUE(swapped.Has("result")) << swapped.Dump();
  auto published = server_->session_plan("live");
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(published.ValueOrDie()->version, 2u);
  EXPECT_EQ(published.ValueOrDie()->scenario, "custom");
}

TEST_F(AdminWireTest, CreateAndStopSessions) {
  Json created = Call("create_session", R"({
    "session": {"name": "second", "scenario": "network_delay"}
  })");
  ASSERT_TRUE(created.Has("result")) << created.Dump();

  Json listed = Call("list_sessions", "{}");
  const Json sessions =
      listed.Get("result").ValueOrDie().Get("sessions").ValueOrDie();
  ASSERT_EQ(sessions.items().size(), 2u);
  EXPECT_EQ(sessions.items()[1].GetString("id", ""), "second");

  Json stopped = Call("stop_session", R"({"session": "second"})");
  ASSERT_TRUE(stopped.Has("result")) << stopped.Dump();
  auto info = server_->session_info("second");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.ValueOrDie().state, "retired");

  // A duplicate create is an AlreadyExists error response.
  auto duplicate = client_->Call(
      "create_session",
      Json::Parse(R"({"session": {"name": "live",
                                  "scenario": "network_delay"}})")
          .ValueOrDie());
  ASSERT_TRUE(duplicate.ok());
  EXPECT_TRUE(duplicate.ValueOrDie().Has("error"));
}

TEST_F(AdminWireTest, SetCleanerInstallsSwapsAndRemoves) {
  // Install: the plan version bumps and get_config reports the rules.
  Json installed = Call("set_cleaner", R"({
    "session": "live",
    "rules": {"name": "live_clean", "rules": [
      {"label": "bpm_null", "column": "BPM",
       "detect": {"type": "not_null"}, "repair": "last_good"}]}
  })");
  ASSERT_TRUE(installed.Has("result")) << installed.Dump();
  EXPECT_TRUE(installed.Get("result").ValueOrDie().GetBool("cleaning", false));
  EXPECT_EQ(installed.Get("result").ValueOrDie().GetInt("plan_version", 0), 2);
  auto published = server_->session_plan("live");
  ASSERT_TRUE(published.ok());
  EXPECT_FALSE(published.ValueOrDie()->cleaner.is_null());

  Json config = Call("get_config", R"({"session": "live"})");
  const Json result = config.Get("result").ValueOrDie();
  ASSERT_TRUE(result.Has("cleaner"));
  EXPECT_EQ(result.Get("cleaner").ValueOrDie().GetString("name", ""),
            "live_clean");

  // Swap in a different document: run-atomic like a pipeline swap.
  Json swapped = Call("set_cleaner", R"({
    "session": "live",
    "rules": {"name": "v2", "rules": [
      {"label": "bpm_range", "column": "BPM",
       "detect": {"type": "range", "min": 20, "max": 250},
       "repair": "clamp"}]}
  })");
  ASSERT_TRUE(swapped.Has("result")) << swapped.Dump();
  EXPECT_EQ(swapped.Get("result").ValueOrDie().GetInt("plan_version", 0), 3);

  // Remove with null: served output reverts to the raw polluted stream.
  Json removed = Call("set_cleaner", R"({"session": "live", "rules": null})");
  ASSERT_TRUE(removed.Has("result")) << removed.Dump();
  EXPECT_FALSE(removed.Get("result").ValueOrDie().GetBool("cleaning", true));
  published = server_->session_plan("live");
  ASSERT_TRUE(published.ok());
  EXPECT_TRUE(published.ValueOrDie()->cleaner.is_null());
}

TEST_F(AdminWireTest, SetCleanerIsLintGatedWithJsonPointers) {
  // Missing "rules" entirely: the IW616 envelope gate, before any hook.
  auto no_rules = client_->Call(
      "set_cleaner", Json::Parse(R"({"session": "live"})").ValueOrDie());
  ASSERT_TRUE(no_rules.ok());
  EXPECT_EQ(ErrorCode(no_rules.ValueOrDie()), "IW616");

  // A document referencing an unknown column: rejected by the hook's
  // schema-aware lint with a JSON-pointer path; no snapshot published.
  auto rejected = client_->Call("set_cleaner", Json::Parse(R"({
    "session": "live",
    "rules": {"rules": [
      {"label": "x", "column": "Ghost",
       "detect": {"type": "not_null"}, "repair": "drop"}]}
  })").ValueOrDie());
  ASSERT_TRUE(rejected.ok());
  const Json& body = rejected.ValueOrDie();
  ASSERT_TRUE(body.Has("error")) << body.Dump();
  const Json error = body.Get("error").ValueOrDie();
  ASSERT_TRUE(error.Has("diagnostics")) << body.Dump();
  EXPECT_NE(error.Get("diagnostics").ValueOrDie().Dump().find("/rules/0"),
            std::string::npos)
      << body.Dump();
  auto published = server_->session_plan("live");
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(published.ValueOrDie()->version, 1u);
  EXPECT_TRUE(published.ValueOrDie()->cleaner.is_null());
}

TEST_F(AdminWireTest, WarningsRideAlongWithResults) {
  // An unknown params key is an IW604 warning, not an error: the call
  // succeeds and the response carries the diagnostics.
  auto response = client_->Call(
      "get_config",
      Json::Parse(R"({"session": "live", "tpyo": 1})").ValueOrDie());
  ASSERT_TRUE(response.ok());
  const Json& body = response.ValueOrDie();
  EXPECT_TRUE(body.Has("result")) << body.Dump();
  ASSERT_TRUE(body.Has("diagnostics")) << body.Dump();
  EXPECT_GE(body.Get("diagnostics").ValueOrDie().GetInt("warnings", 0), 1);
}

}  // namespace
}  // namespace net
}  // namespace icewafl
