#include "net/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <initializer_list>
#include <limits>
#include <string>
#include <vector>

#include "stream/schema.h"
#include "stream/tuple.h"
#include "util/rng.h"

namespace icewafl {
namespace net {
namespace {

// ---------------------------------------------------------------------
// Bit-exact value comparison (NaN == NaN must hold on the wire).
// ---------------------------------------------------------------------

bool ValuesBitEqual(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return a.AsBool() == b.AsBool();
    case ValueType::kInt64:
      return a.AsInt64() == b.AsInt64();
    case ValueType::kDouble: {
      uint64_t abits = 0, bbits = 0;
      const double ad = a.AsDouble(), bd = b.AsDouble();
      std::memcpy(&abits, &ad, sizeof(abits));
      std::memcpy(&bbits, &bd, sizeof(bbits));
      return abits == bbits;
    }
    case ValueType::kString:
      return a.AsString() == b.AsString();
  }
  return false;
}

// ---------------------------------------------------------------------
// Random generators over the full value domain.
// ---------------------------------------------------------------------

SchemaPtr RandomSchema(Rng* rng) {
  const int n = static_cast<int>(rng->UniformInt(1, 8));
  const int ts = static_cast<int>(rng->UniformInt(0, n - 1));
  std::vector<Attribute> attributes;
  std::string ts_name;
  for (int i = 0; i < n; ++i) {
    Attribute attr;
    attr.name = "attr" + std::to_string(i);
    // Occasionally exercise longer / odd names.
    if (rng->Bernoulli(0.2)) attr.name += std::string(40, 'x') + "\xE2\x82\xAC";
    if (i == ts) {
      attr.type = ValueType::kInt64;  // Schema::Make's timestamp rule
      ts_name = attr.name;
    } else {
      static const ValueType kTypes[] = {ValueType::kBool, ValueType::kInt64,
                                         ValueType::kDouble,
                                         ValueType::kString};
      attr.type = kTypes[rng->UniformInt(0, 3)];
    }
    attributes.push_back(std::move(attr));
  }
  auto schema = Schema::Make(std::move(attributes), ts_name);
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return schema.ValueOrDie();
}

Value RandomValue(Rng* rng) {
  switch (rng->UniformInt(0, 9)) {
    case 0:
      return Value::Null();
    case 1:
      return Value(rng->Bernoulli(0.5));
    case 2:
      return Value(static_cast<int64_t>(rng->Next()));
    case 3:
      return Value(std::numeric_limits<int64_t>::min());
    case 4:
      return Value(rng->Uniform(-1e18, 1e18));
    case 5:
      return Value(std::numeric_limits<double>::quiet_NaN());
    case 6: {
      static const double kEdges[] = {
          0.0,
          -0.0,
          std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::denorm_min(),
          std::numeric_limits<double>::max(),
          -std::numeric_limits<double>::lowest()};
      return Value(kEdges[rng->UniformInt(0, 6)]);
    }
    case 7:
      return Value(std::string());  // empty string
    case 8: {
      // Binary-hostile string: embedded NUL, newline, quote, high bytes.
      std::string s;
      const int len = static_cast<int>(rng->UniformInt(1, 64));
      for (int i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng->UniformInt(0, 255)));
      }
      return Value(std::move(s));
    }
    default:
      return Value(rng->NextDouble());
  }
}

Tuple RandomTuple(Rng* rng, const SchemaPtr& schema) {
  std::vector<Value> values;
  for (size_t i = 0; i < schema->num_attributes(); ++i) {
    values.push_back(RandomValue(rng));
  }
  Tuple tuple(schema, std::move(values));
  tuple.set_id(rng->Next());
  tuple.set_event_time(static_cast<Timestamp>(rng->Next()));
  tuple.set_arrival_time(static_cast<Timestamp>(rng->Next()));
  tuple.set_substream(rng->Bernoulli(0.3)
                          ? kNoSubstream
                          : static_cast<int>(rng->UniformInt(-1000, 1000)));
  return tuple;
}

void ExpectTuplesEqual(const Tuple& a, const Tuple& b) {
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.event_time(), b.event_time());
  EXPECT_EQ(a.arrival_time(), b.arrival_time());
  EXPECT_EQ(a.substream(), b.substream());
  ASSERT_EQ(a.num_values(), b.num_values());
  for (size_t i = 0; i < a.num_values(); ++i) {
    EXPECT_TRUE(ValuesBitEqual(a.value(i), b.value(i)))
        << "value " << i << " diverged";
  }
}

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

TEST(WirePrimitives, VarintRoundTripBoundaries) {
  for (uint64_t v : std::initializer_list<uint64_t>{
           0, 1, 127, 128, 16383, 16384, 0xFFFFFFFF, UINT64_MAX}) {
    std::string buf;
    AppendVarint(v, &buf);
    ByteReader reader(buf);
    auto decoded = reader.Varint();
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.ValueOrDie(), v);
    EXPECT_TRUE(reader.ExpectEnd().ok());
  }
}

TEST(WirePrimitives, ZigzagIsInvolutive) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-2},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
  // Small magnitudes of either sign stay in one byte.
  std::string buf;
  AppendVarint(ZigzagEncode(-1), &buf);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(WirePrimitives, OverlongVarintRejected) {
  const std::string eleven(11, static_cast<char>(0x80));
  ByteReader reader(eleven);
  EXPECT_FALSE(reader.Varint().ok());
  // Ten continuation bytes with a final byte overflowing 64 bits.
  std::string overflow(9, static_cast<char>(0x80));
  overflow.push_back(0x02);
  ByteReader reader2(overflow);
  EXPECT_FALSE(reader2.Varint().ok());
}

// ---------------------------------------------------------------------
// 500-seed property round-trip
// ---------------------------------------------------------------------

TEST(WireProperty, FiveHundredSeedRoundTrip) {
  for (uint64_t seed = 1; seed <= 500; ++seed) {
    Rng rng(seed);
    SchemaPtr schema = RandomSchema(&rng);

    // Schema round-trip is exact.
    auto schema2 = DecodeSchemaPayload(EncodeSchemaPayload(*schema));
    ASSERT_TRUE(schema2.ok()) << "seed " << seed << ": "
                              << schema2.status().ToString();
    EXPECT_TRUE(schema->Equals(*schema2.ValueOrDie())) << "seed " << seed;

    // A small burst of tuples through the framed stream, fed to the
    // decoder in random-sized chunks (exercising resumption mid-frame).
    const int count = static_cast<int>(rng.UniformInt(1, 8));
    std::vector<Tuple> tuples;
    std::string stream = EncodeSchemaFrame(*schema);
    for (int i = 0; i < count; ++i) {
      tuples.push_back(RandomTuple(&rng, schema));
      stream += EncodeTupleFrame(tuples.back());
    }
    stream += EncodeEndFrame(static_cast<uint64_t>(count));

    FrameDecoder decoder;
    size_t fed = 0;
    std::vector<Tuple> decoded;
    uint64_t end_total = 0;
    bool saw_schema = false, saw_end = false;
    while (true) {
      uint8_t type = 0;
      std::string payload;
      auto next = decoder.Next(&type, &payload);
      ASSERT_TRUE(next.ok()) << "seed " << seed << ": "
                             << next.status().ToString();
      if (!next.ValueOrDie()) {
        if (fed >= stream.size()) break;  // nothing more to feed
        const size_t chunk = static_cast<size_t>(
            rng.UniformInt(1, static_cast<int64_t>(stream.size() - fed)));
        decoder.Feed(stream.data() + fed, chunk);
        fed += chunk;
        continue;
      }
      if (type == kFrameSchema) {
        saw_schema = true;
      } else if (type == kFrameTuple) {
        auto tuple = DecodeTuplePayload(payload, schema);
        ASSERT_TRUE(tuple.ok()) << "seed " << seed << ": "
                                << tuple.status().ToString();
        decoded.push_back(std::move(tuple).ValueOrDie());
      } else if (type == kFrameEnd) {
        auto total = DecodeEndPayload(payload);
        ASSERT_TRUE(total.ok());
        end_total = total.ValueOrDie();
        saw_end = true;
      }
    }
    EXPECT_TRUE(saw_schema);
    EXPECT_TRUE(saw_end);
    EXPECT_EQ(end_total, static_cast<uint64_t>(count));
    ASSERT_EQ(decoded.size(), tuples.size()) << "seed " << seed;
    for (size_t i = 0; i < tuples.size(); ++i) {
      ExpectTuplesEqual(tuples[i], decoded[i]);
    }
    EXPECT_EQ(decoder.buffered(), 0u) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------
// Truncation: every proper prefix decodes to "need more", never error.
// ---------------------------------------------------------------------

TEST(WireFuzz, EveryFramePrefixWaitsForMoreBytes) {
  Rng rng(7);
  SchemaPtr schema = RandomSchema(&rng);
  const std::string frame = EncodeTupleFrame(RandomTuple(&rng, schema));
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(frame.data(), cut);
    uint8_t type = 0;
    std::string payload;
    auto next = decoder.Next(&type, &payload);
    ASSERT_TRUE(next.ok()) << "prefix of " << cut << " bytes errored: "
                           << next.status().ToString();
    EXPECT_FALSE(next.ValueOrDie()) << "prefix of " << cut
                                    << " bytes produced a frame";
  }
}

TEST(WireFuzz, TruncatedPayloadsReturnStatus) {
  Rng rng(11);
  SchemaPtr schema = RandomSchema(&rng);
  const std::string schema_payload = EncodeSchemaPayload(*schema);
  const std::string tuple_payload =
      EncodeTuplePayload(RandomTuple(&rng, schema));
  for (size_t cut = 0; cut < schema_payload.size(); ++cut) {
    auto result = DecodeSchemaPayload(schema_payload.substr(0, cut));
    EXPECT_FALSE(result.ok()) << "schema prefix " << cut << " accepted";
  }
  for (size_t cut = 0; cut < tuple_payload.size(); ++cut) {
    auto result = DecodeTuplePayload(tuple_payload.substr(0, cut), schema);
    EXPECT_FALSE(result.ok()) << "tuple prefix " << cut << " accepted";
  }
}

// ---------------------------------------------------------------------
// Corruption: hostile headers and payloads are Status, never a crash.
// ---------------------------------------------------------------------

TEST(WireFuzz, OversizedFrameLengthRejectedBeforeAllocation) {
  std::string frame;
  frame.push_back(static_cast<char>(kFrameTuple));
  AppendVarint(kMaxFramePayload + 1, &frame);
  FrameDecoder decoder;
  decoder.Feed(frame.data(), frame.size());
  uint8_t type = 0;
  std::string payload;
  EXPECT_FALSE(decoder.Next(&type, &payload).ok());
}

TEST(WireFuzz, OverlongFrameLengthVarintRejected) {
  std::string frame;
  frame.push_back(static_cast<char>(kFrameTuple));
  frame.append(9, static_cast<char>(0x80));
  frame.push_back(0x02);  // 10th byte overflows 64 bits
  FrameDecoder decoder;
  decoder.Feed(frame.data(), frame.size());
  uint8_t type = 0;
  std::string payload;
  EXPECT_FALSE(decoder.Next(&type, &payload).ok());
}

TEST(WireFuzz, CorruptTuplePayloadsReturnStatus) {
  Rng rng(13);
  SchemaPtr schema = RandomSchema(&rng);
  const std::string good = EncodeTuplePayload(RandomTuple(&rng, schema));

  // Unknown value tag.
  {
    std::string bad = good;
    bad[8 * 3 + 2] = static_cast<char>(0xEE);  // first value's type tag area
    auto result = DecodeTuplePayload(bad, schema);
    // Either a tag error or a downstream length error — must not crash
    // and must not silently succeed with different bytes unless the
    // mutation happened to hit a string byte. Round-trip what decodes.
    if (result.ok()) {
      EXPECT_EQ(EncodeTuplePayload(result.ValueOrDie()).size(), bad.size());
    }
  }
  // Value-count mismatch against the schema arity.
  {
    std::string bad;
    AppendFixed64(1, &bad);
    AppendFixed64(2, &bad);
    AppendFixed64(3, &bad);
    AppendVarint(ZigzagEncode(kNoSubstream), &bad);
    AppendVarint(schema->num_attributes() + 1, &bad);
    EXPECT_FALSE(DecodeTuplePayload(bad, schema).ok());
  }
  // Bool byte out of domain.
  {
    std::string bad;
    AppendFixed64(1, &bad);
    AppendFixed64(2, &bad);
    AppendFixed64(3, &bad);
    AppendVarint(ZigzagEncode(0), &bad);
    AppendVarint(schema->num_attributes(), &bad);
    for (size_t i = 0; i < schema->num_attributes(); ++i) {
      bad.push_back(static_cast<char>(ValueType::kBool));
      bad.push_back(2);  // not 0/1
    }
    EXPECT_FALSE(DecodeTuplePayload(bad, schema).ok());
  }
  // String length pointing past the payload end.
  {
    std::string bad;
    AppendFixed64(1, &bad);
    AppendFixed64(2, &bad);
    AppendFixed64(3, &bad);
    AppendVarint(ZigzagEncode(0), &bad);
    AppendVarint(schema->num_attributes(), &bad);
    bad.push_back(static_cast<char>(ValueType::kString));
    AppendVarint(1 << 30, &bad);
    EXPECT_FALSE(DecodeTuplePayload(bad, schema).ok());
  }
  // Trailing garbage after a well-formed tuple.
  {
    std::string bad = good + "garbage";
    EXPECT_FALSE(DecodeTuplePayload(bad, schema).ok());
  }
}

TEST(WireFuzz, CorruptSchemaPayloadsReturnStatus) {
  // Attribute count far beyond the payload.
  {
    std::string bad;
    AppendVarint(1u << 20, &bad);
    EXPECT_FALSE(DecodeSchemaPayload(bad).ok());
  }
  // Timestamp index out of range.
  {
    std::string bad;
    AppendVarint(1, &bad);
    AppendVarint(1, &bad);
    bad += "a";
    bad.push_back(static_cast<char>(ValueType::kInt64));
    AppendVarint(7, &bad);  // only one attribute
    EXPECT_FALSE(DecodeSchemaPayload(bad).ok());
  }
  // Unknown attribute type tag.
  {
    std::string bad;
    AppendVarint(1, &bad);
    AppendVarint(1, &bad);
    bad += "a";
    bad.push_back(99);
    AppendVarint(0, &bad);
    EXPECT_FALSE(DecodeSchemaPayload(bad).ok());
  }
  // Timestamp attribute of non-int64 type (Schema::Make's rule).
  {
    std::string bad;
    AppendVarint(1, &bad);
    AppendVarint(1, &bad);
    bad += "a";
    bad.push_back(static_cast<char>(ValueType::kString));
    AppendVarint(0, &bad);
    EXPECT_FALSE(DecodeSchemaPayload(bad).ok());
  }
  // Random byte soup: decoding must be total (error or schema, no crash).
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    std::string soup;
    const int len = static_cast<int>(rng.UniformInt(0, 64));
    for (int j = 0; j < len; ++j) {
      soup.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    (void)DecodeSchemaPayload(soup);
    SchemaPtr schema = RandomSchema(&rng);
    (void)DecodeTuplePayload(soup, schema);
  }
}

// ---------------------------------------------------------------------
// Subscribe hello (wire version 2)
// ---------------------------------------------------------------------

TEST(WireFrames, SubscribeRoundTrip) {
  for (const std::string& id :
       {std::string(""), std::string("alpha"),
        std::string("weird \xE2\x82\xAC id with spaces"),
        std::string(kMaxSessionIdBytes, 's')}) {
    const std::string frame = EncodeSubscribeFrame(kWireVersion, id);
    FrameDecoder decoder;
    decoder.Feed(frame.data(), frame.size());
    uint8_t type = 0;
    std::string payload;
    auto next = decoder.Next(&type, &payload);
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next.ValueOrDie());
    EXPECT_EQ(type, kFrameSubscribe);
    auto request = DecodeSubscribePayload(payload);
    ASSERT_TRUE(request.ok()) << request.status().ToString();
    EXPECT_EQ(request.ValueOrDie().version, kWireVersion);
    EXPECT_EQ(request.ValueOrDie().session_id, id);
  }
}

TEST(WireFrames, SubscribeRejectsOversizedSessionId) {
  const std::string payload = EncodeSubscribePayload(
      kWireVersion, std::string(kMaxSessionIdBytes + 1, 's'));
  auto request = DecodeSubscribePayload(payload);
  ASSERT_FALSE(request.ok());
  EXPECT_NE(request.status().ToString().find("exceeds limit"),
            std::string::npos)
      << request.status().ToString();
}

TEST(WireFrames, SubscribeRejectsTruncatedAndTrailingPayloads) {
  const std::string good = EncodeSubscribePayload(kWireVersion, "alpha");
  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(DecodeSubscribePayload(good.substr(0, cut)).ok())
        << "prefix of " << cut << " bytes accepted";
  }
  EXPECT_FALSE(DecodeSubscribePayload(good + "x").ok());
}

TEST(WireFrames, ErrorFrameCarriesMessage) {
  const std::string frame = EncodeErrorFrame("boom");
  FrameDecoder decoder;
  decoder.Feed(frame.data(), frame.size());
  uint8_t type = 0;
  std::string payload;
  auto next = decoder.Next(&type, &payload);
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next.ValueOrDie());
  EXPECT_EQ(type, kFrameError);
  EXPECT_EQ(payload, "boom");
}

}  // namespace
}  // namespace net
}  // namespace icewafl
