#include "net/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <initializer_list>
#include <limits>
#include <string>
#include <vector>

#include "stream/schema.h"
#include "stream/tuple.h"
#include "util/rng.h"

namespace icewafl {
namespace net {
namespace {

// ---------------------------------------------------------------------
// Bit-exact value comparison (NaN == NaN must hold on the wire).
// ---------------------------------------------------------------------

bool ValuesBitEqual(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return a.AsBool() == b.AsBool();
    case ValueType::kInt64:
      return a.AsInt64() == b.AsInt64();
    case ValueType::kDouble: {
      uint64_t abits = 0, bbits = 0;
      const double ad = a.AsDouble(), bd = b.AsDouble();
      std::memcpy(&abits, &ad, sizeof(abits));
      std::memcpy(&bbits, &bd, sizeof(bbits));
      return abits == bbits;
    }
    case ValueType::kString:
      return a.AsString() == b.AsString();
  }
  return false;
}

// ---------------------------------------------------------------------
// Random generators over the full value domain.
// ---------------------------------------------------------------------

SchemaPtr RandomSchema(Rng* rng) {
  const int n = static_cast<int>(rng->UniformInt(1, 8));
  const int ts = static_cast<int>(rng->UniformInt(0, n - 1));
  std::vector<Attribute> attributes;
  std::string ts_name;
  for (int i = 0; i < n; ++i) {
    Attribute attr;
    attr.name = "attr" + std::to_string(i);
    // Occasionally exercise longer / odd names.
    if (rng->Bernoulli(0.2)) attr.name += std::string(40, 'x') + "\xE2\x82\xAC";
    if (i == ts) {
      attr.type = ValueType::kInt64;  // Schema::Make's timestamp rule
      ts_name = attr.name;
    } else {
      static const ValueType kTypes[] = {ValueType::kBool, ValueType::kInt64,
                                         ValueType::kDouble,
                                         ValueType::kString};
      attr.type = kTypes[rng->UniformInt(0, 3)];
    }
    attributes.push_back(std::move(attr));
  }
  auto schema = Schema::Make(std::move(attributes), ts_name);
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return schema.ValueOrDie();
}

Value RandomValue(Rng* rng) {
  switch (rng->UniformInt(0, 9)) {
    case 0:
      return Value::Null();
    case 1:
      return Value(rng->Bernoulli(0.5));
    case 2:
      return Value(static_cast<int64_t>(rng->Next()));
    case 3:
      return Value(std::numeric_limits<int64_t>::min());
    case 4:
      return Value(rng->Uniform(-1e18, 1e18));
    case 5:
      return Value(std::numeric_limits<double>::quiet_NaN());
    case 6: {
      static const double kEdges[] = {
          0.0,
          -0.0,
          std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::denorm_min(),
          std::numeric_limits<double>::max(),
          -std::numeric_limits<double>::lowest()};
      return Value(kEdges[rng->UniformInt(0, 6)]);
    }
    case 7:
      return Value(std::string());  // empty string
    case 8: {
      // Binary-hostile string: embedded NUL, newline, quote, high bytes.
      std::string s;
      const int len = static_cast<int>(rng->UniformInt(1, 64));
      for (int i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng->UniformInt(0, 255)));
      }
      return Value(std::move(s));
    }
    default:
      return Value(rng->NextDouble());
  }
}

Tuple RandomTuple(Rng* rng, const SchemaPtr& schema) {
  std::vector<Value> values;
  for (size_t i = 0; i < schema->num_attributes(); ++i) {
    values.push_back(RandomValue(rng));
  }
  Tuple tuple(schema, std::move(values));
  tuple.set_id(rng->Next());
  tuple.set_event_time(static_cast<Timestamp>(rng->Next()));
  tuple.set_arrival_time(static_cast<Timestamp>(rng->Next()));
  tuple.set_substream(rng->Bernoulli(0.3)
                          ? kNoSubstream
                          : static_cast<int>(rng->UniformInt(-1000, 1000)));
  return tuple;
}

void ExpectTuplesEqual(const Tuple& a, const Tuple& b) {
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.event_time(), b.event_time());
  EXPECT_EQ(a.arrival_time(), b.arrival_time());
  EXPECT_EQ(a.substream(), b.substream());
  ASSERT_EQ(a.num_values(), b.num_values());
  for (size_t i = 0; i < a.num_values(); ++i) {
    EXPECT_TRUE(ValuesBitEqual(a.value(i), b.value(i)))
        << "value " << i << " diverged";
  }
}

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

TEST(WirePrimitives, VarintRoundTripBoundaries) {
  for (uint64_t v : std::initializer_list<uint64_t>{
           0, 1, 127, 128, 16383, 16384, 0xFFFFFFFF, UINT64_MAX}) {
    std::string buf;
    AppendVarint(v, &buf);
    ByteReader reader(buf);
    auto decoded = reader.Varint();
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.ValueOrDie(), v);
    EXPECT_TRUE(reader.ExpectEnd().ok());
  }
}

TEST(WirePrimitives, ZigzagIsInvolutive) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-2},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
  // Small magnitudes of either sign stay in one byte.
  std::string buf;
  AppendVarint(ZigzagEncode(-1), &buf);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(WirePrimitives, OverlongVarintRejected) {
  const std::string eleven(11, static_cast<char>(0x80));
  ByteReader reader(eleven);
  EXPECT_FALSE(reader.Varint().ok());
  // Ten continuation bytes with a final byte overflowing 64 bits.
  std::string overflow(9, static_cast<char>(0x80));
  overflow.push_back(0x02);
  ByteReader reader2(overflow);
  EXPECT_FALSE(reader2.Varint().ok());
}

TEST(WirePrimitives, NonCanonicalVarintRejected) {
  // LEB128 admits padded spellings of every value (a redundant
  // continuation byte followed by a zero terminator). The reader used
  // to accept them silently, which broke the one-spelling-per-value
  // contract the canonical re-encode checks rely on. Fixtures cover
  // the overlong forms of 0, 127, 128, and the 2^63 boundary.
  struct Fixture {
    std::string bytes;
    const char* what;
  };
  const Fixture kOverlong[] = {
      {std::string("\x80\x00", 2), "0 padded to two bytes"},
      {std::string("\xFF\x00", 2), "127 padded to two bytes"},
      {std::string("\x80\x81\x00", 3), "128 padded to three bytes"},
      {std::string(9, static_cast<char>(0x80)) + std::string(1, '\x00'),
       "0 padded to the full ten bytes"},
  };
  for (const Fixture& f : kOverlong) {
    ByteReader reader(f.bytes);
    auto result = reader.Varint();
    ASSERT_FALSE(result.ok()) << f.what << " accepted";
    EXPECT_NE(result.status().ToString().find("non-canonical varint"),
              std::string::npos)
        << f.what << ": " << result.status().ToString();
  }
  // 2^63 needs all ten bytes, so its only overlong spelling is eleven
  // bytes — rejected by the length cap before the canonicality check.
  std::string eleven_pow63(10, static_cast<char>(0x80));
  eleven_pow63.push_back(0x01);
  ByteReader reader_pow63(eleven_pow63);
  EXPECT_FALSE(reader_pow63.Varint().ok());
  // The canonical spellings of the same values still decode.
  const std::pair<std::string, uint64_t> kCanonical[] = {
      {std::string(1, '\x00'), 0},
      {std::string(1, '\x7F'), 127},
      {std::string("\x80\x01", 2), 128},
      {std::string(9, static_cast<char>(0x80)) + std::string(1, '\x01'),
       uint64_t{1} << 63},
  };
  for (const auto& [bytes, want] : kCanonical) {
    ByteReader reader3(bytes);
    auto result = reader3.Varint();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.ValueOrDie(), want);
  }
}

// ---------------------------------------------------------------------
// 500-seed property round-trip
// ---------------------------------------------------------------------

TEST(WireProperty, FiveHundredSeedRoundTrip) {
  for (uint64_t seed = 1; seed <= 500; ++seed) {
    Rng rng(seed);
    SchemaPtr schema = RandomSchema(&rng);

    // Schema round-trip is exact.
    auto schema2 = DecodeSchemaPayload(EncodeSchemaPayload(*schema));
    ASSERT_TRUE(schema2.ok()) << "seed " << seed << ": "
                              << schema2.status().ToString();
    EXPECT_TRUE(schema->Equals(*schema2.ValueOrDie())) << "seed " << seed;

    // A small burst of tuples through the framed stream, fed to the
    // decoder in random-sized chunks (exercising resumption mid-frame).
    const int count = static_cast<int>(rng.UniformInt(1, 8));
    std::vector<Tuple> tuples;
    std::string stream = EncodeSchemaFrame(*schema);
    for (int i = 0; i < count; ++i) {
      tuples.push_back(RandomTuple(&rng, schema));
      stream += EncodeTupleFrame(tuples.back());
    }
    stream += EncodeEndFrame(static_cast<uint64_t>(count));

    FrameDecoder decoder;
    size_t fed = 0;
    std::vector<Tuple> decoded;
    uint64_t end_total = 0;
    bool saw_schema = false, saw_end = false;
    while (true) {
      uint8_t type = 0;
      std::string payload;
      auto next = decoder.Next(&type, &payload);
      ASSERT_TRUE(next.ok()) << "seed " << seed << ": "
                             << next.status().ToString();
      if (!next.ValueOrDie()) {
        if (fed >= stream.size()) break;  // nothing more to feed
        const size_t chunk = static_cast<size_t>(
            rng.UniformInt(1, static_cast<int64_t>(stream.size() - fed)));
        decoder.Feed(stream.data() + fed, chunk);
        fed += chunk;
        continue;
      }
      if (type == kFrameSchema) {
        saw_schema = true;
      } else if (type == kFrameTuple) {
        auto tuple = DecodeTuplePayload(payload, schema);
        ASSERT_TRUE(tuple.ok()) << "seed " << seed << ": "
                                << tuple.status().ToString();
        decoded.push_back(std::move(tuple).ValueOrDie());
      } else if (type == kFrameEnd) {
        auto total = DecodeEndPayload(payload);
        ASSERT_TRUE(total.ok());
        end_total = total.ValueOrDie();
        saw_end = true;
      }
    }
    EXPECT_TRUE(saw_schema);
    EXPECT_TRUE(saw_end);
    EXPECT_EQ(end_total, static_cast<uint64_t>(count));
    ASSERT_EQ(decoded.size(), tuples.size()) << "seed " << seed;
    for (size_t i = 0; i < tuples.size(); ++i) {
      ExpectTuplesEqual(tuples[i], decoded[i]);
    }
    EXPECT_EQ(decoder.buffered(), 0u) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------
// Truncation: every proper prefix decodes to "need more", never error.
// ---------------------------------------------------------------------

TEST(WireFuzz, EveryFramePrefixWaitsForMoreBytes) {
  Rng rng(7);
  SchemaPtr schema = RandomSchema(&rng);
  const std::string frame = EncodeTupleFrame(RandomTuple(&rng, schema));
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(frame.data(), cut);
    uint8_t type = 0;
    std::string payload;
    auto next = decoder.Next(&type, &payload);
    ASSERT_TRUE(next.ok()) << "prefix of " << cut << " bytes errored: "
                           << next.status().ToString();
    EXPECT_FALSE(next.ValueOrDie()) << "prefix of " << cut
                                    << " bytes produced a frame";
  }
}

TEST(WireFuzz, TruncatedPayloadsReturnStatus) {
  Rng rng(11);
  SchemaPtr schema = RandomSchema(&rng);
  const std::string schema_payload = EncodeSchemaPayload(*schema);
  const std::string tuple_payload =
      EncodeTuplePayload(RandomTuple(&rng, schema));
  for (size_t cut = 0; cut < schema_payload.size(); ++cut) {
    auto result = DecodeSchemaPayload(schema_payload.substr(0, cut));
    EXPECT_FALSE(result.ok()) << "schema prefix " << cut << " accepted";
  }
  for (size_t cut = 0; cut < tuple_payload.size(); ++cut) {
    auto result = DecodeTuplePayload(tuple_payload.substr(0, cut), schema);
    EXPECT_FALSE(result.ok()) << "tuple prefix " << cut << " accepted";
  }
}

// ---------------------------------------------------------------------
// Corruption: hostile headers and payloads are Status, never a crash.
// ---------------------------------------------------------------------

TEST(WireFuzz, OversizedFrameLengthRejectedBeforeAllocation) {
  std::string frame;
  frame.push_back(static_cast<char>(kFrameTuple));
  AppendVarint(kMaxFramePayload + 1, &frame);
  FrameDecoder decoder;
  decoder.Feed(frame.data(), frame.size());
  uint8_t type = 0;
  std::string payload;
  EXPECT_FALSE(decoder.Next(&type, &payload).ok());
}

TEST(WireFuzz, OverlongFrameLengthVarintRejected) {
  std::string frame;
  frame.push_back(static_cast<char>(kFrameTuple));
  frame.append(9, static_cast<char>(0x80));
  frame.push_back(0x02);  // 10th byte overflows 64 bits
  FrameDecoder decoder;
  decoder.Feed(frame.data(), frame.size());
  uint8_t type = 0;
  std::string payload;
  EXPECT_FALSE(decoder.Next(&type, &payload).ok());
}

TEST(WireFuzz, NonCanonicalFrameLengthVarintRejected) {
  // A payload length of 1 spelled as [0x81 0x00] instead of [0x01]:
  // the stream-level length field obeys the same canonicality rule as
  // every in-payload varint.
  std::string frame;
  frame.push_back(static_cast<char>(kFrameTuple));
  frame.push_back(static_cast<char>(0x81));
  frame.push_back(0x00);
  frame.push_back('x');  // the one payload byte the length promises
  FrameDecoder decoder;
  decoder.Feed(frame.data(), frame.size());
  uint8_t type = 0;
  std::string payload;
  auto next = decoder.Next(&type, &payload);
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().ToString().find("non-canonical varint"),
            std::string::npos)
      << next.status().ToString();
}

TEST(WireFuzz, CorruptTuplePayloadsReturnStatus) {
  Rng rng(13);
  SchemaPtr schema = RandomSchema(&rng);
  const std::string good = EncodeTuplePayload(RandomTuple(&rng, schema));

  // Unknown value tag.
  {
    std::string bad = good;
    bad[8 * 3 + 2] = static_cast<char>(0xEE);  // first value's type tag area
    auto result = DecodeTuplePayload(bad, schema);
    // Either a tag error or a downstream length error — must not crash
    // and must not silently succeed with different bytes unless the
    // mutation happened to hit a string byte. Round-trip what decodes.
    if (result.ok()) {
      EXPECT_EQ(EncodeTuplePayload(result.ValueOrDie()).size(), bad.size());
    }
  }
  // Value-count mismatch against the schema arity.
  {
    std::string bad;
    AppendFixed64(1, &bad);
    AppendFixed64(2, &bad);
    AppendFixed64(3, &bad);
    AppendVarint(ZigzagEncode(kNoSubstream), &bad);
    AppendVarint(schema->num_attributes() + 1, &bad);
    EXPECT_FALSE(DecodeTuplePayload(bad, schema).ok());
  }
  // Bool byte out of domain.
  {
    std::string bad;
    AppendFixed64(1, &bad);
    AppendFixed64(2, &bad);
    AppendFixed64(3, &bad);
    AppendVarint(ZigzagEncode(0), &bad);
    AppendVarint(schema->num_attributes(), &bad);
    for (size_t i = 0; i < schema->num_attributes(); ++i) {
      bad.push_back(static_cast<char>(ValueType::kBool));
      bad.push_back(2);  // not 0/1
    }
    EXPECT_FALSE(DecodeTuplePayload(bad, schema).ok());
  }
  // String length pointing past the payload end.
  {
    std::string bad;
    AppendFixed64(1, &bad);
    AppendFixed64(2, &bad);
    AppendFixed64(3, &bad);
    AppendVarint(ZigzagEncode(0), &bad);
    AppendVarint(schema->num_attributes(), &bad);
    bad.push_back(static_cast<char>(ValueType::kString));
    AppendVarint(1 << 30, &bad);
    EXPECT_FALSE(DecodeTuplePayload(bad, schema).ok());
  }
  // Trailing garbage after a well-formed tuple.
  {
    std::string bad = good + "garbage";
    EXPECT_FALSE(DecodeTuplePayload(bad, schema).ok());
  }
}

TEST(WireFuzz, CorruptSchemaPayloadsReturnStatus) {
  // Attribute count far beyond the payload.
  {
    std::string bad;
    AppendVarint(1u << 20, &bad);
    EXPECT_FALSE(DecodeSchemaPayload(bad).ok());
  }
  // Timestamp index out of range.
  {
    std::string bad;
    AppendVarint(1, &bad);
    AppendVarint(1, &bad);
    bad += "a";
    bad.push_back(static_cast<char>(ValueType::kInt64));
    AppendVarint(7, &bad);  // only one attribute
    EXPECT_FALSE(DecodeSchemaPayload(bad).ok());
  }
  // Unknown attribute type tag.
  {
    std::string bad;
    AppendVarint(1, &bad);
    AppendVarint(1, &bad);
    bad += "a";
    bad.push_back(99);
    AppendVarint(0, &bad);
    EXPECT_FALSE(DecodeSchemaPayload(bad).ok());
  }
  // Timestamp attribute of non-int64 type (Schema::Make's rule).
  {
    std::string bad;
    AppendVarint(1, &bad);
    AppendVarint(1, &bad);
    bad += "a";
    bad.push_back(static_cast<char>(ValueType::kString));
    AppendVarint(0, &bad);
    EXPECT_FALSE(DecodeSchemaPayload(bad).ok());
  }
  // Random byte soup: decoding must be total (error or schema, no crash).
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    std::string soup;
    const int len = static_cast<int>(rng.UniformInt(0, 64));
    for (int j = 0; j < len; ++j) {
      soup.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    (void)DecodeSchemaPayload(soup);
    SchemaPtr schema = RandomSchema(&rng);
    (void)DecodeTuplePayload(soup, schema);
  }
}

TEST(WireFuzz, EndPayloadRejectsTruncationAndTrailingBytes) {
  std::string good;
  AppendVarint(123456789, &good);
  auto total = DecodeEndPayload(good);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total.ValueOrDie(), 123456789u);
  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(DecodeEndPayload(good.substr(0, cut)).ok())
        << "prefix of " << cut << " bytes accepted";
  }
  // Bytes after the total were silently ignored before the decoder
  // audit; they are a ParseError now, like every other frame type.
  EXPECT_FALSE(DecodeEndPayload(good + "x").ok());
  EXPECT_FALSE(DecodeEndPayload(std::string("\x80\x00", 2)).ok());
}

TEST(WireFuzz, CorruptBatchPayloadsReturnStatus) {
  auto schema =
      Schema::Make({{"ts", ValueType::kInt64}, {"v", ValueType::kInt64}},
                   "ts")
          .ValueOrDie();
  // Hand-built single-row payload so each strictness rule can be
  // violated in isolation. Layout: row_count, ids, event/arrival
  // times, substreams, column count, then per-column blobs of
  // [tag, validity bits, slots, divergent entries].
  auto make_payload = [&](const std::string& v_blob) {
    std::string payload;
    AppendVarint(1, &payload);                   // row_count
    AppendFixed64(7, &payload);                  // id
    AppendFixed64(100, &payload);                // event time
    AppendFixed64(200, &payload);                // arrival time
    AppendVarint(ZigzagEncode(kNoSubstream), &payload);
    AppendVarint(2, &payload);                   // column count
    std::string ts_blob;
    ts_blob.push_back(static_cast<char>(ValueType::kInt64));
    ts_blob.push_back(0x01);                     // row 0 valid
    AppendFixed64(100, &ts_blob);
    AppendVarint(0, &ts_blob);                   // no divergents
    AppendVarint(ts_blob.size(), &payload);
    payload += ts_blob;
    AppendVarint(v_blob.size(), &payload);
    payload += v_blob;
    return payload;
  };
  auto int64_blob = [](uint8_t vbits, int64_t slot) {
    std::string blob;
    blob.push_back(static_cast<char>(ValueType::kInt64));
    blob.push_back(static_cast<char>(vbits));
    AppendFixed64(static_cast<uint64_t>(slot), &blob);
    AppendVarint(0, &blob);
    return blob;
  };
  auto expect_error = [&](const std::string& payload, const char* needle) {
    auto result = DecodeBatchPayload(payload, schema);
    ASSERT_FALSE(result.ok()) << "expected '" << needle << "'";
    EXPECT_NE(result.status().ToString().find(needle), std::string::npos)
        << result.status().ToString();
  };

  // The well-formed baseline decodes and re-encodes byte-identically.
  const std::string good = make_payload(int64_blob(0x01, 42));
  {
    auto batch = DecodeBatchPayload(good, schema);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(EncodeBatchPayload(batch.ValueOrDie()), good);
  }
  // Truncation: every proper prefix is an error, never an accept.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(DecodeBatchPayload(good.substr(0, cut), schema).ok())
        << "prefix of " << cut << " bytes accepted";
  }
  // Trailing bytes after the last column blob.
  expect_error(good + "x", "trailing payload byte");
  // Row count beyond what the payload could hold, rejected before any
  // allocation.
  {
    std::string bad;
    AppendVarint(uint64_t{1} << 40, &bad);
    expect_error(bad, "row count exceeds payload");
  }
  // Column count disagreeing with the schema arity.
  {
    auto narrow = Schema::Make({{"ts", ValueType::kInt64}}, "ts").ValueOrDie();
    auto result = DecodeBatchPayload(good, narrow);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().ToString().find("columns"), std::string::npos);
  }
  // Column type tag disagreeing with the schema.
  {
    auto retyped =
        Schema::Make({{"ts", ValueType::kInt64}, {"v", ValueType::kDouble}},
                     "ts")
            .ValueOrDie();
    auto result = DecodeBatchPayload(good, retyped);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().ToString().find("type tag"), std::string::npos);
  }
  // Validity bits set past the row count.
  expect_error(make_payload(int64_blob(0x02, 0)),
               "non-zero trailing validity bits");
  // A non-zero typed slot for a row marked invalid (two spellings of
  // the same logical column would otherwise round-trip differently).
  expect_error(make_payload(int64_blob(0x00, 42)),
               "non-zero slot for invalid row");
  // Divergent row index past the batch.
  {
    std::string blob = int64_blob(0x00, 0);
    blob.back() = 0x01;  // divergent count 1
    AppendVarint(5, &blob);
    blob.push_back(static_cast<char>(ValueType::kBool));
    blob.push_back(1);
    expect_error(make_payload(blob), "divergent row out of range");
  }
  // Divergent entry naming a row the validity bitmap already covers.
  {
    std::string blob = int64_blob(0x01, 42);
    blob.back() = 0x01;
    AppendVarint(0, &blob);
    blob.push_back(static_cast<char>(ValueType::kBool));
    blob.push_back(1);
    expect_error(make_payload(blob), "divergent entry for valid row");
  }
  // A "divergent" value of the column's own declared type.
  {
    std::string blob = int64_blob(0x00, 0);
    blob.back() = 0x01;
    AppendVarint(0, &blob);
    blob.push_back(static_cast<char>(ValueType::kInt64));
    AppendFixed64(9, &blob);
    expect_error(make_payload(blob), "does not diverge");
  }
  // Unconsumed bytes inside a column blob.
  {
    std::string blob = int64_blob(0x01, 42);
    blob.push_back('x');
    expect_error(make_payload(blob), "trailing payload byte");
  }
}

TEST(WireFuzz, MutatedBatchPayloadsRejectOrStayCanonical) {
  // Single-byte corruptions of a real batch payload must either fail
  // to decode or decode to a batch whose canonical re-encode is the
  // corrupted spelling itself — i.e. there is exactly one accepted
  // spelling per batch, so served frame bytes are reproducible.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    SchemaPtr schema = RandomSchema(&rng);
    TupleVector tuples;
    const int rows = static_cast<int>(rng.UniformInt(1, 6));
    for (int i = 0; i < rows; ++i) {
      tuples.push_back(RandomTuple(&rng, schema));
    }
    auto batch = Batch::FromTuples(tuples);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    const std::string payload = EncodeBatchPayload(batch.ValueOrDie());
    for (size_t pos = 0; pos < payload.size(); ++pos) {
      for (uint8_t flip : {uint8_t{0x01}, uint8_t{0xFF}}) {
        std::string mutated = payload;
        mutated[pos] = static_cast<char>(mutated[pos] ^ flip);
        auto decoded = DecodeBatchPayload(mutated, schema);
        if (decoded.ok()) {
          EXPECT_EQ(EncodeBatchPayload(decoded.ValueOrDie()), mutated)
              << "seed " << seed << " byte " << pos << " flip "
              << static_cast<int>(flip)
              << ": accepted a non-canonical spelling";
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Subscribe hello (wire version 2)
// ---------------------------------------------------------------------

TEST(WireFrames, SubscribeRoundTrip) {
  for (const std::string& id :
       {std::string(""), std::string("alpha"),
        std::string("weird \xE2\x82\xAC id with spaces"),
        std::string(kMaxSessionIdBytes, 's')}) {
    const std::string frame = EncodeSubscribeFrame(kWireVersion, id);
    FrameDecoder decoder;
    decoder.Feed(frame.data(), frame.size());
    uint8_t type = 0;
    std::string payload;
    auto next = decoder.Next(&type, &payload);
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next.ValueOrDie());
    EXPECT_EQ(type, kFrameSubscribe);
    auto request = DecodeSubscribePayload(payload);
    ASSERT_TRUE(request.ok()) << request.status().ToString();
    EXPECT_EQ(request.ValueOrDie().version, kWireVersion);
    EXPECT_EQ(request.ValueOrDie().session_id, id);
  }
}

TEST(WireFrames, SubscribeRejectsOversizedSessionId) {
  const std::string payload = EncodeSubscribePayload(
      kWireVersion, std::string(kMaxSessionIdBytes + 1, 's'));
  auto request = DecodeSubscribePayload(payload);
  ASSERT_FALSE(request.ok());
  EXPECT_NE(request.status().ToString().find("exceeds limit"),
            std::string::npos)
      << request.status().ToString();
}

TEST(WireFrames, SubscribeRejectsTruncatedAndTrailingPayloads) {
  const std::string good = EncodeSubscribePayload(kWireVersion, "alpha");
  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(DecodeSubscribePayload(good.substr(0, cut)).ok())
        << "prefix of " << cut << " bytes accepted";
  }
  // A single trailing varint is the optional capabilities field, not
  // garbage: "x" (0x78) decodes as capabilities = 0x78.
  {
    auto request = DecodeSubscribePayload(good + "x");
    ASSERT_TRUE(request.ok()) << request.status().ToString();
    EXPECT_EQ(request.ValueOrDie().capabilities, 0x78u);
  }
  // Anything after the capabilities field is trailing garbage again.
  const std::string with_caps =
      EncodeSubscribePayload(kWireVersion, "alpha", kCapBatchFrames);
  EXPECT_FALSE(DecodeSubscribePayload(with_caps + "x").ok());
  // A truncated multi-byte capabilities varint is rejected, as is a
  // non-canonical one.
  EXPECT_FALSE(DecodeSubscribePayload(good + std::string("\x80", 1)).ok());
  EXPECT_FALSE(DecodeSubscribePayload(good + std::string("\x80\x00", 2)).ok());
}

TEST(WireFrames, SubscribeCapabilitiesRoundTrip) {
  // Default capabilities stay off the wire (old servers see old bytes).
  EXPECT_EQ(EncodeSubscribePayload(kWireVersion, "alpha"),
            EncodeSubscribePayload(kWireVersion, "alpha", 0));
  const std::string payload =
      EncodeSubscribePayload(kWireVersion, "alpha", kCapBatchFrames);
  auto request = DecodeSubscribePayload(payload);
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request.ValueOrDie().version, kWireVersion);
  EXPECT_EQ(request.ValueOrDie().session_id, "alpha");
  EXPECT_EQ(request.ValueOrDie().capabilities, kCapBatchFrames);
}

TEST(WireFrames, ErrorFrameCarriesMessage) {
  const std::string frame = EncodeErrorFrame("boom");
  FrameDecoder decoder;
  decoder.Feed(frame.data(), frame.size());
  uint8_t type = 0;
  std::string payload;
  auto next = decoder.Next(&type, &payload);
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next.ValueOrDie());
  EXPECT_EQ(type, kFrameError);
  EXPECT_EQ(payload, "boom");
}

}  // namespace
}  // namespace net
}  // namespace icewafl
