#include <sys/socket.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "io/csv.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "scenarios/scenarios.h"
#include "stream/sink.h"
#include "stream/source.h"

namespace icewafl {
namespace net {
namespace {

using scenarios::ResolvedScenario;

/// One pollution run over the resolved scenario — the same replay
/// `icewafl_cli serve` hosts, so served bytes must match the offline run.
PollutionServer::SessionFn MakeScenarioSession(
    std::shared_ptr<const ResolvedScenario> scenario, uint64_t seed,
    int parallelism) {
  return [scenario, seed, parallelism](const PlanContext&, Sink* sink) {
    VectorSource source(scenario->schema, scenario->clean);
    return scenarios::StreamPipelineToSink(
        &source, scenario->pipeline, seed, parallelism, sink, nullptr, nullptr,
        nullptr, scenario->stream_start, scenario->stream_end);
  };
}

Result<std::shared_ptr<const ResolvedScenario>> Resolve(
    const std::string& name, uint64_t seed) {
  ICEWAFL_ASSIGN_OR_RETURN(ResolvedScenario resolved,
                           scenarios::ResolveScenario(name, seed));
  return std::make_shared<const ResolvedScenario>(std::move(resolved));
}

/// The offline reference run (what `icewafl_cli run --output` writes).
std::string OfflineCsv(const std::shared_ptr<const ResolvedScenario>& scenario,
                       uint64_t seed, int parallelism) {
  TupleVector clean_copy = scenario->clean;
  VectorSource source(scenario->schema, std::move(clean_copy));
  auto offline = scenarios::ApplyPipelineStreaming(
      &source, scenario->pipeline, seed, parallelism, nullptr, nullptr,
      nullptr, scenario->stream_start, scenario->stream_end);
  EXPECT_TRUE(offline.ok()) << offline.status().ToString();
  if (!offline.ok()) return "";
  return ToCsvString(scenario->schema, offline.ValueOrDie());
}

/// Drains one subscription completely; empty csv on error.
struct TailResult {
  std::string csv;
  Status status = Status::OK();
  uint64_t received = 0;
};

TailResult TailAll(uint16_t port, const std::string& session_id = "") {
  TailResult result;
  auto client = StreamClient::Connect("127.0.0.1", port, session_id);
  if (!client.ok()) {
    result.status = client.status();
    return result;
  }
  StreamClient& stream = *client.ValueOrDie();
  TupleVector tuples;
  Tuple tuple;
  while (true) {
    auto next = stream.Next(&tuple);
    if (!next.ok()) {
      result.status = next.status();
      return result;
    }
    if (!next.ValueOrDie()) break;
    tuples.push_back(std::move(tuple));
  }
  result.received = stream.tuples_received();
  result.csv = ToCsvString(stream.schema(), tuples);
  return result;
}

void WaitForRuns(const PollutionServer& server, uint64_t n) {
  while (server.runs_completed() < n) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

// ---------------------------------------------------------------------
// Multi-session soak: one server, three named sessions, four
// subscribers each, all concurrent — every subscriber's bytes are
// identical to that session's offline CSV.
// ---------------------------------------------------------------------

TEST(PollutionServer, ThreeSessionsFourSubscribersEachMatchOfflineRuns) {
  struct Tenant {
    std::string name;
    std::string scenario;
    uint64_t seed;
  };
  const std::vector<Tenant> tenants = {{"alpha", "random_temporal", 42},
                                       {"beta", "network_delay", 7},
                                       {"gamma", "temporal_noise", 9}};
  constexpr int kSubscribers = 4;

  obs::MetricRegistry registry;
  ServerOptions options;
  options.workers = 2;  // three sessions share two workers
  options.metrics = &registry;
  PollutionServer server(options);
  std::map<std::string, std::string> expected;
  for (const Tenant& tenant : tenants) {
    auto scenario = Resolve(tenant.scenario, tenant.seed);
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    expected[tenant.name] =
        OfflineCsv(scenario.ValueOrDie(), tenant.seed, 1);
    SessionOptions session;
    session.min_subscribers = kSubscribers;
    session.max_runs = 1;
    ASSERT_TRUE(server
                    .AddSession(tenant.name,
                                scenario.ValueOrDie()->schema,
                                MakeScenarioSession(scenario.ValueOrDie(),
                                                    tenant.seed, 1),
                                session)
                    .ok());
  }
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.session_ids(),
            (std::vector<std::string>{"alpha", "beta", "gamma"}));

  std::vector<std::pair<std::string, TailResult>> results(
      tenants.size() * kSubscribers);
  std::vector<std::thread> tails;
  for (size_t t = 0; t < tenants.size(); ++t) {
    for (int i = 0; i < kSubscribers; ++i) {
      const size_t slot = t * kSubscribers + static_cast<size_t>(i);
      const std::string name = tenants[t].name;
      tails.emplace_back([&, slot, name] {
        results[slot] = {name, TailAll(server.port(), name)};
      });
    }
  }
  for (std::thread& t : tails) t.join();
  ASSERT_TRUE(server.Wait().ok());

  for (const auto& [name, result] : results) {
    ASSERT_TRUE(result.status.ok())
        << "subscriber of '" << name << "': " << result.status.ToString();
    EXPECT_EQ(result.csv, expected[name])
        << "subscriber of '" << name << "' diverged from the offline run";
  }
  EXPECT_EQ(server.runs_completed(), tenants.size());

  // Serve metrics carry the session label.
  const std::string prom = registry.ToPrometheusText();
  for (const Tenant& tenant : tenants) {
    EXPECT_NE(prom.find("icewafl_server_sessions_total{session=\"" +
                        tenant.name + "\"} 1"),
              std::string::npos)
        << prom;
    EXPECT_NE(prom.find("icewafl_server_tuples_sent_total{session=\"" +
                        tenant.name + "\"}"),
              std::string::npos);
    EXPECT_NE(prom.find("icewafl_server_send_latency_seconds"),
              std::string::npos);
  }
  EXPECT_NE(prom.find("icewafl_server_clients_accepted_total 12"),
            std::string::npos)
      << prom;
}

// A single worker still serves many sessions — they just run in turn.
TEST(PollutionServer, SingleWorkerDrivesThreeSessions) {
  PollutionServer server(ServerOptions{.workers = 1});
  for (const std::string name : {"a", "b", "c"}) {
    auto scenario = Resolve("random_temporal", 42);
    ASSERT_TRUE(scenario.ok());
    ASSERT_TRUE(server
                    .AddSession(name, scenario.ValueOrDie()->schema,
                                MakeScenarioSession(scenario.ValueOrDie(),
                                                    42, 1),
                                {.max_runs = 1})
                    .ok());
  }
  ASSERT_TRUE(server.Start().ok());
  std::vector<TailResult> results(3);
  std::vector<std::thread> tails;
  const std::vector<std::string> names = {"a", "b", "c"};
  for (size_t i = 0; i < names.size(); ++i) {
    tails.emplace_back(
        [&, i] { results[i] = TailAll(server.port(), names[i]); });
  }
  for (std::thread& t : tails) t.join();
  ASSERT_TRUE(server.Wait().ok());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok()) << results[i].status.ToString();
    EXPECT_EQ(results[i].csv, results[0].csv);
  }
}

// ---------------------------------------------------------------------
// Golden digest per scenario (the PR 5 guarantee, per session).
// ---------------------------------------------------------------------

TEST(PollutionServer, AllScenariosByteIdenticalToOfflineRunFourSubscribers) {
  constexpr uint64_t kSeed = 42;
  constexpr int kSubscribers = 4;
  for (const std::string& name : scenarios::ScenarioNames()) {
    SCOPED_TRACE(name);
    auto scenario = Resolve(name, kSeed);
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    const std::string expected_csv =
        OfflineCsv(scenario.ValueOrDie(), kSeed, 1);

    PollutionServer server;
    SessionOptions session;
    session.min_subscribers = kSubscribers;
    session.max_runs = 1;
    ASSERT_TRUE(server
                    .AddSession(name, scenario.ValueOrDie()->schema,
                                MakeScenarioSession(scenario.ValueOrDie(),
                                                    kSeed, 1),
                                session)
                    .ok());
    ASSERT_TRUE(server.Start().ok());

    std::vector<TailResult> results(kSubscribers);
    std::vector<std::thread> tails;
    for (int i = 0; i < kSubscribers; ++i) {
      tails.emplace_back([&, i] {
        results[static_cast<size_t>(i)] = TailAll(server.port(), name);
      });
    }
    for (std::thread& t : tails) t.join();
    ASSERT_TRUE(server.Wait().ok());

    for (int i = 0; i < kSubscribers; ++i) {
      const TailResult& r = results[static_cast<size_t>(i)];
      ASSERT_TRUE(r.status.ok())
          << "subscriber " << i << ": " << r.status.ToString();
      EXPECT_EQ(r.csv, expected_csv) << "subscriber " << i
                                     << " diverged from the offline run";
    }
    EXPECT_EQ(server.runs_completed(), 1u);
  }
}

TEST(PollutionServer, ParallelSessionMatchesParallelOfflineRun) {
  constexpr uint64_t kSeed = 7;
  constexpr int kParallelism = 2;
  auto scenario = Resolve("random_temporal", kSeed);
  ASSERT_TRUE(scenario.ok());
  PollutionServer server;
  ASSERT_TRUE(server
                  .AddSession("par", scenario.ValueOrDie()->schema,
                              MakeScenarioSession(scenario.ValueOrDie(),
                                                  kSeed, kParallelism),
                              {.max_runs = 1})
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  TailResult tail = TailAll(server.port(), "par");
  ASSERT_TRUE(server.Wait().ok());
  ASSERT_TRUE(tail.status.ok()) << tail.status.ToString();
  EXPECT_EQ(tail.csv, OfflineCsv(scenario.ValueOrDie(), kSeed, kParallelism));
}

// ---------------------------------------------------------------------
// Replays and late joiners: a session's consecutive runs are identical,
// and a late joiner subscribing by name gets the next run.
// ---------------------------------------------------------------------

TEST(PollutionServer, LateJoinerByNameGetsAnIdenticalReplay) {
  auto scenario = Resolve("random_temporal", 42);
  ASSERT_TRUE(scenario.ok());
  PollutionServer server;
  ASSERT_TRUE(server
                  .AddSession("alpha", scenario.ValueOrDie()->schema,
                              MakeScenarioSession(scenario.ValueOrDie(),
                                                  42, 1),
                              {.max_runs = 2})
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  TailResult first = TailAll(server.port(), "alpha");
  // The first run is over; a late joiner names the session and waits for
  // its second run.
  TailResult second = TailAll(server.port(), "alpha");
  ASSERT_TRUE(server.Wait().ok());
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  EXPECT_FALSE(first.csv.empty());
  EXPECT_EQ(first.csv, second.csv);
  EXPECT_EQ(server.runs_completed(), 2u);
}

// ---------------------------------------------------------------------
// Subscribe handshake failures (all surfaced as handshake Error frames
// with an attributable client-side message).
// ---------------------------------------------------------------------

TEST(PollutionServer, UnknownSessionIsRejectedWithAttributableError) {
  auto scenario = Resolve("random_temporal", 42);
  ASSERT_TRUE(scenario.ok());
  PollutionServer server;
  ASSERT_TRUE(server
                  .AddSession("alpha", scenario.ValueOrDie()->schema,
                              MakeScenarioSession(scenario.ValueOrDie(),
                                                  42, 1),
                              {})
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  auto client = StreamClient::Connect("127.0.0.1", server.port(), "nope");
  ASSERT_FALSE(client.ok());
  // The full message shape is part of the contract: it names the
  // session, the peer, and what went wrong.
  EXPECT_EQ(client.status().message(),
            "session 'nope' at 127.0.0.1:" +
                std::to_string(server.port()) +
                ": server error during handshake: unknown session 'nope' "
                "(available: alpha)");
  server.RequestStop();
  ASSERT_TRUE(server.Wait().ok());
}

TEST(PollutionServer, EmptyIdResolvesOnlyWhenOneSessionExists) {
  auto scenario = Resolve("random_temporal", 42);
  ASSERT_TRUE(scenario.ok());
  PollutionServer server;
  ASSERT_TRUE(server
                  .AddSession("alpha", scenario.ValueOrDie()->schema,
                              MakeScenarioSession(scenario.ValueOrDie(),
                                                  42, 1),
                              {.max_runs = 1})
                  .ok());
  ASSERT_TRUE(server
                  .AddSession("beta", scenario.ValueOrDie()->schema,
                              MakeScenarioSession(scenario.ValueOrDie(),
                                                  42, 1),
                              {.max_runs = 1})
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  // Ambiguous with two sessions: the client must name one.
  auto anonymous = StreamClient::Connect("127.0.0.1", server.port());
  ASSERT_FALSE(anonymous.ok());
  EXPECT_NE(anonymous.status().message().find(
                "subscribe must name one of the sessions: alpha, beta"),
            std::string::npos)
      << anonymous.status().ToString();
  TailResult a = TailAll(server.port(), "alpha");
  TailResult b = TailAll(server.port(), "beta");
  ASSERT_TRUE(server.Wait().ok());
  EXPECT_TRUE(a.status.ok()) << a.status.ToString();
  EXPECT_TRUE(b.status.ok()) << b.status.ToString();
}

/// Raw-socket hello: sends `frame` and returns the server's first
/// answer frame (type + payload).
void RawHello(uint16_t port, const std::string& frame, uint8_t* type,
              std::string* payload) {
  auto fd = ConnectTcp("127.0.0.1", port);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd.ValueOrDie().get(), frame.data() + off,
                             frame.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << "send failed";
    off += static_cast<size_t>(n);
  }
  FrameDecoder decoder;
  char buf[4096];
  while (true) {
    auto have = decoder.Next(type, payload);
    ASSERT_TRUE(have.ok()) << have.status().ToString();
    if (have.ValueOrDie()) return;
    const ssize_t n = ::recv(fd.ValueOrDie().get(), buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "server closed before answering the hello";
    decoder.Feed(buf, static_cast<size_t>(n));
  }
}

TEST(PollutionServer, WrongWireVersionGetsErrorFrame) {
  auto scenario = Resolve("random_temporal", 42);
  ASSERT_TRUE(scenario.ok());
  PollutionServer server;
  ASSERT_TRUE(server
                  .AddSession("alpha", scenario.ValueOrDie()->schema,
                              MakeScenarioSession(scenario.ValueOrDie(),
                                                  42, 1),
                              {})
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  uint8_t type = 0;
  std::string payload;
  RawHello(server.port(), EncodeSubscribeFrame(/*version=*/1, "alpha"),
           &type, &payload);
  EXPECT_EQ(type, kFrameError);
  EXPECT_EQ(payload, "unsupported wire version 1 (server speaks 2)");
  server.RequestStop();
  ASSERT_TRUE(server.Wait().ok());
}

TEST(PollutionServer, NonSubscribeHelloGetsErrorFrame) {
  auto scenario = Resolve("random_temporal", 42);
  ASSERT_TRUE(scenario.ok());
  PollutionServer server;
  ASSERT_TRUE(server
                  .AddSession("alpha", scenario.ValueOrDie()->schema,
                              MakeScenarioSession(scenario.ValueOrDie(),
                                                  42, 1),
                              {})
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  uint8_t type = 0;
  std::string payload;
  RawHello(server.port(), EncodeEndFrame(0), &type, &payload);
  EXPECT_EQ(type, kFrameError);
  EXPECT_NE(payload.find("expected a Subscribe hello frame"),
            std::string::npos)
      << payload;
  server.RequestStop();
  ASSERT_TRUE(server.Wait().ok());
}

// ---------------------------------------------------------------------
// Session lifecycle: runtime add, runtime stop (waiting and running
// paths), retirement.
// ---------------------------------------------------------------------

TEST(PollutionServer, AddSessionAfterStartServesIt) {
  auto scenario = Resolve("random_temporal", 42);
  ASSERT_TRUE(scenario.ok());
  PollutionServer server;
  ASSERT_TRUE(server
                  .AddSession("alpha", scenario.ValueOrDie()->schema,
                              MakeScenarioSession(scenario.ValueOrDie(),
                                                  42, 1),
                              {.max_runs = 1})
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  // Runtime session creation: registered only after the server is live.
  ASSERT_TRUE(server
                  .AddSession("beta", scenario.ValueOrDie()->schema,
                              MakeScenarioSession(scenario.ValueOrDie(),
                                                  42, 1),
                              {.max_runs = 1})
                  .ok());
  TailResult a = TailAll(server.port(), "alpha");
  TailResult b = TailAll(server.port(), "beta");
  ASSERT_TRUE(server.Wait().ok());
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  ASSERT_TRUE(b.status.ok()) << b.status.ToString();
  EXPECT_EQ(a.csv, b.csv);
}

TEST(PollutionServer, AddSessionRejectsDuplicatesAndBadIds) {
  auto scenario = Resolve("random_temporal", 42);
  ASSERT_TRUE(scenario.ok());
  SchemaPtr schema = scenario.ValueOrDie()->schema;
  auto fn = MakeScenarioSession(scenario.ValueOrDie(), 42, 1);
  PollutionServer server;
  ASSERT_TRUE(server.AddSession("alpha", schema, fn, {}).ok());
  Status dup = server.AddSession("alpha", schema, fn, {});
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists) << dup.ToString();
  EXPECT_FALSE(server.AddSession("", schema, fn, {}).ok());
  EXPECT_FALSE(
      server
          .AddSession(std::string(kMaxSessionIdBytes + 1, 'x'), schema, fn, {})
          .ok());
  EXPECT_FALSE(server.AddSession("noschema", nullptr, fn, {}).ok());
  EXPECT_FALSE(server.AddSession("nofn", schema, nullptr, {}).ok());
}

TEST(PollutionServer, StopSessionReleasesWaitingSubscribers) {
  auto scenario = Resolve("random_temporal", 42);
  ASSERT_TRUE(scenario.ok());
  PollutionServer server;
  SessionOptions options;
  options.min_subscribers = 2;  // one subscriber alone waits forever
  ASSERT_TRUE(server
                  .AddSession("alpha", scenario.ValueOrDie()->schema,
                              MakeScenarioSession(scenario.ValueOrDie(),
                                                  42, 1),
                              options)
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  auto client = StreamClient::Connect("127.0.0.1", server.port(), "alpha");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(server.StopSession("alpha").ok());
  Tuple tuple;
  auto next = client.ValueOrDie()->Next(&tuple);
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("session 'alpha' stopped"),
            std::string::npos)
      << next.status().ToString();
  // Retirement is idempotent; unknown sessions are NotFound.
  EXPECT_TRUE(server.StopSession("alpha").ok());
  EXPECT_EQ(server.StopSession("ghost").code(), StatusCode::kNotFound);
  ASSERT_TRUE(server.Wait().ok());
}

SchemaPtr FatSchema() {
  auto schema = Schema::Make(
      {{"t", ValueType::kInt64}, {"blob", ValueType::kString}}, "t");
  return schema.ValueOrDie();
}

/// ~32 KiB per tuple, `count` tuples — enough total volume that a
/// non-reading subscriber overflows its queue no matter how much the
/// kernel buffers on loopback.
PollutionServer::SessionFn MakeFatSession(SchemaPtr schema, int count) {
  return [schema, count](const PlanContext&, Sink* sink) {
    const std::string blob(32 * 1024, 'x');
    for (int i = 0; i < count; ++i) {
      Tuple tuple(schema, {Value(static_cast<int64_t>(i)), Value(blob)});
      tuple.set_id(static_cast<TupleId>(i));
      tuple.set_event_time(i);
      ICEWAFL_RETURN_NOT_OK(sink->Write(tuple));
    }
    return Status::OK();
  };
}

TEST(PollutionServer, StopSessionAbortsARunInProgress) {
  SchemaPtr schema = FatSchema();
  // Small queue + blocking policy so the run wedges on a non-reading
  // subscriber — exactly what a runtime stop must unwedge.
  ServerOptions options;
  options.queue_capacity = 4;
  options.slow_consumer = SlowConsumerPolicy::kBlock;
  PollutionServer server(options);
  ASSERT_TRUE(
      server.AddSession("fat", schema, MakeFatSession(schema, 100000), {})
          .ok());
  ASSERT_TRUE(server.Start().ok());
  auto client = StreamClient::Connect("127.0.0.1", server.port(), "fat");
  ASSERT_TRUE(client.ok());
  Tuple tuple;
  for (int i = 0; i < 3; ++i) {
    auto next = client.ValueOrDie()->Next(&tuple);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_TRUE(next.ValueOrDie());
  }
  ASSERT_TRUE(server.StopSession("fat").ok());
  // A session stop retires the sole session, so Wait() returns — and a
  // requested stop is not an error.
  ASSERT_TRUE(server.Wait().ok());
  Status status = Status::OK();
  while (status.ok()) {
    auto next = client.ValueOrDie()->Next(&tuple);
    if (!next.ok()) {
      status = next.status();
    } else if (!next.ValueOrDie()) {
      break;
    }
  }
  EXPECT_FALSE(status.ok()) << "an aborted run must not end cleanly";
}

TEST(PollutionServer, RetiredSessionRejectsNewSubscribers) {
  auto scenario = Resolve("random_temporal", 42);
  ASSERT_TRUE(scenario.ok());
  PollutionServer server;
  ASSERT_TRUE(server
                  .AddSession("alpha", scenario.ValueOrDie()->schema,
                              MakeScenarioSession(scenario.ValueOrDie(),
                                                  42, 1),
                              {.max_runs = 1})
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  TailResult first = TailAll(server.port(), "alpha");
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  WaitForRuns(server, 1);
  auto late = StreamClient::Connect("127.0.0.1", server.port(), "alpha");
  ASSERT_FALSE(late.ok());
  EXPECT_NE(late.status().message().find("session 'alpha' has ended"),
            std::string::npos)
      << late.status().ToString();
  ASSERT_TRUE(server.Wait().ok());
}

// ---------------------------------------------------------------------
// Slow-consumer policies (synthetic fat-tuple session so the bounded
// queue — not kernel socket buffering — is what overflows).
// ---------------------------------------------------------------------

TEST(PollutionServer, DropOldestKeepsRunGoingAndCountsDrops) {
  constexpr int kTuples = 700;  // ~22 MiB total
  obs::MetricRegistry registry;
  ServerOptions options;
  options.queue_capacity = 8;
  options.slow_consumer = SlowConsumerPolicy::kDropOldest;
  options.metrics = &registry;
  SchemaPtr schema = FatSchema();
  PollutionServer server(options);
  ASSERT_TRUE(server
                  .AddSession("fat", schema, MakeFatSession(schema, kTuples),
                              {.max_runs = 1})
                  .ok());
  ASSERT_TRUE(server.Start().ok());

  // Connect but do not read until the run has finished server-side:
  // the pipeline must not stall on this slow consumer.
  auto client = StreamClient::Connect("127.0.0.1", server.port(), "fat");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  WaitForRuns(server, 1);

  // Now drain: the subscriber sees gaps, surfaced as a count mismatch
  // when the End frame's total disagrees with what arrived.
  StreamClient& stream = *client.ValueOrDie();
  Tuple tuple;
  Status status;
  while (true) {
    auto next = stream.Next(&tuple);
    if (!next.ok()) {
      status = next.status();
      break;
    }
    if (!next.ValueOrDie()) break;
  }
  EXPECT_FALSE(status.ok()) << "a lossy stream must not end cleanly";
  EXPECT_LT(stream.tuples_received(), static_cast<uint64_t>(kTuples));
  ASSERT_TRUE(server.Wait().ok());
  EXPECT_NE(registry.ToPrometheusText().find(
                "icewafl_server_slow_drops_total{session=\"fat\"}"),
            std::string::npos)
      << registry.ToPrometheusText();
  // Reconciliation: every drop began life as a kFull TryPush on the
  // subscriber's frame queue, so the channel-level counter must account
  // for at least the session-level drop total (retired queues included —
  // the connection is gone by the time Wait() returns).
  const uint64_t slow_drops =
      registry.GetCounter("icewafl_server_slow_drops_total",
                          {{"session", "fat"}})
          ->value();
  EXPECT_GT(slow_drops, 0u);
  EXPECT_GE(server.frame_queue_stats().try_push_full, slow_drops);
}

// ---------------------------------------------------------------------
// Batch-frame capability: a negotiated subscriber receives columnar
// Batch frames, a default subscriber receives tuple frames, and both
// decode to byte-identical CSV — the offline run's bytes.
// ---------------------------------------------------------------------

TEST(PollutionServer, BatchAndTupleSubscribersSeeIdenticalStreams) {
  const uint64_t seed = 77;
  auto scenario = Resolve("random_temporal", seed);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  const std::string offline = OfflineCsv(scenario.ValueOrDie(), seed, 1);

  obs::MetricRegistry registry;
  ServerOptions options;
  options.metrics = &registry;
  options.batch_rows = 64;  // several full batches plus a partial tail
  PollutionServer server(options);
  SessionOptions session;
  session.min_subscribers = 2;  // both clients share one fanout
  session.max_runs = 1;
  ASSERT_TRUE(
      server
          .AddSession("wear", scenario.ValueOrDie()->schema,
                      MakeScenarioSession(scenario.ValueOrDie(), seed, 1),
                      session)
          .ok());
  ASSERT_TRUE(server.Start().ok());

  // One batch-capable and one plain subscriber share the run's fanout.
  auto batch_client =
      StreamClient::Connect("127.0.0.1", server.port(), "wear",
                            kCapBatchFrames);
  ASSERT_TRUE(batch_client.ok()) << batch_client.status().ToString();
  std::string tuple_csv;
  std::thread tuple_tail([&] {
    TailResult r = TailAll(server.port(), "wear");
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    tuple_csv = std::move(r.csv);
  });
  StreamClient& stream = *batch_client.ValueOrDie();
  TupleVector tuples;
  Tuple tuple;
  while (true) {
    auto next = stream.Next(&tuple);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    if (!next.ValueOrDie()) break;
    tuples.push_back(std::move(tuple));
  }
  tuple_tail.join();
  const std::string batch_csv = ToCsvString(stream.schema(), tuples);
  EXPECT_EQ(batch_csv, offline);
  EXPECT_EQ(tuple_csv, offline);
  // The End-frame accounting holds across unpacked batches.
  EXPECT_EQ(stream.tuples_received(), stream.reported_total());
  ASSERT_TRUE(server.Wait().ok());
  const uint64_t batches =
      registry.GetCounter("icewafl_server_batches_sent_total",
                          {{"session", "wear"}})
          ->value();
  EXPECT_GT(batches, 0u) << registry.ToPrometheusText();
}

TEST(PollutionServer, DisconnectPolicyCutsSlowConsumer) {
  constexpr int kTuples = 700;
  obs::MetricRegistry registry;
  ServerOptions options;
  options.queue_capacity = 8;
  options.slow_consumer = SlowConsumerPolicy::kDisconnect;
  options.metrics = &registry;
  SchemaPtr schema = FatSchema();
  PollutionServer server(options);
  ASSERT_TRUE(server
                  .AddSession("fat", schema, MakeFatSession(schema, kTuples),
                              {.max_runs = 1})
                  .ok());
  ASSERT_TRUE(server.Start().ok());

  auto client = StreamClient::Connect("127.0.0.1", server.port(), "fat");
  ASSERT_TRUE(client.ok());
  WaitForRuns(server, 1);

  StreamClient& stream = *client.ValueOrDie();
  Tuple tuple;
  Status status;
  while (true) {
    auto next = stream.Next(&tuple);
    if (!next.ok()) {
      status = next.status();
      break;
    }
    if (!next.ValueOrDie()) break;
  }
  // The victim observes a mid-stream disconnect (never a clean End).
  EXPECT_FALSE(status.ok());
  ASSERT_TRUE(server.Wait().ok());
  const std::string prom = registry.ToPrometheusText();
  EXPECT_NE(
      prom.find("icewafl_server_slow_disconnects_total{session=\"fat\"} 1"),
      std::string::npos)
      << prom;
}

// ---------------------------------------------------------------------
// Server lifecycle edges
// ---------------------------------------------------------------------

TEST(PollutionServer, DrainTellsAPendingHandshakeTheServerIsShuttingDown) {
  auto scenario = Resolve("random_temporal", 42);
  ASSERT_TRUE(scenario.ok());
  PollutionServer server;
  ASSERT_TRUE(server
                  .AddSession("alpha", scenario.ValueOrDie()->schema,
                              MakeScenarioSession(scenario.ValueOrDie(),
                                                  42, 1),
                              {.max_runs = 1})
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  TailResult first = TailAll(server.port(), "alpha");
  ASSERT_TRUE(first.status.ok());
  WaitForRuns(server, 1);

  // A connection that never says hello: Wait()'s drain still owes it a
  // courteous Error frame before hanging up.
  auto fd = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok());
  while (server.clients_connected() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(server.Wait().ok());
  FrameDecoder decoder;
  char buf[4096];
  uint8_t type = 0;
  std::string payload;
  while (true) {
    auto have = decoder.Next(&type, &payload);
    ASSERT_TRUE(have.ok()) << have.status().ToString();
    if (have.ValueOrDie()) break;
    const ssize_t n = ::recv(fd.ValueOrDie().get(), buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "server closed without an Error frame";
    decoder.Feed(buf, static_cast<size_t>(n));
  }
  EXPECT_EQ(type, kFrameError);
  EXPECT_EQ(payload, "server shutting down");
}

TEST(PollutionServer, RequestStopAbortsARunInProgress) {
  SchemaPtr schema = FatSchema();
  ServerOptions options;
  options.queue_capacity = 4;
  options.slow_consumer = SlowConsumerPolicy::kBlock;
  PollutionServer server(options);
  ASSERT_TRUE(
      server.AddSession("fat", schema, MakeFatSession(schema, 100000), {})
          .ok());
  ASSERT_TRUE(server.Start().ok());
  auto client = StreamClient::Connect("127.0.0.1", server.port(), "fat");
  ASSERT_TRUE(client.ok());
  Tuple tuple;
  for (int i = 0; i < 3; ++i) {
    auto next = client.ValueOrDie()->Next(&tuple);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_TRUE(next.ValueOrDie());
  }
  server.RequestStop();
  ASSERT_TRUE(server.Wait().ok());  // a requested stop is not an error
  // The abandoned subscriber observes a broken stream, not a clean end.
  Status status = Status::OK();
  while (status.ok()) {
    auto next = client.ValueOrDie()->Next(&tuple);
    if (!next.ok()) {
      status = next.status();
    } else if (!next.ValueOrDie()) {
      break;
    }
  }
  EXPECT_FALSE(status.ok());
}

TEST(PollutionServer, DestructorAbortsCleanly) {
  SchemaPtr schema = FatSchema();
  PollutionServer server;
  ASSERT_TRUE(
      server.AddSession("fat", schema, MakeFatSession(schema, 10), {}).ok());
  ASSERT_TRUE(server.Start().ok());
  // No Wait(), no RequestStop(): the destructor must tear down every
  // thread and fd without leaking or hanging.
}

TEST(StreamClient, ConnectToClosedPortFails) {
  auto client = StreamClient::Connect("127.0.0.1", 1);
  EXPECT_FALSE(client.ok());
}

TEST(PollutionServer, RunErrorReachesSubscriberAndWait) {
  SchemaPtr schema = FatSchema();
  PollutionServer::SessionFn failing = [schema](const PlanContext&,
                                                Sink* sink) {
    Tuple tuple(schema, {Value(int64_t{0}), Value("v")});
    ICEWAFL_RETURN_NOT_OK(sink->Write(tuple));
    return Status::Internal("polluter exploded");
  };
  PollutionServer server;
  ASSERT_TRUE(
      server.AddSession("boom", schema, failing, {.max_runs = 1}).ok());
  ASSERT_TRUE(server.Start().ok());
  auto client = StreamClient::Connect("127.0.0.1", server.port(), "boom");
  ASSERT_TRUE(client.ok());
  Tuple tuple;
  Status status = Status::OK();
  while (status.ok()) {
    auto next = client.ValueOrDie()->Next(&tuple);
    if (!next.ok()) {
      status = next.status();
    } else if (!next.ValueOrDie()) {
      break;
    }
  }
  EXPECT_NE(status.ToString().find("polluter exploded"), std::string::npos)
      << status.ToString();
  // The subscriber-visible error names the session and the peer.
  EXPECT_NE(status.message().find("session 'boom' at 127.0.0.1:"),
            std::string::npos)
      << status.ToString();
  // The run failure is also Wait()'s verdict.
  Status wait_status = server.Wait();
  EXPECT_FALSE(wait_status.ok());
  EXPECT_NE(wait_status.ToString().find("polluter exploded"),
            std::string::npos);
}

}  // namespace
}  // namespace net
}  // namespace icewafl
