#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "io/csv.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "scenarios/scenarios.h"
#include "stream/sink.h"
#include "stream/source.h"

namespace icewafl {
namespace net {
namespace {

using scenarios::ResolvedScenario;

/// One pollution session over the resolved scenario — the same replay
/// `icewafl_cli serve` runs, so served bytes must match the offline run.
PollutionServer::SessionFn MakeScenarioSession(
    std::shared_ptr<const ResolvedScenario> scenario, uint64_t seed,
    int parallelism) {
  return [scenario, seed, parallelism](Sink* sink) {
    VectorSource source(scenario->schema, scenario->clean);
    return scenarios::StreamPipelineToSink(
        &source, scenario->pipeline, seed, parallelism, sink, nullptr, nullptr,
        nullptr, scenario->stream_start, scenario->stream_end);
  };
}

/// Drains one subscription completely; empty csv on error.
struct TailResult {
  std::string csv;
  Status status = Status::OK();
  uint64_t received = 0;
};

TailResult TailAll(uint16_t port) {
  TailResult result;
  auto client = StreamClient::Connect("127.0.0.1", port);
  if (!client.ok()) {
    result.status = client.status();
    return result;
  }
  StreamClient& stream = *client.ValueOrDie();
  TupleVector tuples;
  Tuple tuple;
  while (true) {
    auto next = stream.Next(&tuple);
    if (!next.ok()) {
      result.status = next.status();
      return result;
    }
    if (!next.ValueOrDie()) break;
    tuples.push_back(std::move(tuple));
  }
  result.received = stream.tuples_received();
  result.csv = ToCsvString(stream.schema(), tuples);
  return result;
}

// ---------------------------------------------------------------------
// Golden digest: every subscriber of every scenario receives the
// byte-identical offline stream.
// ---------------------------------------------------------------------

TEST(PollutionServer, AllScenariosByteIdenticalToOfflineRunFourSubscribers) {
  constexpr uint64_t kSeed = 42;
  constexpr int kSubscribers = 4;
  for (const std::string& name : scenarios::ScenarioNames()) {
    SCOPED_TRACE(name);
    auto resolved = scenarios::ResolveScenario(name, kSeed);
    ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
    auto scenario = std::make_shared<const ResolvedScenario>(
        std::move(resolved).ValueOrDie());

    // Offline reference run (what `icewafl_cli run --output` writes).
    TupleVector clean_copy = scenario->clean;
    VectorSource source(scenario->schema, std::move(clean_copy));
    auto offline = scenarios::ApplyPipelineStreaming(
        &source, scenario->pipeline, kSeed, /*parallelism=*/1, nullptr,
        nullptr, nullptr, scenario->stream_start, scenario->stream_end);
    ASSERT_TRUE(offline.ok()) << offline.status().ToString();
    const std::string expected_csv =
        ToCsvString(scenario->schema, offline.ValueOrDie());

    obs::MetricRegistry registry;
    ServerOptions options;
    options.min_subscribers = kSubscribers;
    options.max_sessions = 1;
    options.metrics = &registry;
    PollutionServer server(scenario->schema,
                           MakeScenarioSession(scenario, kSeed, 1), options);
    ASSERT_TRUE(server.Start().ok());

    std::vector<TailResult> results(kSubscribers);
    std::vector<std::thread> tails;
    tails.reserve(kSubscribers);
    for (int i = 0; i < kSubscribers; ++i) {
      tails.emplace_back(
          [&, i] { results[static_cast<size_t>(i)] = TailAll(server.port()); });
    }
    for (std::thread& t : tails) t.join();
    ASSERT_TRUE(server.Wait().ok());

    for (int i = 0; i < kSubscribers; ++i) {
      const TailResult& r = results[static_cast<size_t>(i)];
      ASSERT_TRUE(r.status.ok())
          << "subscriber " << i << ": " << r.status.ToString();
      EXPECT_EQ(r.received, offline.ValueOrDie().size()) << "subscriber " << i;
      EXPECT_EQ(r.csv, expected_csv) << "subscriber " << i
                                     << " diverged from the offline run";
    }
    EXPECT_EQ(server.sessions_served(), 1u);
    // Serve metrics made it into the Prometheus export.
    const std::string prom = registry.ToPrometheusText();
    EXPECT_NE(prom.find("icewafl_server_sessions_total 1"), std::string::npos)
        << prom;
    EXPECT_NE(prom.find("icewafl_server_clients_accepted_total 4"),
              std::string::npos);
    EXPECT_NE(prom.find("icewafl_server_tuples_sent_total"),
              std::string::npos);
    EXPECT_NE(prom.find("icewafl_server_send_latency_seconds"),
              std::string::npos);
  }
}

TEST(PollutionServer, ParallelSessionMatchesParallelOfflineRun) {
  constexpr uint64_t kSeed = 7;
  constexpr int kParallelism = 2;
  auto resolved = scenarios::ResolveScenario("random_temporal", kSeed);
  ASSERT_TRUE(resolved.ok());
  auto scenario = std::make_shared<const ResolvedScenario>(
      std::move(resolved).ValueOrDie());

  TupleVector clean_copy = scenario->clean;
  VectorSource source(scenario->schema, std::move(clean_copy));
  auto offline = scenarios::ApplyPipelineStreaming(
      &source, scenario->pipeline, kSeed, kParallelism, nullptr, nullptr,
      nullptr, scenario->stream_start, scenario->stream_end);
  ASSERT_TRUE(offline.ok());

  PollutionServer server(scenario->schema,
                         MakeScenarioSession(scenario, kSeed, kParallelism),
                         {.max_sessions = 1});
  ASSERT_TRUE(server.Start().ok());
  TailResult tail = TailAll(server.port());
  ASSERT_TRUE(server.Wait().ok());
  ASSERT_TRUE(tail.status.ok()) << tail.status.ToString();
  EXPECT_EQ(tail.csv, ToCsvString(scenario->schema, offline.ValueOrDie()));
}

// ---------------------------------------------------------------------
// Session replay: consecutive sessions serve identical bytes.
// ---------------------------------------------------------------------

TEST(PollutionServer, ConsecutiveSessionsAreIdenticalReplays) {
  auto resolved = scenarios::ResolveScenario("random_temporal", 42);
  ASSERT_TRUE(resolved.ok());
  auto scenario = std::make_shared<const ResolvedScenario>(
      std::move(resolved).ValueOrDie());
  PollutionServer server(scenario->schema,
                         MakeScenarioSession(scenario, 42, 1),
                         {.max_sessions = 2});
  ASSERT_TRUE(server.Start().ok());
  TailResult first = TailAll(server.port());
  TailResult second = TailAll(server.port());
  ASSERT_TRUE(server.Wait().ok());
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  EXPECT_FALSE(first.csv.empty());
  EXPECT_EQ(first.csv, second.csv);
  EXPECT_EQ(server.sessions_served(), 2u);
}

// ---------------------------------------------------------------------
// Slow-consumer policies (synthetic fat-tuple session so the bounded
// queue — not kernel socket buffering — is what overflows).
// ---------------------------------------------------------------------

SchemaPtr FatSchema() {
  auto schema = Schema::Make(
      {{"t", ValueType::kInt64}, {"blob", ValueType::kString}}, "t");
  return schema.ValueOrDie();
}

/// ~32 KiB per tuple, `count` tuples — enough total volume that a
/// non-reading subscriber overflows its queue no matter how much the
/// kernel buffers on loopback.
PollutionServer::SessionFn MakeFatSession(SchemaPtr schema, int count) {
  return [schema, count](Sink* sink) {
    const std::string blob(32 * 1024, 'x');
    for (int i = 0; i < count; ++i) {
      Tuple tuple(schema, {Value(static_cast<int64_t>(i)), Value(blob)});
      tuple.set_id(static_cast<TupleId>(i));
      tuple.set_event_time(i);
      ICEWAFL_RETURN_NOT_OK(sink->Write(tuple));
    }
    return Status::OK();
  };
}

void WaitForSessions(const PollutionServer& server, uint64_t n) {
  while (server.sessions_served() < n) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(PollutionServer, DropOldestKeepsSessionRunningAndCountsDrops) {
  constexpr int kTuples = 700;  // ~22 MiB total
  obs::MetricRegistry registry;
  ServerOptions options;
  options.queue_capacity = 8;
  options.slow_consumer = SlowConsumerPolicy::kDropOldest;
  options.max_sessions = 1;
  options.metrics = &registry;
  SchemaPtr schema = FatSchema();
  PollutionServer server(schema, MakeFatSession(schema, kTuples), options);
  ASSERT_TRUE(server.Start().ok());

  // Connect but do not read until the session has finished server-side:
  // the pipeline must not stall on this slow consumer.
  auto client = StreamClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  WaitForSessions(server, 1);

  // Now drain: the subscriber sees gaps, surfaced as a count mismatch
  // when the End frame's total disagrees with what arrived.
  StreamClient& stream = *client.ValueOrDie();
  Tuple tuple;
  Status status;
  while (true) {
    auto next = stream.Next(&tuple);
    if (!next.ok()) {
      status = next.status();
      break;
    }
    if (!next.ValueOrDie()) break;
  }
  EXPECT_FALSE(status.ok()) << "a lossy stream must not end cleanly";
  EXPECT_LT(stream.tuples_received(), static_cast<uint64_t>(kTuples));
  ASSERT_TRUE(server.Wait().ok());
  EXPECT_NE(registry.ToPrometheusText().find("icewafl_server_slow_drops_total"),
            std::string::npos);
}

TEST(PollutionServer, DisconnectPolicyCutsSlowConsumer) {
  constexpr int kTuples = 700;
  obs::MetricRegistry registry;
  ServerOptions options;
  options.queue_capacity = 8;
  options.slow_consumer = SlowConsumerPolicy::kDisconnect;
  options.max_sessions = 1;
  options.metrics = &registry;
  SchemaPtr schema = FatSchema();
  PollutionServer server(schema, MakeFatSession(schema, kTuples), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = StreamClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  WaitForSessions(server, 1);

  StreamClient& stream = *client.ValueOrDie();
  Tuple tuple;
  Status status;
  while (true) {
    auto next = stream.Next(&tuple);
    if (!next.ok()) {
      status = next.status();
      break;
    }
    if (!next.ValueOrDie()) break;
  }
  // The victim observes a mid-stream disconnect (never a clean End).
  EXPECT_FALSE(status.ok());
  ASSERT_TRUE(server.Wait().ok());
  const std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("icewafl_server_slow_disconnects_total 1"),
            std::string::npos)
      << prom;
}

// ---------------------------------------------------------------------
// Lifecycle edges
// ---------------------------------------------------------------------

TEST(PollutionServer, LateJoinerIsToldTheServerIsShuttingDown) {
  auto resolved = scenarios::ResolveScenario("random_temporal", 42);
  ASSERT_TRUE(resolved.ok());
  auto scenario = std::make_shared<const ResolvedScenario>(
      std::move(resolved).ValueOrDie());
  PollutionServer server(scenario->schema,
                         MakeScenarioSession(scenario, 42, 1),
                         {.max_sessions = 1});
  ASSERT_TRUE(server.Start().ok());
  TailResult first = TailAll(server.port());
  ASSERT_TRUE(first.status.ok());

  // All sessions served, but the listener is still up until Wait():
  // a late joiner gets the handshake plus a courteous Error frame.
  auto late = StreamClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  ASSERT_TRUE(server.Wait().ok());
  Tuple tuple;
  auto next = late.ValueOrDie()->Next(&tuple);
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().ToString().find("shutting down"), std::string::npos)
      << next.status().ToString();
}

TEST(PollutionServer, RequestStopAbortsASessionInProgress) {
  SchemaPtr schema = FatSchema();
  // Unbounded sessions; small queue + blocking policy so the session
  // wedges on a non-reading subscriber — exactly what stop must unwedge.
  ServerOptions options;
  options.queue_capacity = 4;
  options.slow_consumer = SlowConsumerPolicy::kBlock;
  PollutionServer server(schema, MakeFatSession(schema, 100000), options);
  ASSERT_TRUE(server.Start().ok());
  auto client = StreamClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  // Read a handful of tuples, then abandon the stream.
  Tuple tuple;
  for (int i = 0; i < 3; ++i) {
    auto next = client.ValueOrDie()->Next(&tuple);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_TRUE(next.ValueOrDie());
  }
  server.RequestStop();
  ASSERT_TRUE(server.Wait().ok());  // a requested stop is not an error
  // The abandoned subscriber observes a broken stream, not a clean end.
  Status status = Status::OK();
  while (status.ok()) {
    auto next = client.ValueOrDie()->Next(&tuple);
    if (!next.ok()) {
      status = next.status();
    } else if (!next.ValueOrDie()) {
      break;
    }
  }
  EXPECT_FALSE(status.ok());
}

TEST(PollutionServer, DestructorAbortsCleanly) {
  SchemaPtr schema = FatSchema();
  PollutionServer server(schema, MakeFatSession(schema, 10), {});
  ASSERT_TRUE(server.Start().ok());
  // No Wait(), no RequestStop(): the destructor must tear down both
  // threads and every fd without leaking or hanging.
}

TEST(StreamClient, ConnectToClosedPortFails) {
  auto client = StreamClient::Connect("127.0.0.1", 1);
  EXPECT_FALSE(client.ok());
}

TEST(PollutionServer, SessionErrorReachesSubscriberAsErrorFrame) {
  SchemaPtr schema = FatSchema();
  PollutionServer::SessionFn failing = [schema](Sink* sink) {
    Tuple tuple(schema, {Value(int64_t{0}), Value("v")});
    ICEWAFL_RETURN_NOT_OK(sink->Write(tuple));
    return Status::Internal("polluter exploded");
  };
  PollutionServer server(schema, failing, {.max_sessions = 1});
  ASSERT_TRUE(server.Start().ok());
  auto client = StreamClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  Tuple tuple;
  Status status = Status::OK();
  while (status.ok()) {
    auto next = client.ValueOrDie()->Next(&tuple);
    if (!next.ok()) {
      status = next.status();
    } else if (!next.ValueOrDie()) {
      break;
    }
  }
  EXPECT_NE(status.ToString().find("polluter exploded"), std::string::npos)
      << status.ToString();
  // The session failure is also Wait()'s verdict.
  Status wait_status = server.Wait();
  EXPECT_FALSE(wait_status.ok());
  EXPECT_NE(wait_status.ToString().find("polluter exploded"),
            std::string::npos);
}

}  // namespace
}  // namespace net
}  // namespace icewafl
