// Live-reconfiguration tests: versioned plan snapshots swapped under a
// running server (DESIGN.md section 14). The load-bearing test is the
// cutover determinism contract: a subscriber's stream across a mid-run
// swap is byte-identical to offline runs of each recorded segment's
// plan over its clean-row slice, concatenated at the cutover boundary.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/plan.h"
#include "io/csv.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "scenarios/scenarios.h"

namespace icewafl {
namespace net {
namespace {

std::shared_ptr<PlanSnapshot> ScenarioPlan(const std::string& name,
                                           uint64_t seed,
                                           double tuples_per_sec = 0.0) {
  auto plan = scenarios::BuildScenarioPlan(name, seed, /*parallelism=*/1,
                                           tuples_per_sec);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.ok() ? plan.ValueOrDie() : nullptr;
}

/// Polls until the session reports `state` (runs are asynchronous).
void WaitForState(const PollutionServer& server, const std::string& id,
                  const std::string& state) {
  while (true) {
    auto info = server.session_info(id);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    if (info.ValueOrDie().state == state) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

// ---------------------------------------------------------------------
// The cutover determinism contract.
// ---------------------------------------------------------------------

TEST(PlanSwap, MidRunCutoverIsByteIdenticalToSegmentConcatenation) {
  // Pacing (~1500 rows/s over ~1059 rows) keeps the run alive long
  // enough to swap mid-stream without any timing heroics.
  std::shared_ptr<PlanSnapshot> v1 =
      ScenarioPlan("random_temporal", 42, /*tuples_per_sec=*/1500.0);
  ASSERT_NE(v1, nullptr);
  // Same seed, same wearable dataset, different pipeline — the swap the
  // paper's reconfiguration story cares about. Unpaced, so the post-
  // cutover remainder streams fast.
  std::shared_ptr<PlanSnapshot> v2 = ScenarioPlan("software_update", 42);
  ASSERT_NE(v2, nullptr);
  const SchemaPtr schema = v1->schema;

  obs::MetricRegistry registry;
  ServerOptions server_options;
  server_options.metrics = &registry;
  PollutionServer server(std::move(server_options));
  SessionOptions options;
  options.max_runs = 1;
  options.plan = v1;
  ASSERT_TRUE(server
                  .AddSession("live", nullptr, scenarios::ServePlanToSink,
                              std::move(options))
                  .ok());
  ASSERT_TRUE(server.Start().ok());

  auto client = StreamClient::Connect("127.0.0.1", server.port(), "live");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  WaitForState(server, "live", "running");
  // Let the paced source make some progress under version 1, then
  // publish version 2 while rows are in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_TRUE(server.SwapPlan("live", v2).ok());

  // The subscriber is never disconnected: one continuous stream, one
  // End frame whose count the client cross-checks against its receipts.
  TupleVector received;
  Tuple tuple;
  while (true) {
    auto next = client.ValueOrDie()->Next(&tuple);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    if (!next.ValueOrDie()) break;
    received.push_back(std::move(tuple));
  }
  EXPECT_TRUE(server.Wait().ok());

  auto info = server.session_info("live");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.ValueOrDie().plan_version, 2u);
  EXPECT_EQ(info.ValueOrDie().plan_swaps, 1u);
  const std::vector<PlanSegment>& segments = info.ValueOrDie().segments;
  ASSERT_EQ(segments.size(), 2u)
      << "the swap must have landed mid-run (pacing guarantees it)";
  EXPECT_EQ(segments[0].version, 1u);
  EXPECT_EQ(segments[0].start_row, 0u);
  EXPECT_EQ(segments[1].version, 2u);
  EXPECT_GT(segments[1].start_row, 0u);
  EXPECT_LT(segments[1].start_row, v2->clean->size());

  // Offline twin: old plan over [0, cut), new plan over [cut, end) —
  // concatenated, byte-identical to what the subscriber received. No
  // row dropped, duplicated, or polluted by two plans.
  TupleVector expected;
  for (size_t i = 0; i < segments.size(); ++i) {
    const PlanSnapshot& plan = segments[i].version == 1 ? *v1 : *v2;
    const uint64_t start = segments[i].start_row;
    const uint64_t end = i + 1 < segments.size() ? segments[i + 1].start_row
                                                 : plan.clean->size();
    auto part = scenarios::RunPlanSegmentOffline(plan, start, end);
    ASSERT_TRUE(part.ok()) << part.status().ToString();
    for (Tuple& t : part.ValueOrDie()) expected.push_back(std::move(t));
  }
  ASSERT_EQ(received.size(), expected.size());
  EXPECT_EQ(ToCsvString(schema, received), ToCsvString(schema, expected));

  // The swap is observable: gauge at the new version, counter bumped.
  const std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("icewafl_server_plan_version{session=\"live\"} 2"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("icewafl_server_plan_swaps_total{session=\"live\"} 1"),
            std::string::npos)
      << prom;
}

// ---------------------------------------------------------------------
// Swap semantics around the session lifecycle.
// ---------------------------------------------------------------------

TEST(PlanSwap, WaitingSessionAdoptsNewestPlanAtNextRun) {
  std::shared_ptr<PlanSnapshot> v1 = ScenarioPlan("random_temporal", 42);
  std::shared_ptr<PlanSnapshot> v2 = ScenarioPlan("software_update", 42);
  ASSERT_NE(v1, nullptr);
  ASSERT_NE(v2, nullptr);

  PollutionServer server;
  SessionOptions options;
  options.max_runs = 1;
  options.plan = v1;
  ASSERT_TRUE(server
                  .AddSession("live", nullptr, scenarios::ServePlanToSink,
                              std::move(options))
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  // Swap while the session is still waiting for its subscriber: the
  // whole run then executes under version 2.
  ASSERT_TRUE(server.SwapPlan("live", v2).ok());

  auto client = StreamClient::Connect("127.0.0.1", server.port(), "live");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  TupleVector received;
  Tuple tuple;
  while (true) {
    auto next = client.ValueOrDie()->Next(&tuple);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    if (!next.ValueOrDie()) break;
    received.push_back(std::move(tuple));
  }
  EXPECT_TRUE(server.Wait().ok());

  auto info = server.session_info("live");
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info.ValueOrDie().segments.size(), 1u);
  EXPECT_EQ(info.ValueOrDie().segments[0].version, 2u);
  auto offline =
      scenarios::RunPlanSegmentOffline(*v2, 0, v2->clean->size());
  ASSERT_TRUE(offline.ok());
  EXPECT_EQ(ToCsvString(v2->schema, received),
            ToCsvString(v2->schema, offline.ValueOrDie()));
}

TEST(PlanSwap, RejectsSchemaMismatchUnknownSessionAndRetired) {
  std::shared_ptr<PlanSnapshot> wearable = ScenarioPlan("random_temporal", 42);
  // temporal_noise runs against the air-quality schema — a swap would
  // invalidate the Schema frame subscribers hold from their handshake.
  std::shared_ptr<PlanSnapshot> airquality = ScenarioPlan("temporal_noise", 42);
  ASSERT_NE(wearable, nullptr);
  ASSERT_NE(airquality, nullptr);

  PollutionServer server;
  SessionOptions options;
  options.plan = wearable;
  ASSERT_TRUE(server
                  .AddSession("live", nullptr, scenarios::ServePlanToSink,
                              std::move(options))
                  .ok());

  Status mismatch = server.SwapPlan("live", airquality);
  EXPECT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.message().find("schema"), std::string::npos)
      << mismatch.ToString();

  EXPECT_EQ(server.SwapPlan("nope", ScenarioPlan("random_temporal", 42)).code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(server.SwapPlan("live", nullptr).ok());

  ASSERT_TRUE(server.StopSession("live").ok());
  Status retired =
      server.SwapPlan("live", ScenarioPlan("software_update", 42));
  EXPECT_FALSE(retired.ok()) << "a retired session accepts no new plans";

  server.RequestStop();
}

TEST(PlanSwap, RejectsPlanLessSessionsAndUpdateRepublishes) {
  std::shared_ptr<PlanSnapshot> plan = ScenarioPlan("random_temporal", 42);
  ASSERT_NE(plan, nullptr);
  PollutionServer server;
  // A legacy plan-less session: explicit schema, hand-rolled fn.
  ASSERT_TRUE(server
                  .AddSession("legacy", plan->schema,
                              [](const PlanContext&, Sink*) {
                                return Status::OK();
                              })
                  .ok());
  EXPECT_FALSE(
      server.SwapPlan("legacy", ScenarioPlan("random_temporal", 42)).ok());
  EXPECT_FALSE(
      server.UpdateSession("legacy", [](PlanSnapshot*) {}).ok());

  // A plan session: UpdateSession clones, mutates, republishes.
  SessionOptions options;
  options.plan = plan;
  ASSERT_TRUE(server
                  .AddSession("live", nullptr, scenarios::ServePlanToSink,
                              std::move(options))
                  .ok());
  ASSERT_TRUE(server
                  .UpdateSession("live",
                                 [](PlanSnapshot* next) {
                                   next->tuples_per_sec = 250.0;
                                 })
                  .ok());
  auto published = server.session_plan("live");
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(published.ValueOrDie()->version, 2u);
  EXPECT_EQ(published.ValueOrDie()->tuples_per_sec, 250.0);
  // The original snapshot is immutable — the update cloned it.
  EXPECT_EQ(plan->tuples_per_sec, 0.0);
  EXPECT_EQ(plan->version, 1u);

  server.RequestStop();
}

TEST(PlanSwap, BackToBackSwapsCollapseToNewestVersion) {
  std::shared_ptr<PlanSnapshot> v1 =
      ScenarioPlan("random_temporal", 42, /*tuples_per_sec=*/1500.0);
  ASSERT_NE(v1, nullptr);
  PollutionServer server;
  SessionOptions options;
  options.max_runs = 1;
  options.plan = v1;
  ASSERT_TRUE(server
                  .AddSession("live", nullptr, scenarios::ServePlanToSink,
                              std::move(options))
                  .ok());
  ASSERT_TRUE(server.Start().ok());

  auto client = StreamClient::Connect("127.0.0.1", server.port(), "live");
  ASSERT_TRUE(client.ok());
  WaitForState(server, "live", "running");
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  // Two publications between cutover probes: the runner adopts the
  // newest and the intermediate version never produces a row.
  ASSERT_TRUE(server.SwapPlan("live", ScenarioPlan("software_update", 42)).ok());
  ASSERT_TRUE(
      server.SwapPlan("live", ScenarioPlan("software_update", 42, 0.0)).ok());

  TupleVector received;
  Tuple tuple;
  while (true) {
    auto next = client.ValueOrDie()->Next(&tuple);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    if (!next.ValueOrDie()) break;
    received.push_back(std::move(tuple));
  }
  EXPECT_TRUE(server.Wait().ok());

  auto info = server.session_info("live");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.ValueOrDie().plan_version, 3u);
  for (const PlanSegment& segment : info.ValueOrDie().segments) {
    EXPECT_NE(segment.version, 2u)
        << "version 2 was superseded before any cutover adopted it";
  }
}

}  // namespace
}  // namespace net
}  // namespace icewafl
