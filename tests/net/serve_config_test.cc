#include "net/serve_config.h"

#include <gtest/gtest.h>

#include <string>

#include "analysis/analyzer.h"
#include "net/wire.h"
#include "scenarios/scenarios.h"

namespace icewafl {
namespace net {
namespace {

Json ParseOrDie(const std::string& text) {
  auto parsed = Json::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).ValueOrDie();
}

analysis::ServeAnalyzeOptions LintOptions() {
  analysis::ServeAnalyzeOptions options;
  options.known_scenarios = scenarios::ScenarioNames();
  options.known_policies = SlowConsumerPolicyNames();
  return options;
}

// ---------------------------------------------------------------------
// ServeConfig::FromJson — the enforcing twin of the IW6xx lint.
// ---------------------------------------------------------------------

TEST(ServeConfig, ParsesLegacySingleSessionDocument) {
  Json json = ParseOrDie(R"({
    "scenario": "network_delay",
    "host": "0.0.0.0",
    "port": 9099,
    "seed": 7,
    "parallelism": 3,
    "min_subscribers": 2,
    "max_sessions": 5,
    "queue_capacity": 64,
    "slow_consumer": "drop_oldest"
  })");
  auto config = ServeConfig::FromJson(json);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  const ServeConfig& c = config.ValueOrDie();
  ASSERT_EQ(c.sessions.size(), 1u);
  // The legacy shape is one anonymous session named after its scenario;
  // `max_sessions` is the pre-v2 name of `max_runs`.
  EXPECT_EQ(c.sessions[0].name, "network_delay");
  EXPECT_EQ(c.sessions[0].scenario, "network_delay");
  EXPECT_EQ(c.sessions[0].seed, 7u);
  EXPECT_EQ(c.sessions[0].parallelism, 3);
  EXPECT_EQ(c.sessions[0].min_subscribers, 2);
  EXPECT_EQ(c.sessions[0].max_runs, 5u);
  EXPECT_EQ(c.host, "0.0.0.0");
  EXPECT_EQ(c.port, 9099);
  EXPECT_EQ(c.queue_capacity, 64u);
  EXPECT_EQ(c.slow_consumer, SlowConsumerPolicy::kDropOldest);
}

TEST(ServeConfig, ParsesMultiSessionDocument) {
  Json json = ParseOrDie(R"({
    "sessions": [
      {"name": "alpha", "scenario": "random_temporal", "seed": 1,
       "min_subscribers": 3, "max_runs": 2},
      {"scenario": "network_delay", "parallelism": 2}
    ],
    "port": 9099,
    "workers": 4,
    "slow_consumer": "disconnect"
  })");
  auto config = ServeConfig::FromJson(json);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  const ServeConfig& c = config.ValueOrDie();
  ASSERT_EQ(c.sessions.size(), 2u);
  EXPECT_EQ(c.sessions[0].name, "alpha");
  EXPECT_EQ(c.sessions[0].scenario, "random_temporal");
  EXPECT_EQ(c.sessions[0].seed, 1u);
  EXPECT_EQ(c.sessions[0].min_subscribers, 3);
  EXPECT_EQ(c.sessions[0].max_runs, 2u);
  EXPECT_EQ(c.sessions[1].name, "network_delay");  // defaults to scenario
  EXPECT_EQ(c.sessions[1].parallelism, 2);
  EXPECT_EQ(c.workers, 4);
  EXPECT_EQ(c.slow_consumer, SlowConsumerPolicy::kDisconnect);
}

TEST(ServeConfig, DefaultsApplyWhenOnlyScenarioGiven) {
  auto config =
      ServeConfig::FromJson(ParseOrDie(R"({"scenario": "temporal_noise"})"));
  ASSERT_TRUE(config.ok());
  const ServeConfig& c = config.ValueOrDie();
  EXPECT_EQ(c.host, "127.0.0.1");
  EXPECT_EQ(c.port, 0);
  EXPECT_EQ(c.workers, 2);
  EXPECT_EQ(c.queue_capacity, 256u);
  EXPECT_EQ(c.slow_consumer, SlowConsumerPolicy::kBlock);
  ASSERT_EQ(c.sessions.size(), 1u);
  EXPECT_EQ(c.sessions[0].seed, 42u);
  EXPECT_EQ(c.sessions[0].parallelism, 1);
  EXPECT_EQ(c.sessions[0].min_subscribers, 1);
  EXPECT_EQ(c.sessions[0].max_runs, 0u);
}

TEST(ServeConfig, RejectsBadDocuments) {
  const std::string oversized(kMaxSessionIdBytes + 1, 'n');
  const std::string bad[] = {
      R"(42)",                                            // not an object
      R"({})",                                            // no scenario
      R"({"scenario": 3})",                               // scenario type
      R"({"scenario": "s", "port": 65536})",              // port range
      R"({"scenario": "s", "port": -1})",                 // port range
      R"({"scenario": "s", "admin_port": 65536})",        // admin range
      R"({"scenario": "s", "admin_port": -1})",           // admin range
      R"({"scenario": "s", "admin_port": "auto"})",       // admin type
      R"({"scenario": "s", "queue_capacity": 0})",        // capacity
      R"({"scenario": "s", "workers": 0})",               // worker pool
      R"({"scenario": "s", "workers": 2.5})",             // fractional pool
      R"({"scenario": "s", "workers": "many"})",          // pool type
      R"({"scenario": "s", "workers": 4294967296})",      // pool overflow
      R"({"scenario": "s", "parallelism": 0})",           // parallelism
      R"({"scenario": "s", "min_subscribers": 0})",       // subscribers
      R"({"scenario": "s", "max_sessions": -2})",         // legacy max_runs
      R"({"scenario": "s", "seed": -1})",                 // seed
      R"({"scenario": "s", "slow_consumer": "panic"})",   // policy enum
      R"({"scenario": "s", "host": 1})",                  // host type
      R"({"scenario": "s", "sessions": []})",             // mixed shapes
      R"({"sessions": []})",                              // empty array
      R"({"sessions": {}})",                              // not an array
      R"({"sessions": [7]})",                             // entry not object
      R"({"sessions": [{}]})",                            // entry no scenario
      R"({"sessions": [{"scenario": "s", "name": ""}]})",  // empty name
      R"({"sessions": [{"scenario": "s", "name": "a\tb"}]})",  // control char
      R"({"sessions": [{"scenario": "s", "max_runs": -1}]})",
      R"({"sessions": [{"scenario": "s"}, {"scenario": "s"}]})",  // dup name
      R"({"sessions": [{"scenario": "s", "name": ")" + oversized + R"("}]})",
  };
  for (const std::string& text : bad) {
    SCOPED_TRACE(text);
    EXPECT_FALSE(ServeConfig::FromJson(ParseOrDie(text)).ok());
  }
}

TEST(ServeConfig, JsonRoundTripIsStable) {
  ServeConfig config;
  SessionConfig alpha;
  alpha.name = "alpha";
  alpha.scenario = "temporal_scale";
  alpha.min_subscribers = 4;
  SessionConfig beta;
  beta.name = "beta";
  beta.scenario = "network_delay";
  beta.max_runs = 3;
  config.sessions = {alpha, beta};
  config.port = 1234;
  config.admin_port = 9100;
  config.workers = 3;
  config.slow_consumer = SlowConsumerPolicy::kDisconnect;
  auto back = ServeConfig::FromJson(config.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.ValueOrDie().ToJson().Dump(), config.ToJson().Dump());
}

TEST(ServeConfig, SessionCleanerKeyParsesAndRoundTrips) {
  auto config = ServeConfig::FromJson(ParseOrDie(R"({
    "sessions": [
      {"name": "scrubbed", "scenario": "software_update",
       "cleaner": {"name": "wear_clean",
                   "rules": [{"label": "bpm", "column": "BPM",
                              "detect": {"type": "not_null"},
                              "repair": "last_good"}]}},
      {"name": "raw", "scenario": "software_update", "cleaner": null}
    ],
    "port": 0
  })"));
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  const ServeConfig& c = config.ValueOrDie();
  ASSERT_EQ(c.sessions.size(), 2u);
  ASSERT_TRUE(c.sessions[0].cleaner.is_object());
  EXPECT_EQ(c.sessions[0].cleaner.GetString("name", ""), "wear_clean");
  // `"cleaner": null` means "no cleaner" and canonicalizes to absence.
  EXPECT_TRUE(c.sessions[1].cleaner.is_null());

  Json json = c.ToJson();
  const Json::Array& entries = json.Get("sessions").ValueOrDie().items();
  EXPECT_TRUE(entries[0].Has("cleaner"));
  EXPECT_FALSE(entries[1].Has("cleaner"));
  auto back = ServeConfig::FromJson(json);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.ValueOrDie().ToJson().Dump(), json.Dump());
}

TEST(ServeConfig, RejectsNonObjectCleaner) {
  auto config = ServeConfig::FromJson(ParseOrDie(
      R"({"sessions": [{"scenario": "s", "cleaner": 7}], "port": 0})"));
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.status().ToString().find("cleaning document"),
            std::string::npos)
      << config.status().ToString();
}

TEST(ServeConfig, LegacyDocumentCanonicalizesToSessionsArray) {
  auto config = ServeConfig::FromJson(
      ParseOrDie(R"({"scenario": "random_temporal", "max_sessions": 2})"));
  ASSERT_TRUE(config.ok());
  Json json = config.ValueOrDie().ToJson();
  EXPECT_TRUE(json.Has("sessions"));
  EXPECT_FALSE(json.Has("scenario"));
  auto back = ServeConfig::FromJson(json);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.ValueOrDie().sessions[0].max_runs, 2u);
}

TEST(ServeConfig, ToServerOptionsCarriesEveryKnob) {
  ServeConfig config;
  config.host = "::1";
  config.port = 4242;
  config.workers = 5;
  config.queue_capacity = 17;
  config.slow_consumer = SlowConsumerPolicy::kDropOldest;
  ServerOptions options = config.ToServerOptions(nullptr);
  EXPECT_EQ(options.host, "::1");
  EXPECT_EQ(options.port, 4242);
  EXPECT_EQ(options.workers, 5);
  EXPECT_EQ(options.queue_capacity, 17u);
  EXPECT_EQ(options.slow_consumer, SlowConsumerPolicy::kDropOldest);
  EXPECT_EQ(options.metrics, nullptr);
}

TEST(ServeConfig, ToSessionOptionsCarriesPerSessionKnobs) {
  SessionConfig session;
  session.min_subscribers = 3;
  session.max_runs = 9;
  SessionOptions options = session.ToSessionOptions();
  EXPECT_EQ(options.min_subscribers, 3);
  EXPECT_EQ(options.max_runs, 9u);
}

TEST(SlowConsumerPolicy, NamesRoundTrip) {
  for (const std::string& name : SlowConsumerPolicyNames()) {
    auto policy = SlowConsumerPolicyFromName(name);
    ASSERT_TRUE(policy.ok()) << name;
    EXPECT_EQ(SlowConsumerPolicyName(policy.ValueOrDie()), name);
  }
  EXPECT_FALSE(SlowConsumerPolicyFromName("never-heard-of-it").ok());
}

// ---------------------------------------------------------------------
// IW6xx lint fixtures — every code fires on its fixture and stays
// silent on a clean document.
// ---------------------------------------------------------------------

TEST(AnalyzeServeConfig, CleanConfigsHaveNoDiagnostics) {
  for (const char* text :
       {R"({
          "scenario": "random_temporal",
          "port": 9099,
          "queue_capacity": 32,
          "slow_consumer": "block"
        })",
        R"({
          "sessions": [
            {"name": "alpha", "scenario": "random_temporal", "max_runs": 1},
            {"scenario": "network_delay", "min_subscribers": 2}
          ],
          "workers": 3,
          "port": 9099
        })",
        // "cleaner": null means "no cleaner" — FromJson parity; a valid
        // embedded document must lint clean too.
        R"({
          "sessions": [
            {"name": "raw", "scenario": "software_update", "cleaner": null},
            {"name": "scrubbed", "scenario": "software_update",
             "cleaner": {"rules": [{"label": "bpm", "column": "BPM",
                                    "detect": {"type": "not_null"},
                                    "repair": "last_good"}]}}
          ],
          "port": 9099
        })"}) {
    SCOPED_TRACE(text);
    Diagnostics diags =
        analysis::AnalyzeServeConfig(ParseOrDie(text), LintOptions());
    EXPECT_TRUE(diags.empty()) << diags.ToReport();
  }
}

TEST(AnalyzeServeConfig, IW601FiresOnBadPort) {
  for (const char* text :
       {R"({"scenario": "random_temporal", "port": 70000})",
        R"({"scenario": "random_temporal", "port": -5})",
        R"({"scenario": "random_temporal", "port": "http"})"}) {
    SCOPED_TRACE(text);
    Diagnostics diags =
        analysis::AnalyzeServeConfig(ParseOrDie(text), LintOptions());
    EXPECT_TRUE(diags.HasCode("IW601")) << diags.ToReport();
    EXPECT_TRUE(diags.HasErrors());
  }
}

TEST(AnalyzeServeConfig, IW602FiresOnUnknownPolicy) {
  Diagnostics diags = analysis::AnalyzeServeConfig(
      ParseOrDie(R"({"scenario": "random_temporal",
                     "slow_consumer": "drop_newest"})"),
      LintOptions());
  EXPECT_TRUE(diags.HasCode("IW602")) << diags.ToReport();
}

TEST(AnalyzeServeConfig, IW603FiresOnNonPositiveQueueCapacity) {
  for (const char* text :
       {R"({"scenario": "random_temporal", "queue_capacity": 0})",
        R"({"scenario": "random_temporal", "queue_capacity": "big"})"}) {
    SCOPED_TRACE(text);
    Diagnostics diags =
        analysis::AnalyzeServeConfig(ParseOrDie(text), LintOptions());
    EXPECT_TRUE(diags.HasCode("IW603")) << diags.ToReport();
  }
}

TEST(AnalyzeServeConfig, IW604WarnsOnUnknownKey) {
  for (const char* text :
       {R"({"scenario": "random_temporal", "protocl": "tcp"})",
        R"({"sessions": [{"scenario": "random_temporal", "sed": 1}]})"}) {
    SCOPED_TRACE(text);
    Diagnostics diags =
        analysis::AnalyzeServeConfig(ParseOrDie(text), LintOptions());
    EXPECT_TRUE(diags.HasCode("IW604")) << diags.ToReport();
    EXPECT_FALSE(diags.HasErrors()) << "unknown keys warn, not fail";
  }
}

TEST(AnalyzeServeConfig, IW604FlagsSessionKnobsAtTopLevelOfSessionsDoc) {
  // In the multi-session shape the per-session knobs belong inside the
  // entries; a stray top-level `seed` is a likely porting mistake.
  Diagnostics diags = analysis::AnalyzeServeConfig(
      ParseOrDie(R"({"sessions": [{"scenario": "random_temporal"}],
                     "seed": 1})"),
      LintOptions());
  EXPECT_TRUE(diags.HasCode("IW604")) << diags.ToReport();
}

TEST(AnalyzeServeConfig, IW605FiresOnMissingOrUnknownScenario) {
  for (const char* text :
       {R"({})", R"({"scenario": 9})",
        R"({"scenario": "random_temporel"})",
        R"({"sessions": [{"name": "a"}]})",
        R"({"sessions": [{"scenario": "random_temporel"}]})"}) {
    SCOPED_TRACE(text);
    Diagnostics diags =
        analysis::AnalyzeServeConfig(ParseOrDie(text), LintOptions());
    EXPECT_TRUE(diags.HasCode("IW605")) << diags.ToReport();
  }
}

TEST(AnalyzeServeConfig, IW606FiresOnOtherBadBounds) {
  for (const char* text :
       {R"({"scenario": "random_temporal", "seed": -1})",
        R"({"scenario": "random_temporal", "parallelism": 0})",
        R"({"scenario": "random_temporal", "min_subscribers": 0})",
        R"({"scenario": "random_temporal", "max_sessions": -1})",
        R"({"scenario": "random_temporal", "host": 7})",
        R"({"sessions": [{"scenario": "random_temporal", "max_runs": -1}]})",
        R"({"sessions": [{"scenario": "random_temporal", "seed": -2}]})"}) {
    SCOPED_TRACE(text);
    Diagnostics diags =
        analysis::AnalyzeServeConfig(ParseOrDie(text), LintOptions());
    EXPECT_TRUE(diags.HasCode("IW606")) << diags.ToReport();
  }
}

TEST(AnalyzeServeConfig, IW609FiresOnNonPositiveIntegerWorkers) {
  for (const char* text :
       {R"({"scenario": "random_temporal", "workers": 0})",
        R"({"scenario": "random_temporal", "workers": -2})",
        R"({"scenario": "random_temporal", "workers": 2.5})",
        R"({"scenario": "random_temporal", "workers": "many"})",
        R"({"scenario": "random_temporal", "workers": 4294967296})"}) {
    SCOPED_TRACE(text);
    Diagnostics diags =
        analysis::AnalyzeServeConfig(ParseOrDie(text), LintOptions());
    EXPECT_TRUE(diags.HasCode("IW609")) << diags.ToReport();
    EXPECT_TRUE(diags.HasErrors());
  }
  // Whole-valued doubles (a JSON "4" parsed as 4.0) are integers.
  Diagnostics diags = analysis::AnalyzeServeConfig(
      ParseOrDie(R"({"scenario": "random_temporal", "workers": 4})"),
      LintOptions());
  EXPECT_FALSE(diags.HasCode("IW609")) << diags.ToReport();
}

TEST(AnalyzeServeConfig, IW607FiresOnBadSessionNames) {
  const std::string oversized(300, 'n');
  for (const std::string& text :
       {std::string(
            R"({"sessions": [{"scenario": "random_temporal", "name": ""}]})"),
        std::string(
            R"({"sessions": [{"scenario": "random_temporal", "name": 7}]})"),
        R"({"sessions": [{"scenario": "random_temporal", "name": ")" +
            oversized + R"("}]})",
        std::string(R"({"sessions": [
            {"scenario": "random_temporal", "name": "twin"},
            {"scenario": "network_delay", "name": "twin"}]})")}) {
    SCOPED_TRACE(text);
    Diagnostics diags =
        analysis::AnalyzeServeConfig(ParseOrDie(text), LintOptions());
    EXPECT_TRUE(diags.HasCode("IW607")) << diags.ToReport();
    EXPECT_TRUE(diags.HasErrors());
  }
  // Two entries of the same scenario with distinct names are fine.
  Diagnostics diags = analysis::AnalyzeServeConfig(
      ParseOrDie(R"({"sessions": [
          {"scenario": "random_temporal", "name": "a"},
          {"scenario": "random_temporal", "name": "b"}]})"),
      LintOptions());
  EXPECT_FALSE(diags.HasCode("IW607")) << diags.ToReport();
}

TEST(ServeConfig, AdminPortParsesAndDefaultsOff) {
  // Absent: the admin channel stays disabled and round-trips away.
  auto off = ServeConfig::FromJson(
      ParseOrDie(R"({"scenario": "random_temporal"})"));
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off.ValueOrDie().admin_port, -1);
  EXPECT_FALSE(off.ValueOrDie().ToJson().Has("admin_port"));
  // 0 is a legal value: bind an ephemeral admin port.
  auto ephemeral = ServeConfig::FromJson(
      ParseOrDie(R"({"scenario": "random_temporal", "admin_port": 0})"));
  ASSERT_TRUE(ephemeral.ok());
  EXPECT_EQ(ephemeral.ValueOrDie().admin_port, 0);
  EXPECT_TRUE(ephemeral.ValueOrDie().ToJson().Has("admin_port"));
}

TEST(AnalyzeServeConfig, IW601FiresOnBadAdminPort) {
  for (const char* text :
       {R"({"scenario": "random_temporal", "admin_port": 65536})",
        R"({"scenario": "random_temporal", "admin_port": -1})",
        R"({"scenario": "random_temporal", "admin_port": "auto"})"}) {
    SCOPED_TRACE(text);
    Diagnostics diags =
        analysis::AnalyzeServeConfig(ParseOrDie(text), LintOptions());
    EXPECT_TRUE(diags.HasCode("IW601")) << diags.ToReport();
    EXPECT_TRUE(diags.HasErrors());
  }
  Diagnostics clean = analysis::AnalyzeServeConfig(
      ParseOrDie(R"({"scenario": "random_temporal", "admin_port": 0})"),
      LintOptions());
  EXPECT_FALSE(clean.HasCode("IW601")) << clean.ToReport();
}

TEST(AnalyzeServeConfig, IW615FiresOnControlCharacterNames) {
  for (const char* text :
       {R"({"sessions": [{"scenario": "random_temporal",
                          "name": "a\tb"}]})",
        R"({"sessions": [{"scenario": "random_temporal",
                          "name": "line\nbreak"}]})",
        R"({"sessions": [{"scenario": "random_temporal",
                          "name": "del\u007fete"}]})"}) {
    SCOPED_TRACE(text);
    Diagnostics diags =
        analysis::AnalyzeServeConfig(ParseOrDie(text), LintOptions());
    EXPECT_TRUE(diags.HasCode("IW615")) << diags.ToReport();
    EXPECT_TRUE(diags.HasErrors());
  }
  // Spaces and punctuation are printable, not control characters.
  Diagnostics clean = analysis::AnalyzeServeConfig(
      ParseOrDie(R"({"sessions": [{"scenario": "random_temporal",
                                   "name": "live session #1"}]})"),
      LintOptions());
  EXPECT_FALSE(clean.HasCode("IW615")) << clean.ToReport();
}

TEST(AnalyzeServeConfig, IW608FiresOnMalformedSessionsShape) {
  for (const char* text :
       {R"({"scenario": "random_temporal", "sessions": []})",
        R"({"sessions": []})", R"({"sessions": {}})",
        R"({"sessions": [7]})"}) {
    SCOPED_TRACE(text);
    Diagnostics diags =
        analysis::AnalyzeServeConfig(ParseOrDie(text), LintOptions());
    EXPECT_TRUE(diags.HasCode("IW608")) << diags.ToReport();
    EXPECT_TRUE(diags.HasErrors());
  }
}

TEST(AnalyzeServeConfig, LintAgreesWithFromJson) {
  // The advisory lint and the enforcing parser must accept/reject the
  // same documents (modulo IW604 warnings and scenario-name knowledge).
  const char* docs[] = {
      R"({"scenario": "random_temporal"})",
      R"({"scenario": "random_temporal", "port": 70000})",
      R"({"scenario": "random_temporal", "queue_capacity": 0})",
      R"({"scenario": "random_temporal", "slow_consumer": "nope"})",
      R"({"scenario": "random_temporal", "parallelism": -3})",
      R"({"scenario": "random_temporal", "workers": 0})",
      R"({"scenario": "random_temporal", "workers": 2.5})",
      R"({"scenario": "random_temporal", "workers": "many"})",
      R"({"sessions": [{"name": "a", "scenario": "random_temporal"}]})",
      R"({"sessions": []})",
      R"({"sessions": [{"scenario": "random_temporal", "name": ""}]})",
      R"({"sessions": [{"scenario": "random_temporal"},
                       {"scenario": "random_temporal"}]})",
      R"({"scenario": "random_temporal", "sessions": []})",
  };
  for (const char* text : docs) {
    SCOPED_TRACE(text);
    Json json = ParseOrDie(text);
    Diagnostics diags = analysis::AnalyzeServeConfig(json, LintOptions());
    EXPECT_EQ(ServeConfig::FromJson(json).ok(), !diags.HasErrors())
        << diags.ToReport();
  }
}

TEST(LooksLikeServeConfig, RoutesDocumentsByShape) {
  EXPECT_TRUE(analysis::LooksLikeServeConfig(
      ParseOrDie(R"({"scenario": "random_temporal"})")));
  EXPECT_TRUE(analysis::LooksLikeServeConfig(
      ParseOrDie(R"({"sessions": [{"scenario": "random_temporal"}]})")));
  EXPECT_FALSE(analysis::LooksLikeServeConfig(
      ParseOrDie(R"({"polluters": []})")));
  EXPECT_FALSE(analysis::LooksLikeServeConfig(ParseOrDie(
      R"({"scenario": "x", "polluters": []})")));
  EXPECT_FALSE(analysis::LooksLikeServeConfig(ParseOrDie(R"([1, 2])")));
}

}  // namespace
}  // namespace net
}  // namespace icewafl
