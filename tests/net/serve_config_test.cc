#include "net/serve_config.h"

#include <gtest/gtest.h>

#include <string>

#include "analysis/analyzer.h"
#include "scenarios/scenarios.h"

namespace icewafl {
namespace net {
namespace {

Json ParseOrDie(const std::string& text) {
  auto parsed = Json::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).ValueOrDie();
}

analysis::ServeAnalyzeOptions LintOptions() {
  analysis::ServeAnalyzeOptions options;
  options.known_scenarios = scenarios::ScenarioNames();
  options.known_policies = SlowConsumerPolicyNames();
  return options;
}

// ---------------------------------------------------------------------
// ServeConfig::FromJson — the enforcing twin of the IW6xx lint.
// ---------------------------------------------------------------------

TEST(ServeConfig, ParsesFullDocument) {
  Json json = ParseOrDie(R"({
    "scenario": "network_delay",
    "host": "0.0.0.0",
    "port": 9099,
    "seed": 7,
    "parallelism": 3,
    "min_subscribers": 2,
    "max_sessions": 5,
    "queue_capacity": 64,
    "slow_consumer": "drop_oldest"
  })");
  auto config = ServeConfig::FromJson(json);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  const ServeConfig& c = config.ValueOrDie();
  EXPECT_EQ(c.scenario, "network_delay");
  EXPECT_EQ(c.host, "0.0.0.0");
  EXPECT_EQ(c.port, 9099);
  EXPECT_EQ(c.seed, 7u);
  EXPECT_EQ(c.parallelism, 3);
  EXPECT_EQ(c.min_subscribers, 2);
  EXPECT_EQ(c.max_sessions, 5u);
  EXPECT_EQ(c.queue_capacity, 64u);
  EXPECT_EQ(c.slow_consumer, SlowConsumerPolicy::kDropOldest);
}

TEST(ServeConfig, DefaultsApplyWhenOnlyScenarioGiven) {
  auto config = ServeConfig::FromJson(ParseOrDie(R"({"scenario": "temporal_noise"})"));
  ASSERT_TRUE(config.ok());
  const ServeConfig& c = config.ValueOrDie();
  EXPECT_EQ(c.host, "127.0.0.1");
  EXPECT_EQ(c.port, 0);
  EXPECT_EQ(c.seed, 42u);
  EXPECT_EQ(c.parallelism, 1);
  EXPECT_EQ(c.queue_capacity, 256u);
  EXPECT_EQ(c.slow_consumer, SlowConsumerPolicy::kBlock);
}

TEST(ServeConfig, RejectsBadDocuments) {
  const char* bad[] = {
      R"(42)",                                            // not an object
      R"({})",                                            // no scenario
      R"({"scenario": 3})",                               // scenario type
      R"({"scenario": "s", "port": 65536})",              // port range
      R"({"scenario": "s", "port": -1})",                 // port range
      R"({"scenario": "s", "queue_capacity": 0})",        // capacity
      R"({"scenario": "s", "parallelism": 0})",           // parallelism
      R"({"scenario": "s", "min_subscribers": 0})",       // subscribers
      R"({"scenario": "s", "max_sessions": -2})",         // sessions
      R"({"scenario": "s", "seed": -1})",                 // seed
      R"({"scenario": "s", "slow_consumer": "panic"})",   // policy enum
      R"({"scenario": "s", "host": 1})",                  // host type
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    EXPECT_FALSE(ServeConfig::FromJson(ParseOrDie(text)).ok());
  }
}

TEST(ServeConfig, JsonRoundTripIsStable) {
  ServeConfig config;
  config.scenario = "temporal_scale";
  config.port = 1234;
  config.min_subscribers = 4;
  config.slow_consumer = SlowConsumerPolicy::kDisconnect;
  auto back = ServeConfig::FromJson(config.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.ValueOrDie().ToJson().Dump(), config.ToJson().Dump());
}

TEST(ServeConfig, ToServerOptionsCarriesEveryKnob) {
  ServeConfig config;
  config.scenario = "random_temporal";
  config.host = "::1";
  config.port = 4242;
  config.min_subscribers = 3;
  config.max_sessions = 9;
  config.queue_capacity = 17;
  config.slow_consumer = SlowConsumerPolicy::kDropOldest;
  ServerOptions options = config.ToServerOptions(nullptr);
  EXPECT_EQ(options.host, "::1");
  EXPECT_EQ(options.port, 4242);
  EXPECT_EQ(options.min_subscribers, 3);
  EXPECT_EQ(options.max_sessions, 9u);
  EXPECT_EQ(options.queue_capacity, 17u);
  EXPECT_EQ(options.slow_consumer, SlowConsumerPolicy::kDropOldest);
  EXPECT_EQ(options.metrics, nullptr);
}

TEST(SlowConsumerPolicy, NamesRoundTrip) {
  for (const std::string& name : SlowConsumerPolicyNames()) {
    auto policy = SlowConsumerPolicyFromName(name);
    ASSERT_TRUE(policy.ok()) << name;
    EXPECT_EQ(SlowConsumerPolicyName(policy.ValueOrDie()), name);
  }
  EXPECT_FALSE(SlowConsumerPolicyFromName("never-heard-of-it").ok());
}

// ---------------------------------------------------------------------
// IW6xx lint fixtures — every code fires on its fixture and stays
// silent on a clean document.
// ---------------------------------------------------------------------

TEST(AnalyzeServeConfig, CleanConfigHasNoDiagnostics) {
  Json json = ParseOrDie(R"({
    "scenario": "random_temporal",
    "port": 9099,
    "queue_capacity": 32,
    "slow_consumer": "block"
  })");
  Diagnostics diags = analysis::AnalyzeServeConfig(json, LintOptions());
  EXPECT_TRUE(diags.empty()) << diags.ToReport();
}

TEST(AnalyzeServeConfig, IW601FiresOnBadPort) {
  for (const char* text :
       {R"({"scenario": "random_temporal", "port": 70000})",
        R"({"scenario": "random_temporal", "port": -5})",
        R"({"scenario": "random_temporal", "port": "http"})"}) {
    SCOPED_TRACE(text);
    Diagnostics diags =
        analysis::AnalyzeServeConfig(ParseOrDie(text), LintOptions());
    EXPECT_TRUE(diags.HasCode("IW601")) << diags.ToReport();
    EXPECT_TRUE(diags.HasErrors());
  }
}

TEST(AnalyzeServeConfig, IW602FiresOnUnknownPolicy) {
  Diagnostics diags = analysis::AnalyzeServeConfig(
      ParseOrDie(R"({"scenario": "random_temporal",
                     "slow_consumer": "drop_newest"})"),
      LintOptions());
  EXPECT_TRUE(diags.HasCode("IW602")) << diags.ToReport();
}

TEST(AnalyzeServeConfig, IW603FiresOnNonPositiveQueueCapacity) {
  for (const char* text :
       {R"({"scenario": "random_temporal", "queue_capacity": 0})",
        R"({"scenario": "random_temporal", "queue_capacity": "big"})"}) {
    SCOPED_TRACE(text);
    Diagnostics diags =
        analysis::AnalyzeServeConfig(ParseOrDie(text), LintOptions());
    EXPECT_TRUE(diags.HasCode("IW603")) << diags.ToReport();
  }
}

TEST(AnalyzeServeConfig, IW604WarnsOnUnknownKey) {
  Diagnostics diags = analysis::AnalyzeServeConfig(
      ParseOrDie(R"({"scenario": "random_temporal", "protocl": "tcp"})"),
      LintOptions());
  EXPECT_TRUE(diags.HasCode("IW604")) << diags.ToReport();
  EXPECT_FALSE(diags.HasErrors()) << "unknown keys warn, not fail";
}

TEST(AnalyzeServeConfig, IW605FiresOnMissingOrUnknownScenario) {
  for (const char* text :
       {R"({})", R"({"scenario": 9})",
        R"({"scenario": "random_temporel"})"}) {
    SCOPED_TRACE(text);
    Diagnostics diags =
        analysis::AnalyzeServeConfig(ParseOrDie(text), LintOptions());
    EXPECT_TRUE(diags.HasCode("IW605")) << diags.ToReport();
  }
}

TEST(AnalyzeServeConfig, IW606FiresOnOtherBadBounds) {
  for (const char* text :
       {R"({"scenario": "random_temporal", "seed": -1})",
        R"({"scenario": "random_temporal", "parallelism": 0})",
        R"({"scenario": "random_temporal", "min_subscribers": 0})",
        R"({"scenario": "random_temporal", "max_sessions": -1})",
        R"({"scenario": "random_temporal", "host": 7})"}) {
    SCOPED_TRACE(text);
    Diagnostics diags =
        analysis::AnalyzeServeConfig(ParseOrDie(text), LintOptions());
    EXPECT_TRUE(diags.HasCode("IW606")) << diags.ToReport();
  }
}

TEST(AnalyzeServeConfig, LintAgreesWithFromJson) {
  // The advisory lint and the enforcing parser must accept/reject the
  // same documents (modulo IW604 warnings and scenario-name knowledge).
  const char* docs[] = {
      R"({"scenario": "random_temporal"})",
      R"({"scenario": "random_temporal", "port": 70000})",
      R"({"scenario": "random_temporal", "queue_capacity": 0})",
      R"({"scenario": "random_temporal", "slow_consumer": "nope"})",
      R"({"scenario": "random_temporal", "parallelism": -3})",
  };
  for (const char* text : docs) {
    SCOPED_TRACE(text);
    Json json = ParseOrDie(text);
    Diagnostics diags = analysis::AnalyzeServeConfig(json, LintOptions());
    EXPECT_EQ(ServeConfig::FromJson(json).ok(), !diags.HasErrors())
        << diags.ToReport();
  }
}

TEST(LooksLikeServeConfig, RoutesDocumentsByShape) {
  EXPECT_TRUE(analysis::LooksLikeServeConfig(
      ParseOrDie(R"({"scenario": "random_temporal"})")));
  EXPECT_FALSE(analysis::LooksLikeServeConfig(
      ParseOrDie(R"({"polluters": []})")));
  EXPECT_FALSE(analysis::LooksLikeServeConfig(ParseOrDie(
      R"({"scenario": "x", "polluters": []})")));
  EXPECT_FALSE(analysis::LooksLikeServeConfig(ParseOrDie(R"([1, 2])")));
}

}  // namespace
}  // namespace net
}  // namespace icewafl
