// Lint soundness property: any pipeline the static analyzer passes
// (error-free) against a schema must also load and run end-to-end over
// a synthetic stream without a Status error. Pipelines are assembled
// from a grab-bag of valid and broken fragments, so the sweep exercises
// both the accept and the reject path.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "core/config.h"
#include "core/process.h"
#include "data/wearable.h"
#include "stream/source.h"

namespace icewafl {
namespace {

const std::vector<std::string>& AttributeFragments() {
  static const auto* fragments = new std::vector<std::string>{
      R"(["BPM"])",
      R"(["Distance"])",
      R"(["BPM", "Distance"])",
      R"(["Nope"])",          // IW101
      R"(["Time"])",          // IW105 (warning only: must still run)
      R"([])",
  };
  return *fragments;
}

const std::vector<std::string>& ErrorFragments() {
  static const auto* fragments = new std::vector<std::string>{
      R"({"type": "gaussian_noise", "stddev": 2.5})",
      R"({"type": "uniform_noise", "lo": -1, "hi": 1})",
      R"({"type": "scale", "factor": 100})",
      R"({"type": "missing_value"})",
      R"({"type": "set_constant", "value": 0})",
      R"({"type": "typo"})",              // IW102 on numeric targets
      R"({"type": "swap_attributes"})",   // IW106 unless exactly 2 attrs
      R"({"type": "delay", "delay_seconds": 60})",
      R"({"type": "delay", "delay_seconds": -60})",  // IW303
      R"({"type": "timestamp_shift", "shift_seconds": 120})",
      R"({"type": "derived",
          "base": {"type": "gaussian_noise", "stddev": 1},
          "profile": {"type": "stream_ramp", "scale": 1}})",
      R"({"type": "mystery_error"})",     // IW100
  };
  return *fragments;
}

const std::vector<std::string>& ConditionFragments() {
  static const auto* fragments = new std::vector<std::string>{
      R"({"type": "always"})",
      R"({"type": "never"})",
      R"({"type": "random", "p": 0.3})",
      R"({"type": "random", "p": 1.5})",  // IW203
      R"({"type": "random", "p": 0.0})",  // IW201
      R"({"type": "value", "attribute": "BPM", "op": ">", "operand": 100})",
      R"({"type": "value", "attribute": "Ghost", "op": ">", "operand": 1})",
      R"({"type": "time_window", "start": 1000, "end": 7000})",
      R"({"type": "time_window", "start": 7000, "end": 1000})",  // IW204
      R"({"type": "daily_window", "start_minute": 0, "end_minute": 720})",
      R"({"type": "daily_window", "start_minute": 0,
          "end_minute": 2000})",  // IW205
      R"({"type": "and", "children": [
            {"type": "random", "p": 0.5},
            {"type": "value", "attribute": "BPM", "op": "<",
             "operand": 200}]})",
      R"({"type": "hold", "hold_seconds": 300,
          "inner": {"type": "random", "p": 0.1}})",
  };
  return *fragments;
}

TupleVector SyntheticStream(const SchemaPtr& schema) {
  TupleVector tuples;
  for (int i = 0; i < 100; ++i) {
    tuples.emplace_back(
        schema, std::vector<Value>{Value(int64_t{1000 + 60 * i}),
                                   Value(60.0 + i),          // BPM
                                   Value(int64_t{10 * i}),   // Steps
                                   Value(0.01 * i),          // Distance
                                   Value(1.5 * i),           // CaloriesBurned
                                   Value(0.5 * i)});         // ActiveMinutes
  }
  return tuples;
}

TEST(LintSoundnessTest, LintCleanPipelinesRunWithoutStatusErrors) {
  const SchemaPtr schema = data::WearableSchema();
  analysis::AnalyzeOptions options;
  options.schema = schema;
  options.stream_start = 1000;
  options.stream_end = 1000 + 60 * 100;

  size_t clean = 0, rejected = 0;
  for (uint64_t seed = 0; seed < 300; ++seed) {
    std::mt19937_64 rng(seed);
    const auto pick = [&rng](const std::vector<std::string>& pool) {
      return pool[rng() % pool.size()];
    };
    std::string polluters;
    const size_t count = 1 + rng() % 3;
    for (size_t i = 0; i < count; ++i) {
      if (i > 0) polluters += ",";
      polluters += R"({"type": "standard", "label": "p)" +
                   std::to_string(i) + R"(", "attributes": )" +
                   pick(AttributeFragments()) + R"(, "error": )" +
                   pick(ErrorFragments()) + R"(, "condition": )" +
                   pick(ConditionFragments()) + "}";
    }
    const std::string text =
        R"({"name": "generated", "polluters": [)" + polluters + "]}";
    auto json = Json::Parse(text);
    ASSERT_TRUE(json.ok()) << text;

    Diagnostics diags =
        analysis::AnalyzePipeline(json.ValueOrDie(), options);
    if (diags.HasErrors()) {
      ++rejected;
      continue;
    }
    ++clean;
    // Lint/bind parity (DESIGN.md section 8): the bind pass rejects a
    // strict subset of what the analyzer flags as errors, so any
    // lint-clean pipeline must also bind against the same schema.
    auto pipeline = PipelineFromJson(json.ValueOrDie(), schema);
    ASSERT_TRUE(pipeline.ok())
        << "lint-clean pipeline failed to load+bind: "
        << pipeline.status().ToString() << "\n" << text;
    ASSERT_NE(pipeline.ValueOrDie().bound_schema(), nullptr);
    VectorSource source(schema, SyntheticStream(schema));
    auto result =
        PollutionProcess::Pollute(&source, std::move(pipeline).ValueOrDie(),
                                  /*seed=*/seed);
    ASSERT_TRUE(result.ok())
        << "lint-clean pipeline failed at runtime: "
        << result.status().ToString() << "\n" << text;
    EXPECT_EQ(result.ValueOrDie().polluted.size(), 100u);
  }
  // The sweep must exercise both branches to mean anything.
  EXPECT_GT(clean, 20u);
  EXPECT_GT(rejected, 20u);
}

}  // namespace
}  // namespace icewafl
