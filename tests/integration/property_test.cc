// Property-based tests: parameterized sweeps over probabilities, seeds,
// and process configurations asserting the pollution model's invariants.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "core/errors_numeric.h"
#include "core/errors_value.h"
#include "core/process.h"
#include "io/csv.h"

namespace icewafl {
namespace {

SchemaPtr PropertySchema() {
  return Schema::Make({{"ts", ValueType::kInt64},
                       {"a", ValueType::kDouble},
                       {"b", ValueType::kDouble},
                       {"label", ValueType::kString}},
                      "ts")
      .ValueOrDie();
}

TupleVector PropertyStream(const SchemaPtr& schema, size_t n,
                           uint64_t seed) {
  Rng rng(seed);
  TupleVector tuples;
  for (size_t i = 0; i < n; ++i) {
    tuples.emplace_back(
        schema,
        std::vector<Value>{
            Value(static_cast<int64_t>(i) * kSecondsPerHour),
            Value(rng.Gaussian(50.0, 10.0)), Value(rng.Uniform(0.0, 1.0)),
            Value(rng.Bernoulli(0.5) ? "x" : "y")});
  }
  return tuples;
}

PollutionPipeline NullPipeline(double p) {
  PollutionPipeline pipeline("nulls");
  pipeline.Add(std::make_unique<StandardPolluter>(
      "nuller", std::make_unique<MissingValueError>(),
      std::make_unique<RandomCondition>(p), std::vector<std::string>{"a"}));
  return pipeline;
}

// ---------------------------------------------------------------------
// Property: realized pollution rate concentrates around the configured
// probability, for any probability and seed.
// ---------------------------------------------------------------------
class PollutionRateProperty
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(PollutionRateProperty, RealizedRateMatchesProbability) {
  const auto [p, seed] = GetParam();
  const size_t n = 20000;
  SchemaPtr schema = PropertySchema();
  VectorSource source(schema, PropertyStream(schema, n, seed));
  auto result = PollutionProcess::Pollute(&source, NullPipeline(p), seed);
  ASSERT_TRUE(result.ok());
  const double rate =
      static_cast<double>(result.ValueOrDie().log.size()) /
      static_cast<double>(n);
  // 5 sigma of a binomial proportion.
  const double tolerance =
      5.0 * std::sqrt(p * (1.0 - p) / static_cast<double>(n)) + 1e-9;
  EXPECT_NEAR(rate, p, tolerance) << "p=" << p << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    RateSweep, PollutionRateProperty,
    ::testing::Combine(::testing::Values(0.0, 0.01, 0.1, 0.25, 0.5, 0.9, 1.0),
                       ::testing::Values(1u, 42u, 31337u)));

// ---------------------------------------------------------------------
// Property: the process is deterministic and parallel execution matches
// sequential, for any sub-stream count.
// ---------------------------------------------------------------------
class ProcessConfigProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

std::vector<std::pair<TupleId, std::string>> Fingerprint(
    const PollutionResult& result) {
  std::vector<std::pair<TupleId, std::string>> fp;
  for (const Tuple& t : result.polluted) {
    fp.emplace_back(t.id(), t.value(1).ToString("NULL") + "|" +
                                std::to_string(t.substream()));
  }
  return fp;
}

TEST_P(ProcessConfigProperty, DeterministicAndParallelConsistent) {
  const auto [m, overlap] = GetParam();
  SchemaPtr schema = PropertySchema();
  const TupleVector stream = PropertyStream(schema, 3000, 77);
  auto run = [&](bool parallel, uint64_t seed) {
    ProcessOptions options;
    options.num_substreams = m;
    options.overlap_fraction = overlap;
    options.parallel = parallel;
    options.seed = seed;
    PollutionProcess process(options);
    for (int i = 0; i < m; ++i) process.AddPipeline(NullPipeline(0.3));
    VectorSource source(schema, stream);
    auto result = process.Run(&source);
    EXPECT_TRUE(result.ok());
    return Fingerprint(result.ValueOrDie());
  };
  const auto sequential = run(false, 5);
  EXPECT_EQ(sequential, run(false, 5));       // deterministic
  EXPECT_EQ(sequential, run(true, 5));        // parallel == sequential
  EXPECT_NE(sequential, run(false, 6));       // seed changes the draw
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, ProcessConfigProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 8),
                       ::testing::Values(0.0, 0.25)));

// ---------------------------------------------------------------------
// Property: polluters only touch their target attributes; everything
// else survives bit-identical, for every error type.
// ---------------------------------------------------------------------
class TargetIsolationProperty : public ::testing::TestWithParam<int> {};

ErrorFunctionPtr MakeError(int kind) {
  switch (kind) {
    case 0:
      return std::make_unique<GaussianNoiseError>(5.0);
    case 1:
      return std::make_unique<UniformNoiseError>(0.1, 0.5);
    case 2:
      return std::make_unique<ScaleError>(0.125);
    case 3:
      return std::make_unique<OffsetError>(-3.0);
    case 4:
      return std::make_unique<RoundError>(1);
    case 5:
      return std::make_unique<MissingValueError>();
    case 6:
      return std::make_unique<SetConstantError>(Value(0.0));
    default:
      return std::make_unique<OutlierError>(5.0, 10.0);
  }
}

TEST_P(TargetIsolationProperty, UntargetedAttributesUntouched) {
  SchemaPtr schema = PropertySchema();
  const TupleVector stream = PropertyStream(schema, 500, 11);
  PollutionPipeline pipeline("isolation");
  pipeline.Add(std::make_unique<StandardPolluter>(
      "only_a", MakeError(GetParam()), std::make_unique<AlwaysCondition>(),
      std::vector<std::string>{"a"}));
  VectorSource source(schema, stream);
  auto result = PollutionProcess::Pollute(&source, std::move(pipeline), 3);
  ASSERT_TRUE(result.ok());
  const TupleVector& polluted = result.ValueOrDie().polluted;
  ASSERT_EQ(polluted.size(), stream.size());
  for (size_t i = 0; i < polluted.size(); ++i) {
    // ts (0), b (2), label (3) are never touched.
    EXPECT_EQ(polluted[i].value(0), stream[i].value(0)) << i;
    EXPECT_EQ(polluted[i].value(2), stream[i].value(2)) << i;
    EXPECT_EQ(polluted[i].value(3), stream[i].value(3)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(ErrorKinds, TargetIsolationProperty,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------
// Property: ids form a ground-truth bijection between clean tuples and
// polluted outputs (with duplicates only under overlap).
// ---------------------------------------------------------------------
class GroundTruthProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroundTruthProperty, IdsLinkCleanAndPolluted) {
  SchemaPtr schema = PropertySchema();
  const TupleVector stream = PropertyStream(schema, 2000, GetParam());
  VectorSource source(schema, stream);
  auto result =
      PollutionProcess::Pollute(&source, NullPipeline(0.5), GetParam());
  ASSERT_TRUE(result.ok());
  const PollutionResult& r = result.ValueOrDie();
  std::set<TupleId> clean_ids;
  for (const Tuple& t : r.clean) clean_ids.insert(t.id());
  EXPECT_EQ(clean_ids.size(), stream.size());
  std::set<TupleId> polluted_ids;
  for (const Tuple& t : r.polluted) {
    EXPECT_TRUE(clean_ids.count(t.id())) << t.id();
    polluted_ids.insert(t.id());
  }
  EXPECT_EQ(polluted_ids, clean_ids);  // no tuple lost, none invented
  for (const PollutionLogEntry& e : r.log.entries()) {
    EXPECT_TRUE(clean_ids.count(e.tuple_id));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroundTruthProperty,
                         ::testing::Values(1u, 7u, 99u, 12345u));

// ---------------------------------------------------------------------
// Property: for discrete errors, severity acts as a monotone
// application probability — higher severity can only pollute more.
// ---------------------------------------------------------------------
class SeverityMonotonicityProperty : public ::testing::TestWithParam<int> {};

TEST_P(SeverityMonotonicityProperty, HigherSeverityPollutesMore) {
  SchemaPtr schema = PropertySchema();
  const TupleVector stream = PropertyStream(schema, 4000, 17);
  auto pollute_count = [&](double severity) {
    ErrorFunctionPtr error = MakeError(GetParam());
    Rng rng(5);
    uint64_t changed = 0;
    for (const Tuple& original : stream) {
      Tuple t = original;
      PollutionContext ctx;
      ctx.tau = t.event_time();
      ctx.severity = severity;
      ctx.rng = &rng;
      error->Apply(&t, {1}, &ctx);
      if (!t.ValuesEqual(original)) ++changed;
    }
    return changed;
  };
  const uint64_t at_zero = pollute_count(0.0);
  const uint64_t at_half = pollute_count(0.5);
  const uint64_t at_full = pollute_count(1.0);
  EXPECT_EQ(at_zero, 0u);
  EXPECT_LE(at_half, at_full);
  EXPECT_GT(at_full, 0u);
  // At severity 0.5 a discrete error applies to roughly half the tuples;
  // continuous errors (noise/scale/offset) still change every tuple but
  // by a smaller amount — both satisfy the monotone bound above.
  EXPECT_GE(at_half, stream.size() / 3);
}

INSTANTIATE_TEST_SUITE_P(ErrorKinds, SeverityMonotonicityProperty,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------
// Property: every change pattern stays within [0, 1] across a broad
// sweep of event times and stream bounds.
// ---------------------------------------------------------------------
TEST(ProfileRangeProperty, AllProfilesClampToUnitInterval) {
  std::vector<TimeProfilePtr> profiles;
  profiles.push_back(std::make_unique<ConstantProfile>(0.7));
  profiles.push_back(std::make_unique<AbruptProfile>(5000, -2.0, 3.0));
  profiles.push_back(
      std::make_unique<IncrementalProfile>(0, 10000, -1.0, 2.0));
  profiles.push_back(
      std::make_unique<IntermediateProfile>(0, 10000, 0.0, 1.0));
  profiles.push_back(std::make_unique<SinusoidalProfile>(24.0, 2.0, 0.0));
  profiles.push_back(std::make_unique<StreamRampProfile>(5.0));
  profiles.push_back(std::make_unique<ReoccurringProfile>(4.0, -1.0, 2.0));
  profiles.push_back(std::make_unique<SpikeProfile>(5000, 100, 2.0));
  Rng rng(23);
  for (const TimeProfilePtr& profile : profiles) {
    for (int i = 0; i < 2000; ++i) {
      PollutionContext ctx;
      ctx.tau = rng.UniformInt(-100000, 100000);
      ctx.stream_start = 0;
      ctx.stream_end = 50000;
      ctx.rng = &rng;
      const double v = profile->Evaluate(ctx);
      ASSERT_GE(v, 0.0) << profile->name() << " at " << ctx.tau;
      ASSERT_LE(v, 1.0) << profile->name() << " at " << ctx.tau;
    }
  }
}

// ---------------------------------------------------------------------
// Property: CSV serialization round-trips arbitrary polluted streams,
// including NULLs, for several null representations and delimiters.
// ---------------------------------------------------------------------
class CsvRoundTripProperty
    : public ::testing::TestWithParam<std::tuple<char, std::string>> {};

TEST_P(CsvRoundTripProperty, PollutedStreamSurvivesCsv) {
  const auto [delimiter, null_repr] = GetParam();
  SchemaPtr schema = PropertySchema();
  VectorSource source(schema, PropertyStream(schema, 300, 21));
  auto result = PollutionProcess::Pollute(&source, NullPipeline(0.4), 21);
  ASSERT_TRUE(result.ok());
  const TupleVector& polluted = result.ValueOrDie().polluted;
  CsvOptions options;
  options.delimiter = delimiter;
  options.null_repr = null_repr;
  const std::string csv = ToCsvString(schema, polluted, options);
  auto reparsed = FromCsvString(schema, csv, options);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed.ValueOrDie().size(), polluted.size());
  for (size_t i = 0; i < polluted.size(); ++i) {
    ASSERT_TRUE(reparsed.ValueOrDie()[i].ValuesEqual(polluted[i])) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, CsvRoundTripProperty,
    ::testing::Combine(::testing::Values(',', ';', '\t'),
                       ::testing::Values(std::string(""),
                                         std::string("NULL"),
                                         std::string("NA"))));

}  // namespace
}  // namespace icewafl
