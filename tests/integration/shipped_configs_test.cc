// Pins the JSON files shipped under configs/ against the in-code
// builders: the CLI-facing configs must never drift from the scenario
// definitions the benches use.

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/process.h"
#include "data/airquality.h"
#include "data/wearable.h"
#include "dq/config.h"
#include "io/schema_json.h"
#include "scenarios/scenarios.h"

namespace icewafl {
namespace {

// ctest runs the binaries from build/tests; the config directory is
// resolved relative to the source tree via the compile definition.
std::string ConfigPath(const std::string& name) {
  return std::string(ICEWAFL_CONFIG_DIR) + "/" + name;
}

TEST(ShippedConfigsTest, PipelinesMatchScenarioBuilders) {
  const struct {
    const char* file;
    PollutionPipeline (*builder)();
  } kCases[] = {
      {"random_temporal.json", scenarios::RandomTemporalErrorsPipeline},
      {"software_update.json", scenarios::SoftwareUpdatePipeline},
      {"network_delay.json", scenarios::NetworkDelayPipeline},
  };
  for (const auto& c : kCases) {
    auto from_file = PipelineFromConfigFile(ConfigPath(c.file));
    ASSERT_TRUE(from_file.ok())
        << c.file << ": " << from_file.status().ToString();
    EXPECT_EQ(from_file.ValueOrDie().ToJson(), c.builder().ToJson())
        << c.file;
  }
}

TEST(ShippedConfigsTest, SchemasMatchGenerators) {
  auto wearable = SchemaFromJsonFile(ConfigPath("wearable_schema.json"));
  ASSERT_TRUE(wearable.ok()) << wearable.status().ToString();
  EXPECT_TRUE(wearable.ValueOrDie()->Equals(*data::WearableSchema()));

  auto airquality = SchemaFromJsonFile(ConfigPath("airquality_schema.json"));
  ASSERT_TRUE(airquality.ok()) << airquality.status().ToString();
  EXPECT_TRUE(airquality.ValueOrDie()->Equals(*data::AirQualitySchema()));
}

TEST(ShippedConfigsTest, SuiteLoadsAndDetectsSoftwareUpdateErrors) {
  auto suite = dq::SuiteFromConfigFile(ConfigPath("wearable_suite.json"));
  ASSERT_TRUE(suite.ok()) << suite.status().ToString();
  ASSERT_EQ(suite.ValueOrDie().size(), 5u);

  // The loaded suite detects the software-update errors end to end.
  auto stream = data::GenerateWearable();
  ASSERT_TRUE(stream.ok());
  VectorSource source(stream.ValueOrDie().front().schema(),
                      stream.ValueOrDie());
  auto polluted = PollutionProcess::Pollute(
      &source, scenarios::SoftwareUpdatePipeline(), 4);
  ASSERT_TRUE(polluted.ok());
  auto result =
      suite.ValueOrDie().Validate(polluted.ValueOrDie().polluted);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.ValueOrDie().success());
  EXPECT_GT(result.ValueOrDie().TotalUnexpected(), 1300u);  // 374+960+...
}

}  // namespace
}  // namespace icewafl
