// Pins the JSON files shipped under configs/ against the in-code
// builders: the CLI-facing configs must never drift from the scenario
// definitions the benches use.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analysis/analyzer.h"
#include "clean/config.h"
#include "core/config.h"
#include "core/process.h"
#include "data/airquality.h"
#include "data/wearable.h"
#include "dq/config.h"
#include "io/schema_json.h"
#include "scenarios/closed_loop.h"
#include "scenarios/scenarios.h"

namespace icewafl {
namespace {

// ctest runs the binaries from build/tests; the config directory is
// resolved relative to the source tree via the compile definition.
std::string ConfigPath(const std::string& name) {
  return std::string(ICEWAFL_CONFIG_DIR) + "/" + name;
}

TEST(ShippedConfigsTest, PipelinesMatchScenarioBuilders) {
  const struct {
    const char* file;
    PollutionPipeline (*builder)();
  } kCases[] = {
      {"random_temporal.json", scenarios::RandomTemporalErrorsPipeline},
      {"software_update.json", scenarios::SoftwareUpdatePipeline},
      {"network_delay.json", scenarios::NetworkDelayPipeline},
  };
  for (const auto& c : kCases) {
    auto from_file = PipelineFromConfigFile(ConfigPath(c.file));
    ASSERT_TRUE(from_file.ok())
        << c.file << ": " << from_file.status().ToString();
    EXPECT_EQ(from_file.ValueOrDie().ToJson(), c.builder().ToJson())
        << c.file;
  }
}

TEST(ShippedConfigsTest, SchemasMatchGenerators) {
  auto wearable = SchemaFromJsonFile(ConfigPath("wearable_schema.json"));
  ASSERT_TRUE(wearable.ok()) << wearable.status().ToString();
  EXPECT_TRUE(wearable.ValueOrDie()->Equals(*data::WearableSchema()));

  auto airquality = SchemaFromJsonFile(ConfigPath("airquality_schema.json"));
  ASSERT_TRUE(airquality.ok()) << airquality.status().ToString();
  EXPECT_TRUE(airquality.ValueOrDie()->Equals(*data::AirQualitySchema()));
}

TEST(ShippedConfigsTest, CleanerMatchesStockScenarioCleaner) {
  std::ifstream in(ConfigPath("software_update_clean.json"));
  std::ostringstream text;
  text << in.rdbuf();
  auto json = Json::Parse(text.str());
  ASSERT_TRUE(json.ok()) << json.status().ToString();

  auto stock = scenarios::CleanerForScenario("software_update");
  ASSERT_TRUE(stock.ok()) << stock.status().ToString();
  EXPECT_EQ(json.ValueOrDie(), stock.ValueOrDie().rules)
      << "configs/software_update_clean.json drifted from the builder in "
         "src/scenarios/closed_loop.cc";

  // The shipped document lints clean against the wearable schema and
  // binds (the lint soundness contract: no diagnostics => it runs).
  analysis::CleanerAnalyzeOptions options;
  options.schema = data::WearableSchema();
  Diagnostics diags =
      analysis::AnalyzeCleanerRules(json.ValueOrDie(), options);
  EXPECT_EQ(diags.ErrorCount(), 0u) << diags.ToReport();
  EXPECT_EQ(diags.WarningCount(), 0u) << diags.ToReport();
  auto rules =
      clean::RulesFromJson(json.ValueOrDie(), data::WearableSchema());
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules.ValueOrDie().rules.size(), 5u);
}

TEST(ShippedConfigsTest, SuiteLoadsAndDetectsSoftwareUpdateErrors) {
  auto suite = dq::SuiteFromConfigFile(ConfigPath("wearable_suite.json"));
  ASSERT_TRUE(suite.ok()) << suite.status().ToString();
  ASSERT_EQ(suite.ValueOrDie().size(), 5u);

  // The loaded suite detects the software-update errors end to end.
  auto stream = data::GenerateWearable();
  ASSERT_TRUE(stream.ok());
  VectorSource source(stream.ValueOrDie().front().schema(),
                      stream.ValueOrDie());
  auto polluted = PollutionProcess::Pollute(
      &source, scenarios::SoftwareUpdatePipeline(), 4);
  ASSERT_TRUE(polluted.ok());
  auto result =
      suite.ValueOrDie().Validate(polluted.ValueOrDie().polluted);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.ValueOrDie().success());
  EXPECT_GT(result.ValueOrDie().TotalUnexpected(), 1300u);  // 374+960+...
}

}  // namespace
}  // namespace icewafl
