// The scenario pre-flight gate: every built-in scenario artifact must
// pass static analysis, so AnalyzeScenariosOrDie succeeds and can be
// used as an opt-in startup check.
#include <gtest/gtest.h>

#include "scenarios/scenarios.h"

namespace icewafl::scenarios {
namespace {

TEST(ScenarioLintTest, BuiltInScenariosPassStaticAnalysis) {
  const Status status = AnalyzeScenariosOrDie();
  EXPECT_TRUE(status.ok()) << status.ToString();
}

}  // namespace
}  // namespace icewafl::scenarios
