#include <gtest/gtest.h>

#include "io/csv.h"
#include "obs/metrics.h"
#include "scenarios/closed_loop.h"
#include "scenarios/scenarios.h"

namespace icewafl {
namespace scenarios {
namespace {

// The closed pollute -> detect -> clean -> re-validate loop on the
// stock software-update scenario: every deterministic polluter family
// must be detected with F1 >= 0.9, and the windowed re-validation must
// improve on the polluted stream.
TEST(ClosedLoopTest, SoftwareUpdateDeterministicFamiliesScoreHighF1) {
  Result<ClosedLoopReport> report = RunClosedLoop("software_update");
  ASSERT_TRUE(report.ok()) << report.status().message();
  const ClosedLoopReport& r = report.ValueOrDie();

  EXPECT_EQ(r.scenario, "software_update");
  EXPECT_GT(r.clean_rows, 0u);
  EXPECT_EQ(r.clean_rows, r.polluted_rows);
  EXPECT_GT(r.injections, 0u);
  EXPECT_GT(r.detections, 0u);

  // Families: distance, calories, bpm-zero (deterministic) + bpm-null
  // (random condition).
  ASSERT_GE(r.families.size(), 4u);
  EXPECT_GE(r.MinDeterministicF1(), 0.9)
      << r.ToJson().DumpPretty();
  for (const FamilyScore& f : r.families) {
    EXPECT_GT(f.ground_truth, 0u) << f.family;
    if (f.deterministic) {
      EXPECT_GE(f.f1, 0.9) << f.family << ": " << f.ToJson().Dump();
    }
  }

  // Repair accuracy is reported over every non-drop repair.
  EXPECT_GT(r.repairs_scored, 0u);
  EXPECT_GT(r.repair_accuracy, 0.0);

  // Re-validation: cleaning must strictly reduce windowed violations.
  const int64_t before =
      r.monitor_polluted.Get("series").ValueOrDie().size() > 0
          ? [&] {
              int64_t total = 0;
              for (const Json& w :
                   r.monitor_polluted.Get("series").ValueOrDie().items()) {
                total += w.GetInt("violations", 0);
              }
              return total;
            }()
          : 0;
  int64_t after = 0;
  for (const Json& w :
       r.monitor_cleaned.Get("series").ValueOrDie().items()) {
    after += w.GetInt("violations", 0);
  }
  EXPECT_GT(before, 0);
  EXPECT_LT(after, before) << r.ToJson().DumpPretty();
}

TEST(ClosedLoopTest, ReportJsonCarriesScoringSeries) {
  Result<ClosedLoopReport> report = RunClosedLoop("software_update");
  ASSERT_TRUE(report.ok()) << report.status().message();
  const Json json = report.ValueOrDie().ToJson();
  EXPECT_TRUE(json.Has("families"));
  EXPECT_TRUE(json.Has("min_deterministic_f1"));
  EXPECT_TRUE(json.Has("repair_accuracy"));
  EXPECT_TRUE(json.Has("monitor_polluted"));
  EXPECT_TRUE(json.Has("monitor_cleaned"));
  const Json fam = json.Get("families").ValueOrDie();
  ASSERT_GT(fam.size(), 0u);
  EXPECT_TRUE(fam.items().front().Has("f1"));
}

// The cleaned stream is byte-identical at every cleaning parallelism
// (the split-runner determinism contract, via the closed loop).
TEST(ClosedLoopTest, CleanedStreamIdenticalAcrossParallelism) {
  ClosedLoopOptions base;
  TupleVector cleaned_p1;
  Result<ClosedLoopReport> r1 =
      RunClosedLoop("software_update", base, nullptr, &cleaned_p1);
  ASSERT_TRUE(r1.ok()) << r1.status().message();

  ClosedLoopOptions parallel = base;
  parallel.parallelism = 4;
  TupleVector cleaned_p4;
  Result<ClosedLoopReport> r4 =
      RunClosedLoop("software_update", parallel, nullptr, &cleaned_p4);
  ASSERT_TRUE(r4.ok()) << r4.status().message();

  Result<ResolvedScenario> resolved = ResolveScenario("software_update", 0);
  ASSERT_TRUE(resolved.ok());
  const SchemaPtr schema = resolved.ValueOrDie().schema;
  EXPECT_EQ(ToCsvString(schema, cleaned_p1),
            ToCsvString(schema, cleaned_p4));
  EXPECT_EQ(r1.ValueOrDie().detections, r4.ValueOrDie().detections);
}

TEST(ClosedLoopTest, RandomTemporalLoopRepairsNulls) {
  Result<ClosedLoopReport> report = RunClosedLoop("random_temporal");
  ASSERT_TRUE(report.ok()) << report.status().message();
  const ClosedLoopReport& r = report.ValueOrDie();
  ASSERT_EQ(r.families.size(), 1u);
  // NULL detection is exact even though the injection is random.
  EXPECT_DOUBLE_EQ(r.families[0].f1, 1.0) << r.ToJson().DumpPretty();
  EXPECT_FALSE(r.families[0].deterministic);
  EXPECT_EQ(r.cleaned_rows, r.polluted_rows);
}

TEST(ClosedLoopTest, ScenariosWithoutCleanerAreRejected) {
  EXPECT_FALSE(RunClosedLoop("network_delay").ok());
  EXPECT_FALSE(RunClosedLoop("no_such_scenario").ok());
}

TEST(ClosedLoopTest, CleanerMetricsPublishedThroughRegistry) {
  obs::MetricRegistry registry;
  Result<ClosedLoopReport> report =
      RunClosedLoop("software_update", {}, &registry);
  ASSERT_TRUE(report.ok()) << report.status().message();
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("icewafl_cleaner_tuples_total"), std::string::npos);
  EXPECT_NE(text.find("icewafl_cleaner_fired_total"), std::string::npos);
  EXPECT_NE(text.find("icewafl_dq_windows_total"), std::string::npos);
}

TEST(ClosedLoopTest, BuildPlanWithCleanerValidatesAgainstSchema) {
  Result<std::shared_ptr<PlanSnapshot>> plan =
      BuildScenarioPlan("software_update", 42, 1);
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  const PlanSnapshot& base = *plan.ValueOrDie();

  Result<ScenarioCleaner> cleaner = CleanerForScenario("software_update");
  ASSERT_TRUE(cleaner.ok());
  Result<std::shared_ptr<PlanSnapshot>> with =
      BuildPlanWithCleaner(base, cleaner.ValueOrDie().rules);
  ASSERT_TRUE(with.ok()) << with.status().message();
  EXPECT_FALSE(with.ValueOrDie()->cleaner.is_null());

  // Unknown column: rejected with a JSON-pointer path, no snapshot.
  Json bad = Json::Parse(R"({"rules": [{"label": "x", "column": "Nope",
    "detect": {"type": "not_null"}, "repair": "drop"}]})")
                 .ValueOrDie();
  Result<std::shared_ptr<PlanSnapshot>> rejected =
      BuildPlanWithCleaner(base, bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("/rules/0"), std::string::npos)
      << rejected.status().message();

  // Null removes the cleaner.
  Result<std::shared_ptr<PlanSnapshot>> removed =
      BuildPlanWithCleaner(*with.ValueOrDie(), Json());
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(removed.ValueOrDie()->cleaner.is_null());
}

// A served segment with a cleaner equals its offline twin.
TEST(ClosedLoopTest, CleanedPlanSegmentOfflineIsDeterministic) {
  Result<std::shared_ptr<PlanSnapshot>> plan =
      BuildScenarioPlan("software_update", 42, 1);
  ASSERT_TRUE(plan.ok());
  Result<ScenarioCleaner> cleaner = CleanerForScenario("software_update");
  ASSERT_TRUE(cleaner.ok());
  Result<std::shared_ptr<PlanSnapshot>> with =
      BuildPlanWithCleaner(*plan.ValueOrDie(), cleaner.ValueOrDie().rules);
  ASSERT_TRUE(with.ok());
  std::shared_ptr<PlanSnapshot> snapshot = with.ValueOrDie();
  snapshot->version = 1;

  Result<TupleVector> a = RunPlanSegmentOffline(*snapshot, 0, 200);
  Result<TupleVector> b = RunPlanSegmentOffline(*snapshot, 0, 200);
  ASSERT_TRUE(a.ok()) << a.status().message();
  ASSERT_TRUE(b.ok());
  const SchemaPtr schema = snapshot->schema;
  EXPECT_EQ(ToCsvString(schema, a.ValueOrDie()),
            ToCsvString(schema, b.ValueOrDie()));

  // The cleaner actually ran: the polluted twin differs.
  std::shared_ptr<PlanSnapshot> bare = ClonePlan(*snapshot);
  bare->cleaner = Json();
  Result<TupleVector> polluted = RunPlanSegmentOffline(*bare, 0, 200);
  ASSERT_TRUE(polluted.ok());
  EXPECT_NE(ToCsvString(schema, a.ValueOrDie()),
            ToCsvString(schema, polluted.ValueOrDie()));
}

}  // namespace
}  // namespace scenarios
}  // namespace icewafl
