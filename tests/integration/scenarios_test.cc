// Cross-module integration tests: the paper's experiment scenarios run
// end to end (generator -> pollution process -> DQ validation) and the
// headline numbers hold. These are the assertions behind the bench
// harnesses, pinned down as tests.

#include <gtest/gtest.h>

#include <cmath>

#include "core/config.h"
#include "core/polluter_operator.h"
#include "core/process.h"
#include "data/wearable.h"
#include "scenarios/scenarios.h"

namespace icewafl {
namespace {

const TupleVector& Wearable() {
  static const TupleVector stream = [] {
    auto generated = data::GenerateWearable();
    return std::move(generated).ValueOrDie();
  }();
  return stream;
}

Result<PollutionResult> RunScenario(PollutionPipeline pipeline,
                                    uint64_t seed) {
  VectorSource source(Wearable().front().schema(), Wearable());
  return PollutionProcess::Pollute(&source, std::move(pipeline), seed);
}

TEST(ScenarioIntegrationTest, RandomTemporalProportionNearQuarter) {
  // Mean of p(t) = 0.25*cos(pi/12*t)+0.25 over a day is 0.25; over many
  // repetitions the realized proportion concentrates there (paper:
  // 24.58%).
  double total = 0.0;
  const int reps = 10;
  for (int rep = 0; rep < reps; ++rep) {
    auto result = RunScenario(scenarios::RandomTemporalErrorsPipeline(),
                              100 + static_cast<uint64_t>(rep));
    ASSERT_TRUE(result.ok());
    total += static_cast<double>(result.ValueOrDie().log.size());
  }
  const double proportion =
      total / (reps * static_cast<double>(Wearable().size()));
  EXPECT_NEAR(proportion, 0.25, 0.03);
}

TEST(ScenarioIntegrationTest, RandomTemporalDetectionMatchesInjection) {
  auto result = RunScenario(scenarios::RandomTemporalErrorsPipeline(), 5);
  ASSERT_TRUE(result.ok());
  auto validation = scenarios::RandomTemporalErrorsSuite().Validate(
      result.ValueOrDie().polluted);
  ASSERT_TRUE(validation.ok());
  // Every injected null is detected, and nothing else (the clean stream
  // has no missing Distance values).
  EXPECT_EQ(validation.ValueOrDie().TotalUnexpected(),
            result.ValueOrDie().log.size());
}

TEST(ScenarioIntegrationTest, RandomTemporalNoErrorsAtNoon) {
  auto result = RunScenario(scenarios::RandomTemporalErrorsPipeline(), 6);
  ASSERT_TRUE(result.ok());
  const auto hist = result.ValueOrDie().log.HourOfDayHistogram();
  EXPECT_EQ(hist[12], 0u);                   // p(12:00) = 0
  EXPECT_GT(hist[0], hist[6]);               // midnight >> morning
}

TEST(ScenarioIntegrationTest, SoftwareUpdateStructuralCounts) {
  auto result = RunScenario(scenarios::SoftwareUpdatePipeline(), 7);
  ASSERT_TRUE(result.ok());
  const auto counts = result.ValueOrDie().log.CountsByPolluter();
  EXPECT_EQ(counts.at("distance_km_to_cm"), 1056u);
  EXPECT_EQ(counts.at("calories_precision_2"), 1056u);
  EXPECT_EQ(counts.at("bpm_to_zero"), 33u);
  // bpm_to_null fires with p=0.2 out of 33 -> plausible range.
  const uint64_t nulled = counts.count("bpm_to_null")
                              ? counts.at("bpm_to_null")
                              : 0;
  EXPECT_LE(nulled, 20u);
}

TEST(ScenarioIntegrationTest, SoftwareUpdateDetectionMatchesTable1) {
  auto result = RunScenario(scenarios::SoftwareUpdatePipeline(), 8);
  ASSERT_TRUE(result.ok());
  auto validation =
      scenarios::SoftwareUpdateSuite().Validate(result.ValueOrDie().polluted);
  ASSERT_TRUE(validation.ok());
  const auto& results = validation.ValueOrDie().results;
  const auto counts = result.ValueOrDie().log.CountsByPolluter();
  const uint64_t nulled = counts.at("bpm_to_null");
  // (i) every non-zero distance detected after km->cm.
  EXPECT_EQ(results[0].unexpected, 374u);
  // (ii) every detectably rounded calories value.
  EXPECT_EQ(results[1].unexpected, 960u);
  // (iii) zeroed-BPM-with-activity: 33 hit minus the nulled ones, plus
  // the 2 pre-existing anomalies.
  EXPECT_EQ(results[2].unexpected, 33u - nulled + 2u);
  // (iv) nulled BPM values.
  EXPECT_EQ(results[3].unexpected, nulled);
}

TEST(ScenarioIntegrationTest, SoftwareUpdateCleanStreamHasTwoViolations) {
  auto validation = scenarios::SoftwareUpdateSuite().Validate(Wearable());
  ASSERT_TRUE(validation.ok());
  EXPECT_EQ(validation.ValueOrDie().TotalUnexpected(), 2u);
}

TEST(ScenarioIntegrationTest, NetworkDelayWindowAndDetection) {
  auto result = RunScenario(scenarios::NetworkDelayPipeline(), 9);
  ASSERT_TRUE(result.ok());
  const size_t injected = result.ValueOrDie().log.size();
  // 88 tuples in the window, p = 0.2 -> ~17.6 (allow generous slack for
  // a single run).
  EXPECT_GE(injected, 8u);
  EXPECT_LE(injected, 30u);
  // Every injected delay happened between 13:00 and 14:59.
  for (const PollutionLogEntry& e : result.ValueOrDie().log.entries()) {
    const int minute = MinuteOfDay(e.tau);
    EXPECT_GE(minute, 13 * 60);
    EXPECT_LE(minute, 14 * 60 + 59);
  }
  auto validation =
      scenarios::NetworkDelaySuite().Validate(result.ValueOrDie().polluted);
  ASSERT_TRUE(validation.ok());
  const uint64_t detected = validation.ValueOrDie().TotalUnexpected();
  // Detection can undercount (adjacent delays) but never exceeds 2x the
  // injections (each delayed tuple can create at most 2 inversions).
  EXPECT_GT(detected, 0u);
  EXPECT_LE(detected, 2 * injected);
}

TEST(ScenarioIntegrationTest, NetworkDelayPreservesTupleCount) {
  auto result = RunScenario(scenarios::NetworkDelayPipeline(), 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().polluted.size(), Wearable().size());
  // Arrival order is maintained by the integration step.
  const TupleVector& polluted = result.ValueOrDie().polluted;
  for (size_t i = 1; i < polluted.size(); ++i) {
    ASSERT_LE(polluted[i - 1].arrival_time(), polluted[i].arrival_time());
  }
}

TEST(ScenarioIntegrationTest, AllScenarioPipelinesRoundTripThroughJson) {
  for (auto factory : {scenarios::RandomTemporalErrorsPipeline,
                       scenarios::SoftwareUpdatePipeline,
                       scenarios::NetworkDelayPipeline}) {
    PollutionPipeline original = factory();
    auto reparsed = PipelineFromJson(original.ToJson());
    ASSERT_TRUE(reparsed.ok()) << original.name() << ": "
                               << reparsed.status().ToString();
    EXPECT_EQ(reparsed.ValueOrDie().ToJson(), original.ToJson())
        << original.name();
  }
}

TEST(ScenarioIntegrationTest, ForecastPipelinesRoundTripThroughJson) {
  PollutionPipeline noise = scenarios::TemporalNoisePipeline({"NO2"}, 2.0);
  auto noise_reparsed = PipelineFromJson(noise.ToJson());
  ASSERT_TRUE(noise_reparsed.ok());
  EXPECT_EQ(noise_reparsed.ValueOrDie().ToJson(), noise.ToJson());

  PollutionPipeline scale =
      scenarios::TemporalScalePipeline({"NO2"}, 0.125, 0.01, 4);
  auto scale_reparsed = PipelineFromJson(scale.ToJson());
  ASSERT_TRUE(scale_reparsed.ok());
  EXPECT_EQ(scale_reparsed.ValueOrDie().ToJson(), scale.ToJson());
}

TEST(ScenarioIntegrationTest, ScalePipelineActivationsRampAndHold) {
  // The Equation 4 gate: activations become denser late in the stream,
  // and each activation pollutes a multi-hour run of tuples.
  data::WearableOptions unused;  // (scenario runs on air-quality shapes too)
  (void)unused;
  SchemaPtr schema =
      Schema::Make({{"ts", ValueType::kInt64}, {"v", ValueType::kDouble}},
                   "ts")
          .ValueOrDie();
  TupleVector tuples;
  for (int i = 0; i < 5000; ++i) {
    tuples.emplace_back(
        schema, std::vector<Value>{Value(int64_t{i} * kSecondsPerHour),
                                   Value(100.0)});
  }
  VectorSource source(schema, tuples);
  auto result = PollutionProcess::Pollute(
      &source, scenarios::TemporalScalePipeline({"v"}, 0.125, 0.02, 4), 11);
  ASSERT_TRUE(result.ok());
  const TupleVector& polluted = result.ValueOrDie().polluted;
  int early = 0;
  int late = 0;
  for (size_t i = 0; i < 1000; ++i) {
    if (polluted[i].value(1).AsDouble() < 50.0) ++early;
    if (polluted[polluted.size() - 1 - i].value(1).AsDouble() < 50.0) ++late;
  }
  EXPECT_LT(early, late);
  EXPECT_GT(late, 20);  // held activations pollute runs of tuples
}

TEST(ScenarioIntegrationTest, ApplyPipelineStreamingMatchesOperatorPath) {
  // The streaming helper at parallelism 1 must produce exactly what a
  // PolluterOperator with the same seed produces tuple-by-tuple.
  VectorSource source(Wearable().front().schema(), Wearable());
  RuntimeStats stats;
  auto streamed = scenarios::ApplyPipelineStreaming(
      &source, scenarios::SoftwareUpdatePipeline(), /*seed=*/11,
      /*parallelism=*/1, &stats);
  ASSERT_TRUE(streamed.ok());
  ASSERT_EQ(streamed.ValueOrDie().size(), Wearable().size());
  EXPECT_EQ(stats.source_tuples, Wearable().size());
  EXPECT_EQ(stats.sink_tuples, Wearable().size());
  // The wearable stream (1059 tuples) fits entirely inside the default
  // channel budget, so peak buffering can only be bounded by it here;
  // the large-stream bound is asserted in runtime_test.cc.
  EXPECT_LE(stats.peak_buffered_tuples, Wearable().size());

  VectorSource source2(Wearable().front().schema(), Wearable());
  PolluterOperator op(scenarios::SoftwareUpdatePipeline().Clone(), 11);
  VectorSink reference;
  Tuple t;
  while (source2.Next(&t).ValueOrDie()) {
    class DirectEmitter : public Emitter {
     public:
      explicit DirectEmitter(VectorSink* sink) : sink_(sink) {}
      Status Emit(Tuple tuple) override {
        return sink_->Write(std::move(tuple));
      }

     private:
      VectorSink* sink_;
    } emitter(&reference);
    ASSERT_TRUE(op.Process(std::move(t), &emitter).ok());
  }
  ASSERT_EQ(reference.tuples().size(), streamed.ValueOrDie().size());
  for (size_t i = 0; i < reference.tuples().size(); ++i) {
    EXPECT_EQ(reference.tuples()[i].value(1).ToString("<null>"),
              streamed.ValueOrDie()[i].value(1).ToString("<null>"))
        << "mismatch at tuple " << i;
  }
}

TEST(ScenarioIntegrationTest, ApplyPipelineStreamingParallelKeepsCount) {
  VectorSource source(Wearable().front().schema(), Wearable());
  auto streamed = scenarios::ApplyPipelineStreaming(
      &source, scenarios::RandomTemporalErrorsPipeline(), /*seed=*/3,
      /*parallelism=*/4);
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(streamed.ValueOrDie().size(), Wearable().size());
}

}  // namespace
}  // namespace icewafl
