#include "util/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace icewafl {
namespace {

// ---------------------------------------------------------------------
// Mutex / MutexLock — mutual exclusion and the RAII idioms used across
// the tree.
// ---------------------------------------------------------------------

TEST(MutexTest, SerializesConcurrentIncrements) {
  Mutex mu;
  int counter = 0;  // GUARDED_BY(mu) in spirit; local to the test
  constexpr int kThreads = 4;
  constexpr int kIterations = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter, kThreads * kIterations);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> acquired{true};
  // TryLock from another thread: the calling thread already owns the
  // lock, so contending from this thread would be UB on a std::mutex.
  std::thread prober([&] { acquired = mu.TryLock(); });
  prober.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockSupportsEarlyUnlockAndRelock) {
  Mutex mu;
  {
    MutexLock lock(&mu);
    lock.Unlock();  // early release: unlock-then-notify idiom
    EXPECT_TRUE(mu.TryLock());
    mu.Unlock();
    lock.Lock();  // re-acquired; destructor releases again
  }
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, AssertHeldIsANoOpAtRuntime) {
  Mutex mu;
  MutexLock lock(&mu);
  mu.AssertHeld();  // purely an annotation hint; must not deadlock
}

TEST(MutexTest, RankIsVisible) {
  Mutex unranked;
  Mutex session(kLockRankSession);
  EXPECT_EQ(unranked.rank(), kLockRankUnranked);
  EXPECT_EQ(session.rank(), kLockRankSession);
}

// ---------------------------------------------------------------------
// CondVar — explicit while-loop waits, as mandated by the conventions.
// ---------------------------------------------------------------------

TEST(CondVarTest, WaitReleasesLockAndWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
  });
  {
    MutexLock lock(&mu);  // acquirable => the waiter released it
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(mu);
      ++woke;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& thread : waiters) thread.join();
  EXPECT_EQ(woke, 3);
}

// ---------------------------------------------------------------------
// Lockdep-lite rank checks. The default handler aborts; these tests
// install a recorder and restore everything on the way out.
// ---------------------------------------------------------------------

std::string* g_last_violation = nullptr;

void RecordViolation(const char* message) {
  if (g_last_violation != nullptr) *g_last_violation = message;
}

class RankCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_last_violation = &last_violation_;
    previous_enabled_ = EnableLockRankChecks(true);
    previous_handler_ = SetLockRankViolationHandler(&RecordViolation);
  }
  void TearDown() override {
    SetLockRankViolationHandler(previous_handler_);
    EnableLockRankChecks(previous_enabled_);
    g_last_violation = nullptr;
  }

  std::string last_violation_;
  bool previous_enabled_ = false;
  LockRankViolationHandler previous_handler_ = nullptr;
};

TEST_F(RankCheckTest, InOrderAcquisitionIsSilent) {
  Mutex registry(kLockRankServerRegistry);
  Mutex session(kLockRankSession);
  Mutex conn(kLockRankConnection);
  {
    MutexLock a(&registry);
    MutexLock b(&session);
    MutexLock c(&conn);
  }
  EXPECT_TRUE(last_violation_.empty()) << last_violation_;
}

TEST_F(RankCheckTest, ReversedAcquisitionFiresHandler) {
  Mutex registry(kLockRankServerRegistry);
  Mutex session(kLockRankSession);
  {
    MutexLock a(&session);
    MutexLock b(&registry);  // violates session -> registry
  }
  EXPECT_FALSE(last_violation_.empty());
  EXPECT_NE(last_violation_.find("rank"), std::string::npos)
      << last_violation_;
}

TEST_F(RankCheckTest, SameRankReacquisitionFiresHandler) {
  // Strictly increasing: two session-rank locks at once is a violation
  // (the server only ever locks sessions one at a time).
  Mutex a(kLockRankSession);
  Mutex b(kLockRankSession);
  {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  EXPECT_FALSE(last_violation_.empty());
}

TEST_F(RankCheckTest, SequentialSameRankIsSilent) {
  Mutex a(kLockRankSession);
  Mutex b(kLockRankSession);
  {
    MutexLock la(&a);
  }
  {
    MutexLock lb(&b);
  }
  EXPECT_TRUE(last_violation_.empty()) << last_violation_;
}

TEST_F(RankCheckTest, UnrankedMutexesAreExempt) {
  // Distinct leaf mutexes per direction, so the test itself does not
  // build an A->B / B->A cycle for tsan's lock-order detector.
  Mutex ranked(kLockRankChannel);
  Mutex leaf_below;  // unranked: may nest anywhere
  Mutex leaf_above;
  {
    MutexLock a(&ranked);
    MutexLock b(&leaf_below);
  }
  {
    MutexLock a(&leaf_above);
    MutexLock b(&ranked);
  }
  EXPECT_TRUE(last_violation_.empty()) << last_violation_;
}

TEST_F(RankCheckTest, DisabledChecksIgnoreViolations) {
  EnableLockRankChecks(false);
  Mutex registry(kLockRankServerRegistry);
  Mutex session(kLockRankSession);
  {
    MutexLock a(&session);
    MutexLock b(&registry);
  }
  EXPECT_TRUE(last_violation_.empty()) << last_violation_;
  EnableLockRankChecks(true);
}

TEST_F(RankCheckTest, TryLockParticipatesInRankTracking) {
  Mutex registry(kLockRankServerRegistry);
  Mutex session(kLockRankSession);
  ASSERT_TRUE(session.TryLock());
  {
    MutexLock lock(&registry);  // below a held session rank
  }
  session.Unlock();
  EXPECT_FALSE(last_violation_.empty());
}

TEST_F(RankCheckTest, CondVarWaitKeepsRankStackExact) {
  // Wait() pops the rank while blocked and re-pushes on wake, so a
  // wake-then-acquire-downward sequence is still caught, and a correct
  // wake-then-acquire-upward sequence stays silent.
  Mutex registry(kLockRankServerRegistry);
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(&registry);
    while (!ready) cv.Wait(registry);
    Mutex session(kLockRankSession);
    MutexLock nested(&session);  // upward from registry: legal
  });
  {
    MutexLock lock(&registry);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_TRUE(last_violation_.empty()) << last_violation_;
}

}  // namespace
}  // namespace icewafl
