#include "util/json.h"

#include <gtest/gtest.h>

namespace icewafl {
namespace {

TEST(JsonTest, ScalarTypes) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(3.5).is_number());
  EXPECT_TRUE(Json(7).is_number());
  EXPECT_TRUE(Json("hi").is_string());
  EXPECT_EQ(Json(3.5).AsDouble(), 3.5);
  EXPECT_EQ(Json(int64_t{42}).AsInt64(), 42);
  EXPECT_EQ(Json("hi").AsString(), "hi");
}

TEST(JsonTest, DumpScalars) {
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(1.5).Dump(), "1.5");
  EXPECT_EQ(Json(2).Dump(), "2");
  EXPECT_EQ(Json("x").Dump(), "\"x\"");
}

TEST(JsonTest, DumpEscapesStrings) {
  EXPECT_EQ(Json("a\"b\\c\nd").Dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(JsonTest, ObjectSetGet) {
  Json obj = Json::MakeObject();
  obj.Set("a", 1);
  obj.Set("b", "two");
  EXPECT_TRUE(obj.Has("a"));
  EXPECT_FALSE(obj.Has("c"));
  EXPECT_EQ(obj.Get("a").ValueOrDie().AsInt64(), 1);
  EXPECT_EQ(obj.Get("b").ValueOrDie().AsString(), "two");
  EXPECT_EQ(obj.Get("missing").status().code(), StatusCode::kNotFound);
}

TEST(JsonTest, GetOnNonObjectIsTypeError) {
  EXPECT_EQ(Json(1.0).Get("x").status().code(), StatusCode::kTypeError);
}

TEST(JsonTest, TypedGettersWithFallback) {
  Json obj = Json::MakeObject();
  obj.Set("d", 2.5);
  obj.Set("i", 9);
  obj.Set("b", true);
  obj.Set("s", "str");
  EXPECT_EQ(obj.GetDouble("d", -1), 2.5);
  EXPECT_EQ(obj.GetInt("i", -1), 9);
  EXPECT_TRUE(obj.GetBool("b", false));
  EXPECT_EQ(obj.GetString("s", ""), "str");
  EXPECT_EQ(obj.GetDouble("missing", -1), -1);
  EXPECT_EQ(obj.GetString("d", "fallback"), "fallback");  // wrong type
}

TEST(JsonTest, ParseScalars) {
  EXPECT_TRUE(Json::Parse("null").ValueOrDie().is_null());
  EXPECT_TRUE(Json::Parse("true").ValueOrDie().AsBool());
  EXPECT_FALSE(Json::Parse("false").ValueOrDie().AsBool());
  EXPECT_DOUBLE_EQ(Json::Parse("-3.5e2").ValueOrDie().AsDouble(), -350.0);
  EXPECT_EQ(Json::Parse("\"hi\"").ValueOrDie().AsString(), "hi");
}

TEST(JsonTest, ParseNested) {
  auto r = Json::Parse(R"({"a": [1, 2, {"b": null}], "c": "x"})");
  ASSERT_TRUE(r.ok());
  const Json& doc = r.ValueOrDie();
  const Json a = doc.Get("a").ValueOrDie();
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.items()[0].AsInt64(), 1);
  EXPECT_TRUE(a.items()[2].Get("b").ValueOrDie().is_null());
}

TEST(JsonTest, ParseStringEscapes) {
  auto r = Json::Parse(R"("a\"b\\c\ndA")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().AsString(), "a\"b\\c\ndA");
}

TEST(JsonTest, ParseUnicodeEscape) {
  auto r = Json::Parse(R"("\u00e9")");  // e-acute as a BMP escape
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().AsString(), "\xc3\xa9");
  // Raw UTF-8 bytes pass through untouched.
  auto raw = Json::Parse("\"\xc3\xa9\"");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw.ValueOrDie().AsString(), "\xc3\xa9");
}

TEST(JsonTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\": }").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(Json::Parse("01a").ok());
  EXPECT_FALSE(Json::Parse("1e").ok());
}

TEST(JsonTest, ParseWhitespaceTolerant) {
  auto r = Json::Parse("  {\n \"a\" :\t[ 1 , 2 ]\r\n}  ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().Get("a").ValueOrDie().size(), 2u);
}

TEST(JsonTest, RoundTripComplexDocument) {
  Json doc = Json::MakeObject();
  doc.Set("name", "pipeline");
  Json arr = Json::MakeArray();
  Json inner = Json::MakeObject();
  inner.Set("p", 0.25);
  inner.Set("enabled", true);
  inner.Set("note", Json());
  arr.Append(std::move(inner));
  arr.Append(Json(7));
  doc.Set("items", std::move(arr));

  auto reparsed = Json::Parse(doc.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.ValueOrDie(), doc);

  auto reparsed_pretty = Json::Parse(doc.DumpPretty());
  ASSERT_TRUE(reparsed_pretty.ok());
  EXPECT_EQ(reparsed_pretty.ValueOrDie(), doc);
}

TEST(JsonTest, EmptyContainersDump) {
  EXPECT_EQ(Json::MakeArray().Dump(), "[]");
  EXPECT_EQ(Json::MakeObject().Dump(), "{}");
  EXPECT_EQ(Json::Parse("[]").ValueOrDie().size(), 0u);
  EXPECT_EQ(Json::Parse("{}").ValueOrDie().size(), 0u);
}

TEST(JsonTest, DeterministicKeyOrder) {
  Json a = Json::MakeObject();
  a.Set("z", 1);
  a.Set("a", 2);
  Json b = Json::MakeObject();
  b.Set("a", 2);
  b.Set("z", 1);
  EXPECT_EQ(a.Dump(), b.Dump());  // sorted keys => insertion order irrelevant
}

TEST(JsonTest, EqualityIsDeep) {
  auto a = Json::Parse(R"({"x":[1,{"y":true}]})").ValueOrDie();
  auto b = Json::Parse(R"({"x":[1,{"y":true}]})").ValueOrDie();
  auto c = Json::Parse(R"({"x":[1,{"y":false}]})").ValueOrDie();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace icewafl
