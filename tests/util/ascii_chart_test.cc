#include "util/ascii_chart.h"

#include <gtest/gtest.h>

namespace icewafl {
namespace {

TEST(AsciiChartTest, EmptyInputYieldsEmptyString) {
  EXPECT_EQ(RenderAsciiChart({}), "");
  EXPECT_EQ(RenderAsciiChart({{}}), "");
}

TEST(AsciiChartTest, InconsistentSeriesLengthsRejected) {
  EXPECT_EQ(RenderAsciiChart({{1, 2, 3}, {1, 2}}), "");
}

TEST(AsciiChartTest, SingleSeriesHasExpectedShape) {
  AsciiChartOptions options;
  options.height = 5;
  options.title = "ramp";
  const std::string chart = RenderAsciiChart({{0, 1, 2, 3, 4}}, options);
  ASSERT_FALSE(chart.empty());
  EXPECT_EQ(chart.substr(0, 4), "ramp");
  // 1 title row + 5 plot rows + 1 axis row.
  int newlines = 0;
  for (char c : chart) {
    if (c == '\n') ++newlines;
  }
  EXPECT_EQ(newlines, 7);
  // The maximum lands in the top plot row, the minimum in the bottom.
  const size_t first_row = chart.find('\n') + 1;
  const std::string top =
      chart.substr(first_row, chart.find('\n', first_row) - first_row);
  EXPECT_NE(top.find('*'), std::string::npos);
  EXPECT_EQ(top.find('*'), top.size() - 1);  // last column is the max
}

TEST(AsciiChartTest, ConstantSeriesDoesNotDivideByZero) {
  const std::string chart = RenderAsciiChart({{5, 5, 5, 5}});
  EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(AsciiChartTest, MultipleSeriesGetDistinctGlyphsAndLegend) {
  AsciiChartOptions options;
  options.series_names = {"alpha", "beta"};
  const std::string chart =
      RenderAsciiChart({{0, 1, 2, 3}, {3, 2, 1, 0}}, options);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find("*=alpha"), std::string::npos);
  EXPECT_NE(chart.find("o=beta"), std::string::npos);
}

TEST(AsciiChartTest, XAxisLabelsPrinted) {
  AsciiChartOptions options;
  options.x_labels = {"03-22", "09-06", "02-21"};
  const std::string chart =
      RenderAsciiChart({{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}, options);
  EXPECT_NE(chart.find("03-22"), std::string::npos);
  EXPECT_NE(chart.find("02-21"), std::string::npos);
}

TEST(AsciiChartTest, YAxisShowsRange) {
  const std::string chart = RenderAsciiChart({{0, 100}});
  EXPECT_NE(chart.find("100"), std::string::npos);
  EXPECT_NE(chart.find("0.0"), std::string::npos);
}

}  // namespace
}  // namespace icewafl
