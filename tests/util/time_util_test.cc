#include "util/time_util.h"

#include <gtest/gtest.h>

namespace icewafl {
namespace {

TEST(TimeUtilTest, EpochIsJanuaryFirst1970) {
  const CivilTime ct = CivilFromTimestamp(0);
  EXPECT_EQ(ct.year, 1970);
  EXPECT_EQ(ct.month, 1);
  EXPECT_EQ(ct.day, 1);
  EXPECT_EQ(ct.hour, 0);
}

TEST(TimeUtilTest, KnownTimestampRoundTrip) {
  // 2016-02-27 00:00:00 UTC == 1456531200.
  const CivilTime ct{2016, 2, 27, 0, 0, 0};
  EXPECT_EQ(TimestampFromCivil(ct), 1456531200);
  EXPECT_EQ(CivilFromTimestamp(1456531200), ct);
}

TEST(TimeUtilTest, LeapDayHandled) {
  const CivilTime leap{2016, 2, 29, 12, 30, 45};
  const Timestamp ts = TimestampFromCivil(leap);
  EXPECT_EQ(CivilFromTimestamp(ts), leap);
}

TEST(TimeUtilTest, NonLeapCenturyYear) {
  // 1900 was not a leap year; 2000 was.
  EXPECT_EQ(DaysFromCivil(1900, 3, 1) - DaysFromCivil(1900, 2, 28), 1);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1) - DaysFromCivil(2000, 2, 28), 2);
}

TEST(TimeUtilTest, PreEpochDates) {
  const CivilTime ct{1969, 12, 31, 23, 0, 0};
  const Timestamp ts = TimestampFromCivil(ct);
  EXPECT_EQ(ts, -3600);
  EXPECT_EQ(CivilFromTimestamp(ts), ct);
}

TEST(TimeUtilTest, RoundTripSweepAcrossYears) {
  // Property: civil -> ts -> civil is the identity on a broad sweep.
  for (int year : {1999, 2000, 2013, 2016, 2017, 2024}) {
    for (int month = 1; month <= 12; ++month) {
      const CivilTime ct{year, month, 15, 7, 31, 5};
      ASSERT_EQ(CivilFromTimestamp(TimestampFromCivil(ct)), ct)
          << year << "-" << month;
    }
  }
}

TEST(TimeUtilTest, HourAndMinuteOfDay) {
  const Timestamp ts = TimestampFromCivil({2016, 3, 1, 13, 45, 10});
  EXPECT_EQ(HourOfDay(ts), 13);
  EXPECT_EQ(MinuteOfDay(ts), 13 * 60 + 45);
  EXPECT_EQ(MonthOfYear(ts), 3);
}

TEST(TimeUtilTest, HoursBetweenIsFractionalAndSigned) {
  const Timestamp a = TimestampFromCivil({2016, 3, 1, 0, 0, 0});
  const Timestamp b = TimestampFromCivil({2016, 3, 1, 1, 30, 0});
  EXPECT_DOUBLE_EQ(HoursBetween(a, b), 1.5);
  EXPECT_DOUBLE_EQ(HoursBetween(b, a), -1.5);
}

TEST(TimeUtilTest, FormatTimestamp) {
  const Timestamp ts = TimestampFromCivil({2016, 2, 27, 9, 5, 3});
  EXPECT_EQ(FormatTimestamp(ts), "2016-02-27 09:05:03");
  EXPECT_EQ(FormatMonthDay(ts), "02-27");
}

TEST(TimeUtilTest, ParseFullTimestamp) {
  auto ts = ParseTimestamp("2016-02-27 09:05:03");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(FormatTimestamp(ts.ValueOrDie()), "2016-02-27 09:05:03");
}

TEST(TimeUtilTest, ParseDateOnlyDefaultsToMidnight) {
  auto ts = ParseTimestamp("2016-02-27");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts.ValueOrDie(), TimestampFromCivil({2016, 2, 27, 0, 0, 0}));
}

TEST(TimeUtilTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseTimestamp("not a date").ok());
  EXPECT_FALSE(ParseTimestamp("").ok());
}

TEST(TimeUtilTest, ParseRejectsOutOfRangeFields) {
  EXPECT_FALSE(ParseTimestamp("2016-13-01").ok());
  EXPECT_FALSE(ParseTimestamp("2016-02-27 25:00:00").ok());
  EXPECT_FALSE(ParseTimestamp("2016-00-10").ok());
}

TEST(TimeUtilTest, FormatParseRoundTrip) {
  for (Timestamp ts : {Timestamp{0}, Timestamp{1456531200},
                       Timestamp{1700000000}}) {
    auto parsed = ParseTimestamp(FormatTimestamp(ts));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.ValueOrDie(), ts);
  }
}

}  // namespace
}  // namespace icewafl
