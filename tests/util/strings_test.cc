#include "util/strings.h"

#include <gtest/gtest.h>

namespace icewafl {
namespace {

TEST(StringsTest, SplitBasic) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitPreservesEmptyFields) {
  const auto parts = Split(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(StringsTest, SplitSingleField) {
  const auto parts = Split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(StringsTest, JoinInvertsSplit) {
  const std::vector<std::string> parts = {"x", "", "z"};
  EXPECT_EQ(Join(parts, ","), "x,,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(StringsTest, JoinEmptyVector) { EXPECT_EQ(Join({}, ","), ""); }

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("HeLLo 123"), "hello 123");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("icewafl", "ice"));
  EXPECT_FALSE(StartsWith("ice", "icewafl"));
  EXPECT_TRUE(EndsWith("icewafl", "wafl"));
  EXPECT_FALSE(EndsWith("wafl", "icewafl"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringsTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").ValueOrDie(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").ValueOrDie(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("  7 ").ValueOrDie(), 7.0);
}

TEST(StringsTest, ParseDoubleRejectsTrailing) {
  EXPECT_FALSE(ParseDouble("3.25abc").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StringsTest, ParseInt64Valid) {
  EXPECT_EQ(ParseInt64("42").ValueOrDie(), 42);
  EXPECT_EQ(ParseInt64("-9").ValueOrDie(), -9);
  EXPECT_EQ(ParseInt64("1456531200").ValueOrDie(), 1456531200);
}

TEST(StringsTest, ParseInt64Rejects) {
  EXPECT_FALSE(ParseInt64("4.5").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(StringsTest, FormatDoubleShortestRoundTrips) {
  for (double v : {0.1, 1.234, -2.5, 1e-9, 123456.789, 0.0}) {
    EXPECT_DOUBLE_EQ(ParseDouble(FormatDouble(v)).ValueOrDie(), v);
  }
}

TEST(StringsTest, FormatDoubleShortestIsMinimal) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(1.234), "1.234");
}

TEST(StringsTest, FormatDoubleFixedPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 3), "2.000");
}

}  // namespace
}  // namespace icewafl
