#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>

namespace icewafl {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-3.5, 8.25);
    ASSERT_GE(v, -3.5);
    ASSERT_LT(v, 8.25);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(0.0, 10.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, UniformIntInclusiveBoundsAndCoverage) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // every value of the small range appears
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(42, 42), 42);
  }
}

TEST(RngTest, UniformIntNegativeRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-10, -5);
    ASSERT_GE(v, -10);
    ASSERT_LE(v, -5);
  }
}

TEST(RngTest, UniformIntExtremeBoundsDoNotOverflow) {
  // Regression: `hi - lo` used to be computed in int64_t, which is
  // signed overflow (UB) for ranges wider than INT64_MAX. These bounds
  // would trip UBSan and could return values outside [lo, hi].
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const int64_t full = rng.UniformInt(kMin, kMax);
    ASSERT_GE(full, kMin);
    ASSERT_LE(full, kMax);
    const int64_t wide = rng.UniformInt(kMin, kMax - 1);
    ASSERT_GE(wide, kMin);
    ASSERT_LE(wide, kMax - 1);
    const int64_t half = rng.UniformInt(-1, kMax);
    ASSERT_GE(half, -1);
  }
}

TEST(RngTest, UniformIntExtremeSingletons) {
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(kMin, kMin), kMin);
    EXPECT_EQ(rng.UniformInt(kMax, kMax), kMax);
  }
}

TEST(RngTest, UniformIntFullRangeCoversBothSigns) {
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  Rng rng(43);
  bool saw_negative = false;
  bool saw_positive = false;
  for (int i = 0; i < 1000 && !(saw_negative && saw_positive); ++i) {
    const int64_t v = rng.UniformInt(kMin, kMax);
    if (v < 0) saw_negative = true;
    if (v > 0) saw_positive = true;
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngTest, GaussianScalesMeanAndStddev) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(100.0, 5.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 100.0, 0.1);
  EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 5.0, 0.1);
}

TEST(RngTest, BernoulliEdgeProbabilities) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequencyTracksProbability) {
  Rng rng(19);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng a(31);
  Rng b(31);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  // Fork is deterministic given parent state...
  for (int i = 0; i < 100; ++i) ASSERT_EQ(fa.Next(), fb.Next());
  // ...and drawing from the fork does not perturb the parent.
  EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(23);
  const std::vector<size_t> perm = rng.Permutation(100);
  ASSERT_EQ(perm.size(), 100u);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, PermutationOfZeroAndOne) {
  Rng rng(23);
  EXPECT_TRUE(rng.Permutation(0).empty());
  EXPECT_EQ(rng.Permutation(1), std::vector<size_t>{0});
}

TEST(RngTest, PermutationActuallyShuffles) {
  Rng rng(29);
  std::vector<size_t> identity(50);
  for (size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  EXPECT_NE(rng.Permutation(50), identity);
}

}  // namespace
}  // namespace icewafl
