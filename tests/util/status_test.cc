#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace icewafl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IOError("").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::ParseError("").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeError("").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::NotImplemented("").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

Status FailsAtFirstError() {
  ICEWAFL_RETURN_NOT_OK(Status::OK());
  ICEWAFL_RETURN_NOT_OK(Status::IOError("disk gone"));
  ICEWAFL_RETURN_NOT_OK(Status::Internal("unreached"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroShortCircuits) {
  Status st = FailsAtFirstError();
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(st.message(), "disk gone");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueOrFallback) {
  EXPECT_EQ(Result<int>(7).ValueOr(-1), 7);
  EXPECT_EQ(Result<int>(Status::IOError("x")).ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

Result<int> Doubled(Result<int> in) {
  ICEWAFL_ASSIGN_OR_RETURN(int v, std::move(in));
  return 2 * v;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubled(21).ValueOrDie(), 42);
  EXPECT_EQ(Doubled(Status::ParseError("bad")).status().code(),
            StatusCode::kParseError);
}

}  // namespace
}  // namespace icewafl
