#include "util/diag.h"

#include <gtest/gtest.h>

namespace icewafl {
namespace {

TEST(DiagTest, ToStringFormatsSeverityCodePathMessage) {
  Diagnostic d{DiagSeverity::kError, "IW101", "/polluters/0",
               "unknown attribute 'X'", ""};
  EXPECT_EQ(d.ToString(), "error IW101 at /polluters/0: unknown attribute 'X'");
  d.hint = "check the schema";
  EXPECT_EQ(d.ToString(),
            "error IW101 at /polluters/0: unknown attribute 'X' "
            "(hint: check the schema)");
}

TEST(DiagTest, CountsBySeverity) {
  Diagnostics diags;
  diags.AddError("IW101", "/a", "e1");
  diags.AddError("IW102", "/b", "e2");
  diags.AddWarning("IW401", "/c", "w1");
  diags.AddNote("IW999", "/d", "n1");
  EXPECT_EQ(diags.size(), 4u);
  EXPECT_EQ(diags.ErrorCount(), 2u);
  EXPECT_EQ(diags.WarningCount(), 1u);
  EXPECT_TRUE(diags.HasErrors());
  EXPECT_TRUE(diags.HasCode("IW401"));
  EXPECT_FALSE(diags.HasCode("IW500"));
}

TEST(DiagTest, MergeAppendsInOrder) {
  Diagnostics a;
  a.AddError("IW101", "/a", "first");
  Diagnostics b;
  b.AddWarning("IW401", "/b", "second");
  a.Merge(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.items()[0].code, "IW101");
  EXPECT_EQ(a.items()[1].code, "IW401");
}

TEST(DiagTest, ReportEndsWithSummaryLine) {
  Diagnostics diags;
  EXPECT_EQ(diags.ToReport(), "0 errors, 0 warnings\n");
  diags.AddError("IW101", "/a", "boom");
  const std::string report = diags.ToReport();
  EXPECT_NE(report.find("error IW101 at /a: boom"), std::string::npos);
  EXPECT_NE(report.find("1 error, 0 warnings"), std::string::npos);
}

TEST(DiagTest, ToJsonCarriesCounts) {
  Diagnostics diags;
  diags.AddError("IW101", "/a", "boom", "fix it");
  Json json = diags.ToJson();
  EXPECT_EQ(json.GetInt("errors", -1), 1);
  EXPECT_EQ(json.GetInt("warnings", -1), 0);
  const Json& items = json.fields().at("diagnostics");
  ASSERT_EQ(items.items().size(), 1u);
  EXPECT_EQ(items.items()[0].GetString("code", ""), "IW101");
  EXPECT_EQ(items.items()[0].GetString("severity", ""), "error");
  EXPECT_EQ(items.items()[0].GetString("hint", ""), "fix it");
}

}  // namespace
}  // namespace icewafl
