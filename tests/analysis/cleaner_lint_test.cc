// IW70x cleaner-document lint + the IW616 admin gate + the soundness
// property: any cleaning document the analyzer passes error-free
// against a schema must also load, bind, and run without a Status
// error.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "clean/cleaner.h"
#include "clean/config.h"
#include "data/wearable.h"
#include "stream/sink.h"

namespace icewafl {
namespace analysis {
namespace {

SchemaPtr WearableSchema() { return data::WearableSchema(); }

Diagnostics Analyze(const std::string& text, SchemaPtr schema = nullptr) {
  auto json = Json::Parse(text);
  EXPECT_TRUE(json.ok()) << text;
  CleanerAnalyzeOptions options;
  options.schema = std::move(schema);
  return AnalyzeCleanerRules(json.ValueOrDie(), options);
}

std::string PathOf(const Diagnostics& diags, const std::string& code) {
  for (const Diagnostic& d : diags.items()) {
    if (d.code == code) return d.path;
  }
  return "<code not found>";
}

TEST(CleanerLintTest, CleanDocumentPassesWithSchema) {
  Diagnostics diags = Analyze(
      R"({"name": "ok", "history": 32, "rules": [
        {"label": "a", "column": "BPM",
         "detect": {"type": "range", "min": 20, "max": 250},
         "repair": "clamp",
         "when": [{"column": "Steps", "op": "gt", "value": 0}]},
        {"label": "b", "column": "Distance",
         "detect": {"type": "cross_field", "op": "le", "other": "Steps"},
         "repair": "window_mean"}]})",
      WearableSchema());
  EXPECT_FALSE(diags.HasErrors()) << diags.ToReport();
  EXPECT_EQ(diags.WarningCount(), 0u) << diags.ToReport();
}

TEST(CleanerLintTest, IW701DocumentShape) {
  EXPECT_TRUE(Analyze(R"([1, 2])").HasCode("IW701"));
  EXPECT_TRUE(Analyze(R"({"name": "x"})").HasCode("IW701"));
  EXPECT_TRUE(Analyze(R"({"rules": 7})").HasCode("IW701"));
  EXPECT_TRUE(Analyze(R"({"history": 0, "rules": []})").HasCode("IW701"));
  EXPECT_TRUE(Analyze(R"({"name": 5, "rules": []})").HasCode("IW701"));
  // Empty rules array: a warning, not an error.
  Diagnostics empty = Analyze(R"({"rules": []})");
  EXPECT_TRUE(empty.HasCode("IW701"));
  EXPECT_FALSE(empty.HasErrors()) << empty.ToReport();
}

TEST(CleanerLintTest, IW702MalformedRuleEntries) {
  Diagnostics diags = Analyze(R"({"rules": [
    7,
    {"column": "BPM", "detect": {"type": "not_null"}, "repair": "drop"},
    {"label": "c", "column": "BPM", "repair": "drop"},
    {"label": "d", "column": "BPM", "detect": {"type": "not_null"},
     "repair": "drop", "when": [17]}
  ]})");
  EXPECT_TRUE(diags.HasCode("IW702")) << diags.ToReport();
  EXPECT_EQ(PathOf(diags, "IW702"), "/rules/0");
}

TEST(CleanerLintTest, IW703UnknownOrNonNumericColumn) {
  Diagnostics unknown = Analyze(
      R"({"rules": [{"label": "a", "column": "Heartrate",
          "detect": {"type": "not_null"}, "repair": "drop"}]})",
      WearableSchema());
  EXPECT_TRUE(unknown.HasCode("IW703")) << unknown.ToReport();
  EXPECT_EQ(PathOf(unknown, "IW703"), "/rules/0/column");

  // Without a schema, column checks are skipped entirely.
  Diagnostics unchecked = Analyze(
      R"({"rules": [{"label": "a", "column": "Heartrate",
          "detect": {"type": "not_null"}, "repair": "drop"}]})");
  EXPECT_FALSE(unchecked.HasCode("IW703")) << unchecked.ToReport();

  // Guard columns are numeric positions too.
  Diagnostics guard = Analyze(
      R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "not_null"}, "repair": "drop",
          "when": [{"column": "Ghost", "op": "gt", "value": 0}]}]})",
      WearableSchema());
  EXPECT_TRUE(guard.HasCode("IW703")) << guard.ToReport();
  EXPECT_EQ(PathOf(guard, "IW703"), "/rules/0/when/0/column");
}

TEST(CleanerLintTest, IW704BadParams) {
  const char* docs[] = {
      R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "teleport"}, "repair": "drop"}]})",
      R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "not_null"}, "repair": "mend"}]})",
      R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "range", "min": 9, "max": 1},
          "repair": "drop"}]})",
      R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "regex", "pattern": "(unclosed"},
          "repair": "drop"}]})",
      R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "type", "value_type": "quaternion"},
          "repair": "drop"}]})",
      R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "cross_field", "op": "sideways",
                     "other": "Steps"}, "repair": "drop"}]})",
      R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "rate_of_change", "max_change": -1},
          "repair": "drop"}]})",
      R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "stuck_at", "min_repeats": 1},
          "repair": "drop"}]})",
      R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "not_null"}, "repair": "drop",
          "when": [{"column": "Steps", "op": "near", "value": 0}]}]})",
  };
  for (const char* doc : docs) {
    Diagnostics diags = Analyze(doc);
    EXPECT_TRUE(diags.HasCode("IW704")) << doc << "\n" << diags.ToReport();
  }
}

TEST(CleanerLintTest, IW705ClampRequiresRangeDetect) {
  Diagnostics diags = Analyze(
      R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "not_null"}, "repair": "clamp"}]})");
  EXPECT_TRUE(diags.HasCode("IW705")) << diags.ToReport();
  EXPECT_EQ(PathOf(diags, "IW705"), "/rules/0/repair");
}

TEST(CleanerLintTest, IW706DuplicateLabelIsAWarning) {
  Diagnostics diags = Analyze(
      R"({"rules": [
        {"label": "a", "column": "BPM",
         "detect": {"type": "not_null"}, "repair": "drop"},
        {"label": "a", "column": "BPM",
         "detect": {"type": "not_null"}, "repair": "drop"}]})");
  EXPECT_TRUE(diags.HasCode("IW706")) << diags.ToReport();
  EXPECT_FALSE(diags.HasErrors());
  EXPECT_EQ(PathOf(diags, "IW706"), "/rules/1/label");
}

TEST(CleanerLintTest, IW707StuckAtBeyondHistoryNeverFires) {
  Diagnostics diags = Analyze(
      R"({"history": 4, "rules": [
        {"label": "a", "column": "BPM",
         "detect": {"type": "stuck_at", "min_repeats": 6},
         "repair": "set_null"}]})");
  EXPECT_TRUE(diags.HasCode("IW707")) << diags.ToReport();
  EXPECT_FALSE(diags.HasErrors());
  // min_repeats == history + 1 still fires (the incoming tuple is the
  // +1); no warning.
  Diagnostics edge = Analyze(
      R"({"history": 4, "rules": [
        {"label": "a", "column": "BPM",
         "detect": {"type": "stuck_at", "min_repeats": 5},
         "repair": "set_null"}]})");
  EXPECT_FALSE(edge.HasCode("IW707")) << edge.ToReport();
}

TEST(CleanerLintTest, IW604UnknownKeysAreWarnings) {
  Diagnostics doc_key = Analyze(R"({"rules": [], "colour": "blue"})");
  EXPECT_TRUE(doc_key.HasCode("IW604")) << doc_key.ToReport();
  EXPECT_FALSE(doc_key.HasErrors());

  Diagnostics rule_key = Analyze(
      R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "not_null"}, "repair": "drop",
          "priority": 3}]})");
  EXPECT_TRUE(rule_key.HasCode("IW604")) << rule_key.ToReport();
}

TEST(CleanerLintTest, PathRootPrefixesEveryPointer) {
  auto json = Json::Parse(
      R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "teleport"}, "repair": "drop"}]})");
  ASSERT_TRUE(json.ok());
  CleanerAnalyzeOptions options;
  options.path_root = "/params/rules";
  Diagnostics diags = AnalyzeCleanerRules(json.ValueOrDie(), options);
  ASSERT_TRUE(diags.HasCode("IW704"));
  EXPECT_EQ(PathOf(diags, "IW704"), "/params/rules/rules/0/detect/type");
}

TEST(CleanerLintTest, LooksLikeCleanerRulesHeuristic) {
  const auto looks = [](const std::string& text) {
    return LooksLikeCleanerRules(Json::Parse(text).ValueOrDie());
  };
  EXPECT_TRUE(looks(
      R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "not_null"}, "repair": "drop"}]})"));
  EXPECT_TRUE(looks(R"({"rules": []})"));
  EXPECT_FALSE(looks(R"({"polluters": []})"));
  EXPECT_FALSE(looks(R"({"scenario": "software_update"})"));
  EXPECT_FALSE(looks(R"({"sessions": [], "rules": []})"));
  EXPECT_FALSE(looks(R"({"expectations": [], "rules": []})"));
  EXPECT_FALSE(looks(R"([])"));
}

// --------------------------------------------------------------------
// IW616: the set_cleaner admin gate.
// --------------------------------------------------------------------

Diagnostics AnalyzeAdmin(const std::string& params) {
  auto json = Json::Parse(
      R"({"id": 1, "method": "set_cleaner", "params": )" + params + "}");
  EXPECT_TRUE(json.ok());
  AdminAnalyzeOptions options;
  options.known_methods = {"set_cleaner"};
  return AnalyzeAdminRequest(json.ValueOrDie(), options);
}

TEST(AdminCleanerLintTest, SetCleanerRequiresRules) {
  Diagnostics missing = AnalyzeAdmin(R"({"session": "s"})");
  EXPECT_TRUE(missing.HasCode("IW616")) << missing.ToReport();

  Diagnostics wrong_type = AnalyzeAdmin(R"({"session": "s", "rules": 7})");
  EXPECT_TRUE(wrong_type.HasCode("IW616")) << wrong_type.ToReport();

  // Null removes the cleaner: valid.
  Diagnostics removal = AnalyzeAdmin(R"({"session": "s", "rules": null})");
  EXPECT_FALSE(removal.HasErrors()) << removal.ToReport();
}

TEST(AdminCleanerLintTest, RulesObjectGetsFullIW70xAnalysis) {
  Diagnostics diags = AnalyzeAdmin(
      R"({"session": "s", "rules": {"rules": [
        {"label": "a", "column": "BPM",
         "detect": {"type": "teleport"}, "repair": "drop"}]}})");
  EXPECT_TRUE(diags.HasCode("IW704")) << diags.ToReport();
  EXPECT_EQ(PathOf(diags, "IW704"), "/params/rules/rules/0/detect/type");

  Diagnostics ok = AnalyzeAdmin(
      R"({"session": "s", "rules": {"rules": [
        {"label": "a", "column": "BPM",
         "detect": {"type": "not_null"}, "repair": "drop"}]}})");
  EXPECT_FALSE(ok.HasErrors()) << ok.ToReport();
}

TEST(AdminCleanerLintTest, SessionEntryCleanerAnalyzedInServeConfig) {
  auto json = Json::Parse(R"({"sessions": [
    {"name": "s", "scenario": "x", "cleaner": {"rules": [
      {"label": "a", "column": "BPM",
       "detect": {"type": "range", "min": 9, "max": 1},
       "repair": "drop"}]}}]})");
  ASSERT_TRUE(json.ok());
  Diagnostics diags = AnalyzeServeConfig(json.ValueOrDie(), {});
  EXPECT_TRUE(diags.HasCode("IW704")) << diags.ToReport();
  EXPECT_EQ(PathOf(diags, "IW704"),
            "/sessions/0/cleaner/rules/0/detect/min");
}

// --------------------------------------------------------------------
// Soundness sweep: lint-clean documents always bind and run.
// --------------------------------------------------------------------

const std::vector<std::string>& ColumnFragments() {
  static const auto* fragments = new std::vector<std::string>{
      "\"BPM\"", "\"Distance\"", "\"Steps\"",
      "\"Heartrate\"",  // IW703
      "\"Time\"",
  };
  return *fragments;
}

const std::vector<std::string>& DetectFragments() {
  static const auto* fragments = new std::vector<std::string>{
      R"({"type": "range", "min": 0, "max": 100})",
      R"({"type": "range", "min": 100, "max": 0})",  // IW704
      R"({"type": "not_null"})",
      R"({"type": "regex", "pattern": "\\d+"})",
      R"({"type": "regex", "pattern": "(unclosed"})",  // IW704
      R"({"type": "type", "value_type": "double"})",
      R"({"type": "cross_field", "op": "le", "other": "Steps"})",
      R"({"type": "rate_of_change", "max_change": 10})",
      R"({"type": "stuck_at", "min_repeats": 3})",
      R"({"type": "stuck_at", "min_repeats": 99})",  // IW707 (warning)
      R"({"type": "teleport"})",                     // IW704
  };
  return *fragments;
}

const std::vector<std::string>& RepairFragments() {
  static const auto* fragments = new std::vector<std::string>{
      "\"drop\"", "\"set_null\"", "\"clamp\"", "\"last_good\"",
      "\"window_mean\"", "\"window_median\"",
      "\"mend\"",  // IW704
  };
  return *fragments;
}

const std::vector<std::string>& WhenFragments() {
  static const auto* fragments = new std::vector<std::string>{
      "",  // no guard
      R"(, "when": {"column": "Steps", "op": "gt", "value": 0})",
      R"(, "when": [{"column": "BPM", "op": "le", "value": 200}])",
      R"(, "when": {"column": "Ghost", "op": "gt", "value": 0})",  // IW703
      R"(, "when": {"column": "Steps", "op": "near", "value": 0})",  // IW704
  };
  return *fragments;
}

TEST(CleanerLintSoundnessTest, LintCleanDocumentsBindAndRun) {
  const SchemaPtr schema = WearableSchema();
  CleanerAnalyzeOptions options;
  options.schema = schema;

  TupleVector stream;
  for (int i = 0; i < 50; ++i) {
    stream.emplace_back(
        schema, std::vector<Value>{Value(int64_t{1000 + 60 * i}),
                                   Value(i % 9 == 0 ? Value::Null()
                                                    : Value(60.0 + i % 30)),
                                   Value(int64_t{10 * i}),
                                   Value(0.01 * i),
                                   Value(1.5 * i),
                                   Value(0.5 * i)});
    stream.back().set_id(static_cast<TupleId>(i));
  }

  size_t clean = 0, rejected = 0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    std::mt19937_64 rng(seed);
    const auto pick = [&rng](const std::vector<std::string>& pool) {
      return pool[rng() % pool.size()];
    };
    std::string rules;
    const size_t count = 1 + rng() % 3;
    for (size_t i = 0; i < count; ++i) {
      if (i > 0) rules += ",";
      rules += R"({"label": "r)" + std::to_string(i) +
               R"(", "column": )" + pick(ColumnFragments()) +
               R"(, "detect": )" + pick(DetectFragments()) +
               R"(, "repair": )" + pick(RepairFragments()) +
               pick(WhenFragments()) + "}";
    }
    const std::string text = R"({"name": "generated", "history": )" +
                             std::to_string(2 + rng() % 30) +
                             R"(, "rules": [)" + rules + "]}";
    auto json = Json::Parse(text);
    ASSERT_TRUE(json.ok()) << text;

    Diagnostics diags = AnalyzeCleanerRules(json.ValueOrDie(), options);
    if (diags.HasErrors()) {
      ++rejected;
      continue;
    }
    ++clean;
    // Lint/bind parity: a lint-clean document must load + bind...
    auto loaded = clean::RulesFromJson(json.ValueOrDie(), schema);
    ASSERT_TRUE(loaded.ok())
        << "lint-clean document failed to load+bind: "
        << loaded.status().ToString() << "\n" << text;
    // ...and run over a stream with NULLs, at two parallelism levels,
    // deterministically.
    VectorSink p1, p2;
    ASSERT_TRUE(clean::CleanTuples(loaded.ValueOrDie(), stream, 1, &p1).ok())
        << text;
    ASSERT_TRUE(clean::CleanTuples(loaded.ValueOrDie(), stream, 2, &p2).ok())
        << text;
    ASSERT_EQ(p1.tuples().size(), p2.tuples().size()) << text;
  }
  EXPECT_GT(clean, 20u);
  EXPECT_GT(rejected, 20u);
}

}  // namespace
}  // namespace analysis
}  // namespace icewafl
