// Fixture tests for icewafl-lint: each broken config locks the exact
// diagnostic code the analyzer must emit, so codes stay stable across
// refactors (they are documented in DESIGN.md section 6).
#include "analysis/analyzer.h"

#include <gtest/gtest.h>

#include <string>

#include "core/config.h"
#include "stream/schema.h"

namespace icewafl {
namespace analysis {
namespace {

Json P(const std::string& text) {
  auto json = Json::Parse(text);
  EXPECT_TRUE(json.ok()) << json.status().ToString() << " for " << text;
  return json.ValueOrDie();
}

/// Time (timestamp), City (string), Temp (double): small but covers all
/// the type-compatibility axes.
SchemaPtr TestSchema() {
  return Schema::Make({{"Time", ValueType::kInt64},
                       {"City", ValueType::kString},
                       {"Temp", ValueType::kDouble}},
                      "Time")
      .ValueOrDie();
}

AnalyzeOptions SchemaOptions() {
  AnalyzeOptions options;
  options.schema = TestSchema();
  return options;
}

std::string Pipeline(const std::string& polluters) {
  return R"({"name": "t", "polluters": [)" + polluters + "]}";
}

std::string Standard(const std::string& attributes, const std::string& error,
                     const std::string& condition = R"({"type": "always"})") {
  return R"({"type": "standard", "label": "p", "attributes": )" + attributes +
         R"(, "error": )" + error + R"(, "condition": )" + condition + "}";
}

TEST(AnalyzerTest, CleanPipelineHasNoFindings) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(R"(["Temp"])",
                          R"({"type": "gaussian_noise", "stddev": 1.0})",
                          R"({"type": "random", "p": 0.5})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.empty()) << diags.ToReport();
}

TEST(AnalyzerTest, IW100UnloadablePolluter) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(R"({"type": "bogus"})")), SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW100")) << diags.ToReport();
  EXPECT_TRUE(diags.HasErrors());
}

TEST(AnalyzerTest, IW101UnknownAttribute) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(R"(["Nope"])",
                          R"({"type": "gaussian_noise", "stddev": 1.0})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW101")) << diags.ToReport();
  EXPECT_TRUE(diags.HasErrors());
  // The finding points into the attributes array.
  EXPECT_EQ(diags.items()[0].path, "/polluters/0/attributes/0");
}

TEST(AnalyzerTest, IW102NumericErrorOnStringColumn) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(R"(["City"])",
                          R"({"type": "gaussian_noise", "stddev": 1.0})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW102")) << diags.ToReport();
}

TEST(AnalyzerTest, IW102StringErrorOnNumericColumn) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(R"(["Temp"])", R"({"type": "typo"})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW102")) << diags.ToReport();
}

TEST(AnalyzerTest, IW103ConditionUnknownAttribute) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(
          R"(["Temp"])", R"({"type": "missing_value"})",
          R"({"type": "value", "attribute": "Nope", "op": ">", "operand": 1})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW103")) << diags.ToReport();
}

TEST(AnalyzerTest, IW104OperandTypeMismatch) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(
          R"(["Temp"])", R"({"type": "missing_value"})",
          R"({"type": "value", "attribute": "City", "op": "==", "operand": 7})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW104")) << diags.ToReport();
}

TEST(AnalyzerTest, IW104WindowAggregateOverString) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(R"(["Temp"])", R"({"type": "missing_value"})",
                          R"({"type": "window_aggregate", "attribute": "City",
                              "window_seconds": 60, "agg": "mean",
                              "op": ">", "threshold": 1})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW104")) << diags.ToReport();
}

TEST(AnalyzerTest, IW105ValueErrorOnTimestampColumn) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(R"(["Time"])", R"({"type": "missing_value"})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW105")) << diags.ToReport();
  EXPECT_FALSE(diags.HasErrors());  // hygiene warning, not an error
}

TEST(AnalyzerTest, IW106SwapAttributesArity) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(R"(["Temp"])", R"({"type": "swap_attributes"})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW106")) << diags.ToReport();
}

TEST(AnalyzerTest, IW107SingleCategory) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(
          R"(["City"])",
          R"({"type": "incorrect_category", "categories": ["only"]})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW107")) << diags.ToReport();
}

TEST(AnalyzerTest, IW201DeadConditionViaZeroProbability) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(R"(["Temp"])", R"({"type": "missing_value"})",
                          R"({"type": "random", "p": 0.0})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW201")) << diags.ToReport();
}

TEST(AnalyzerTest, IW201ContradictoryWindowIntersection) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(
          R"(["Temp"])", R"({"type": "missing_value"})",
          R"({"type": "and", "children": [
               {"type": "time_window", "start": 0, "end": 100},
               {"type": "time_window", "start": 200, "end": 300}]})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW201")) << diags.ToReport();
  // Reported once, at the contradiction, not again at the polluter.
  EXPECT_EQ(diags.ErrorCount(), 1u);
}

TEST(AnalyzerTest, LiteralNeverIsNotFlagged) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(R"(["Temp"])", R"({"type": "missing_value"})",
                          R"({"type": "never"})"))),
      SchemaOptions());
  EXPECT_FALSE(diags.HasCode("IW201")) << diags.ToReport();
  EXPECT_TRUE(diags.empty()) << diags.ToReport();
}

TEST(AnalyzerTest, IW202TriviallyTrueProbability) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(R"(["Temp"])", R"({"type": "missing_value"})",
                          R"({"type": "random", "p": 1.0})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW202")) << diags.ToReport();
  EXPECT_FALSE(diags.HasErrors());
}

TEST(AnalyzerTest, IW203ProbabilityOutOfRange) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(R"(["Temp"])", R"({"type": "missing_value"})",
                          R"({"type": "random", "p": 1.5})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW203")) << diags.ToReport();
}

TEST(AnalyzerTest, IW204EmptyTimeWindow) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(R"(["Temp"])", R"({"type": "missing_value"})",
                          R"({"type": "time_window",
                              "start": 100, "end": 50})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW204")) << diags.ToReport();
}

TEST(AnalyzerTest, IW205DailyWindowOutOfRange) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(R"(["Temp"])", R"({"type": "missing_value"})",
                          R"({"type": "daily_window", "start_minute": 0,
                              "end_minute": 1500})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW205")) << diags.ToReport();
}

TEST(AnalyzerTest, IW301WindowOutsideStreamBounds) {
  AnalyzeOptions options = SchemaOptions();
  options.stream_start = 1000;
  options.stream_end = 2000;
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(R"(["Temp"])", R"({"type": "missing_value"})",
                          R"({"type": "time_window",
                              "start": 0, "end": 10})"))),
      options);
  EXPECT_TRUE(diags.HasCode("IW301")) << diags.ToReport();
}

TEST(AnalyzerTest, IW302OverlappingExclusiveBranches) {
  const std::string child1 = Standard(
      R"(["Temp"])", R"({"type": "scale", "factor": 2})",
      R"({"type": "time_window", "start": 0, "end": 100})");
  const std::string child2 = Standard(
      R"(["Temp"])", R"({"type": "scale", "factor": 3})",
      R"({"type": "time_window", "start": 50, "end": 150})");
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(R"({"type": "exclusive", "label": "x", "children": [)" +
                 child1 + "," + child2 + "]}")),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW302")) << diags.ToReport();
}

TEST(AnalyzerTest, IW303NegativeDuration) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(R"([])", R"({"type": "delay",
                                       "delay_seconds": -5})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW303")) << diags.ToReport();
}

TEST(AnalyzerTest, IW304SuspiciousShiftMagnitude) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(R"([])", R"({"type": "timestamp_shift",
                                       "shift_seconds": 1000000000})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW304")) << diags.ToReport();
  EXPECT_FALSE(diags.HasErrors());
}

TEST(AnalyzerTest, IW401DuplicateLabels) {
  const std::string polluter =
      Standard(R"(["Temp"])", R"({"type": "missing_value"})");
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(polluter + "," + polluter)), SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW401")) << diags.ToReport();
  EXPECT_FALSE(diags.HasErrors());
}

TEST(AnalyzerTest, IW402UnknownConfigKey) {
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(
          R"(["Temp"])",
          R"({"type": "gaussian_noise", "stddev": 1.0, "sttdev": 2.0})"))),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW402")) << diags.ToReport();
  EXPECT_FALSE(diags.HasErrors());
}

TEST(AnalyzerTest, IW403WeightsArityMismatch) {
  const std::string child =
      Standard(R"(["Temp"])", R"({"type": "missing_value"})");
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(R"({"type": "exclusive", "label": "x", "weights": [1],
                     "children": [)" + child + "," + child + "]}")),
      SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW403")) << diags.ToReport();
}

TEST(AnalyzerTest, IW501SuiteUnknownColumn) {
  Json pipeline = P(Pipeline(
      Standard(R"(["Temp"])", R"({"type": "missing_value"})")));
  Json suite = P(R"({"name": "s", "expectations": [
      {"type": "expect_column_values_to_not_be_null", "column": "Nope"}]})");
  Diagnostics diags = AnalyzeArtifacts(pipeline, &suite, SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW501")) << diags.ToReport();
  // Suite findings are prefixed so both documents can be told apart.
  bool found = false;
  for (const Diagnostic& d : diags.items()) {
    if (d.code == "IW501") {
      EXPECT_EQ(d.path, "suite:/expectations/0/column");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AnalyzerTest, IW502CoverageGap) {
  Json pipeline = P(Pipeline(
      Standard(R"(["Temp"])", R"({"type": "missing_value"})")));
  Json suite = P(R"({"name": "s", "expectations": [
      {"type": "expect_column_values_to_not_be_null", "column": "City"}]})");
  Diagnostics diags = AnalyzeArtifacts(pipeline, &suite, SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW502")) << diags.ToReport();
  EXPECT_FALSE(diags.HasErrors());
}

TEST(AnalyzerTest, CoverageSatisfiedByMatchingColumn) {
  Json pipeline = P(Pipeline(
      Standard(R"(["Temp"])", R"({"type": "missing_value"})")));
  Json suite = P(R"({"name": "s", "expectations": [
      {"type": "expect_column_values_to_not_be_null", "column": "Temp"}]})");
  Diagnostics diags = AnalyzeArtifacts(pipeline, &suite, SchemaOptions());
  EXPECT_FALSE(diags.HasCode("IW502")) << diags.ToReport();
}

TEST(AnalyzerTest, TemporalErrorCoveredByIncreasingExpectation) {
  Json pipeline = P(Pipeline(
      Standard(R"([])", R"({"type": "delay", "delay_seconds": 60})")));
  Json gap_suite = P(R"({"name": "s", "expectations": [
      {"type": "expect_column_values_to_not_be_null", "column": "Temp"}]})");
  EXPECT_TRUE(AnalyzeArtifacts(pipeline, &gap_suite, SchemaOptions())
                  .HasCode("IW502"));
  Json covering_suite = P(R"({"name": "s", "expectations": [
      {"type": "expect_column_values_to_be_increasing", "column": "Time"}]})");
  EXPECT_FALSE(AnalyzeArtifacts(pipeline, &covering_suite, SchemaOptions())
                   .HasCode("IW502"));
}

TEST(AnalyzerTest, IW503EmptyExpectationRange) {
  Json suite = P(R"({"name": "s", "expectations": [
      {"type": "expect_column_values_to_be_between", "column": "Temp",
       "min": 10, "max": 5}]})");
  Diagnostics diags = AnalyzeSuite(suite, SchemaOptions());
  EXPECT_TRUE(diags.HasCode("IW503")) << diags.ToReport();
}

TEST(AnalyzerTest, SchemaFreeAnalysisSkipsSchemaChecks) {
  // Without a schema the unknown-attribute checks cannot run, but the
  // schema-independent ones still do.
  Diagnostics diags = AnalyzePipeline(
      P(Pipeline(Standard(R"(["Anything"])", R"({"type": "missing_value"})",
                          R"({"type": "random", "p": 2.0})"))));
  EXPECT_FALSE(diags.HasCode("IW101"));
  EXPECT_TRUE(diags.HasCode("IW203"));
}

TEST(AnalyzerTest, AnalyzeOrDiePassesCleanAndRejectsBroken) {
  Json clean = P(Pipeline(
      Standard(R"(["Temp"])", R"({"type": "gaussian_noise", "stddev": 1})")));
  EXPECT_TRUE(AnalyzeOrDie(clean, SchemaOptions()).ok());
  Json broken = P(Pipeline(
      Standard(R"(["Nope"])", R"({"type": "gaussian_noise", "stddev": 1})")));
  Status st = AnalyzeOrDie(broken, SchemaOptions());
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("IW101"), std::string::npos) << st.message();
}

TEST(AnalyzerTest, LoadHookGatesPipelineFromJson) {
  InstallAnalyzeOrDieHook(SchemaOptions());
  Json broken = P(Pipeline(
      Standard(R"(["Nope"])", R"({"type": "gaussian_noise", "stddev": 1})")));
  auto gated = PipelineFromJson(broken);
  EXPECT_FALSE(gated.ok());
  EXPECT_NE(gated.status().message().find("static analysis"),
            std::string::npos);
  UninstallAnalyzeOrDieHook();
  // Unhooked, the statically-broken pipeline loads again (errors only
  // surface at runtime).
  EXPECT_TRUE(PipelineFromJson(broken).ok());
}

// ---------------------------------------------------------------------
// IW61x — the admin-channel request lint (DESIGN.md section 14). Run
// client-side by `icewafl_cli admin` and re-run server-side, so the
// fixtures here lock both gates at once.
// ---------------------------------------------------------------------

AdminAnalyzeOptions AdminOptions() {
  AdminAnalyzeOptions options;
  options.known_methods = {"list_sessions", "get_config",  "swap_pipeline",
                           "set_rate",      "stop_session", "create_session",
                           "get_metrics"};
  options.known_scenarios = {"random_temporal", "software_update"};
  return options;
}

TEST(AnalyzeAdminRequest, CleanRequestsHaveNoFindings) {
  for (const char* text :
       {R"({"id": 1, "method": "list_sessions", "params": {}})",
        R"({"id": "x", "method": "get_config",
            "params": {"session": "live"}})",
        R"({"method": "swap_pipeline",
            "params": {"session": "live", "scenario": "software_update"}})",
        R"({"method": "swap_pipeline",
            "params": {"session": "live", "pipeline": {"polluters": []}}})",
        R"({"method": "set_rate",
            "params": {"session": "live", "tuples_per_sec": 0}})",
        R"({"method": "create_session",
            "params": {"session": {"name": "n", "scenario": "s"}}})"}) {
    SCOPED_TRACE(text);
    Diagnostics diags = AnalyzeAdminRequest(P(text), AdminOptions());
    EXPECT_FALSE(diags.HasErrors()) << diags.ToReport();
    EXPECT_EQ(diags.items().size(), 0u) << diags.ToReport();
  }
}

TEST(AnalyzeAdminRequest, IW610FiresOnMalformedEnvelopes) {
  for (const char* text :
       {R"(42)",                                         // not an object
        R"({})",                                         // no method
        R"({"method": 7})",                              // method type
        R"({"method": ""})",                             // empty method
        R"({"id": {}, "method": "list_sessions"})",      // id type
        R"({"method": "list_sessions", "params": []})"}) {  // params type
    SCOPED_TRACE(text);
    Diagnostics diags = AnalyzeAdminRequest(P(text), AdminOptions());
    EXPECT_TRUE(diags.HasCode("IW610")) << diags.ToReport();
    EXPECT_TRUE(diags.HasErrors());
  }
}

TEST(AnalyzeAdminRequest, IW611FiresOnUnknownMethod) {
  Diagnostics diags = AnalyzeAdminRequest(
      P(R"({"method": "frobnicate", "params": {}})"), AdminOptions());
  EXPECT_TRUE(diags.HasCode("IW611")) << diags.ToReport();
  // With no method vocabulary the membership check is skipped.
  Diagnostics open = AnalyzeAdminRequest(
      P(R"({"method": "frobnicate", "params": {}})"), AdminAnalyzeOptions{});
  EXPECT_FALSE(open.HasCode("IW611")) << open.ToReport();
}

TEST(AnalyzeAdminRequest, IW612FiresOnMissingSessionTarget) {
  for (const char* text :
       {R"({"method": "get_config", "params": {}})",
        R"({"method": "stop_session", "params": {"session": ""}})",
        R"({"method": "set_rate",
            "params": {"session": 7, "tuples_per_sec": 1}})",
        R"({"method": "create_session", "params": {}})",
        R"({"method": "create_session", "params": {"session": "flat"}})"}) {
    SCOPED_TRACE(text);
    Diagnostics diags = AnalyzeAdminRequest(P(text), AdminOptions());
    EXPECT_TRUE(diags.HasCode("IW612")) << diags.ToReport();
    EXPECT_TRUE(diags.HasErrors());
  }
}

TEST(AnalyzeAdminRequest, IW613FiresOnBadSwapPayloads) {
  for (const char* text :
       {R"({"method": "swap_pipeline", "params": {"session": "s"}})",
        R"({"method": "swap_pipeline",
            "params": {"session": "s", "scenario": "x",
                       "pipeline": {}}})",               // both forms
        R"({"method": "swap_pipeline",
            "params": {"session": "s", "pipeline": "inline"}})",
        R"({"method": "swap_pipeline",
            "params": {"session": "s", "scenario": ""}})",
        R"({"method": "swap_pipeline",
            "params": {"session": "s", "scenario": "unknown_name"}})"}) {
    SCOPED_TRACE(text);
    Diagnostics diags = AnalyzeAdminRequest(P(text), AdminOptions());
    EXPECT_TRUE(diags.HasCode("IW613")) << diags.ToReport();
    EXPECT_TRUE(diags.HasErrors());
  }
}

TEST(AnalyzeAdminRequest, IW614FiresOnBadRates) {
  for (const char* text :
       {R"({"method": "set_rate", "params": {"session": "s"}})",
        R"({"method": "set_rate",
            "params": {"session": "s", "tuples_per_sec": "fast"}})",
        R"({"method": "set_rate",
            "params": {"session": "s", "tuples_per_sec": -0.5}})"}) {
    SCOPED_TRACE(text);
    Diagnostics diags = AnalyzeAdminRequest(P(text), AdminOptions());
    EXPECT_TRUE(diags.HasCode("IW614")) << diags.ToReport();
    EXPECT_TRUE(diags.HasErrors());
  }
}

TEST(AnalyzeAdminRequest, IW604WarnsOnUnknownKeys) {
  // Unknown envelope key and unknown per-method params key: warnings
  // only, the request still passes the gate.
  Diagnostics diags = AnalyzeAdminRequest(
      P(R"({"method": "get_config", "verbose": true,
            "params": {"session": "s", "tpyo": 1}})"),
      AdminOptions());
  EXPECT_TRUE(diags.HasCode("IW604")) << diags.ToReport();
  EXPECT_FALSE(diags.HasErrors()) << diags.ToReport();
  EXPECT_EQ(diags.items().size(), 2u) << diags.ToReport();
}

}  // namespace
}  // namespace analysis
}  // namespace icewafl
