#include "io/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace icewafl {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make({{"ts", ValueType::kInt64},
                       {"v", ValueType::kDouble},
                       {"name", ValueType::kString},
                       {"flag", ValueType::kBool}},
                      "ts")
      .ValueOrDie();
}

TupleVector TestTuples(const SchemaPtr& schema) {
  TupleVector tuples;
  tuples.emplace_back(
      schema, std::vector<Value>{Value(int64_t{1}), Value(1.5), Value("a"),
                                 Value(true)});
  tuples.emplace_back(
      schema, std::vector<Value>{Value(int64_t{2}), Value::Null(),
                                 Value("with,comma"), Value(false)});
  tuples.emplace_back(
      schema, std::vector<Value>{Value(int64_t{3}), Value(-0.25),
                                 Value("quo\"te"), Value(true)});
  return tuples;
}

TEST(CsvTest, ParseSimpleRecords) {
  auto r = ParseCsvText("a,b\n1,2\n");
  ASSERT_TRUE(r.ok());
  const auto& recs = r.ValueOrDie();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(recs[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, ParseQuotedFieldWithDelimiterAndNewline) {
  auto r = ParseCsvText("\"a,b\",\"line1\nline2\",\"qu\"\"ote\"\n");
  ASSERT_TRUE(r.ok());
  const auto& recs = r.ValueOrDie();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0][0], "a,b");
  EXPECT_EQ(recs[0][1], "line1\nline2");
  EXPECT_EQ(recs[0][2], "qu\"ote");
}

TEST(CsvTest, ParseHandlesCrLfAndMissingTrailingNewline) {
  auto r = ParseCsvText("a,b\r\nc,d");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.ValueOrDie().size(), 2u);
  EXPECT_EQ(r.ValueOrDie()[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, ParseRejectsUnterminatedQuote) {
  EXPECT_EQ(ParseCsvText("\"open").status().code(), StatusCode::kParseError);
}

TEST(CsvTest, ParseEmptyInput) {
  EXPECT_EQ(ParseCsvText("").ValueOrDie().size(), 0u);
}

TEST(CsvTest, EscapeCsvField) {
  EXPECT_EQ(EscapeCsvField("plain", ','), "plain");
  EXPECT_EQ(EscapeCsvField("a,b", ','), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("q\"t", ','), "\"q\"\"t\"");
  EXPECT_EQ(EscapeCsvField("nl\n", ','), "\"nl\n\"");
}

TEST(CsvTest, StringRoundTripPreservesTypesAndNulls) {
  SchemaPtr schema = TestSchema();
  TupleVector tuples = TestTuples(schema);
  const std::string csv = ToCsvString(schema, tuples);
  auto parsed = FromCsvString(schema, csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const TupleVector& out = parsed.ValueOrDie();
  ASSERT_EQ(out.size(), tuples.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(out[i].ValuesEqual(tuples[i])) << "tuple " << i;
  }
  EXPECT_TRUE(out[1].value(1).is_null());
  EXPECT_TRUE(out[0].value(3).is_bool());
}

TEST(CsvTest, HeaderMismatchRejected) {
  SchemaPtr schema = TestSchema();
  auto r = FromCsvString(schema, "wrong,header,row,x\n1,2,a,true\n");
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, FieldCountMismatchRejected) {
  SchemaPtr schema = TestSchema();
  auto r = FromCsvString(schema, "ts,v,name,flag\n1,2,a\n");
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, TypeConversionFailureRejected) {
  SchemaPtr schema = TestSchema();
  auto r = FromCsvString(schema, "ts,v,name,flag\nnot_an_int,2,a,true\n");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, CustomNullReprAndDelimiter) {
  SchemaPtr schema = TestSchema();
  TupleVector tuples = TestTuples(schema);
  CsvOptions options;
  options.delimiter = ';';
  options.null_repr = "NA";
  const std::string csv = ToCsvString(schema, tuples, options);
  EXPECT_NE(csv.find("NA"), std::string::npos);
  auto parsed = FromCsvString(schema, csv, options);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.ValueOrDie()[1].value(1).is_null());
}

TEST(CsvTest, NoHeaderMode) {
  SchemaPtr schema = TestSchema();
  CsvOptions options;
  options.header = false;
  const std::string csv = ToCsvString(schema, TestTuples(schema), options);
  EXPECT_EQ(csv.find("ts,"), std::string::npos);
  auto parsed = FromCsvString(schema, csv, options);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().size(), 3u);
}

TEST(CsvTest, FileRoundTrip) {
  SchemaPtr schema = TestSchema();
  TupleVector tuples = TestTuples(schema);
  const std::string path = testing::TempDir() + "/icewafl_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(schema, tuples, path).ok());
  auto parsed = ReadCsvFile(schema, path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.ValueOrDie().size(), 3u);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileIsIOError) {
  SchemaPtr schema = TestSchema();
  EXPECT_EQ(ReadCsvFile(schema, "/nonexistent/path.csv").status().code(),
            StatusCode::kIOError);
}

TEST(CsvSourceTest, StreamsTuplesOneByOne) {
  SchemaPtr schema = TestSchema();
  TupleVector tuples = TestTuples(schema);
  const std::string path = testing::TempDir() + "/icewafl_csv_source.csv";
  ASSERT_TRUE(WriteCsvFile(schema, tuples, path).ok());
  CsvSource source(schema, path);
  auto all = CollectAll(&source);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all.ValueOrDie().size(), tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_TRUE(all.ValueOrDie()[i].ValuesEqual(tuples[i])) << i;
  }
  // Source is replayable.
  ASSERT_TRUE(source.Reset().ok());
  EXPECT_EQ(CollectAll(&source).ValueOrDie().size(), tuples.size());
  std::remove(path.c_str());
}

TEST(CsvSourceTest, QuotedNewlinesSurviveStreaming) {
  SchemaPtr schema = TestSchema();
  TupleVector tuples;
  tuples.emplace_back(
      schema, std::vector<Value>{Value(int64_t{1}), Value(0.5),
                                 Value("line1\nline2"), Value(true)});
  const std::string path = testing::TempDir() + "/icewafl_csv_nl.csv";
  ASSERT_TRUE(WriteCsvFile(schema, tuples, path).ok());
  CsvSource source(schema, path);
  auto all = CollectAll(&source);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.ValueOrDie().size(), 1u);
  EXPECT_EQ(all.ValueOrDie()[0].value(2).AsString(), "line1\nline2");
  std::remove(path.c_str());
}

TEST(CsvSourceTest, MissingFileFailsOnFirstNext) {
  SchemaPtr schema = TestSchema();
  CsvSource source(schema, "/no/such/file.csv");
  Tuple t;
  EXPECT_EQ(source.Next(&t).status().code(), StatusCode::kIOError);
}

TEST(CsvSourceTest, HeaderMismatchRejected) {
  SchemaPtr schema = TestSchema();
  const std::string path = testing::TempDir() + "/icewafl_csv_bad.csv";
  {
    std::ofstream out(path);
    out << "wrong,header,row,x\n1,2,a,true\n";
  }
  CsvSource source(schema, path);
  Tuple t;
  EXPECT_EQ(source.Next(&t).status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(CsvSourceTest, StreamingMatchesWholeFileRead) {
  SchemaPtr schema = TestSchema();
  TupleVector tuples = TestTuples(schema);
  const std::string path = testing::TempDir() + "/icewafl_csv_eq.csv";
  ASSERT_TRUE(WriteCsvFile(schema, tuples, path).ok());
  CsvSource source(schema, path);
  auto streamed = CollectAll(&source);
  auto whole = ReadCsvFile(schema, path);
  ASSERT_TRUE(streamed.ok());
  ASSERT_TRUE(whole.ok());
  ASSERT_EQ(streamed.ValueOrDie().size(), whole.ValueOrDie().size());
  for (size_t i = 0; i < whole.ValueOrDie().size(); ++i) {
    EXPECT_TRUE(
        streamed.ValueOrDie()[i].ValuesEqual(whole.ValueOrDie()[i]));
  }
  std::remove(path.c_str());
}

TEST(CsvTest, CsvSinkStreamsWithHeader) {
  SchemaPtr schema = TestSchema();
  std::ostringstream out;
  CsvSink sink(schema, &out);
  for (const Tuple& t : TestTuples(schema)) {
    ASSERT_TRUE(sink.Write(t).ok());
  }
  ASSERT_TRUE(sink.Flush().ok());
  auto parsed = FromCsvString(schema, out.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().size(), 3u);
}

// ---------------------------------------------------------------------
// Round-trip hardening: hostile field content must survive the writer →
// parser cycle byte-for-byte, for both the whole-string and the
// streaming parser, under default and custom delimiters.
// ---------------------------------------------------------------------

SchemaPtr StringPairSchema() {
  return Schema::Make(
             {{"ts", ValueType::kInt64}, {"payload", ValueType::kString}},
             "ts")
      .ValueOrDie();
}

std::vector<std::string> HostilePayloads() {
  return {
      "plain",
      "comma,inside",
      "semi;inside",
      "quote\"inside",
      "\"leading quote",
      "trailing quote\"",
      "\"wrapped in quotes\"",
      "\"\"",                       // just two quote chars
      "line1\nline2",               // embedded LF
      "line1\r\nline2",             // embedded CRLF
      "bare\rreturn",               // embedded bare CR
      "\n",                         // newline only
      "\r\n",                       // CRLF only
      "  padded  ",                 // spaces preserved unquoted
      "tab\tinside",
      "mixed,\"all\"\nof\r\nit\r",  // everything at once
  };
}

TEST(CsvHardening, HostilePayloadsRoundTripDefaultDelimiter) {
  SchemaPtr schema = StringPairSchema();
  TupleVector tuples;
  int64_t ts = 0;
  for (const std::string& payload : HostilePayloads()) {
    tuples.emplace_back(schema,
                        std::vector<Value>{Value(ts++), Value(payload)});
  }
  const std::string text = ToCsvString(schema, tuples);
  auto back = FromCsvString(schema, text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.ValueOrDie().size(), tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_EQ(back.ValueOrDie()[i].value(1).AsString(),
              tuples[i].value(1).AsString())
        << "payload " << i << " corrupted by the round trip";
  }
}

TEST(CsvHardening, HostilePayloadsRoundTripCustomDelimiter) {
  SchemaPtr schema = StringPairSchema();
  CsvOptions options;
  options.delimiter = ';';
  TupleVector tuples;
  int64_t ts = 0;
  for (const std::string& payload : HostilePayloads()) {
    tuples.emplace_back(schema,
                        std::vector<Value>{Value(ts++), Value(payload)});
  }
  const std::string text = ToCsvString(schema, tuples, options);
  auto back = FromCsvString(schema, text, options);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.ValueOrDie().size(), tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_EQ(back.ValueOrDie()[i].value(1).AsString(),
              tuples[i].value(1).AsString())
        << "payload " << i;
  }
}

TEST(CsvHardening, StreamingParserAgreesOnHostileFile) {
  SchemaPtr schema = StringPairSchema();
  TupleVector tuples;
  int64_t ts = 0;
  for (const std::string& payload : HostilePayloads()) {
    tuples.emplace_back(schema,
                        std::vector<Value>{Value(ts++), Value(payload)});
  }
  const std::string path = testing::TempDir() + "/icewafl_csv_hostile.csv";
  ASSERT_TRUE(WriteCsvFile(schema, tuples, path).ok());
  CsvSource source(schema, path);
  auto streamed = CollectAll(&source);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  ASSERT_EQ(streamed.ValueOrDie().size(), tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_EQ(streamed.ValueOrDie()[i].value(1).AsString(),
              tuples[i].value(1).AsString())
        << "payload " << i << " corrupted by the streaming parser";
  }
  std::remove(path.c_str());
}

TEST(CsvHardening, EscapeQuotesExactlyWhenNeeded) {
  EXPECT_EQ(EscapeCsvField("plain", ','), "plain");
  EXPECT_EQ(EscapeCsvField("semi;fine", ','), "semi;fine");
  EXPECT_EQ(EscapeCsvField("a,b", ','), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("a\rb", ','), "\"a\rb\"");
  EXPECT_EQ(EscapeCsvField("a\nb", ','), "\"a\nb\"");
  EXPECT_EQ(EscapeCsvField("a\"b", ','), "\"a\"\"b\"");
  // The delimiter, not a hard-coded comma, decides the quoting.
  EXPECT_EQ(EscapeCsvField("a,b", ';'), "a,b");
  EXPECT_EQ(EscapeCsvField("a;b", ';'), "\"a;b\"");
}

TEST(CsvHardening, BareCarriageReturnTerminatesRecord) {
  auto r = ParseCsvText("a,b\rc,d\r");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.ValueOrDie().size(), 2u);
  EXPECT_EQ(r.ValueOrDie()[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(r.ValueOrDie()[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvHardening, CarriageReturnsInsideQuotesArePreserved) {
  auto r = ParseCsvText("\"a\rb\",\"c\r\nd\"\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.ValueOrDie().size(), 1u);
  EXPECT_EQ(r.ValueOrDie()[0][0], "a\rb");
  EXPECT_EQ(r.ValueOrDie()[0][1], "c\r\nd");
}

TEST(CsvHardening, HostileHeaderNamesRoundTripThroughFiles) {
  auto schema = Schema::Make({{"t,s", ValueType::kInt64},
                              {"na\"me", ValueType::kString},
                              {"li\nne", ValueType::kDouble}},
                             "t,s");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  TupleVector tuples;
  tuples.emplace_back(
      schema.ValueOrDie(),
      std::vector<Value>{Value(int64_t{9}), Value("v"), Value(0.5)});
  const std::string path = testing::TempDir() + "/icewafl_csv_header.csv";
  ASSERT_TRUE(WriteCsvFile(schema.ValueOrDie(), tuples, path).ok());
  auto back = ReadCsvFile(schema.ValueOrDie(), path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.ValueOrDie().size(), 1u);
  std::remove(path.c_str());
}

TEST(CsvHardening, QuotedEmptyFieldStaysDistinctFromMissingRecord) {
  auto r = ParseCsvText("\"\"\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.ValueOrDie().size(), 1u);
  EXPECT_EQ(r.ValueOrDie()[0], (std::vector<std::string>{""}));
}

}  // namespace
}  // namespace icewafl
