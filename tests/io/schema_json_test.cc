#include "io/schema_json.h"

#include <gtest/gtest.h>

namespace icewafl {
namespace {

TEST(SchemaJsonTest, ParsesFullSchema) {
  auto schema = SchemaFromJsonString(R"({
    "attributes": [
      {"name": "ts", "type": "int64"},
      {"name": "temp", "type": "double"},
      {"name": "ok", "type": "bool"},
      {"name": "station", "type": "string"}
    ],
    "timestamp": "ts"
  })");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  const SchemaPtr& s = schema.ValueOrDie();
  EXPECT_EQ(s->num_attributes(), 4u);
  EXPECT_EQ(s->timestamp_name(), "ts");
  EXPECT_EQ(s->attribute(2).type, ValueType::kBool);
}

TEST(SchemaJsonTest, TypeDefaultsToDouble) {
  auto schema = SchemaFromJsonString(R"({
    "attributes": [{"name": "ts", "type": "int64"}, {"name": "v"}],
    "timestamp": "ts"
  })");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.ValueOrDie()->attribute(1).type, ValueType::kDouble);
}

TEST(SchemaJsonTest, RejectsBadInput) {
  EXPECT_FALSE(SchemaFromJsonString("[]").ok());
  EXPECT_FALSE(SchemaFromJsonString(R"({"attributes": 5})").ok());
  EXPECT_FALSE(SchemaFromJsonString(
                   R"({"attributes": [{"name":"a","type":"int64"}]})")
                   .ok());  // no timestamp
  EXPECT_FALSE(SchemaFromJsonString(
                   R"({"attributes": [{"name":"a","type":"wat"}],
                       "timestamp": "a"})")
                   .ok());
  EXPECT_FALSE(SchemaFromJsonFile("/no/such/file.json").ok());
}

TEST(SchemaJsonTest, RoundTrips) {
  SchemaPtr schema =
      Schema::Make({{"ts", ValueType::kInt64}, {"v", ValueType::kDouble}},
                   "ts")
          .ValueOrDie();
  auto reparsed = SchemaFromJson(SchemaToJson(*schema));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed.ValueOrDie()->Equals(*schema));
}

TEST(SchemaJsonTest, ValueTypeNamesRoundTrip) {
  for (ValueType type : {ValueType::kNull, ValueType::kBool,
                         ValueType::kInt64, ValueType::kDouble,
                         ValueType::kString}) {
    auto parsed = ValueTypeFromName(ValueTypeName(type));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.ValueOrDie(), type);
  }
}

}  // namespace
}  // namespace icewafl
