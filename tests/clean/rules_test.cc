#include "clean/rules.h"

#include <gtest/gtest.h>

#include "stream/bind.h"

namespace icewafl {
namespace clean {
namespace {

SchemaPtr WearableLikeSchema() {
  return Schema::Make({{"Time", ValueType::kInt64},
                       {"BPM", ValueType::kDouble},
                       {"Steps", ValueType::kInt64},
                       {"Distance", ValueType::kDouble},
                       {"Device", ValueType::kString}},
                      "Time")
      .ValueOrDie();
}

Tuple Row(const SchemaPtr& schema, int64_t t, Value bpm, int64_t steps,
          Value distance, std::string device = "watch") {
  Tuple tuple(schema, {Value(t), std::move(bpm), Value(steps),
                       std::move(distance), Value(std::move(device))});
  tuple.set_id(static_cast<TupleId>(t));
  tuple.set_event_time(t);
  return tuple;
}

Status BindRule(CleanRule* rule, const SchemaPtr& schema) {
  BindContext ctx(*schema);
  BindContext::Scope rules_scope(ctx, "rules");
  BindContext::Scope index_scope(ctx, size_t{0});
  return rule->Bind(ctx);
}

TEST(RepairActionTest, NamesRoundTrip) {
  for (RepairAction action :
       {RepairAction::kDrop, RepairAction::kSetNull, RepairAction::kClamp,
        RepairAction::kLastGood, RepairAction::kWindowMean,
        RepairAction::kWindowMedian}) {
    Result<RepairAction> back = RepairActionFromName(RepairActionName(action));
    ASSERT_TRUE(back.ok()) << RepairActionName(action);
    EXPECT_EQ(back.ValueOrDie(), action);
  }
  EXPECT_FALSE(RepairActionFromName("mend").ok());
}

TEST(RepairActionTest, HistoryNeedClassifiesWindowedRepairs) {
  EXPECT_FALSE(RepairNeedsHistory(RepairAction::kDrop));
  EXPECT_FALSE(RepairNeedsHistory(RepairAction::kSetNull));
  EXPECT_FALSE(RepairNeedsHistory(RepairAction::kClamp));
  EXPECT_TRUE(RepairNeedsHistory(RepairAction::kLastGood));
  EXPECT_TRUE(RepairNeedsHistory(RepairAction::kWindowMean));
  EXPECT_TRUE(RepairNeedsHistory(RepairAction::kWindowMedian));
}

TEST(CompareOpTest, NamesAndEvaluation) {
  for (CompareOp op : {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                       CompareOp::kGe, CompareOp::kEq, CompareOp::kNe}) {
    Result<CompareOp> back = CompareOpFromName(CompareOpName(op));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.ValueOrDie(), op);
  }
  EXPECT_TRUE(EvalCompareOp(CompareOp::kLt, 1.0, 2.0));
  EXPECT_FALSE(EvalCompareOp(CompareOp::kLt, 2.0, 2.0));
  EXPECT_TRUE(EvalCompareOp(CompareOp::kLe, 2.0, 2.0));
  EXPECT_TRUE(EvalCompareOp(CompareOp::kGt, 3.0, 2.0));
  EXPECT_TRUE(EvalCompareOp(CompareOp::kGe, 2.0, 2.0));
  EXPECT_TRUE(EvalCompareOp(CompareOp::kEq, 2.0, 2.0));
  EXPECT_TRUE(EvalCompareOp(CompareOp::kNe, 1.0, 2.0));
}

TEST(ValueHistoryTest, RingEvictsOldest) {
  ValueHistory history(3);
  EXPECT_TRUE(history.empty());
  history.Push(1.0);
  history.Push(2.0);
  history.Push(3.0);
  history.Push(4.0);  // evicts 1.0
  EXPECT_EQ(history.size(), 3u);
  EXPECT_DOUBLE_EQ(history.Recent(0), 4.0);
  EXPECT_DOUBLE_EQ(history.Recent(1), 3.0);
  EXPECT_DOUBLE_EQ(history.Recent(2), 2.0);
  EXPECT_DOUBLE_EQ(history.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(history.Median(), 3.0);
  history.Clear();
  EXPECT_TRUE(history.empty());
}

TEST(ValueHistoryTest, MedianMidpointForEvenCounts) {
  ValueHistory history(4);
  history.Push(1.0);
  history.Push(2.0);
  history.Push(10.0);
  history.Push(100.0);
  EXPECT_DOUBLE_EQ(history.Median(), 6.0);
}

TEST(RangeRuleTest, ViolationsAndClampBounds) {
  SchemaPtr schema = WearableLikeSchema();
  RangeRule rule("bpm", "BPM", 20.0, 250.0, RepairAction::kClamp);
  ASSERT_TRUE(BindRule(&rule, schema).ok());

  EXPECT_FALSE(
      rule.Violates(Row(schema, 0, Value(70.0), 0, Value(0.0)), nullptr));
  EXPECT_TRUE(
      rule.Violates(Row(schema, 1, Value(300.0), 0, Value(0.0)), nullptr));
  EXPECT_TRUE(
      rule.Violates(Row(schema, 2, Value(10.0), 0, Value(0.0)), nullptr));
  // NULL never violates a numeric rule — not_null's job.
  EXPECT_FALSE(
      rule.Violates(Row(schema, 3, Value::Null(), 0, Value(0.0)), nullptr));

  double lo = 0, hi = 0;
  ASSERT_TRUE(rule.ClampBounds(&lo, &hi));
  EXPECT_DOUBLE_EQ(lo, 20.0);
  EXPECT_DOUBLE_EQ(hi, 250.0);
  EXPECT_FALSE(rule.stateful());
}

TEST(NotNullRuleTest, FiresOnNullOnly) {
  SchemaPtr schema = WearableLikeSchema();
  NotNullRule rule("bpm", "BPM", RepairAction::kLastGood);
  ASSERT_TRUE(BindRule(&rule, schema).ok());
  EXPECT_TRUE(
      rule.Violates(Row(schema, 0, Value::Null(), 0, Value(0.0)), nullptr));
  EXPECT_FALSE(
      rule.Violates(Row(schema, 1, Value(70.0), 0, Value(0.0)), nullptr));
  // last_good needs history, so the rule is stateful despite a
  // stateless detect.
  EXPECT_TRUE(rule.stateful());
  EXPECT_FALSE(rule.windowed());
}

TEST(NotNullRuleTest, BindsStringColumnsToo) {
  SchemaPtr schema = WearableLikeSchema();
  NotNullRule rule("dev", "Device", RepairAction::kDrop);
  EXPECT_TRUE(BindRule(&rule, schema).ok());
}

TEST(RegexRuleTest, FiresWhenRenderedValueFailsToMatch) {
  SchemaPtr schema = WearableLikeSchema();
  // The pattern describes what a HEALTHY value looks like (full
  // precision); a truncated rendering fails the anchored match.
  RegexRule rule("precision", "Distance", "\\d+\\.\\d{3,}",
                 RepairAction::kSetNull);
  ASSERT_TRUE(BindRule(&rule, schema).ok());
  EXPECT_FALSE(
      rule.Violates(Row(schema, 0, Value(70.0), 0, Value(1.2345)), nullptr));
  EXPECT_TRUE(
      rule.Violates(Row(schema, 1, Value(70.0), 0, Value(1.25)), nullptr));
  // NULLs are skipped.
  EXPECT_FALSE(
      rule.Violates(Row(schema, 2, Value(70.0), 0, Value::Null()), nullptr));
}

TEST(TypeRuleTest, FiresOnMismatchedType) {
  SchemaPtr schema = WearableLikeSchema();
  TypeRule rule("bpm_type", "BPM", ValueType::kDouble, RepairAction::kSetNull);
  ASSERT_TRUE(BindRule(&rule, schema).ok());
  EXPECT_FALSE(
      rule.Violates(Row(schema, 0, Value(70.0), 0, Value(0.0)), nullptr));
  EXPECT_TRUE(rule.Violates(
      Row(schema, 1, Value(std::string("seventy")), 0, Value(0.0)), nullptr));
  // NULL carries no type — never a violation.
  EXPECT_FALSE(
      rule.Violates(Row(schema, 2, Value::Null(), 0, Value(0.0)), nullptr));
}

TEST(CrossFieldRuleTest, InvariantMustHold) {
  SchemaPtr schema = WearableLikeSchema();
  // Distance must be <= Steps (violated when distance > steps).
  CrossFieldRule rule("dist", "Distance", CompareOp::kLe, "Steps",
                      RepairAction::kSetNull);
  ASSERT_TRUE(BindRule(&rule, schema).ok());
  EXPECT_FALSE(
      rule.Violates(Row(schema, 0, Value(70.0), 100, Value(1.0)), nullptr));
  EXPECT_TRUE(
      rule.Violates(Row(schema, 1, Value(70.0), 100, Value(5000.0)), nullptr));
  // Either side NULL: no violation.
  EXPECT_FALSE(
      rule.Violates(Row(schema, 2, Value(70.0), 100, Value::Null()), nullptr));
}

TEST(RateOfChangeRuleTest, NeedsHistoryAndThreshold) {
  SchemaPtr schema = WearableLikeSchema();
  RateOfChangeRule rule("jump", "BPM", 30.0, RepairAction::kLastGood);
  ASSERT_TRUE(BindRule(&rule, schema).ok());
  EXPECT_TRUE(rule.windowed());
  EXPECT_TRUE(rule.stateful());

  // Empty history never fires.
  ValueHistory empty(4);
  EXPECT_FALSE(
      rule.Violates(Row(schema, 0, Value(200.0), 0, Value(0.0)), &empty));

  ValueHistory history(4);
  history.Push(70.0);
  EXPECT_FALSE(
      rule.Violates(Row(schema, 1, Value(95.0), 0, Value(0.0)), &history));
  EXPECT_TRUE(
      rule.Violates(Row(schema, 2, Value(170.0), 0, Value(0.0)), &history));
}

TEST(StuckAtRuleTest, FiresAfterMinRepeats) {
  SchemaPtr schema = WearableLikeSchema();
  StuckAtRule rule("stuck", "BPM", 3, RepairAction::kSetNull);
  ASSERT_TRUE(BindRule(&rule, schema).ok());
  EXPECT_TRUE(rule.windowed());

  ValueHistory history(8);
  history.Push(70.0);
  // Only one prior repeat: a second 70 is not yet stuck (needs 3 total).
  EXPECT_FALSE(
      rule.Violates(Row(schema, 0, Value(70.0), 0, Value(0.0)), &history));
  history.Push(70.0);
  EXPECT_TRUE(
      rule.Violates(Row(schema, 1, Value(70.0), 0, Value(0.0)), &history));
  EXPECT_FALSE(
      rule.Violates(Row(schema, 2, Value(71.0), 0, Value(0.0)), &history));
}

TEST(RuleGuardTest, GuardSkipsRuleWhenUnsatisfied) {
  SchemaPtr schema = WearableLikeSchema();
  RangeRule rule("bpm", "BPM", 1.0, 250.0, RepairAction::kSetNull);
  RuleGuard guard;
  guard.column = "Steps";
  guard.op = CompareOp::kGt;
  guard.value = 0.0;
  rule.mutable_guards()->push_back(std::move(guard));
  ASSERT_TRUE(BindRule(&rule, schema).ok());

  EXPECT_TRUE(rule.GuardsPass(Row(schema, 0, Value(0.0), 10, Value(0.0))));
  EXPECT_FALSE(rule.GuardsPass(Row(schema, 1, Value(0.0), 0, Value(0.0))));
  // NULL guard column fails the guard (rule skipped).
  Tuple null_steps(schema, {Value(int64_t{2}), Value(0.0), Value::Null(),
                            Value(0.0), Value(std::string("watch"))});
  EXPECT_FALSE(rule.GuardsPass(null_steps));
}

TEST(BindErrorsTest, UnknownColumnCarriesJsonPointer) {
  SchemaPtr schema = WearableLikeSchema();
  RangeRule rule("bpm", "Heartrate", 20.0, 250.0, RepairAction::kSetNull);
  Status status = BindRule(&rule, schema);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("/rules/0"), std::string::npos)
      << status.message();
}

TEST(BindErrorsTest, StringColumnRejectedForNumericRule) {
  SchemaPtr schema = WearableLikeSchema();
  RangeRule rule("dev", "Device", 0.0, 1.0, RepairAction::kDrop);
  EXPECT_FALSE(BindRule(&rule, schema).ok());
}

TEST(CloneTest, CloneOfBoundRuleIsBound) {
  SchemaPtr schema = WearableLikeSchema();
  RegexRule rule("precision", "Distance", "\\d+\\.\\d{3,}",
                 RepairAction::kSetNull);
  ASSERT_TRUE(BindRule(&rule, schema).ok());
  std::unique_ptr<CleanRule> clone = rule.Clone();
  // The clone detects without a re-bind: compiled regex and accessor
  // travel through CopyBindState.
  EXPECT_FALSE(clone->Violates(Row(schema, 0, Value(70.0), 0, Value(1.2345)),
                               nullptr));
  EXPECT_TRUE(clone->Violates(Row(schema, 1, Value(70.0), 0, Value(1.25)),
                              nullptr));
}

TEST(CleaningRulesTest, ToJsonRoundTripsShape) {
  CleaningRules rules;
  rules.name = "doc";
  rules.history = 8;
  rules.rules.push_back(std::make_unique<RangeRule>(
      "bpm", "BPM", 20.0, 250.0, RepairAction::kClamp));
  rules.rules.push_back(std::make_unique<NotNullRule>(
      "bpm_null", "BPM", RepairAction::kLastGood));
  const Json json = rules.ToJson();
  EXPECT_EQ(json.GetString("name", ""), "doc");
  EXPECT_EQ(json.GetInt("history", 0), 8);
  ASSERT_TRUE(json.Has("rules"));
  EXPECT_EQ(json.Get("rules").ValueOrDie().size(), 2u);
  EXPECT_TRUE(rules.HasStateless());
  EXPECT_TRUE(rules.HasStateful());

  CleaningRules copy = rules.Clone();
  EXPECT_EQ(copy.rules.size(), 2u);
  EXPECT_EQ(copy.ToJson().Dump(), json.Dump());
}

}  // namespace
}  // namespace clean
}  // namespace icewafl
