#include "clean/config.h"

#include <gtest/gtest.h>

namespace icewafl {
namespace clean {
namespace {

SchemaPtr WearableLikeSchema() {
  return Schema::Make({{"Time", ValueType::kInt64},
                       {"BPM", ValueType::kDouble},
                       {"Steps", ValueType::kInt64},
                       {"Distance", ValueType::kDouble},
                       {"Device", ValueType::kString}},
                      "Time")
      .ValueOrDie();
}

Result<CleaningRules> Load(const std::string& text) {
  return RulesFromJsonString(text);
}

TEST(CleanConfigTest, LoadsEveryDetectTypeAndRepair) {
  Result<CleaningRules> rules = Load(R"({
    "name": "all", "key": "Device", "history": 8,
    "rules": [
      {"label": "a", "column": "BPM",
       "detect": {"type": "range", "min": 20, "max": 250},
       "repair": "clamp"},
      {"label": "b", "column": "BPM",
       "detect": {"type": "not_null"}, "repair": "last_good"},
      {"label": "c", "column": "Distance",
       "detect": {"type": "regex", "pattern": "\\d+"},
       "repair": "set_null"},
      {"label": "d", "column": "BPM",
       "detect": {"type": "type", "value_type": "double"},
       "repair": "drop"},
      {"label": "e", "column": "Distance",
       "detect": {"type": "cross_field", "op": "le", "other": "Steps"},
       "repair": "window_mean"},
      {"label": "f", "column": "BPM",
       "detect": {"type": "rate_of_change", "max_change": 30},
       "repair": "window_median"},
      {"label": "g", "column": "BPM",
       "detect": {"type": "stuck_at", "min_repeats": 3},
       "repair": "set_null",
       "when": {"column": "Steps", "op": "gt", "value": 0}}
    ]})");
  ASSERT_TRUE(rules.ok()) << rules.status().message();
  const CleaningRules& r = rules.ValueOrDie();
  EXPECT_EQ(r.name, "all");
  EXPECT_EQ(r.key, "Device");
  EXPECT_EQ(r.history, 8u);
  ASSERT_EQ(r.rules.size(), 7u);
  EXPECT_STREQ(r.rules[0]->type(), "range");
  EXPECT_STREQ(r.rules[1]->type(), "not_null");
  EXPECT_STREQ(r.rules[2]->type(), "regex");
  EXPECT_STREQ(r.rules[3]->type(), "type");
  EXPECT_STREQ(r.rules[4]->type(), "cross_field");
  EXPECT_STREQ(r.rules[5]->type(), "rate_of_change");
  EXPECT_STREQ(r.rules[6]->type(), "stuck_at");
  EXPECT_EQ(r.rules[6]->guards().size(), 1u);
}

TEST(CleanConfigTest, RoundTripsThroughToJson) {
  Result<CleaningRules> rules = Load(R"({
    "name": "rt", "history": 4,
    "rules": [
      {"label": "a", "column": "BPM",
       "detect": {"type": "range", "min": 20, "max": 250},
       "repair": "clamp",
       "when": [{"column": "Steps", "op": "gt", "value": 0}]}
    ]})");
  ASSERT_TRUE(rules.ok()) << rules.status().message();
  Result<CleaningRules> again = RulesFromJson(rules.ValueOrDie().ToJson());
  ASSERT_TRUE(again.ok()) << again.status().message();
  EXPECT_EQ(again.ValueOrDie().ToJson().Dump(),
            rules.ValueOrDie().ToJson().Dump());
}

TEST(CleanConfigTest, DefaultsNameAndHistory) {
  Result<CleaningRules> rules = Load(R"({"rules": []})");
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules.ValueOrDie().name, "clean");
  EXPECT_EQ(rules.ValueOrDie().history, 16u);
  EXPECT_TRUE(rules.ValueOrDie().key.empty());
}

// Every rejection names the offending fragment with a JSON pointer.
TEST(CleanConfigTest, ErrorsCarryJsonPointers) {
  struct Case {
    const char* doc;
    const char* pointer;
  };
  const Case cases[] = {
      {R"({"rules": [{"column": "BPM", "detect": {"type": "not_null"},
          "repair": "drop"}]})",
       "/rules/0"},  // missing label
      {R"({"rules": [{"label": "a", "column": "BPM", "repair": "drop"}]})",
       "/rules/0/detect"},
      {R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "range", "min": 9, "max": 1},
          "repair": "drop"}]})",
       "/rules/0/detect/min"},
      {R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "teleport"}, "repair": "drop"}]})",
       "/rules/0/detect/type"},
      {R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "not_null"}, "repair": "mend"}]})",
       "/rules/0/repair"},
      {R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "not_null"}, "repair": "clamp"}]})",
       "/rules/0/repair"},  // clamp without range bounds
      {R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "rate_of_change", "max_change": 0},
          "repair": "drop"}]})",
       "/rules/0/detect/max_change"},
      {R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "stuck_at", "min_repeats": 1},
          "repair": "drop"}]})",
       "/rules/0/detect/min_repeats"},
      {R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "not_null"}, "repair": "drop",
          "when": [{"column": "Steps", "op": "sideways", "value": 0}]}]})",
       "/rules/0/when/0/op"},
      {R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "not_null"}, "repair": "drop",
          "when": 7}]})",
       "/rules/0/when"},
  };
  for (const Case& c : cases) {
    Result<CleaningRules> rules = Load(c.doc);
    ASSERT_FALSE(rules.ok()) << c.doc;
    EXPECT_NE(rules.status().message().find(c.pointer), std::string::npos)
        << "expected pointer " << c.pointer << " in: "
        << rules.status().message();
  }
}

TEST(CleanConfigTest, DocumentShapeErrors) {
  EXPECT_FALSE(Load("[1, 2]").ok());
  EXPECT_FALSE(Load(R"({"name": "x"})").ok());           // missing rules
  EXPECT_FALSE(Load(R"({"rules": {}})").ok());           // rules not array
  EXPECT_FALSE(Load(R"({"history": 0, "rules": []})").ok());
  EXPECT_FALSE(Load(R"({"key": 5, "rules": []})").ok());
  EXPECT_FALSE(Load("{not json").ok());
}

TEST(CleanConfigTest, BindSchemaValidatesColumns) {
  SchemaPtr schema = WearableLikeSchema();
  Result<CleaningRules> good = RulesFromJsonString(
      R"({"rules": [{"label": "a", "column": "BPM",
          "detect": {"type": "range", "min": 20, "max": 250},
          "repair": "set_null"}]})",
      schema);
  EXPECT_TRUE(good.ok()) << good.status().message();

  Result<CleaningRules> bad = RulesFromJsonString(
      R"({"rules": [{"label": "a", "column": "Heartrate",
          "detect": {"type": "range", "min": 20, "max": 250},
          "repair": "set_null"}]})",
      schema);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("/rules/0"), std::string::npos)
      << bad.status().message();

  // Unknown key column is also a bind error, at /key.
  Result<CleaningRules> bad_key = RulesFromJsonString(
      R"({"key": "Sensor", "rules": []})", schema);
  ASSERT_FALSE(bad_key.ok());
  EXPECT_NE(bad_key.status().message().find("/key"), std::string::npos)
      << bad_key.status().message();
}

}  // namespace
}  // namespace clean
}  // namespace icewafl
