#include "clean/cleaner.h"

#include <gtest/gtest.h>

#include "clean/config.h"
#include "io/csv.h"
#include "util/rng.h"

namespace icewafl {
namespace clean {
namespace {

SchemaPtr WearableLikeSchema() {
  return Schema::Make({{"Time", ValueType::kInt64},
                       {"BPM", ValueType::kDouble},
                       {"Steps", ValueType::kInt64},
                       {"Distance", ValueType::kDouble},
                       {"Device", ValueType::kString}},
                      "Time")
      .ValueOrDie();
}

Tuple Row(const SchemaPtr& schema, int64_t t, Value bpm, int64_t steps,
          Value distance, std::string device = "watch") {
  Tuple tuple(schema, {Value(t), std::move(bpm), Value(steps),
                       std::move(distance), Value(std::move(device))});
  tuple.set_id(static_cast<TupleId>(t));
  tuple.set_event_time(t);
  return tuple;
}

CleaningRules LoadRules(const std::string& text, const SchemaPtr& schema) {
  Result<CleaningRules> rules = RulesFromJsonString(text, schema);
  EXPECT_TRUE(rules.ok()) << rules.status().message();
  return std::move(rules).ValueOrDie();
}

Result<TupleVector> RunClean(const CleaningRules& rules, TupleVector input,
                             int parallelism = 1, RepairLog* log = nullptr,
                             CleanStats* stats = nullptr,
                             obs::MetricRegistry* metrics = nullptr) {
  VectorSink sink;
  ICEWAFL_RETURN_NOT_OK(CleanTuples(rules, std::move(input), parallelism,
                                    &sink, metrics, log, stats));
  return sink.TakeTuples();
}

TEST(CleanerOperatorTest, DropRemovesViolatingTuples) {
  SchemaPtr schema = WearableLikeSchema();
  CleaningRules rules = LoadRules(
      R"({"rules": [{"label": "bpm", "column": "BPM",
          "detect": {"type": "range", "min": 20, "max": 250},
          "repair": "drop"}]})",
      schema);
  TupleVector input;
  input.push_back(Row(schema, 0, Value(70.0), 0, Value(0.0)));
  input.push_back(Row(schema, 1, Value(900.0), 0, Value(0.0)));
  input.push_back(Row(schema, 2, Value(75.0), 0, Value(0.0)));

  CleanStats stats;
  RepairLog log;
  Result<TupleVector> out = RunClean(rules, std::move(input), 1, &log, &stats);
  ASSERT_TRUE(out.ok()) << out.status().message();
  ASSERT_EQ(out.ValueOrDie().size(), 2u);
  EXPECT_EQ(out.ValueOrDie()[0].id(), 0u);
  EXPECT_EQ(out.ValueOrDie()[1].id(), 2u);
  EXPECT_EQ(stats.tuples_in, 3u);
  EXPECT_EQ(stats.tuples_out, 2u);
  EXPECT_EQ(stats.tuples_dropped, 1u);
  EXPECT_EQ(stats.fired, 1u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.entries()[0].tuple_id, 1u);
  EXPECT_EQ(log.entries()[0].rule, "bpm");
  EXPECT_EQ(log.entries()[0].action, "drop");
}

TEST(CleanerOperatorTest, SetNullAndClampRepairInPlace) {
  SchemaPtr schema = WearableLikeSchema();
  CleaningRules rules = LoadRules(
      R"({"rules": [
        {"label": "clamp_bpm", "column": "BPM",
         "detect": {"type": "range", "min": 20, "max": 250},
         "repair": "clamp"},
        {"label": "null_dist", "column": "Distance",
         "detect": {"type": "range", "min": 0, "max": 50},
         "repair": "set_null"}]})",
      schema);
  TupleVector input;
  input.push_back(Row(schema, 0, Value(900.0), 0, Value(120000.0)));
  Result<TupleVector> out = RunClean(rules, std::move(input));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.ValueOrDie().size(), 1u);
  const Tuple& t = out.ValueOrDie()[0];
  EXPECT_DOUBLE_EQ(t.value(1).ToDouble().ValueOrDie(), 250.0);
  EXPECT_TRUE(t.value(3).is_null());
}

TEST(CleanerOperatorTest, LastGoodUsesAcceptedHistory) {
  SchemaPtr schema = WearableLikeSchema();
  CleaningRules rules = LoadRules(
      R"({"rules": [{"label": "bpm", "column": "BPM",
          "detect": {"type": "not_null"}, "repair": "last_good"}]})",
      schema);
  TupleVector input;
  // First tuple already NULL: empty history, repair degrades to NULL.
  input.push_back(Row(schema, 0, Value::Null(), 0, Value(0.0)));
  input.push_back(Row(schema, 1, Value(70.0), 0, Value(0.0)));
  input.push_back(Row(schema, 2, Value::Null(), 0, Value(0.0)));
  Result<TupleVector> out = RunClean(rules, std::move(input));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.ValueOrDie().size(), 3u);
  EXPECT_TRUE(out.ValueOrDie()[0].value(1).is_null());
  EXPECT_DOUBLE_EQ(out.ValueOrDie()[2].value(1).ToDouble().ValueOrDie(), 70.0);
}

TEST(CleanerOperatorTest, WindowMeanAndMedianImpute) {
  SchemaPtr schema = WearableLikeSchema();
  CleaningRules rules = LoadRules(
      R"({"history": 4,
          "rules": [{"label": "bpm", "column": "BPM",
          "detect": {"type": "range", "min": 20, "max": 250},
          "repair": "window_mean"}]})",
      schema);
  TupleVector input;
  input.push_back(Row(schema, 0, Value(60.0), 0, Value(0.0)));
  input.push_back(Row(schema, 1, Value(80.0), 0, Value(0.0)));
  input.push_back(Row(schema, 2, Value(1000.0), 0, Value(0.0)));
  Result<TupleVector> out = RunClean(rules, std::move(input));
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.ValueOrDie()[2].value(1).ToDouble().ValueOrDie(), 70.0);
}

TEST(CleanerOperatorTest, RepairedValueEntersHistoryNotThePollutedOne) {
  SchemaPtr schema = WearableLikeSchema();
  CleaningRules rules = LoadRules(
      R"({"history": 8,
          "rules": [{"label": "bpm", "column": "BPM",
          "detect": {"type": "range", "min": 20, "max": 250},
          "repair": "last_good"}]})",
      schema);
  TupleVector input;
  input.push_back(Row(schema, 0, Value(70.0), 0, Value(0.0)));
  input.push_back(Row(schema, 1, Value(1000.0), 0, Value(0.0)));
  // If 1000 had entered the history, this repair would yield 1000.
  input.push_back(Row(schema, 2, Value(2000.0), 0, Value(0.0)));
  Result<TupleVector> out = RunClean(rules, std::move(input));
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.ValueOrDie()[1].value(1).ToDouble().ValueOrDie(), 70.0);
  EXPECT_DOUBLE_EQ(out.ValueOrDie()[2].value(1).ToDouble().ValueOrDie(), 70.0);
}

TEST(CleanerOperatorTest, EarlierRuleRepairsBeforeLaterRuleSees) {
  SchemaPtr schema = WearableLikeSchema();
  // Canonical order: clamp (stateless) runs before the stateful
  // rate_of_change rule, so the clamped value is what rate-of-change
  // compares — it must not fire on the already-repaired 250.
  CleaningRules rules = LoadRules(
      R"({"rules": [
        {"label": "clamp_bpm", "column": "BPM",
         "detect": {"type": "range", "min": 20, "max": 250},
         "repair": "clamp"},
        {"label": "jump", "column": "BPM",
         "detect": {"type": "rate_of_change", "max_change": 300},
         "repair": "last_good"}]})",
      schema);
  TupleVector input;
  input.push_back(Row(schema, 0, Value(70.0), 0, Value(0.0)));
  input.push_back(Row(schema, 1, Value(9000.0), 0, Value(0.0)));
  CleanStats stats;
  Result<TupleVector> out =
      RunClean(rules, std::move(input), 1, nullptr, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.ValueOrDie()[1].value(1).ToDouble().ValueOrDie(), 250.0);
  ASSERT_EQ(stats.rules.size(), 2u);
  EXPECT_EQ(stats.rules[0].fired, 1u);
  EXPECT_EQ(stats.rules[1].fired, 0u);
}

TEST(CleanerOperatorTest, KeyPartitionsKeepSeparateHistories) {
  SchemaPtr schema = WearableLikeSchema();
  CleaningRules rules = LoadRules(
      R"({"key": "Device",
          "rules": [{"label": "bpm", "column": "BPM",
          "detect": {"type": "not_null"}, "repair": "last_good"}]})",
      schema);
  TupleVector input;
  input.push_back(Row(schema, 0, Value(60.0), 0, Value(0.0), "a"));
  input.push_back(Row(schema, 1, Value(90.0), 0, Value(0.0), "b"));
  input.push_back(Row(schema, 2, Value::Null(), 0, Value(0.0), "a"));
  input.push_back(Row(schema, 3, Value::Null(), 0, Value(0.0), "b"));
  Result<TupleVector> out = RunClean(rules, std::move(input));
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.ValueOrDie()[2].value(1).ToDouble().ValueOrDie(), 60.0);
  EXPECT_DOUBLE_EQ(out.ValueOrDie()[3].value(1).ToDouble().ValueOrDie(), 90.0);
}

TEST(CleanerOperatorTest, GuardedRuleSkipsWhenPreconditionFails) {
  SchemaPtr schema = WearableLikeSchema();
  CleaningRules rules = LoadRules(
      R"({"rules": [{"label": "bpm_zero", "column": "BPM",
          "detect": {"type": "range", "min": 1, "max": 250},
          "repair": "set_null",
          "when": {"column": "Steps", "op": "gt", "value": 0}}]})",
      schema);
  TupleVector input;
  input.push_back(Row(schema, 0, Value(0.0), 0, Value(0.0)));    // idle: keep
  input.push_back(Row(schema, 1, Value(0.0), 500, Value(0.0)));  // active
  Result<TupleVector> out = RunClean(rules, std::move(input));
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out.ValueOrDie()[0].value(1).is_null());
  EXPECT_TRUE(out.ValueOrDie()[1].value(1).is_null());
}

TEST(CleanerOperatorTest, PerRuleCountersPublishedThroughRegistry) {
  SchemaPtr schema = WearableLikeSchema();
  CleaningRules rules = LoadRules(
      R"({"name": "unit", "rules": [
        {"label": "bpm", "column": "BPM",
         "detect": {"type": "range", "min": 20, "max": 250},
         "repair": "set_null"},
        {"label": "toss", "column": "Distance",
         "detect": {"type": "range", "min": 0, "max": 50},
         "repair": "drop"}]})",
      schema);
  TupleVector input;
  input.push_back(Row(schema, 0, Value(900.0), 0, Value(0.0)));
  input.push_back(Row(schema, 1, Value(70.0), 0, Value(999.0)));
  obs::MetricRegistry registry;
  Result<TupleVector> out =
      RunClean(rules, std::move(input), 1, nullptr, nullptr, &registry);
  ASSERT_TRUE(out.ok());
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("icewafl_cleaner_tuples_total"), std::string::npos);
  EXPECT_NE(text.find("icewafl_cleaner_fired_total"), std::string::npos);
  EXPECT_NE(text.find("icewafl_cleaner_repaired_total"), std::string::npos);
  EXPECT_NE(text.find("icewafl_cleaner_dropped_total"), std::string::npos);
  // Labeled per rule and per document.
  EXPECT_NE(text.find("rule=\"bpm\""), std::string::npos) << text;
  EXPECT_NE(text.find("rule=\"toss\""), std::string::npos) << text;
  EXPECT_NE(text.find("rules=\"unit\""), std::string::npos) << text;
}

// The determinism contract: byte-identical output at every parallelism,
// including documents mixing pure and stateful rules (the split runner)
// and pure-only documents (fully parallel path).
TEST(CleanTuplesTest, ByteIdenticalAcrossParallelism) {
  SchemaPtr schema = WearableLikeSchema();
  CleaningRules rules = LoadRules(
      R"({"history": 8, "rules": [
        {"label": "drop_dist", "column": "Distance",
         "detect": {"type": "range", "min": 0, "max": 50},
         "repair": "drop"},
        {"label": "clamp_bpm", "column": "BPM",
         "detect": {"type": "range", "min": 20, "max": 250},
         "repair": "clamp"},
        {"label": "null_bpm", "column": "BPM",
         "detect": {"type": "not_null"}, "repair": "last_good"},
        {"label": "jump", "column": "BPM",
         "detect": {"type": "rate_of_change", "max_change": 50},
         "repair": "window_median"}]})",
      schema);

  // A deterministic pseudo-random stream with pollution sprinkled in.
  Rng rng(7);
  TupleVector input;
  for (int64_t i = 0; i < 500; ++i) {
    Value bpm(60.0 + static_cast<double>(rng.Next() % 40));
    if (i % 17 == 0) bpm = Value::Null();
    if (i % 23 == 0) bpm = Value(1000.0);
    Value distance(static_cast<double>(rng.Next() % 10));
    if (i % 31 == 0) distance = Value(120000.0);
    input.push_back(Row(schema, i, std::move(bpm),
                        static_cast<int64_t>(rng.Next() % 100),
                        std::move(distance)));
  }

  RepairLog log1;
  CleanStats stats1;
  Result<TupleVector> p1 = RunClean(rules, input, 1, &log1, &stats1);
  ASSERT_TRUE(p1.ok()) << p1.status().message();
  const std::string golden = ToCsvString(schema, p1.ValueOrDie());
  ASSERT_GT(stats1.fired, 0u);
  ASSERT_GT(stats1.tuples_dropped, 0u);

  for (int parallelism : {2, 4}) {
    RepairLog log;
    CleanStats stats;
    Result<TupleVector> pn = RunClean(rules, input, parallelism, &log, &stats);
    ASSERT_TRUE(pn.ok()) << pn.status().message();
    EXPECT_EQ(ToCsvString(schema, pn.ValueOrDie()), golden)
        << "parallelism " << parallelism;
    EXPECT_EQ(stats.fired, stats1.fired) << "parallelism " << parallelism;
    EXPECT_EQ(stats.tuples_dropped, stats1.tuples_dropped);
    // Merged per-worker logs equal the sequential log after the sort.
    ASSERT_EQ(log.size(), log1.size());
    EXPECT_EQ(log.entries(), log1.entries());
  }
}

TEST(CleanTuplesTest, PureOnlyDocumentRunsParallel) {
  SchemaPtr schema = WearableLikeSchema();
  CleaningRules rules = LoadRules(
      R"({"rules": [
        {"label": "clamp_bpm", "column": "BPM",
         "detect": {"type": "range", "min": 20, "max": 250},
         "repair": "clamp"},
        {"label": "drop_dist", "column": "Distance",
         "detect": {"type": "range", "min": 0, "max": 50},
         "repair": "drop"}]})",
      schema);
  ASSERT_TRUE(rules.HasStateless());
  ASSERT_FALSE(rules.HasStateful());

  TupleVector input;
  for (int64_t i = 0; i < 200; ++i) {
    input.push_back(Row(schema, i, Value(i % 5 == 0 ? 500.0 : 70.0), 0,
                        Value(i % 7 == 0 ? 90.0 : 1.0)));
  }
  Result<TupleVector> p1 = RunClean(rules, input, 1);
  Result<TupleVector> p4 = RunClean(rules, input, 4);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p4.ok());
  EXPECT_EQ(ToCsvString(schema, p1.ValueOrDie()),
            ToCsvString(schema, p4.ValueOrDie()));
}

TEST(RepairLogTest, MergeSortAndDistinctCount) {
  RepairLog a;
  a.Record({3, "r", "BPM", "set_null"});
  a.Record({1, "r", "BPM", "set_null"});
  RepairLog b;
  b.Record({2, "s", "BPM", "drop"});
  b.Record({1, "s", "BPM", "drop"});
  a.Merge(b);
  a.SortByTuple();
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a.entries()[0].tuple_id, 1u);
  EXPECT_EQ(a.entries()[1].tuple_id, 1u);
  // Stable: within tuple 1, log-a's entry precedes log-b's.
  EXPECT_EQ(a.entries()[0].rule, "r");
  EXPECT_EQ(a.entries()[1].rule, "s");
  EXPECT_EQ(a.entries()[3].tuple_id, 3u);
  EXPECT_EQ(a.DistinctTupleCount(), 3u);
  const Json json = a.ToJson();
  EXPECT_EQ(json.GetInt("count", 0), 4);
  EXPECT_EQ(json.Get("entries").ValueOrDie().size(), 4u);
}

}  // namespace
}  // namespace clean
}  // namespace icewafl
