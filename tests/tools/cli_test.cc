// Exit-code contract of icewafl_cli, exercised against the real binary:
// 0 = success, 1 = runtime failure, 2 = usage error. Unknown flags and
// unknown subcommands are always usage errors.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct CliRun {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

// ctest runs test cases as parallel processes; keep scratch paths unique.
std::string UniqueTempPath(const std::string& stem) {
  static std::atomic<int> counter{0};
  return ::testing::TempDir() + "/cli_test_" + std::to_string(getpid()) +
         "_" + std::to_string(counter.fetch_add(1)) + "_" + stem;
}

CliRun RunCli(const std::string& args) {
  const std::string out_path = UniqueTempPath("output.txt");
  const std::string command =
      std::string(ICEWAFL_CLI_PATH) + " " + args + " > " + out_path + " 2>&1";
  int raw = std::system(command.c_str());
  CliRun run;
  run.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(out_path);
  std::ostringstream text;
  text << in.rdbuf();
  run.output = text.str();
  std::remove(out_path.c_str());
  return run;
}

std::string WriteTempConfig(const char* name, const std::string& text) {
  const std::string path = UniqueTempPath(name);
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(CliExitCodes, VersionExitsZero) {
  CliRun run = RunCli("--version");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.output.find("icewafl_cli"), std::string::npos) << run.output;
  EXPECT_EQ(RunCli("version").exit_code, 0);
}

TEST(CliExitCodes, NoArgumentsIsUsageError) {
  EXPECT_EQ(RunCli("").exit_code, 2);
}

TEST(CliExitCodes, UnknownSubcommandIsUsageError) {
  CliRun run = RunCli("pollinate");
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("unknown subcommand"), std::string::npos)
      << run.output;
}

TEST(CliExitCodes, UnknownFlagIsUsageError) {
  // Every subcommand audits its flags; a stray flag never silently
  // passes through.
  for (const char* args :
       {"run --scenario random_temporal --turbo",
        "serve --scenario random_temporal --frobnicate 1",
        "tail --connect 127.0.0.1:1 --folow",
        "lint --no-such-flag x", "schema --wat"}) {
    SCOPED_TRACE(args);
    EXPECT_EQ(RunCli(args).exit_code, 2);
  }
}

TEST(CliExitCodes, MissingRequiredFlagIsUsageError) {
  EXPECT_EQ(RunCli("serve").exit_code, 2);
  EXPECT_EQ(RunCli("tail").exit_code, 2);
  EXPECT_EQ(RunCli("run").exit_code, 2);
}

TEST(CliExitCodes, MalformedIntegerFlagIsUsageError) {
  EXPECT_EQ(RunCli("serve --scenario random_temporal --port 80x").exit_code,
            2);
  EXPECT_EQ(RunCli("tail --connect 127.0.0.1:notaport").exit_code, 2);
  EXPECT_EQ(RunCli("tail --connect 127.0.0.1:1 --limit zero").exit_code, 2);
}

TEST(CliExitCodes, ServeRefusesConfigTheLintRejects) {
  const std::string path = WriteTempConfig(
      "bad_serve.json",
      R"({"scenario": "random_temporal", "port": 70000})");
  CliRun run = RunCli("serve --config " + path);
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("IW601"), std::string::npos) << run.output;
}

TEST(CliExitCodes, ServeRejectsUnknownScenario) {
  CliRun run = RunCli("serve --scenario no_such_scenario");
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("IW605"), std::string::npos) << run.output;
}

TEST(CliExitCodes, TailFailsFastWhenNothingListens) {
  // Connection refused is a runtime failure (1), not a usage error.
  EXPECT_EQ(RunCli("tail --connect 127.0.0.1:1").exit_code, 1);
}

TEST(CliExitCodes, LintRoutesServeConfigs) {
  const std::string path = WriteTempConfig(
      "good_serve.json", R"({"scenario": "random_temporal", "port": 0})");
  CliRun run = RunCli("lint " + path);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// ---------------------------------------------------------------------
// clean — file mode lints the rules document before reading a single
// tuple (statically broken documents exit 1 with the IW70x report);
// scenario mode runs the closed pollute -> detect -> repair ->
// re-validate loop and prints the scorecard.
// ---------------------------------------------------------------------

TEST(CliClean, MissingInputsAreUsageErrors) {
  // File mode needs all three of --rules/--schema/--input.
  EXPECT_EQ(RunCli("clean").exit_code, 2);
  EXPECT_EQ(RunCli("clean --rules nowhere.json").exit_code, 2);
  // Scenario-mode flag validation is a usage error too.
  EXPECT_EQ(
      RunCli("clean --scenario software_update --window-seconds 0").exit_code,
      2);
  EXPECT_EQ(
      RunCli("clean --scenario software_update --frobnicate 1").exit_code, 2);
}

TEST(CliClean, UnknownScenarioIsUsageError) {
  EXPECT_EQ(RunCli("clean --scenario no_such_scenario").exit_code, 2);
}

TEST(CliClean, LintRejectedRulesExitOneWithJsonPointerReport) {
  const std::string schema = WriteTempConfig("clean_schema.json", R"({
    "attributes": [{"name": "Time", "type": "int64"},
                   {"name": "BPM", "type": "double"}],
    "timestamp": "Time"
  })");
  const std::string rules = WriteTempConfig("ghost_rules.json", R"({
    "name": "broken",
    "rules": [{"label": "ghost", "column": "Ghost",
               "detect": {"type": "not_null"}, "repair": "set_null"}]
  })");
  const std::string input =
      WriteTempConfig("clean_in.csv", "Time,BPM\n1,60\n");
  CliRun run = RunCli("clean --rules " + rules + " --schema " + schema +
                      " --input " + input);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("IW703"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("/rules/0"), std::string::npos) << run.output;
}

TEST(CliClean, FileModeRepairsAndWritesOutput) {
  const std::string schema = WriteTempConfig("clean_schema.json", R"({
    "attributes": [{"name": "Time", "type": "int64"},
                   {"name": "BPM", "type": "double"}],
    "timestamp": "Time"
  })");
  const std::string rules = WriteTempConfig("drop_rules.json", R"({
    "name": "bpm_gate",
    "rules": [{"label": "bpm_range", "column": "BPM",
               "detect": {"type": "range", "min": 40, "max": 200},
               "repair": "drop"}]
  })");
  const std::string input = WriteTempConfig(
      "clean_in.csv", "Time,BPM\n1,60\n2,300\n3,80\n");
  const std::string output = UniqueTempPath("cleaned.csv");
  CliRun run = RunCli("clean --rules " + rules + " --schema " + schema +
                      " --input " + input + " --output " + output);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("2 kept, 1 dropped"), std::string::npos)
      << run.output;

  std::ifstream cleaned(output);
  std::string line;
  size_t lines = 0;
  while (std::getline(cleaned, line)) ++lines;
  EXPECT_EQ(lines, 3u);  // header + the two surviving rows
  std::remove(output.c_str());
}

TEST(CliClean, ScenarioModeRunsClosedLoopAndWritesReport) {
  const std::string report = UniqueTempPath("closed_loop.json");
  CliRun run =
      RunCli("clean --scenario software_update --report " + report);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("closed loop software_update"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("repair accuracy"), std::string::npos)
      << run.output;

  std::ifstream in(report);
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("\"families\""), std::string::npos);
  EXPECT_NE(text.str().find("\"min_deterministic_f1\""), std::string::npos);
  std::remove(report.c_str());
}

// ---------------------------------------------------------------------
// admin — same contract: 2 = caught client-side before any connection
// (bad flags or IW61x lint errors), 1 = the server rejected the request
// (lint-gated swaps land here with the Diagnostics JSON on stderr).
// ---------------------------------------------------------------------

TEST(CliAdminExitCodes, UsageErrorsExitTwoBeforeConnecting) {
  // Port 1 has no listener, so an exit of 2 (not 1) on these proves the
  // client-side gate fired before any connect was attempted.
  EXPECT_EQ(RunCli("admin").exit_code, 2);
  EXPECT_EQ(RunCli("admin list_sessions").exit_code, 2);  // no --connect
  EXPECT_EQ(RunCli("admin list_sessions --connect nocolon").exit_code, 2);

  CliRun unknown = RunCli("admin frobnicate --connect 127.0.0.1:1");
  EXPECT_EQ(unknown.exit_code, 2);
  EXPECT_NE(unknown.output.find("IW611"), std::string::npos)
      << unknown.output;

  CliRun swap =
      RunCli("admin swap_pipeline --connect 127.0.0.1:1 --session s");
  EXPECT_EQ(swap.exit_code, 2);
  EXPECT_NE(swap.output.find("IW613"), std::string::npos) << swap.output;

  CliRun rate = RunCli(
      "admin set_rate --connect 127.0.0.1:1 --session s --rate fast");
  EXPECT_EQ(rate.exit_code, 2);

  CliRun no_session = RunCli("admin get_config --connect 127.0.0.1:1");
  EXPECT_EQ(no_session.exit_code, 2);
  EXPECT_NE(no_session.output.find("IW612"), std::string::npos)
      << no_session.output;
}

TEST(CliAdminExitCodes, ConnectionRefusedIsRuntimeFailure) {
  EXPECT_EQ(RunCli("admin list_sessions --connect 127.0.0.1:1").exit_code, 1);
}

/// Starts `icewafl_cli serve` in the background and kills it on scope
/// exit; serves one scenario with the admin channel on an ephemeral
/// port scraped from the startup banner.
class BackgroundServe {
 public:
  explicit BackgroundServe(const std::string& serve_args)
      : log_path_(UniqueTempPath("serve_log.txt")),
        pid_path_(UniqueTempPath("serve_pid.txt")) {
    const std::string command = "sh -c '" + std::string(ICEWAFL_CLI_PATH) +
                                " " + serve_args + " > " + log_path_ +
                                " 2>&1 & echo $!> " + pid_path_ + "'";
    std::system(command.c_str());
  }

  ~BackgroundServe() {
    std::system(("kill -9 $(cat " + pid_path_ + ") 2>/dev/null").c_str());
    std::remove(log_path_.c_str());
    std::remove(pid_path_.c_str());
  }

  /// Polls the serve log for a line containing `needle` (10s cap).
  std::string WaitForLine(const std::string& needle) const {
    for (int i = 0; i < 100; ++i) {
      std::ifstream in(log_path_);
      std::string line;
      while (std::getline(in, line)) {
        if (line.find(needle) != std::string::npos) return line;
      }
      usleep(100 * 1000);
    }
    return "";
  }

  /// The "host:port" tail of a banner line like "admin channel on
  /// 127.0.0.1:37841", or "" if the banner never appeared.
  std::string Endpoint(const std::string& banner) const {
    const std::string line = WaitForLine(banner);
    const size_t on = line.rfind(" on ");
    if (on == std::string::npos) return "";
    return line.substr(on + 4);
  }

 private:
  std::string log_path_;
  std::string pid_path_;
};

TEST(CliAdminExitCodes, LiveServerAcceptsMutationsAndRejectsBadSwaps) {
  BackgroundServe serve(
      "serve --scenario random_temporal --port 0 --admin-port 0");
  const std::string endpoint = serve.Endpoint("admin channel on");
  ASSERT_FALSE(endpoint.empty()) << "serve never printed the admin banner";
  const std::string connect = " --connect " + endpoint;

  CliRun listed = RunCli("admin list_sessions" + connect);
  EXPECT_EQ(listed.exit_code, 0) << listed.output;
  EXPECT_NE(listed.output.find("random_temporal"), std::string::npos)
      << listed.output;

  // A healthy swap: exit 0, version bumped to 2.
  CliRun swapped = RunCli("admin swap_pipeline" + connect +
                          " --session random_temporal"
                          " --scenario software_update");
  EXPECT_EQ(swapped.exit_code, 0) << swapped.output;
  EXPECT_NE(swapped.output.find("\"plan_version\": 2"), std::string::npos)
      << swapped.output;

  // A swap the server's lint gate rejects: exit 1, full Diagnostics on
  // stderr (IW101: unknown attribute for the session's schema).
  const std::string bad = WriteTempConfig("bad_pipeline.json", R"({
    "name": "broken",
    "polluters": [
      {"type": "standard", "label": "bad", "attributes": ["Nope"],
       "condition": {"type": "always"},
       "error": {"type": "missing_value"}}
    ]
  })");
  CliRun rejected = RunCli("admin swap_pipeline" + connect +
                           " --session random_temporal --pipeline " + bad);
  EXPECT_EQ(rejected.exit_code, 1) << rejected.output;
  EXPECT_NE(rejected.output.find("admin swap_pipeline failed"),
            std::string::npos)
      << rejected.output;
  EXPECT_NE(rejected.output.find("IW101"), std::string::npos)
      << rejected.output;

  // The rejected swap was not applied: still version 2.
  CliRun config =
      RunCli("admin get_config" + connect + " --session random_temporal");
  EXPECT_EQ(config.exit_code, 0) << config.output;
  EXPECT_NE(config.output.find("\"plan_version\": 2"), std::string::npos)
      << config.output;

  // Stopping an unknown session is a server-side NotFound: exit 1.
  CliRun missing =
      RunCli("admin stop_session" + connect + " --session nope");
  EXPECT_EQ(missing.exit_code, 1) << missing.output;
}

}  // namespace
