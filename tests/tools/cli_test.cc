// Exit-code contract of icewafl_cli, exercised against the real binary:
// 0 = success, 1 = runtime failure, 2 = usage error. Unknown flags and
// unknown subcommands are always usage errors.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct CliRun {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

// ctest runs test cases as parallel processes; keep scratch paths unique.
std::string UniqueTempPath(const std::string& stem) {
  static std::atomic<int> counter{0};
  return ::testing::TempDir() + "/cli_test_" + std::to_string(getpid()) +
         "_" + std::to_string(counter.fetch_add(1)) + "_" + stem;
}

CliRun RunCli(const std::string& args) {
  const std::string out_path = UniqueTempPath("output.txt");
  const std::string command =
      std::string(ICEWAFL_CLI_PATH) + " " + args + " > " + out_path + " 2>&1";
  int raw = std::system(command.c_str());
  CliRun run;
  run.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(out_path);
  std::ostringstream text;
  text << in.rdbuf();
  run.output = text.str();
  std::remove(out_path.c_str());
  return run;
}

std::string WriteTempConfig(const char* name, const std::string& text) {
  const std::string path = UniqueTempPath(name);
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(CliExitCodes, VersionExitsZero) {
  CliRun run = RunCli("--version");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.output.find("icewafl_cli"), std::string::npos) << run.output;
  EXPECT_EQ(RunCli("version").exit_code, 0);
}

TEST(CliExitCodes, NoArgumentsIsUsageError) {
  EXPECT_EQ(RunCli("").exit_code, 2);
}

TEST(CliExitCodes, UnknownSubcommandIsUsageError) {
  CliRun run = RunCli("pollinate");
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("unknown subcommand"), std::string::npos)
      << run.output;
}

TEST(CliExitCodes, UnknownFlagIsUsageError) {
  // Every subcommand audits its flags; a stray flag never silently
  // passes through.
  for (const char* args :
       {"run --scenario random_temporal --turbo",
        "serve --scenario random_temporal --frobnicate 1",
        "tail --connect 127.0.0.1:1 --folow",
        "lint --no-such-flag x", "schema --wat"}) {
    SCOPED_TRACE(args);
    EXPECT_EQ(RunCli(args).exit_code, 2);
  }
}

TEST(CliExitCodes, MissingRequiredFlagIsUsageError) {
  EXPECT_EQ(RunCli("serve").exit_code, 2);
  EXPECT_EQ(RunCli("tail").exit_code, 2);
  EXPECT_EQ(RunCli("run").exit_code, 2);
}

TEST(CliExitCodes, MalformedIntegerFlagIsUsageError) {
  EXPECT_EQ(RunCli("serve --scenario random_temporal --port 80x").exit_code,
            2);
  EXPECT_EQ(RunCli("tail --connect 127.0.0.1:notaport").exit_code, 2);
  EXPECT_EQ(RunCli("tail --connect 127.0.0.1:1 --limit zero").exit_code, 2);
}

TEST(CliExitCodes, ServeRefusesConfigTheLintRejects) {
  const std::string path = WriteTempConfig(
      "bad_serve.json",
      R"({"scenario": "random_temporal", "port": 70000})");
  CliRun run = RunCli("serve --config " + path);
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("IW601"), std::string::npos) << run.output;
}

TEST(CliExitCodes, ServeRejectsUnknownScenario) {
  CliRun run = RunCli("serve --scenario no_such_scenario");
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("IW605"), std::string::npos) << run.output;
}

TEST(CliExitCodes, TailFailsFastWhenNothingListens) {
  // Connection refused is a runtime failure (1), not a usage error.
  EXPECT_EQ(RunCli("tail --connect 127.0.0.1:1").exit_code, 1);
}

TEST(CliExitCodes, LintRoutesServeConfigs) {
  const std::string path = WriteTempConfig(
      "good_serve.json", R"({"scenario": "random_temporal", "port": 0})");
  CliRun run = RunCli("lint " + path);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

}  // namespace
