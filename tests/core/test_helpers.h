#ifndef ICEWAFL_TESTS_CORE_TEST_HELPERS_H_
#define ICEWAFL_TESTS_CORE_TEST_HELPERS_H_

#include "core/context.h"
#include "stream/tuple.h"

namespace icewafl {
namespace testing_helpers {

inline SchemaPtr SensorSchema() {
  return Schema::Make({{"ts", ValueType::kInt64},
                       {"temp", ValueType::kDouble},
                       {"count", ValueType::kInt64},
                       {"label", ValueType::kString}},
                      "ts")
      .ValueOrDie();
}

/// One sensor tuple at hour `hour` of 2016-03-01.
inline Tuple SensorTuple(const SchemaPtr& schema, int hour, double temp = 20.0,
                         int64_t count = 100, const std::string& label = "ok") {
  const Timestamp ts =
      TimestampFromCivil({2016, 3, 1, hour, 0, 0});
  Tuple t(schema, {Value(ts), Value(temp), Value(count), Value(label)});
  t.set_id(static_cast<TupleId>(hour));
  t.set_event_time(ts);
  t.set_arrival_time(ts);
  return t;
}

/// Context positioned at the tuple's event time within a one-day stream.
inline PollutionContext ContextFor(const Tuple& t, Rng* rng) {
  PollutionContext ctx;
  ctx.tau = t.event_time();
  ctx.stream_start = TimestampFromCivil({2016, 3, 1, 0, 0, 0});
  ctx.stream_end = TimestampFromCivil({2016, 3, 2, 0, 0, 0});
  ctx.rng = rng;
  return ctx;
}

}  // namespace testing_helpers
}  // namespace icewafl

#endif  // ICEWAFL_TESTS_CORE_TEST_HELPERS_H_
