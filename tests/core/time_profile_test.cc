#include "core/time_profile.h"

#include <gtest/gtest.h>

#include <cmath>

namespace icewafl {
namespace {

PollutionContext CtxAt(Timestamp tau, Timestamp start = 0,
                       Timestamp end = 86400, Rng* rng = nullptr) {
  PollutionContext ctx;
  ctx.tau = tau;
  ctx.stream_start = start;
  ctx.stream_end = end;
  ctx.rng = rng;
  return ctx;
}

TEST(ConstantProfileTest, ClampsAndReturnsValue) {
  EXPECT_DOUBLE_EQ(ConstantProfile(0.4).Evaluate(CtxAt(0)), 0.4);
  EXPECT_DOUBLE_EQ(ConstantProfile(2.0).Evaluate(CtxAt(0)), 1.0);
  EXPECT_DOUBLE_EQ(ConstantProfile(-1.0).Evaluate(CtxAt(0)), 0.0);
}

TEST(AbruptProfileTest, StepsAtChangeTime) {
  AbruptProfile profile(1000, 0.1, 0.9);
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(999)), 0.1);
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(1000)), 0.9);
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(5000)), 0.9);
}

TEST(IncrementalProfileTest, LinearRamp) {
  // The paper's example: over five minutes the missing-value probability
  // rises from 40% to 90%.
  IncrementalProfile profile(0, 300, 0.4, 0.9);
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(-10)), 0.4);
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(0)), 0.4);
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(150)), 0.65);
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(300)), 0.9);
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(10000)), 0.9);
}

TEST(IncrementalProfileTest, DegenerateWindowActsAbrupt) {
  IncrementalProfile profile(100, 100, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(99)), 0.0);
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(100)), 1.0);
}

TEST(IncrementalProfileTest, DecreasingRampAllowed) {
  IncrementalProfile profile(0, 100, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(50)), 0.5);
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(200)), 0.0);
}

TEST(IntermediateProfileTest, OutsideWindowIsDeterministic) {
  IntermediateProfile profile(100, 200, 0.0, 1.0);
  Rng rng(1);
  auto ctx_before = CtxAt(50, 0, 300, &rng);
  auto ctx_after = CtxAt(250, 0, 300, &rng);
  EXPECT_DOUBLE_EQ(profile.Evaluate(ctx_before), 0.0);
  EXPECT_DOUBLE_EQ(profile.Evaluate(ctx_after), 1.0);
}

TEST(IntermediateProfileTest, InsideWindowMixesRegimes) {
  IntermediateProfile profile(0, 1000, 0.0, 1.0);
  Rng rng(42);
  int new_regime = 0;
  const int trials = 10000;
  // At 75% through the transition the new regime should dominate.
  for (int i = 0; i < trials; ++i) {
    auto ctx = CtxAt(750, 0, 2000, &rng);
    if (profile.Evaluate(ctx) == 1.0) ++new_regime;
  }
  EXPECT_NEAR(static_cast<double>(new_regime) / trials, 0.75, 0.02);
}

TEST(IntermediateProfileTest, WithoutRngFallsBackToExpectation) {
  IntermediateProfile profile(0, 100, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(25)), 0.25);
}

TEST(SinusoidalProfileTest, MatchesPaperDailyErrorPattern) {
  // p(t) = 0.25 * cos(pi/12 * t) + 0.25 (Experiment 3.1.1).
  SinusoidalProfile profile(24.0, 0.25, 0.25);
  for (int hour = 0; hour < 24; ++hour) {
    const Timestamp tau = TimestampFromCivil({2016, 3, 1, hour, 0, 0});
    const double expected = 0.25 * std::cos(M_PI / 12.0 * hour) + 0.25;
    EXPECT_NEAR(profile.Evaluate(CtxAt(tau)), expected, 1e-9) << hour;
  }
}

TEST(SinusoidalProfileTest, PeaksAtMidnightTroughsAtNoon) {
  SinusoidalProfile profile(24.0, 0.25, 0.25);
  const Timestamp midnight = TimestampFromCivil({2016, 3, 1, 0, 0, 0});
  const Timestamp noon = TimestampFromCivil({2016, 3, 1, 12, 0, 0});
  EXPECT_NEAR(profile.Evaluate(CtxAt(midnight)), 0.5, 1e-9);
  EXPECT_NEAR(profile.Evaluate(CtxAt(noon)), 0.0, 1e-9);
}

TEST(SinusoidalProfileTest, RepeatsDaily) {
  SinusoidalProfile profile(24.0, 0.25, 0.25);
  const Timestamp day1 = TimestampFromCivil({2016, 3, 1, 7, 0, 0});
  const Timestamp day2 = TimestampFromCivil({2016, 3, 2, 7, 0, 0});
  EXPECT_NEAR(profile.Evaluate(CtxAt(day1)), profile.Evaluate(CtxAt(day2)),
              1e-9);
}

TEST(SinusoidalProfileTest, ClampsNegativeLobes) {
  SinusoidalProfile profile(24.0, 1.0, 0.0);  // cos in [-1, 1], no offset
  const Timestamp noon = TimestampFromCivil({2016, 3, 1, 12, 0, 0});
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(noon)), 0.0);  // clamped from -1
}

TEST(StreamRampProfileTest, ImplementsEquation4) {
  // p(activation | tau_i) = hours(tau_i - tau_0) / hours(tau_n - tau_0).
  StreamRampProfile profile;
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(0, 0, 86400)), 0.0);
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(43200, 0, 86400)), 0.5);
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(86400, 0, 86400)), 1.0);
}

TEST(StreamRampProfileTest, ScaleCapsOrStretches) {
  StreamRampProfile half(0.5);
  EXPECT_DOUBLE_EQ(half.Evaluate(CtxAt(86400, 0, 86400)), 0.5);
  StreamRampProfile twice(2.0);
  EXPECT_DOUBLE_EQ(twice.Evaluate(CtxAt(43200, 0, 86400)), 1.0);  // clamped
}

TEST(StreamRampProfileTest, UnknownBoundsYieldZero) {
  StreamRampProfile profile;
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(500, 100, 100)), 0.0);
}

TEST(ReoccurringProfileTest, SquareWaveRelativeToStreamStart) {
  // 4-hour period, 50% duty cycle: high for 2h, low for 2h, repeating.
  ReoccurringProfile profile(4.0, 0.1, 0.9);
  for (int h = 0; h < 12; ++h) {
    const double expected = (h % 4) < 2 ? 0.9 : 0.1;
    EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(h * 3600, 0, 86400)), expected)
        << h;
  }
}

TEST(ReoccurringProfileTest, DutyCycleControlsOnFraction) {
  ReoccurringProfile profile(10.0, 0.0, 1.0, 0.3);
  int high = 0;
  for (int h = 0; h < 10; ++h) {
    if (profile.Evaluate(CtxAt(h * 3600, 0, 86400)) == 1.0) ++high;
  }
  EXPECT_EQ(high, 3);
}

TEST(SpikeProfileTest, GaussianBumpAroundCenter) {
  SpikeProfile profile(/*center=*/10000, /*width_seconds=*/1000, 1.0);
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(10000)), 1.0);
  const double one_sigma = profile.Evaluate(CtxAt(11000));
  EXPECT_NEAR(one_sigma, std::exp(-0.5), 1e-12);
  EXPECT_LT(profile.Evaluate(CtxAt(15000)), 1e-4);  // 5 sigma out
  // Symmetric.
  EXPECT_DOUBLE_EQ(profile.Evaluate(CtxAt(9000)),
                   profile.Evaluate(CtxAt(11000)));
}

TEST(TimeProfileTest, CloneIsIndependentAndEquivalent) {
  IncrementalProfile original(0, 100, 0.0, 1.0);
  TimeProfilePtr clone = original.Clone();
  EXPECT_EQ(clone->name(), "incremental");
  EXPECT_DOUBLE_EQ(clone->Evaluate(CtxAt(50)), 0.5);
  EXPECT_EQ(clone->ToJson(), original.ToJson());
}

TEST(TimeProfileTest, ToJsonCarriesType) {
  EXPECT_EQ(ConstantProfile(0.5).ToJson().GetString("type", ""), "constant");
  EXPECT_EQ(AbruptProfile(0).ToJson().GetString("type", ""), "abrupt");
  EXPECT_EQ(SinusoidalProfile(24, 0.25, 0.25).ToJson().GetString("type", ""),
            "sinusoidal");
  EXPECT_EQ(StreamRampProfile().ToJson().GetString("type", ""), "stream_ramp");
}

}  // namespace
}  // namespace icewafl
