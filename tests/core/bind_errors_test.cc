// Error paths of the two-phase bind pass (DESIGN.md section 8): every
// rejection carries the JSON pointer of the offending config fragment,
// mirroring the loader errors exercised by config_errors_test. The
// fixtures parse, so the only failure the loaders can report is the
// bind-time one.
#include <gtest/gtest.h>

#include <string>

#include "core/composite_polluter.h"
#include "core/config.h"
#include "core/errors_value.h"
#include "dq/config.h"
#include "test_helpers.h"

namespace icewafl {
namespace {

using testing_helpers::SensorSchema;

testing::AssertionResult MessageContains(const Status& status,
                                         const std::string& needle) {
  if (status.ok()) {
    return testing::AssertionFailure() << "expected an error status";
  }
  if (status.message().find(needle) == std::string::npos) {
    return testing::AssertionFailure()
           << "message '" << status.message() << "' lacks '" << needle << "'";
  }
  return testing::AssertionSuccess();
}

// Loads the pipeline and binds it against the sensor schema
// (ts int64 | temp double | count int64 | label string).
Status BindPipeline(const std::string& text) {
  auto pipeline = PipelineFromConfigString(text, SensorSchema());
  return pipeline.status();
}

Status BindSuite(const std::string& text) {
  auto suite = dq::SuiteFromConfigString(text, SensorSchema());
  return suite.status();
}

TEST(BindErrorsTest, ValidPipelineBindsAndRecordsSchema) {
  auto pipeline = PipelineFromConfigString(
      R"({"name": "t", "polluters": [
          {"type": "standard", "label": "p", "attributes": ["temp"],
           "error": {"type": "gaussian_noise", "stddev": 1.0}}]})",
      SensorSchema());
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_NE(pipeline.ValueOrDie().bound_schema(), nullptr);
}

TEST(BindErrorsTest, UnknownPolluterAttributeNamesThePath) {
  const Status status = BindPipeline(
      R"({"name": "t", "polluters": [
          {"type": "standard", "label": "p",
           "attributes": ["temp", "bogus"],
           "error": {"type": "missing_value"}}]})");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(MessageContains(status, "/polluters/0/attributes/1"));
  EXPECT_TRUE(MessageContains(status, "bogus"));
}

TEST(BindErrorsTest, NumericErrorOnStringColumnNamesThePath) {
  const Status status = BindPipeline(
      R"({"name": "t", "polluters": [
          {"type": "standard", "label": "p", "attributes": ["label"],
           "error": {"type": "gaussian_noise", "stddev": 1.0}}]})");
  EXPECT_EQ(status.code(), StatusCode::kTypeError);
  EXPECT_TRUE(MessageContains(status, "/polluters/0/error"));
  EXPECT_TRUE(MessageContains(status, "label"));
  EXPECT_TRUE(MessageContains(status, "string"));
}

TEST(BindErrorsTest, StringErrorOnNumericColumnNamesThePath) {
  const Status status = BindPipeline(
      R"({"name": "t", "polluters": [
          {"type": "standard", "label": "p", "attributes": ["temp"],
           "error": {"type": "typo"}}]})");
  EXPECT_EQ(status.code(), StatusCode::kTypeError);
  EXPECT_TRUE(MessageContains(status, "/polluters/0/error"));
  EXPECT_TRUE(MessageContains(status, "temp"));
}

TEST(BindErrorsTest, ConditionUnknownAttributeNamesThePath) {
  const Status status = BindPipeline(
      R"({"name": "t", "polluters": [
          {"type": "standard", "label": "p", "attributes": ["temp"],
           "error": {"type": "missing_value"},
           "condition": {"type": "value", "attribute": "ghost",
                         "op": ">", "operand": 1.0}}]})");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(MessageContains(status, "/polluters/0/condition/attribute"));
  EXPECT_TRUE(MessageContains(status, "ghost"));
}

TEST(BindErrorsTest, ConditionOperandTypeMismatchNamesThePath) {
  const Status status = BindPipeline(
      R"({"name": "t", "polluters": [
          {"type": "standard", "label": "p", "attributes": ["temp"],
           "error": {"type": "missing_value"},
           "condition": {"type": "value", "attribute": "label",
                         "op": ">", "operand": 1.0}}]})");
  EXPECT_EQ(status.code(), StatusCode::kTypeError);
  EXPECT_TRUE(MessageContains(status, "/polluters/0/condition/operand"));
}

TEST(BindErrorsTest, NestedConditionChildNamesThePath) {
  const Status status = BindPipeline(
      R"({"name": "t", "polluters": [
          {"type": "standard", "label": "p", "attributes": ["temp"],
           "error": {"type": "missing_value"},
           "condition": {"type": "and", "children": [
             {"type": "random", "p": 0.5},
             {"type": "value", "attribute": "ghost",
              "op": "==", "operand": 1.0}]}}]})");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(MessageContains(
      status, "/polluters/0/condition/children/1/attribute"));
}

TEST(BindErrorsTest, WindowAggregateOnStringColumnNamesThePath) {
  const Status status = BindPipeline(
      R"({"name": "t", "polluters": [
          {"type": "standard", "label": "p", "attributes": ["temp"],
           "error": {"type": "missing_value"},
           "condition": {"type": "window_aggregate", "attribute": "label",
                         "window_seconds": 3600, "agg": "mean",
                         "op": ">", "threshold": 1.0}}]})");
  EXPECT_EQ(status.code(), StatusCode::kTypeError);
  EXPECT_TRUE(MessageContains(status, "/polluters/0/condition/attribute"));
}

TEST(BindErrorsTest, CompositeChildErrorNamesThePath) {
  const Status status = BindPipeline(
      R"({"name": "t", "polluters": [
          {"type": "sequential", "label": "seq", "children": [
            {"type": "standard", "label": "fine", "attributes": ["temp"],
             "error": {"type": "missing_value"}},
            {"type": "standard", "label": "broken",
             "attributes": ["absent"],
             "error": {"type": "missing_value"}}]}]})");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(
      MessageContains(status, "/polluters/0/children/1/attributes/0"));
}

TEST(BindErrorsTest, IncorrectCategoryNeedsTwoCategories) {
  const Status status = BindPipeline(
      R"({"name": "t", "polluters": [
          {"type": "standard", "label": "p", "attributes": ["label"],
           "error": {"type": "incorrect_category",
                     "categories": ["only"]}}]})");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(MessageContains(status, "/polluters/0/error"));
}

TEST(BindErrorsTest, SwapAttributesNeedsExactlyTwoTargets) {
  const Status status = BindPipeline(
      R"({"name": "t", "polluters": [
          {"type": "standard", "label": "p", "attributes": ["temp"],
           "error": {"type": "swap_attributes"}}]})");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(MessageContains(status, "/polluters/0/error"));
}

TEST(BindErrorsTest, ExclusiveZeroTotalWeightRejected) {
  SchemaPtr schema = SensorSchema();
  auto exclusive = std::make_unique<ExclusivePolluter>(
      "pick", std::make_unique<AlwaysCondition>());
  exclusive->RegisterWeighted(
      std::make_unique<StandardPolluter>(
          "a", std::make_unique<MissingValueError>(),
          std::make_unique<AlwaysCondition>(),
          std::vector<std::string>{"temp"}),
      0.0);
  BindContext ctx(*schema, "/polluters/0");
  const Status status = exclusive->Bind(ctx);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(MessageContains(status, "/polluters/0/weights"));
}

TEST(BindErrorsTest, SuiteUnknownColumnNamesThePath) {
  const Status status = BindSuite(
      R"({"name": "s", "expectations": [
          {"type": "expect_column_values_to_not_be_null", "column": "temp"},
          {"type": "expect_column_values_to_be_between",
           "column": "absent", "min": 0, "max": 1}]})");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(MessageContains(status, "/expectations/1/column"));
  EXPECT_TRUE(MessageContains(status, "absent"));
}

TEST(BindErrorsTest, SuiteNumericExpectationOnStringColumnRejected) {
  const Status status = BindSuite(
      R"({"name": "s", "expectations": [
          {"type": "expect_column_mean_to_be_between",
           "column": "label", "min": 0, "max": 1}]})");
  EXPECT_EQ(status.code(), StatusCode::kTypeError);
  EXPECT_TRUE(MessageContains(status, "/expectations/0/column"));
}

TEST(BindErrorsTest, SuiteMulticolumnSumNamesTheColumnIndex) {
  const Status status = BindSuite(
      R"({"name": "s", "expectations": [
          {"type": "expect_multicolumn_sum_to_equal",
           "columns": ["temp", "label"], "total": 10}]})");
  EXPECT_EQ(status.code(), StatusCode::kTypeError);
  EXPECT_TRUE(MessageContains(status, "/expectations/0/columns/1"));
}

TEST(BindErrorsTest, SuitePairExpectationNamesTheSide) {
  const Status status = BindSuite(
      R"({"name": "s", "expectations": [
          {"type": "expect_column_pair_values_a_to_be_greater_than_b",
           "column_a": "temp", "column_b": "missing"}]})");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(MessageContains(status, "/expectations/0/column_b"));
}

TEST(BindErrorsTest, ValidSuiteBindsAndRecordsSchema) {
  auto suite = dq::SuiteFromConfigString(
      R"({"name": "s", "expectations": [
          {"type": "expect_column_values_to_be_between",
           "column": "temp", "min": -50, "max": 60},
          {"type": "expect_column_values_to_match_regex",
           "column": "label", "regex": "ok|warn"}]})",
      SensorSchema());
  ASSERT_TRUE(suite.ok()) << suite.status().ToString();
  EXPECT_NE(suite.ValueOrDie().bound_schema(), nullptr);
}

TEST(BindErrorsTest, UnboundLoadStillSucceeds) {
  // Without a bind schema the loaders keep their permissive two-arg
  // behavior: configuration errors surface at first use instead.
  auto pipeline = PipelineFromConfigString(
      R"({"name": "t", "polluters": [
          {"type": "standard", "label": "p", "attributes": ["nonexistent"],
           "error": {"type": "missing_value"}}]})");
  EXPECT_TRUE(pipeline.ok());
  EXPECT_EQ(pipeline.ValueOrDie().bound_schema(), nullptr);
}

}  // namespace
}  // namespace icewafl
