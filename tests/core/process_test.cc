#include "core/process.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/composite_polluter.h"
#include "core/errors_numeric.h"
#include "core/errors_temporal.h"
#include "core/errors_value.h"
#include "test_helpers.h"

namespace icewafl {
namespace {

using testing_helpers::SensorSchema;
using testing_helpers::SensorTuple;

TupleVector HourlyStream(const SchemaPtr& schema, int hours) {
  TupleVector tuples;
  for (int i = 0; i < hours; ++i) {
    Tuple t(schema,
            {Value(TimestampFromCivil({2016, 3, 1, 0, 0, 0}) + i * 3600),
             Value(20.0 + i), Value(int64_t{i}), Value("ok")});
    tuples.push_back(std::move(t));
  }
  return tuples;
}

PollutionPipeline NullPipeline(double p) {
  PollutionPipeline pipeline("nulls");
  pipeline.Add(std::make_unique<StandardPolluter>(
      "nuller", std::make_unique<MissingValueError>(),
      std::make_unique<RandomCondition>(p),
      std::vector<std::string>{"temp"}));
  return pipeline;
}

TEST(PipelineTest, AppliesPollutersInOrder) {
  SchemaPtr schema = SensorSchema();
  PollutionPipeline pipeline("ordered");
  pipeline.Add(std::make_unique<StandardPolluter>(
      "scale_by_2", std::make_unique<ScaleError>(2.0),
      std::make_unique<AlwaysCondition>(), std::vector<std::string>{"temp"}));
  pipeline.Add(std::make_unique<StandardPolluter>(
      "add_10", std::make_unique<OffsetError>(10.0),
      std::make_unique<AlwaysCondition>(), std::vector<std::string>{"temp"}));
  pipeline.Seed(1);
  Tuple t = SensorTuple(schema, 0, 5.0);
  PollutionContext ctx;
  ctx.tau = t.event_time();
  PollutionLog log;
  ASSERT_TRUE(pipeline.Apply(&t, &ctx, &log).ok());
  // (5 * 2) + 10, not (5 + 10) * 2.
  EXPECT_DOUBLE_EQ(t.value(1).AsDouble(), 20.0);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.entries()[0].polluter, "scale_by_2");
  EXPECT_EQ(log.entries()[1].polluter, "add_10");
}

TEST(PipelineTest, AppliedCountsPerLabel) {
  SchemaPtr schema = SensorSchema();
  PollutionPipeline pipeline = NullPipeline(1.0);
  pipeline.Seed(2);
  for (int i = 0; i < 7; ++i) {
    Tuple t = SensorTuple(schema, i);
    PollutionContext ctx;
    ctx.tau = t.event_time();
    ASSERT_TRUE(pipeline.Apply(&t, &ctx, nullptr).ok());
  }
  auto counts = pipeline.AppliedCounts();
  EXPECT_EQ(counts["nuller"], 7u);
  pipeline.ResetStats();
  EXPECT_EQ(pipeline.AppliedCounts()["nuller"], 0u);
}

TEST(ProcessTest, PreparesIdsAndEventTimes) {
  SchemaPtr schema = SensorSchema();
  VectorSource source(schema, HourlyStream(schema, 10));
  auto result = PollutionProcess::Pollute(&source, NullPipeline(0.0), 42);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const PollutionResult& r = result.ValueOrDie();
  ASSERT_EQ(r.clean.size(), 10u);
  ASSERT_EQ(r.polluted.size(), 10u);
  for (size_t i = 0; i < r.clean.size(); ++i) {
    EXPECT_EQ(r.clean[i].id(), i);
    EXPECT_EQ(r.clean[i].event_time(),
              r.clean[i].GetTimestamp().ValueOrDie());
    EXPECT_EQ(r.polluted[i].substream(), 0);
  }
}

TEST(ProcessTest, CleanStreamUntouchedByPollution) {
  SchemaPtr schema = SensorSchema();
  TupleVector input = HourlyStream(schema, 50);
  VectorSource source(schema, input);
  auto result = PollutionProcess::Pollute(&source, NullPipeline(1.0), 42);
  ASSERT_TRUE(result.ok());
  const PollutionResult& r = result.ValueOrDie();
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_TRUE(r.clean[i].ValuesEqual(input[i])) << i;
    EXPECT_TRUE(r.polluted[i].value(1).is_null()) << i;
  }
}

TEST(ProcessTest, GroundTruthLinkViaIds) {
  SchemaPtr schema = SensorSchema();
  VectorSource source(schema, HourlyStream(schema, 100));
  auto result = PollutionProcess::Pollute(&source, NullPipeline(0.5), 7);
  ASSERT_TRUE(result.ok());
  const PollutionResult& r = result.ValueOrDie();
  // Every log entry refers to a polluted tuple whose value is now NULL,
  // and whose clean counterpart (same id) is intact.
  std::set<TupleId> logged;
  for (const auto& e : r.log.entries()) logged.insert(e.tuple_id);
  EXPECT_FALSE(logged.empty());
  for (const Tuple& p : r.polluted) {
    const bool is_logged = logged.count(p.id()) > 0;
    EXPECT_EQ(p.value(1).is_null(), is_logged) << p.id();
    EXPECT_FALSE(r.clean[p.id()].value(1).is_null());
  }
}

TEST(ProcessTest, DeterministicUnderSameSeed) {
  SchemaPtr schema = SensorSchema();
  auto run = [&](uint64_t seed) {
    VectorSource source(schema, HourlyStream(schema, 200));
    auto result = PollutionProcess::Pollute(&source, NullPipeline(0.3), seed);
    EXPECT_TRUE(result.ok());
    std::vector<bool> nulls;
    for (const Tuple& t : result.ValueOrDie().polluted) {
      nulls.push_back(t.value(1).is_null());
    }
    return nulls;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(ProcessTest, SubstreamsPartitionTheStream) {
  SchemaPtr schema = SensorSchema();
  ProcessOptions options;
  options.num_substreams = 3;
  options.seed = 5;
  PollutionProcess process(options);
  process.AddPipeline(NullPipeline(0.0));
  process.AddPipeline(NullPipeline(0.0));
  process.AddPipeline(NullPipeline(0.0));
  VectorSource source(schema, HourlyStream(schema, 30));
  auto result = process.Run(&source);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const PollutionResult& r = result.ValueOrDie();
  ASSERT_EQ(r.polluted.size(), 30u);  // no overlap -> exact partition
  std::set<int> seen;
  for (const Tuple& t : r.polluted) seen.insert(t.substream());
  EXPECT_EQ(seen, (std::set<int>{0, 1, 2}));
}

TEST(ProcessTest, PerSubstreamPipelinesAreIndependent) {
  SchemaPtr schema = SensorSchema();
  ProcessOptions options;
  options.num_substreams = 2;
  options.seed = 5;
  PollutionProcess process(options);
  // Sub-stream 0 nulls temp; sub-stream 1 scales it.
  process.AddPipeline(NullPipeline(1.0));
  PollutionPipeline scaler("scaler");
  scaler.Add(std::make_unique<StandardPolluter>(
      "x1000", std::make_unique<ScaleError>(1000.0),
      std::make_unique<AlwaysCondition>(), std::vector<std::string>{"temp"}));
  process.AddPipeline(std::move(scaler));
  VectorSource source(schema, HourlyStream(schema, 20));
  auto result = process.Run(&source);
  ASSERT_TRUE(result.ok());
  for (const Tuple& t : result.ValueOrDie().polluted) {
    if (t.substream() == 0) {
      EXPECT_TRUE(t.value(1).is_null());
    } else {
      EXPECT_GE(t.value(1).AsDouble(), 1000.0);
    }
  }
}

TEST(ProcessTest, OverlapProducesFuzzyDuplicates) {
  SchemaPtr schema = SensorSchema();
  ProcessOptions options;
  options.num_substreams = 2;
  options.overlap_fraction = 0.5;
  options.seed = 11;
  PollutionProcess process(options);
  process.AddPipeline(NullPipeline(0.0));
  PollutionPipeline noisy("noisy");
  noisy.Add(std::make_unique<StandardPolluter>(
      "noise", std::make_unique<GaussianNoiseError>(3.0),
      std::make_unique<AlwaysCondition>(), std::vector<std::string>{"temp"}));
  process.AddPipeline(std::move(noisy));
  VectorSource source(schema, HourlyStream(schema, 400));
  auto result = process.Run(&source);
  ASSERT_TRUE(result.ok());
  const PollutionResult& r = result.ValueOrDie();
  // ~50% duplicates expected.
  EXPECT_GT(r.polluted.size(), 550u);
  EXPECT_LT(r.polluted.size(), 650u);
  // Duplicated ids appear in two different sub-streams; copies polluted
  // independently (a fuzzy duplicate differs in the noisy attribute
  // whenever the noisy copy ran through the Gaussian pipeline).
  std::map<TupleId, std::vector<const Tuple*>> by_id;
  for (const Tuple& t : r.polluted) by_id[t.id()].push_back(&t);
  int fuzzy = 0;
  for (const auto& [id, copies] : by_id) {
    if (copies.size() == 2) {
      EXPECT_NE(copies[0]->substream(), copies[1]->substream());
      if (!copies[0]->ValuesEqual(*copies[1])) ++fuzzy;
    }
  }
  EXPECT_GT(fuzzy, 100);
}

TEST(ProcessTest, OutputSortedByArrivalTime) {
  SchemaPtr schema = SensorSchema();
  PollutionPipeline pipeline("delayer");
  pipeline.Add(std::make_unique<StandardPolluter>(
      "delay", std::make_unique<DelayError>(7200),
      std::make_unique<RandomCondition>(0.3), std::vector<std::string>{}));
  VectorSource source(schema, HourlyStream(schema, 100));
  auto result =
      PollutionProcess::Pollute(&source, std::move(pipeline), 13);
  ASSERT_TRUE(result.ok());
  const TupleVector& polluted = result.ValueOrDie().polluted;
  for (size_t i = 1; i < polluted.size(); ++i) {
    ASSERT_LE(polluted[i - 1].arrival_time(), polluted[i].arrival_time());
  }
  // Delayed tuples break the monotonicity of the *timestamp attribute*.
  int inversions = 0;
  for (size_t i = 1; i < polluted.size(); ++i) {
    if (polluted[i].GetTimestamp().ValueOrDie() <
        polluted[i - 1].GetTimestamp().ValueOrDie()) {
      ++inversions;
    }
  }
  EXPECT_GT(inversions, 0);
}

TEST(ProcessTest, ParallelMatchesSequential) {
  SchemaPtr schema = SensorSchema();
  auto run = [&](bool parallel) {
    ProcessOptions options;
    options.num_substreams = 4;
    options.seed = 21;
    options.parallel = parallel;
    PollutionProcess process(options);
    for (int i = 0; i < 4; ++i) process.AddPipeline(NullPipeline(0.4));
    VectorSource source(schema, HourlyStream(schema, 200));
    auto result = process.Run(&source);
    EXPECT_TRUE(result.ok());
    std::vector<std::pair<TupleId, bool>> out;
    for (const Tuple& t : result.ValueOrDie().polluted) {
      out.emplace_back(t.id(), t.value(1).is_null());
    }
    return out;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(ProcessTest, PipelineCountMustMatchSubstreams) {
  SchemaPtr schema = SensorSchema();
  ProcessOptions options;
  options.num_substreams = 2;
  PollutionProcess process(options);
  process.AddPipeline(NullPipeline(0.0));
  VectorSource source(schema, HourlyStream(schema, 5));
  EXPECT_EQ(process.Run(&source).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ProcessTest, InvalidOptionsRejected) {
  SchemaPtr schema = SensorSchema();
  {
    ProcessOptions options;
    options.num_substreams = 0;
    PollutionProcess process(options);
    VectorSource source(schema, HourlyStream(schema, 5));
    EXPECT_EQ(process.Run(&source).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    ProcessOptions options;
    options.overlap_fraction = 1.5;
    PollutionProcess process(options);
    process.AddPipeline(NullPipeline(0.0));
    VectorSource source(schema, HourlyStream(schema, 5));
    EXPECT_EQ(process.Run(&source).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(ProcessTest, EmptyStreamYieldsEmptyResult) {
  SchemaPtr schema = SensorSchema();
  VectorSource source(schema, {});
  auto result = PollutionProcess::Pollute(&source, NullPipeline(1.0), 1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.ValueOrDie().clean.empty());
  EXPECT_TRUE(result.ValueOrDie().polluted.empty());
  EXPECT_TRUE(result.ValueOrDie().log.empty());
}

TEST(ProcessTest, StreamRampUsesDerivedBounds) {
  SchemaPtr schema = SensorSchema();
  PollutionPipeline pipeline("ramp");
  pipeline.Add(std::make_unique<StandardPolluter>(
      "ramped_nulls", std::make_unique<MissingValueError>(),
      std::make_unique<ProfileProbabilityCondition>(
          std::make_unique<StreamRampProfile>()),
      std::vector<std::string>{"temp"}));
  VectorSource source(schema, HourlyStream(schema, 1000));
  auto result = PollutionProcess::Pollute(&source, std::move(pipeline), 3);
  ASSERT_TRUE(result.ok());
  const TupleVector& polluted = result.ValueOrDie().polluted;
  // Error density in the last fifth should far exceed the first fifth
  // (Equation 4 ramps activation probability from 0 to 1).
  int early = 0;
  int late = 0;
  for (size_t i = 0; i < 200; ++i) {
    if (polluted[i].value(1).is_null()) ++early;
    if (polluted[polluted.size() - 1 - i].value(1).is_null()) ++late;
  }
  EXPECT_LT(early, 40);
  EXPECT_GT(late, 150);
}

TEST(ProcessTest, LogDisabledLeavesLogEmpty) {
  SchemaPtr schema = SensorSchema();
  VectorSource source(schema, HourlyStream(schema, 20));
  auto result = PollutionProcess::Pollute(&source, NullPipeline(1.0), 1,
                                          /*enable_log=*/false);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.ValueOrDie().log.empty());
}

}  // namespace
}  // namespace icewafl
