#include "core/errors_temporal.h"

#include <gtest/gtest.h>

#include "core/derived_error.h"
#include "core/errors_numeric.h"
#include "core/errors_value.h"
#include "test_helpers.h"

namespace icewafl {
namespace {

using testing_helpers::ContextFor;
using testing_helpers::SensorSchema;
using testing_helpers::SensorTuple;

TEST(DelayErrorTest, ShiftsArrivalTimeOnly) {
  SchemaPtr schema = SensorSchema();
  Rng rng(1);
  DelayError error(3600);  // the paper's one-hour network delay
  Tuple t = SensorTuple(schema, 13);
  const Timestamp original_ts = t.GetTimestamp().ValueOrDie();
  const Timestamp original_arrival = t.arrival_time();
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {}, &ctx);
  EXPECT_EQ(t.arrival_time(), original_arrival + 3600);
  EXPECT_EQ(t.GetTimestamp().ValueOrDie(), original_ts);
  EXPECT_EQ(t.event_time(), original_ts);
}

TEST(DelayErrorTest, DelaysAccumulateAcrossApplications) {
  SchemaPtr schema = SensorSchema();
  Rng rng(2);
  DelayError error(60);
  Tuple t = SensorTuple(schema, 13);
  const Timestamp base = t.arrival_time();
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {}, &ctx);
  error.Apply(&t, {}, &ctx);
  EXPECT_EQ(t.arrival_time(), base + 120);
}

TEST(FrozenValueErrorTest, RepeatsPreFreezeValueWhileActive) {
  SchemaPtr schema = SensorSchema();
  Rng rng(3);
  FrozenValueError error(7200);  // 2-hour freeze
  // Observe three clean hours: 20, 21, 22 degrees.
  std::vector<Tuple> stream;
  for (int h = 0; h < 6; ++h) {
    stream.push_back(SensorTuple(schema, h, 20.0 + h));
  }
  // Hours 0-1 pass clean.
  error.Observe(stream[0], {1});
  error.Observe(stream[1], {1});
  // Hour 2: freeze begins; the sensor repeats hour 1's value (21).
  error.Observe(stream[2], {1});
  auto ctx2 = ContextFor(stream[2], &rng);
  error.Apply(&stream[2], {1}, &ctx2);
  EXPECT_DOUBLE_EQ(stream[2].value(1).AsDouble(), 21.0);
  // Hour 3 still within the 2-hour hold: same frozen value.
  error.Observe(stream[3], {1});
  auto ctx3 = ContextFor(stream[3], &rng);
  error.Apply(&stream[3], {1}, &ctx3);
  EXPECT_DOUBLE_EQ(stream[3].value(1).AsDouble(), 21.0);
  // Hour 5 is past the hold: a new freeze captures hour 4's value (24).
  error.Observe(stream[4], {1});
  error.Observe(stream[5], {1});
  auto ctx5 = ContextFor(stream[5], &rng);
  error.Apply(&stream[5], {1}, &ctx5);
  EXPECT_DOUBLE_EQ(stream[5].value(1).AsDouble(), 24.0);
}

TEST(FrozenValueErrorTest, FirstTupleCannotFreeze) {
  SchemaPtr schema = SensorSchema();
  Rng rng(4);
  FrozenValueError error(3600);
  Tuple t = SensorTuple(schema, 0, 33.0);
  error.Observe(t, {1});
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {1}, &ctx);
  EXPECT_DOUBLE_EQ(t.value(1).AsDouble(), 33.0);  // unchanged
}

TEST(FrozenValueErrorTest, CloneStartsUnfrozen) {
  SchemaPtr schema = SensorSchema();
  Rng rng(5);
  FrozenValueError error(3600);
  Tuple a = SensorTuple(schema, 0, 1.0);
  Tuple b = SensorTuple(schema, 1, 2.0);
  error.Observe(a, {1});
  error.Observe(b, {1});
  ErrorFunctionPtr clone = error.Clone();
  Tuple c = SensorTuple(schema, 2, 3.0);
  auto ctx = ContextFor(c, &rng);
  clone->Apply(&c, {1}, &ctx);
  // The clone has no observation history, so it cannot freeze yet.
  EXPECT_DOUBLE_EQ(c.value(1).AsDouble(), 3.0);
}

TEST(TimestampShiftErrorTest, ShiftsTimestampAttributeOnly) {
  SchemaPtr schema = SensorSchema();
  Rng rng(6);
  TimestampShiftError error(-600);
  Tuple t = SensorTuple(schema, 13);
  const Timestamp original = t.GetTimestamp().ValueOrDie();
  const Timestamp original_arrival = t.arrival_time();
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {}, &ctx);
  EXPECT_EQ(t.GetTimestamp().ValueOrDie(), original - 600);
  EXPECT_EQ(t.arrival_time(), original_arrival);  // position unchanged
}

TEST(TimestampJitterErrorTest, JitterBounded) {
  SchemaPtr schema = SensorSchema();
  Rng rng(7);
  TimestampJitterError error(120);
  for (int i = 0; i < 1000; ++i) {
    Tuple t = SensorTuple(schema, 13);
    const Timestamp original = t.GetTimestamp().ValueOrDie();
    auto ctx = ContextFor(t, &rng);
    error.Apply(&t, {}, &ctx);
    const Timestamp shifted = t.GetTimestamp().ValueOrDie();
    ASSERT_GE(shifted, original - 120);
    ASSERT_LE(shifted, original + 120);
  }
}

TEST(TemporalErrorsTest, SeverityGatesApplication) {
  SchemaPtr schema = SensorSchema();
  Rng rng(8);
  DelayError error(3600);
  int delayed = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    Tuple t = SensorTuple(schema, 13);
    const Timestamp base = t.arrival_time();
    auto ctx = ContextFor(t, &rng);
    ctx.severity = 0.2;
    error.Apply(&t, {}, &ctx);
    if (t.arrival_time() != base) ++delayed;
  }
  EXPECT_NEAR(static_cast<double>(delayed) / n, 0.2, 0.02);
}

TEST(DerivedTemporalErrorTest, ProfileModulatesSeverity) {
  SchemaPtr schema = SensorSchema();
  Rng rng(9);
  // Missing values whose probability ramps linearly over the stream.
  DerivedTemporalError error(std::make_unique<MissingValueError>(),
                             std::make_unique<StreamRampProfile>());
  int early_nulls = 0;
  int late_nulls = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    Tuple early = SensorTuple(schema, 2);   // ~8% through the day
    Tuple late = SensorTuple(schema, 22);   // ~92% through the day
    auto ctx_e = ContextFor(early, &rng);
    auto ctx_l = ContextFor(late, &rng);
    error.Apply(&early, {1}, &ctx_e);
    error.Apply(&late, {1}, &ctx_l);
    if (early.value(1).is_null()) ++early_nulls;
    if (late.value(1).is_null()) ++late_nulls;
  }
  EXPECT_NEAR(static_cast<double>(early_nulls) / n, 2.0 / 24.0, 0.02);
  EXPECT_NEAR(static_cast<double>(late_nulls) / n, 22.0 / 24.0, 0.02);
}

TEST(DerivedTemporalErrorTest, SeverityRestoredAfterApply) {
  SchemaPtr schema = SensorSchema();
  Rng rng(10);
  DerivedTemporalError error(std::make_unique<ScaleError>(2.0),
                             std::make_unique<ConstantProfile>(0.5));
  Tuple t = SensorTuple(schema, 10, 10.0);
  auto ctx = ContextFor(t, &rng);
  ctx.severity = 1.0;
  error.Apply(&t, {1}, &ctx);
  EXPECT_DOUBLE_EQ(ctx.severity, 1.0);  // restored
  // factor = 1 + (2-1) * (1.0 * 0.5) = 1.5
  EXPECT_DOUBLE_EQ(t.value(1).AsDouble(), 15.0);
}

TEST(DerivedTemporalErrorTest, SeveritiesNestMultiplicatively) {
  SchemaPtr schema = SensorSchema();
  Rng rng(11);
  auto inner = std::make_unique<DerivedTemporalError>(
      std::make_unique<ScaleError>(5.0), std::make_unique<ConstantProfile>(0.5));
  DerivedTemporalError outer(std::move(inner),
                             std::make_unique<ConstantProfile>(0.5));
  Tuple t = SensorTuple(schema, 10, 100.0);
  auto ctx = ContextFor(t, &rng);
  outer.Apply(&t, {1}, &ctx);
  // factor = 1 + 4 * 0.25 = 2.
  EXPECT_DOUBLE_EQ(t.value(1).AsDouble(), 200.0);
}

TEST(DerivedTemporalErrorTest, NameAndJsonComposeBaseAndProfile) {
  DerivedTemporalError error(std::make_unique<GaussianNoiseError>(1.0),
                             std::make_unique<AbruptProfile>(0));
  EXPECT_EQ(error.name(), "gaussian_noise@abrupt");
  const Json j = error.ToJson();
  EXPECT_EQ(j.GetString("type", ""), "derived");
  EXPECT_EQ(j.Get("base").ValueOrDie().GetString("type", ""),
            "gaussian_noise");
  EXPECT_EQ(j.Get("profile").ValueOrDie().GetString("type", ""), "abrupt");
}

TEST(DerivedTemporalErrorTest, ObserveForwardsToBase) {
  SchemaPtr schema = SensorSchema();
  Rng rng(12);
  DerivedTemporalError error(std::make_unique<FrozenValueError>(7200),
                             std::make_unique<ConstantProfile>(1.0));
  Tuple a = SensorTuple(schema, 0, 10.0);
  Tuple b = SensorTuple(schema, 1, 11.0);
  Tuple c = SensorTuple(schema, 2, 12.0);
  error.Observe(a, {1});
  error.Observe(b, {1});
  error.Observe(c, {1});
  auto ctx = ContextFor(c, &rng);
  error.Apply(&c, {1}, &ctx);
  EXPECT_DOUBLE_EQ(c.value(1).AsDouble(), 11.0);  // frozen to b's value
}

}  // namespace
}  // namespace icewafl
