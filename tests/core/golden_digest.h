#ifndef ICEWAFL_TESTS_CORE_GOLDEN_DIGEST_H_
#define ICEWAFL_TESTS_CORE_GOLDEN_DIGEST_H_

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/errors_numeric.h"
#include "core/errors_temporal.h"
#include "core/errors_value.h"
#include "core/process.h"
#include "util/time_util.h"

namespace icewafl {
namespace golden {

/// FNV-1a over raw bytes; the golden determinism test hashes every byte
/// of the PollutionResult (tuple metadata, value bit patterns, and log
/// entries) so that any behavioural drift of the pollution process —
/// ordering, RNG consumption, float arithmetic — changes the digest.
class Digest {
 public:
  void Bytes(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 1099511628211ULL;
    }
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void I64(int64_t v) { Bytes(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
  void Val(const Value& v) {
    U64(static_cast<uint64_t>(v.type()));
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kBool:
        U64(v.AsBool() ? 1 : 0);
        break;
      case ValueType::kInt64:
        I64(v.AsInt64());
        break;
      case ValueType::kDouble: {
        uint64_t bits = 0;
        double d = v.AsDouble();
        std::memcpy(&bits, &d, sizeof(bits));
        U64(bits);
        break;
      }
      case ValueType::kString:
        Str(v.AsString());
        break;
    }
  }
  void TupleOf(const Tuple& t) {
    U64(t.id());
    I64(t.substream());
    I64(t.event_time());
    I64(t.arrival_time());
    U64(t.num_values());
    for (const Value& v : t.values()) Val(v);
  }
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = 1469598103934665603ULL;
};

inline uint64_t DigestResult(const PollutionResult& r) {
  Digest d;
  d.U64(r.clean.size());
  for (const Tuple& t : r.clean) d.TupleOf(t);
  d.U64(r.polluted.size());
  for (const Tuple& t : r.polluted) d.TupleOf(t);
  d.U64(r.log.size());
  for (const PollutionLogEntry& e : r.log.entries()) {
    d.U64(e.tuple_id);
    d.I64(e.substream);
    d.Str(e.polluter);
    d.Str(e.error_type);
    d.U64(e.attributes.size());
    for (const std::string& a : e.attributes) d.Str(a);
    d.I64(e.tau);
  }
  return d.value();
}

/// Deterministic three-attribute sensor stream shared by the golden
/// configurations (hand-rolled so the digest does not depend on the
/// synthetic dataset generators).
inline TupleVector GoldenStream(const SchemaPtr& schema, int n) {
  TupleVector tuples;
  const Timestamp start = TimestampFromCivil({2016, 3, 1, 0, 0, 0});
  for (int i = 0; i < n; ++i) {
    tuples.emplace_back(
        schema,
        std::vector<Value>{Value(start + i * 900),
                           Value(20.0 + 0.25 * (i % 37) - 0.01 * i),
                           Value(int64_t{i % 97}),
                           Value(i % 5 == 0 ? "idle" : "active")});
  }
  return tuples;
}

inline SchemaPtr GoldenSchema() {
  return Schema::Make({{"timestamp", ValueType::kInt64},
                       {"temp", ValueType::kDouble},
                       {"steps", ValueType::kInt64},
                       {"state", ValueType::kString}},
                      "timestamp")
      .ValueOrDie();
}

inline PollutionPipeline GoldenPipeline(int variant) {
  PollutionPipeline pipeline("golden_" + std::to_string(variant));
  switch (variant % 3) {
    case 0:
      pipeline.Add(std::make_unique<StandardPolluter>(
          "noise", std::make_unique<GaussianNoiseError>(1.5),
          std::make_unique<RandomCondition>(0.4),
          std::vector<std::string>{"temp"}));
      pipeline.Add(std::make_unique<StandardPolluter>(
          "nulls", std::make_unique<MissingValueError>(),
          std::make_unique<RandomCondition>(0.15),
          std::vector<std::string>{"steps"}));
      break;
    case 1:
      pipeline.Add(std::make_unique<StandardPolluter>(
          "delay", std::make_unique<DelayError>(3600),
          std::make_unique<RandomCondition>(0.25),
          std::vector<std::string>{}));
      pipeline.Add(std::make_unique<StandardPolluter>(
          "scale", std::make_unique<ScaleError>(100.0),
          std::make_unique<RandomCondition>(0.1),
          std::vector<std::string>{"temp"}));
      break;
    default:
      pipeline.Add(std::make_unique<StandardPolluter>(
          "offset", std::make_unique<OffsetError>(-3.0),
          std::make_unique<RandomCondition>(0.5),
          std::vector<std::string>{"temp"}));
      break;
  }
  return pipeline;
}

/// The three frozen configurations of the golden test. `parallel` only
/// selects the execution mode; the digest must not depend on it.
inline Result<PollutionResult> RunGoldenConfig(int config, bool parallel) {
  SchemaPtr schema = GoldenSchema();
  VectorSource source(schema, GoldenStream(schema, 700));
  switch (config) {
    case 0: {
      ProcessOptions options;
      options.num_substreams = 1;
      options.seed = 42;
      options.parallel = parallel;
      PollutionProcess process(options);
      process.AddPipeline(GoldenPipeline(0));
      return process.Run(&source);
    }
    case 1: {
      ProcessOptions options;
      options.num_substreams = 3;
      options.overlap_fraction = 0.35;
      options.seed = 7;
      options.parallel = parallel;
      PollutionProcess process(options);
      process.AddPipeline(GoldenPipeline(0));
      process.AddPipeline(GoldenPipeline(1));
      process.AddPipeline(GoldenPipeline(2));
      return process.Run(&source);
    }
    default: {
      ProcessOptions options;
      options.num_substreams = 2;
      options.overlap_fraction = 0.1;
      options.seed = 0x1CE3AF1ULL;
      options.parallel = parallel;
      options.enable_log = false;
      PollutionProcess process(options);
      process.AddPipeline(GoldenPipeline(1));
      process.AddPipeline(GoldenPipeline(2));
      return process.Run(&source);
    }
  }
}

}  // namespace golden
}  // namespace icewafl

#endif  // ICEWAFL_TESTS_CORE_GOLDEN_DIGEST_H_
