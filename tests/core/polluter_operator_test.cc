#include "core/polluter_operator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/errors_numeric.h"
#include "core/errors_temporal.h"
#include "core/errors_value.h"
#include "core/duplicating_operator.h"
#include "core/keyed_polluter_operator.h"
#include "stream/executor.h"

namespace icewafl {
namespace {

SchemaPtr KeyedSchema() {
  return Schema::Make({{"ts", ValueType::kInt64},
                       {"sensor", ValueType::kString},
                       {"temp", ValueType::kDouble}},
                      "ts")
      .ValueOrDie();
}

/// Interleaved readings from two sensors: A ramps up, B ramps down.
TupleVector InterleavedStream(const SchemaPtr& schema, int hours) {
  TupleVector tuples;
  for (int h = 0; h < hours; ++h) {
    for (const char* sensor : {"A", "B"}) {
      const double temp = sensor[0] == 'A' ? 10.0 + h : 90.0 - h;
      tuples.emplace_back(
          schema, std::vector<Value>{Value(int64_t{h} * kSecondsPerHour),
                                     Value(sensor), Value(temp)});
    }
  }
  return tuples;
}

PollutionPipeline NullPipeline(double p) {
  PollutionPipeline pipeline("nulls");
  pipeline.Add(std::make_unique<StandardPolluter>(
      "nuller", std::make_unique<MissingValueError>(),
      std::make_unique<RandomCondition>(p),
      std::vector<std::string>{"temp"}));
  return pipeline;
}

TEST(PolluterOperatorTest, PollutesWithinTopology) {
  SchemaPtr schema = KeyedSchema();
  VectorSource source(schema, InterleavedStream(schema, 50));
  PollutionLog log;
  PolluterOperator op(NullPipeline(1.0), /*seed=*/1, 0, 0, &log);
  VectorSink sink;
  ASSERT_TRUE(StreamExecutor::Run(&source, {&op}, &sink).ok());
  ASSERT_EQ(sink.tuples().size(), 100u);
  for (const Tuple& t : sink.tuples()) {
    EXPECT_TRUE(t.value(2).is_null());
  }
  EXPECT_EQ(log.size(), 100u);
}

TEST(PolluterOperatorTest, AssignsIdsWhenUpstreamDidNot) {
  SchemaPtr schema = KeyedSchema();
  VectorSource source(schema, InterleavedStream(schema, 10));
  PolluterOperator op(NullPipeline(0.0), 1);
  VectorSink sink;
  ASSERT_TRUE(StreamExecutor::Run(&source, {&op}, &sink).ok());
  std::set<TupleId> ids;
  for (const Tuple& t : sink.tuples()) {
    EXPECT_NE(t.id(), kInvalidTupleId);
    ids.insert(t.id());
  }
  EXPECT_EQ(ids.size(), sink.tuples().size());
}

TEST(PolluterOperatorTest, BindMetricsCountsSeenAndPolluted) {
  SchemaPtr schema = KeyedSchema();
  VectorSource source(schema, InterleavedStream(schema, 50));
  PolluterOperator op(NullPipeline(0.5), /*seed=*/1);
  obs::MetricRegistry registry;
  op.BindMetrics(&registry);
  VectorSink sink;
  ASSERT_TRUE(StreamExecutor::Run(&source, {&op}, &sink).ok());
  ASSERT_EQ(sink.tuples().size(), 100u);
  uint64_t nulled = 0;
  for (const Tuple& t : sink.tuples()) {
    if (t.value(2).is_null()) ++nulled;
  }
  obs::Counter* seen =
      registry.GetCounter("icewafl_polluter_tuples_total", {{"pipeline",
                                                             "nulls"}});
  obs::Counter* polluted =
      registry.GetCounter("icewafl_polluter_polluted_total",
                          {{"pipeline", "nulls"}});
  ASSERT_NE(seen, nullptr);
  ASSERT_NE(polluted, nullptr);
  EXPECT_EQ(seen->value(), 100u);
  EXPECT_EQ(polluted->value(), nulled);
  EXPECT_GT(nulled, 0u);
  EXPECT_LT(nulled, 100u);
  // Finish published the per-polluter activation counts.
  obs::Counter* applied = registry.GetCounter(
      "icewafl_polluter_applied_total",
      {{"pipeline", "nulls"},
       {"polluter", "nuller"},
       {"error", "missing_value"},
       {"domain", "any"}});
  ASSERT_NE(applied, nullptr);
  EXPECT_EQ(applied->value(), nulled);
}

TEST(PolluterOperatorTest, UnboundMetricsProduceIdenticalOutput) {
  SchemaPtr schema = KeyedSchema();
  auto run = [&](bool instrument) {
    VectorSource source(schema, InterleavedStream(schema, 30));
    PolluterOperator op(NullPipeline(0.3), /*seed=*/7);
    obs::MetricRegistry registry;
    if (instrument) op.BindMetrics(&registry);
    VectorSink sink;
    EXPECT_TRUE(StreamExecutor::Run(&source, {&op}, &sink).ok());
    std::vector<bool> nulls;
    for (const Tuple& t : sink.tuples()) nulls.push_back(t.value(2).is_null());
    return nulls;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(KeyedPolluterOperatorTest, FrozenValueStateIsPerKey) {
  // A frozen-value error applied to everything: with keyed pollution,
  // sensor A freezes on A's values and sensor B on B's; a non-keyed
  // polluter would leak values across the interleaved sensors.
  SchemaPtr schema = KeyedSchema();
  PollutionPipeline pipeline("freeze");
  pipeline.Add(std::make_unique<StandardPolluter>(
      "freezer", std::make_unique<FrozenValueError>(1000000),
      std::make_unique<AlwaysCondition>(),
      std::vector<std::string>{"temp"}));
  VectorSource source(schema, InterleavedStream(schema, 20));
  KeyedPolluterOperator op(std::move(pipeline), "sensor", /*seed=*/1);
  VectorSink sink;
  ASSERT_TRUE(StreamExecutor::Run(&source, {&op}, &sink).ok());
  EXPECT_EQ(op.num_partitions(), 2u);
  // Frozen per key: after warmup, A tuples all repeat an A value (10-30
  // range) and B tuples a B value (70-90 range).
  for (const Tuple& t : sink.tuples()) {
    if (t.id() < 4) continue;  // first tuples per key cannot freeze
    const double v = t.value(2).AsDouble();
    if (t.value(1).AsString() == "A") {
      EXPECT_LT(v, 40.0) << t.ToString();
    } else {
      EXPECT_GT(v, 60.0) << t.ToString();
    }
  }
}

TEST(KeyedPolluterOperatorTest, OutputIndependentOfKeyInterleaving) {
  SchemaPtr schema = KeyedSchema();
  // Same logical tuples, two different interleavings.
  TupleVector interleaved = InterleavedStream(schema, 30);
  TupleVector grouped;
  for (const char* sensor : {"A", "B"}) {
    for (const Tuple& t : interleaved) {
      if (t.Get("sensor").ValueOrDie().AsString() == sensor) {
        grouped.push_back(t);
      }
    }
  }
  auto run = [&](const TupleVector& stream) {
    VectorSource source(schema, stream);
    KeyedPolluterOperator op(NullPipeline(0.5), "sensor", /*seed=*/9);
    VectorSink sink;
    EXPECT_TRUE(StreamExecutor::Run(&source, {&op}, &sink).ok());
    // Record per (sensor, ts) whether the value was nulled.
    std::map<std::pair<std::string, Timestamp>, bool> out;
    for (const Tuple& t : sink.tuples()) {
      out[{t.Get("sensor").ValueOrDie().AsString(),
           t.GetTimestamp().ValueOrDie()}] = t.value(2).is_null();
    }
    return out;
  };
  EXPECT_EQ(run(interleaved), run(grouped));
}

TEST(KeyedPolluterOperatorTest, AppliedCountsAggregateAcrossPartitions) {
  SchemaPtr schema = KeyedSchema();
  VectorSource source(schema, InterleavedStream(schema, 40));
  KeyedPolluterOperator op(NullPipeline(1.0), "sensor", 3);
  VectorSink sink;
  ASSERT_TRUE(StreamExecutor::Run(&source, {&op}, &sink).ok());
  EXPECT_EQ(op.AppliedCounts()["nuller"], 80u);
}

TEST(KeyedPolluterOperatorTest, MissingKeyAttributeFails) {
  SchemaPtr schema = KeyedSchema();
  VectorSource source(schema, InterleavedStream(schema, 2));
  KeyedPolluterOperator op(NullPipeline(0.5), "no_such_attr", 1);
  VectorSink sink;
  EXPECT_EQ(StreamExecutor::Run(&source, {&op}, &sink).code(),
            StatusCode::kNotFound);
}

TEST(DuplicatingOperatorTest, EmitsExactDuplicatesAtConfiguredRate) {
  SchemaPtr schema = KeyedSchema();
  VectorSource source(schema, InterleavedStream(schema, 2000));
  DuplicatingOperator op(0.25, /*seed=*/1);
  VectorSink sink;
  ASSERT_TRUE(StreamExecutor::Run(&source, {&op}, &sink).ok());
  const double rate =
      static_cast<double>(op.duplicates_emitted()) / 4000.0;
  EXPECT_NEAR(rate, 0.25, 0.03);
  EXPECT_EQ(sink.tuples().size(), 4000 + op.duplicates_emitted());
}

TEST(DuplicatingOperatorTest, FuzzyDuplicatesDifferFromOriginals) {
  SchemaPtr schema = KeyedSchema();
  TupleVector stream = InterleavedStream(schema, 500);
  // Upstream assigns ids so duplicates are linkable.
  for (size_t i = 0; i < stream.size(); ++i) {
    stream[i].set_id(static_cast<TupleId>(i));
  }
  PollutionPipeline fuzz("fuzz");
  fuzz.Add(std::make_unique<StandardPolluter>(
      "noise", std::make_unique<GaussianNoiseError>(2.0),
      std::make_unique<AlwaysCondition>(), std::vector<std::string>{"temp"}));
  VectorSource source(schema, stream);
  DuplicatingOperator op(0.3, /*seed=*/2, std::move(fuzz),
                         /*max_arrival_delay=*/600);
  VectorSink sink;
  ASSERT_TRUE(StreamExecutor::Run(&source, {&op}, &sink).ok());
  // Group by id: ids with two copies must differ in temp (fuzzy).
  std::map<TupleId, std::vector<const Tuple*>> by_id;
  for (const Tuple& t : sink.tuples()) by_id[t.id()].push_back(&t);
  int pairs = 0;
  for (const auto& [id, copies] : by_id) {
    if (copies.size() == 2) {
      ++pairs;
      EXPECT_FALSE(copies[0]->ValuesEqual(*copies[1])) << id;
    }
  }
  EXPECT_GT(pairs, 100);
  EXPECT_EQ(static_cast<uint64_t>(pairs), op.duplicates_emitted());
}

TEST(DuplicatingOperatorTest, ZeroProbabilityIsIdentity) {
  SchemaPtr schema = KeyedSchema();
  VectorSource source(schema, InterleavedStream(schema, 100));
  DuplicatingOperator op(0.0, 3);
  VectorSink sink;
  ASSERT_TRUE(StreamExecutor::Run(&source, {&op}, &sink).ok());
  EXPECT_EQ(sink.tuples().size(), 200u);
  EXPECT_EQ(op.duplicates_emitted(), 0u);
}

TEST(KeyedPolluterOperatorTest, NullKeysFormTheirOwnPartition) {
  SchemaPtr schema = KeyedSchema();
  TupleVector tuples = InterleavedStream(schema, 3);
  tuples[0].set_value(1, Value::Null());
  VectorSource source(schema, tuples);
  KeyedPolluterOperator op(NullPipeline(0.0), "sensor", 1);
  VectorSink sink;
  ASSERT_TRUE(StreamExecutor::Run(&source, {&op}, &sink).ok());
  EXPECT_EQ(op.num_partitions(), 3u);  // A, B, <null>
}

}  // namespace
}  // namespace icewafl
