#include <gtest/gtest.h>

#include "core/process.h"
#include "golden_digest.h"

namespace icewafl {
namespace {

// Golden digests captured from the materializing (pre-pipelined)
// implementation of PollutionProcess. The streamed implementation must
// reproduce these byte-for-byte: every tuple id, sub-stream tag, event /
// arrival time, value bit pattern, and log entry feeds the digest.
constexpr uint64_t kGoldenDigests[3] = {
    0xa98025fead1ba4c8ULL,  // m=1, seed 42
    0x620fe59ada9adaacULL,  // m=3, overlap 0.35, seed 7
    0x9d6cf58493d0219bULL,  // m=2, overlap 0.1, log disabled
};

class GoldenDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(GoldenDeterminismTest, SequentialMatchesGolden) {
  const int config = GetParam();
  auto result = golden::RunGoldenConfig(config, /*parallel=*/false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(golden::DigestResult(result.ValueOrDie()),
            kGoldenDigests[config]);
}

TEST_P(GoldenDeterminismTest, ParallelMatchesGolden) {
  const int config = GetParam();
  auto result = golden::RunGoldenConfig(config, /*parallel=*/true);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(golden::DigestResult(result.ValueOrDie()),
            kGoldenDigests[config]);
}

TEST_P(GoldenDeterminismTest, RepeatedRunsAreIdentical) {
  const int config = GetParam();
  auto a = golden::RunGoldenConfig(config, /*parallel=*/true);
  auto b = golden::RunGoldenConfig(config, /*parallel=*/true);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(golden::DigestResult(a.ValueOrDie()),
            golden::DigestResult(b.ValueOrDie()));
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, GoldenDeterminismTest,
                         ::testing::Values(0, 1, 2));

TEST(ProcessBoundsTest, ExplicitBoundsAccepted) {
  SchemaPtr schema = golden::GoldenSchema();
  TupleVector tuples = golden::GoldenStream(schema, 50);
  VectorSource source(schema, std::move(tuples));
  ProcessOptions options;
  options.num_substreams = 1;
  options.seed = 42;
  options.stream_start = 0;
  options.stream_end = 1;
  PollutionProcess process(options);
  process.AddPipeline(golden::GoldenPipeline(0));
  EXPECT_TRUE(process.Run(&source).ok());
}

TEST(ProcessBoundsTest, EqualBoundsAccepted) {
  SchemaPtr schema = golden::GoldenSchema();
  VectorSource source(schema, golden::GoldenStream(schema, 10));
  ProcessOptions options;
  options.stream_start = 1456790400;
  options.stream_end = 1456790400;
  PollutionProcess process(options);
  process.AddPipeline(golden::GoldenPipeline(0));
  EXPECT_TRUE(process.Run(&source).ok());
}

TEST(ProcessBoundsTest, StartAfterEndRejected) {
  SchemaPtr schema = golden::GoldenSchema();
  VectorSource source(schema, golden::GoldenStream(schema, 10));
  ProcessOptions options;
  options.stream_start = 100;
  options.stream_end = 50;
  PollutionProcess process(options);
  process.AddPipeline(golden::GoldenPipeline(0));
  Status status = process.Run(&source).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("stream_start must be <= stream_end"),
            std::string::npos);
}

TEST(ProcessBoundsTest, OnlyOneBoundRejected) {
  SchemaPtr schema = golden::GoldenSchema();
  VectorSource source(schema, golden::GoldenStream(schema, 10));
  ProcessOptions options;
  options.stream_start = 100;  // stream_end left unset
  PollutionProcess process(options);
  process.AddPipeline(golden::GoldenPipeline(0));
  Status status = process.Run(&source).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("set together"), std::string::npos);
}

TEST(ProcessBoundsTest, UnsetBoundsDerivedFromInput) {
  // Default-constructed options (no bounds) must still run and derive
  // bounds from the stream; identical to setting min/max explicitly.
  SchemaPtr schema = golden::GoldenSchema();
  ProcessOptions derived_options;
  derived_options.seed = 9;
  VectorSource s1(schema, golden::GoldenStream(schema, 100));
  PollutionProcess derived(derived_options);
  derived.AddPipeline(golden::GoldenPipeline(1));
  auto a = derived.Run(&s1);
  ASSERT_TRUE(a.ok());

  ProcessOptions explicit_options = derived_options;
  const TupleVector& clean = a.ValueOrDie().clean;
  explicit_options.stream_start = clean.front().event_time();
  explicit_options.stream_end = clean.back().event_time();
  VectorSource s2(schema, golden::GoldenStream(schema, 100));
  PollutionProcess explicit_process(explicit_options);
  explicit_process.AddPipeline(golden::GoldenPipeline(1));
  auto b = explicit_process.Run(&s2);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(golden::DigestResult(a.ValueOrDie()),
            golden::DigestResult(b.ValueOrDie()));
}

TEST(ProcessBoundsTest, EmptySourceRuns) {
  SchemaPtr schema = golden::GoldenSchema();
  VectorSource source(schema, {});
  ProcessOptions options;
  options.num_substreams = 2;
  options.parallel = true;
  PollutionProcess process(options);
  process.AddPipeline(golden::GoldenPipeline(0));
  process.AddPipeline(golden::GoldenPipeline(1));
  auto result = process.Run(&source);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.ValueOrDie().polluted.empty());
}

}  // namespace
}  // namespace icewafl
