#include "core/errors_numeric.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.h"

namespace icewafl {
namespace {

using testing_helpers::ContextFor;
using testing_helpers::SensorSchema;
using testing_helpers::SensorTuple;

TEST(GaussianNoiseErrorTest, AdditiveNoiseHasExpectedSpread) {
  SchemaPtr schema = SensorSchema();
  Rng rng(1);
  GaussianNoiseError error(2.0);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    Tuple t = SensorTuple(schema, 10, 50.0);
    auto ctx = ContextFor(t, &rng);
    error.Apply(&t, {1}, &ctx);
    const double v = t.value(1).AsDouble();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 50.0, 0.1);
  EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 2.0, 0.1);
}

TEST(GaussianNoiseErrorTest, MultiplicativeScalesWithValue) {
  SchemaPtr schema = SensorSchema();
  Rng rng(2);
  GaussianNoiseError error(0.1, /*multiplicative=*/true);
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    Tuple t = SensorTuple(schema, 10, 100.0);
    auto ctx = ContextFor(t, &rng);
    error.Apply(&t, {1}, &ctx);
    const double d = t.value(1).AsDouble() - 100.0;
    sum2 += d * d;
  }
  EXPECT_NEAR(std::sqrt(sum2 / n), 10.0, 0.5);  // 10% of 100
}

TEST(GaussianNoiseErrorTest, SeverityScalesStddev) {
  SchemaPtr schema = SensorSchema();
  Rng rng(3);
  GaussianNoiseError error(10.0);
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    Tuple t = SensorTuple(schema, 10, 0.0);
    auto ctx = ContextFor(t, &rng);
    ctx.severity = 0.2;
    error.Apply(&t, {1}, &ctx);
    sum2 += t.value(1).AsDouble() * t.value(1).AsDouble();
  }
  EXPECT_NEAR(std::sqrt(sum2 / n), 2.0, 0.1);  // 10 * 0.2
}

TEST(GaussianNoiseErrorTest, NullSkippedNonNumericRejected) {
  SchemaPtr schema = SensorSchema();
  Rng rng(4);
  GaussianNoiseError error(1.0);
  Tuple t = SensorTuple(schema, 10);
  t.set_value(1, Value::Null());
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {1}, &ctx);
  EXPECT_TRUE(t.value(1).is_null());  // nothing to pollute
  // Targeting the string attribute is a configuration error, caught at
  // bind time with the attribute's name in the message.
  BindContext bind_ctx(*schema);
  const Status status = error.Bind(bind_ctx, {3});
  EXPECT_EQ(status.code(), StatusCode::kTypeError);
  EXPECT_NE(status.message().find("label"), std::string::npos);
}

TEST(GaussianNoiseErrorTest, IntegerAttributeStaysInteger) {
  SchemaPtr schema = SensorSchema();
  Rng rng(5);
  GaussianNoiseError error(5.0);
  Tuple t = SensorTuple(schema, 10, 20.0, 100);
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {2}, &ctx);
  EXPECT_TRUE(t.value(2).is_int64());
}

TEST(GaussianNoiseErrorTest, OutOfRangeIndexSkipped) {
  SchemaPtr schema = SensorSchema();
  Rng rng(6);
  GaussianNoiseError error(1.0);
  Tuple t = SensorTuple(schema, 10);
  const Tuple original = t;
  auto ctx = ContextFor(t, &rng);
  // A stale index beyond the tuple is ignored rather than dereferenced.
  error.Apply(&t, {99}, &ctx);
  EXPECT_EQ(t.value(1).AsDouble(), original.value(1).AsDouble());
}

TEST(UniformNoiseErrorTest, FactorWithinBoundsAndBothDirections) {
  SchemaPtr schema = SensorSchema();
  Rng rng(7);
  UniformNoiseError error(0.2, 0.5);
  int increased = 0;
  int decreased = 0;
  for (int i = 0; i < 5000; ++i) {
    Tuple t = SensorTuple(schema, 10, 100.0);
    auto ctx = ContextFor(t, &rng);
    error.Apply(&t, {1}, &ctx);
    const double v = t.value(1).AsDouble();
    // v = 100 * (1 +- f), f in [0.2, 0.5).
    if (v > 100.0) {
      ++increased;
      ASSERT_GE(v, 120.0 - 1e-9);
      ASSERT_LT(v, 150.0);
    } else {
      ++decreased;
      ASSERT_LE(v, 80.0 + 1e-9);
      ASSERT_GT(v, 50.0);
    }
  }
  // The coin is fair.
  EXPECT_NEAR(static_cast<double>(increased) / 5000.0, 0.5, 0.05);
  EXPECT_GT(decreased, 0);
}

TEST(UniformNoiseErrorTest, SeverityShrinksBounds) {
  SchemaPtr schema = SensorSchema();
  Rng rng(8);
  UniformNoiseError error(0.0, 1.0);
  for (int i = 0; i < 2000; ++i) {
    Tuple t = SensorTuple(schema, 10, 100.0);
    auto ctx = ContextFor(t, &rng);
    ctx.severity = 0.1;
    error.Apply(&t, {1}, &ctx);
    ASSERT_NEAR(t.value(1).AsDouble(), 100.0, 10.0 + 1e-9);
  }
}

TEST(ScaleErrorTest, ScalesByFactor) {
  SchemaPtr schema = SensorSchema();
  Rng rng(9);
  ScaleError error(0.125);
  Tuple t = SensorTuple(schema, 10, 80.0);
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {1}, &ctx);
  EXPECT_DOUBLE_EQ(t.value(1).AsDouble(), 10.0);
}

TEST(ScaleErrorTest, SeverityInterpolatesTowardsIdentity) {
  SchemaPtr schema = SensorSchema();
  Rng rng(10);
  ScaleError error(3.0);
  Tuple t = SensorTuple(schema, 10, 10.0);
  auto ctx = ContextFor(t, &rng);
  ctx.severity = 0.5;  // factor 1 + (3-1)*0.5 = 2
  error.Apply(&t, {1}, &ctx);
  EXPECT_DOUBLE_EQ(t.value(1).AsDouble(), 20.0);
}

TEST(ScaleErrorTest, MultipleAttributesAllScaled) {
  SchemaPtr schema = SensorSchema();
  Rng rng(11);
  ScaleError error(2.0);
  Tuple t = SensorTuple(schema, 10, 5.0, 7);
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {1, 2}, &ctx);
  EXPECT_DOUBLE_EQ(t.value(1).AsDouble(), 10.0);
  EXPECT_EQ(t.value(2).AsInt64(), 14);
}

TEST(OffsetErrorTest, AddsDelta) {
  SchemaPtr schema = SensorSchema();
  Rng rng(12);
  OffsetError error(-3.5);
  Tuple t = SensorTuple(schema, 10, 20.0);
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {1}, &ctx);
  EXPECT_DOUBLE_EQ(t.value(1).AsDouble(), 16.5);
}

TEST(RoundErrorTest, RoundsToPrecision) {
  SchemaPtr schema = SensorSchema();
  Rng rng(13);
  RoundError error(2);
  Tuple t = SensorTuple(schema, 10, 3.14159);
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {1}, &ctx);
  EXPECT_DOUBLE_EQ(t.value(1).AsDouble(), 3.14);
}

TEST(RoundErrorTest, ZeroPrecisionRoundsToInteger) {
  SchemaPtr schema = SensorSchema();
  Rng rng(14);
  RoundError error(0);
  Tuple t = SensorTuple(schema, 10, 2.718);
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {1}, &ctx);
  EXPECT_DOUBLE_EQ(t.value(1).AsDouble(), 3.0);
}

TEST(UnitConversionErrorTest, KmToCm) {
  SchemaPtr schema = SensorSchema();
  Rng rng(15);
  UnitConversionError error(100000.0, "km", "cm");
  Tuple t = SensorTuple(schema, 10, 1.5);
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {1}, &ctx);
  EXPECT_DOUBLE_EQ(t.value(1).AsDouble(), 150000.0);
  const Json j = error.ToJson();
  EXPECT_EQ(j.GetString("from_unit", ""), "km");
  EXPECT_EQ(j.GetString("to_unit", ""), "cm");
}

TEST(OutlierErrorTest, ProducesSpikesInEitherDirection) {
  SchemaPtr schema = SensorSchema();
  Rng rng(16);
  OutlierError error(5.0, 10.0);
  int up = 0;
  int down = 0;
  for (int i = 0; i < 2000; ++i) {
    Tuple t = SensorTuple(schema, 10, 100.0);
    auto ctx = ContextFor(t, &rng);
    error.Apply(&t, {1}, &ctx);
    const double v = t.value(1).AsDouble();
    if (v > 100.0) {
      ++up;
      ASSERT_GE(v, 500.0 - 1e-6);
      ASSERT_LE(v, 1000.0 + 1e-6);
    } else {
      ++down;
      ASSERT_LE(v, 20.0 + 1e-6);
      ASSERT_GE(v, 10.0 - 1e-6);
    }
  }
  EXPECT_GT(up, 0);
  EXPECT_GT(down, 0);
}

TEST(DigitSwapErrorTest, SwapsAdjacentDigits) {
  SchemaPtr schema = SensorSchema();
  Rng rng(18);
  DigitSwapError error;
  int changed = 0;
  for (int i = 0; i < 500; ++i) {
    Tuple t = SensorTuple(schema, 10, 12.34);
    auto ctx = ContextFor(t, &rng);
    error.Apply(&t, {1}, &ctx);
    const double v = t.value(1).AsDouble();
    // "12.34": swappable pairs are (1,2) and (3,4).
    ASSERT_TRUE(v == 21.34 || v == 12.43) << v;
    if (v != 12.34) ++changed;
  }
  EXPECT_EQ(changed, 500);
}

TEST(DigitSwapErrorTest, IntegersStayIntegers) {
  SchemaPtr schema = SensorSchema();
  Rng rng(19);
  DigitSwapError error;
  Tuple t = SensorTuple(schema, 10, 20.0, 123);
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {2}, &ctx);
  ASSERT_TRUE(t.value(2).is_int64());
  const int64_t v = t.value(2).AsInt64();
  EXPECT_TRUE(v == 213 || v == 132) << v;
}

TEST(DigitSwapErrorTest, SingleRepeatedDigitUnchanged) {
  SchemaPtr schema = SensorSchema();
  Rng rng(20);
  DigitSwapError error;
  for (double value : {7.0, 111.0, 0.0}) {
    Tuple t = SensorTuple(schema, 10, value);
    auto ctx = ContextFor(t, &rng);
    error.Apply(&t, {1}, &ctx);
    EXPECT_DOUBLE_EQ(t.value(1).AsDouble(), value);
  }
}

TEST(SignFlipErrorTest, NegatesValues) {
  SchemaPtr schema = SensorSchema();
  Rng rng(21);
  SignFlipError error;
  Tuple t = SensorTuple(schema, 10, 21.5, -3);
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {1, 2}, &ctx);
  EXPECT_DOUBLE_EQ(t.value(1).AsDouble(), -21.5);
  EXPECT_EQ(t.value(2).AsInt64(), 3);
}

TEST(NumericErrorsTest, SeverityZeroGatesDiscreteErrors) {
  SchemaPtr schema = SensorSchema();
  Rng rng(17);
  RoundError round_error(0);
  UnitConversionError unit_error(1000.0, "a", "b");
  OutlierError outlier_error(5.0, 10.0);
  for (int i = 0; i < 100; ++i) {
    Tuple t = SensorTuple(schema, 10, 3.14159);
    auto ctx = ContextFor(t, &rng);
    ctx.severity = 0.0;
    round_error.Apply(&t, {1}, &ctx);
    unit_error.Apply(&t, {1}, &ctx);
    outlier_error.Apply(&t, {1}, &ctx);
    ASSERT_DOUBLE_EQ(t.value(1).AsDouble(), 3.14159);
  }
}

TEST(NumericErrorsTest, CloneProducesEquivalentError) {
  GaussianNoiseError original(2.5, true);
  ErrorFunctionPtr clone = original.Clone();
  EXPECT_EQ(clone->name(), "gaussian_noise");
  EXPECT_EQ(clone->ToJson(), original.ToJson());
}

}  // namespace
}  // namespace icewafl
