#include "core/errors_value.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace icewafl {
namespace {

using testing_helpers::ContextFor;
using testing_helpers::SensorSchema;
using testing_helpers::SensorTuple;

TEST(MissingValueErrorTest, SetsTargetsToNull) {
  SchemaPtr schema = SensorSchema();
  Rng rng(1);
  MissingValueError error;
  Tuple t = SensorTuple(schema, 10);
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {1, 2}, &ctx);
  EXPECT_TRUE(t.value(1).is_null());
  EXPECT_TRUE(t.value(2).is_null());
  EXPECT_FALSE(t.value(3).is_null());  // untargeted attribute untouched
}

TEST(MissingValueErrorTest, SeverityActsAsProbability) {
  SchemaPtr schema = SensorSchema();
  Rng rng(2);
  MissingValueError error;
  int nulled = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    Tuple t = SensorTuple(schema, 10);
    auto ctx = ContextFor(t, &rng);
    ctx.severity = 0.3;
    error.Apply(&t, {1}, &ctx);
    if (t.value(1).is_null()) ++nulled;
  }
  EXPECT_NEAR(static_cast<double>(nulled) / n, 0.3, 0.02);
}

TEST(SetConstantErrorTest, OverwritesWithConstant) {
  SchemaPtr schema = SensorSchema();
  Rng rng(3);
  SetConstantError error(Value(0.0));
  Tuple t = SensorTuple(schema, 10, 120.0);
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {1}, &ctx);
  EXPECT_DOUBLE_EQ(t.value(1).AsDouble(), 0.0);
}

TEST(SetConstantErrorTest, CanSetNullAndString) {
  SchemaPtr schema = SensorSchema();
  Rng rng(4);
  Tuple t = SensorTuple(schema, 10);
  auto ctx = ContextFor(t, &rng);
  SetConstantError to_null{Value::Null()};
  to_null.Apply(&t, {1}, &ctx);
  EXPECT_TRUE(t.value(1).is_null());
  SetConstantError to_string{Value("broken")};
  to_string.Apply(&t, {3}, &ctx);
  EXPECT_EQ(t.value(3).AsString(), "broken");
}

TEST(IncorrectCategoryErrorTest, AlwaysProducesDifferentCategory) {
  SchemaPtr schema = SensorSchema();
  Rng rng(5);
  IncorrectCategoryError error({"ok", "warn", "fail"});
  for (int i = 0; i < 500; ++i) {
    Tuple t = SensorTuple(schema, 10, 20.0, 100, "ok");
    auto ctx = ContextFor(t, &rng);
    error.Apply(&t, {3}, &ctx);
    const std::string v = t.value(3).AsString();
    ASSERT_NE(v, "ok");
    ASSERT_TRUE(v == "warn" || v == "fail");
  }
}

TEST(IncorrectCategoryErrorTest, ValueOutsideDomainReplaced) {
  SchemaPtr schema = SensorSchema();
  Rng rng(6);
  IncorrectCategoryError error({"a", "b"});
  Tuple t = SensorTuple(schema, 10, 20.0, 100, "zzz");
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {3}, &ctx);
  const std::string v = t.value(3).AsString();
  EXPECT_TRUE(v == "a" || v == "b");
}

TEST(IncorrectCategoryErrorTest, TooFewCategoriesRejected) {
  SchemaPtr schema = SensorSchema();
  Rng rng(7);
  IncorrectCategoryError error({"only"});
  BindContext bind_ctx(*schema);
  EXPECT_EQ(error.Bind(bind_ctx, {3}).code(), StatusCode::kInvalidArgument);
}

TEST(IncorrectCategoryErrorTest, NonStringTargetRejectedNullSkipped) {
  SchemaPtr schema = SensorSchema();
  Rng rng(8);
  IncorrectCategoryError error({"a", "b"});
  // Targeting the numeric column is a misconfiguration, caught at bind.
  BindContext bind_ctx(*schema);
  EXPECT_EQ(error.Bind(bind_ctx, {1}).code(), StatusCode::kTypeError);
  // NULL values are skipped at apply time.
  Tuple t = SensorTuple(schema, 10);
  auto ctx = ContextFor(t, &rng);
  t.set_value(3, Value::Null());
  error.Apply(&t, {3}, &ctx);
  EXPECT_TRUE(t.value(3).is_null());
}

TEST(TypoErrorTest, IntroducesSingleEditOnStrings) {
  SchemaPtr schema = SensorSchema();
  Rng rng(9);
  TypoError error;
  int changed = 0;
  for (int i = 0; i < 500; ++i) {
    Tuple t = SensorTuple(schema, 10, 20.0, 100, "sensor-yard");
    auto ctx = ContextFor(t, &rng);
    error.Apply(&t, {3}, &ctx);
    const std::string v = t.value(3).AsString();
    // Single edit: length changes by at most 1.
    ASSERT_GE(v.size(), 10u);
    ASSERT_LE(v.size(), 12u);
    if (v != "sensor-yard") ++changed;
  }
  // Most edits visibly change the string (swap of equal chars or replace
  // with the same letter can no-op occasionally).
  EXPECT_GT(changed, 400);
}

TEST(TypoErrorTest, EmptyStringUntouched) {
  SchemaPtr schema = SensorSchema();
  Rng rng(10);
  TypoError error;
  Tuple t = SensorTuple(schema, 10, 20.0, 100, "");
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {3}, &ctx);
  EXPECT_EQ(t.value(3).AsString(), "");
}

TEST(SwapAttributesErrorTest, SwapsValues) {
  SchemaPtr schema = SensorSchema();
  Rng rng(11);
  SwapAttributesError error;
  Tuple t = SensorTuple(schema, 10, 20.5, 99);
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {1, 2}, &ctx);
  EXPECT_EQ(t.value(1).AsInt64(), 99);
  EXPECT_DOUBLE_EQ(t.value(2).AsDouble(), 20.5);
}

TEST(SwapAttributesErrorTest, RequiresExactlyTwoTargets) {
  SchemaPtr schema = SensorSchema();
  SwapAttributesError error;
  BindContext one(*schema);
  EXPECT_EQ(error.Bind(one, {1}).code(), StatusCode::kInvalidArgument);
  BindContext three(*schema);
  EXPECT_EQ(error.Bind(three, {1, 2, 3}).code(),
            StatusCode::kInvalidArgument);
}

TEST(CaseErrorTest, FlipsLetterCase) {
  SchemaPtr schema = SensorSchema();
  Rng rng(20);
  CaseError error(1.0);  // flip every letter
  Tuple t = SensorTuple(schema, 10, 20.0, 100, "Sensor-42a");
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {3}, &ctx);
  EXPECT_EQ(t.value(3).AsString(), "sENSOR-42A");
}

TEST(CaseErrorTest, ZeroProbabilityIsNoOp) {
  SchemaPtr schema = SensorSchema();
  Rng rng(21);
  CaseError error(0.0);
  Tuple t = SensorTuple(schema, 10, 20.0, 100, "MiXeD");
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {3}, &ctx);
  EXPECT_EQ(t.value(3).AsString(), "MiXeD");
}

TEST(TruncateErrorTest, CutsLongStrings) {
  SchemaPtr schema = SensorSchema();
  Rng rng(22);
  TruncateError error(4);
  Tuple t = SensorTuple(schema, 10, 20.0, 100, "overflowing");
  auto ctx = ContextFor(t, &rng);
  error.Apply(&t, {3}, &ctx);
  EXPECT_EQ(t.value(3).AsString(), "over");
  // Already-short strings are untouched.
  Tuple t2 = SensorTuple(schema, 10, 20.0, 100, "ok");
  auto ctx2 = ContextFor(t2, &rng);
  error.Apply(&t2, {3}, &ctx2);
  EXPECT_EQ(t2.value(3).AsString(), "ok");
}

TEST(ValueErrorsTest, ToJsonRoundTripsType) {
  EXPECT_EQ(MissingValueError().ToJson().GetString("type", ""),
            "missing_value");
  EXPECT_EQ(SetConstantError(Value(1)).ToJson().GetString("type", ""),
            "set_constant");
  EXPECT_EQ(SetConstantError(Value(1)).ToJson().GetString("value_type", ""),
            "int64");
  EXPECT_EQ(TypoError().ToJson().GetString("type", ""), "typo");
}

TEST(ValueErrorsTest, ClonesAreIndependent) {
  IncorrectCategoryError original({"x", "y"});
  ErrorFunctionPtr clone = original.Clone();
  EXPECT_EQ(clone->ToJson(), original.ToJson());
}

}  // namespace
}  // namespace icewafl
