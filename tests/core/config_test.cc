#include "core/config.h"

#include <gtest/gtest.h>

#include "core/composite_polluter.h"
#include "core/derived_error.h"
#include "core/errors_numeric.h"
#include "core/errors_temporal.h"
#include "core/errors_value.h"
#include "core/process.h"
#include "test_helpers.h"

namespace icewafl {
namespace {

using testing_helpers::SensorSchema;
using testing_helpers::SensorTuple;

TEST(ConfigTest, AllErrorTypesParse) {
  const char* kTypes[] = {
      R"({"type":"gaussian_noise","stddev":1.5})",
      R"({"type":"gaussian_noise","stddev":1.5,"multiplicative":true})",
      R"({"type":"uniform_noise","lo":0.1,"hi":0.4})",
      R"({"type":"scale","factor":0.125})",
      R"({"type":"offset","delta":-2})",
      R"({"type":"round","precision":2})",
      R"({"type":"unit_conversion","factor":100000,"from_unit":"km","to_unit":"cm"})",
      R"({"type":"outlier","min_factor":5,"max_factor":10})",
      R"({"type":"missing_value"})",
      R"({"type":"set_constant","value":0})",
      R"({"type":"set_constant","value":"broken"})",
      R"({"type":"incorrect_category","categories":["a","b"]})",
      R"({"type":"typo"})",
      R"({"type":"digit_swap"})",
      R"({"type":"sign_flip"})",
      R"({"type":"case","flip_probability":0.3})",
      R"({"type":"truncate","max_length":8})",
      R"({"type":"swap_attributes"})",
      R"({"type":"delay","delay_seconds":3600})",
      R"({"type":"frozen_value","hold_seconds":600})",
      R"({"type":"timestamp_shift","shift_seconds":-60})",
      R"({"type":"timestamp_jitter","max_jitter_seconds":30})",
  };
  for (const char* text : kTypes) {
    auto json = Json::Parse(text);
    ASSERT_TRUE(json.ok()) << text;
    auto error = ErrorFunctionFromJson(json.ValueOrDie());
    ASSERT_TRUE(error.ok()) << text << ": " << error.status().ToString();
  }
}

TEST(ConfigTest, AllConditionTypesParse) {
  const char* kTypes[] = {
      R"({"type":"always"})",
      R"({"type":"never"})",
      R"({"type":"random","p":0.2})",
      R"({"type":"value","attribute":"BPM","op":">","operand":100})",
      R"({"type":"value","attribute":"x","op":"is_null"})",
      R"({"type":"time_window","start":"2016-02-27"})",
      R"({"type":"time_window","start":100,"end":200})",
      R"({"type":"daily_window","start_minute":780,"end_minute":899})",
      R"({"type":"window_aggregate","attribute":"temp","window_seconds":7200,"agg":"mean","op":">","threshold":20})",
      R"({"type":"hold","hold_seconds":14400,"inner":{"type":"random","p":0.01}})",
      R"({"type":"profile_probability","profile":{"type":"sinusoidal","period_hours":24,"amplitude":0.25,"offset":0.25}})",
      R"({"type":"and","children":[{"type":"always"},{"type":"random","p":0.5}]})",
      R"({"type":"or","children":[{"type":"never"}]})",
      R"({"type":"not","child":{"type":"never"}})",
  };
  for (const char* text : kTypes) {
    auto json = Json::Parse(text);
    ASSERT_TRUE(json.ok()) << text;
    auto condition = ConditionFromJson(json.ValueOrDie());
    ASSERT_TRUE(condition.ok()) << text << ": "
                                << condition.status().ToString();
  }
}

TEST(ConfigTest, AllProfileTypesParse) {
  const char* kTypes[] = {
      R"({"type":"constant","value":0.5})",
      R"({"type":"abrupt","change_time":"2016-02-27 00:00:00"})",
      R"({"type":"incremental","ramp_start":0,"ramp_end":300,"from":0.4,"to":0.9})",
      R"({"type":"intermediate","ramp_start":0,"ramp_end":100})",
      R"({"type":"sinusoidal","period_hours":24,"amplitude":0.25,"offset":0.25})",
      R"({"type":"stream_ramp","scale":1.0})",
      R"({"type":"reoccurring","period_hours":4,"low":0,"high":1})",
      R"({"type":"spike","center":"2016-03-01 12:00:00","width_seconds":600})",
  };
  for (const char* text : kTypes) {
    auto json = Json::Parse(text);
    ASSERT_TRUE(json.ok()) << text;
    auto profile = TimeProfileFromJson(json.ValueOrDie());
    ASSERT_TRUE(profile.ok()) << text << ": " << profile.status().ToString();
  }
}

TEST(ConfigTest, UnknownTypesRejected) {
  auto e = ErrorFunctionFromJson(
      Json::Parse(R"({"type":"zap"})").ValueOrDie());
  EXPECT_EQ(e.status().code(), StatusCode::kParseError);
  auto c = ConditionFromJson(Json::Parse(R"({"type":"zap"})").ValueOrDie());
  EXPECT_EQ(c.status().code(), StatusCode::kParseError);
  auto p = TimeProfileFromJson(Json::Parse(R"({"type":"zap"})").ValueOrDie());
  EXPECT_EQ(p.status().code(), StatusCode::kParseError);
  auto pol = PolluterFromJson(Json::Parse(R"({"type":"zap"})").ValueOrDie());
  EXPECT_EQ(pol.status().code(), StatusCode::kParseError);
}

TEST(ConfigTest, MissingRequiredFieldRejected) {
  auto e = ErrorFunctionFromJson(
      Json::Parse(R"({"type":"gaussian_noise"})").ValueOrDie());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
  auto c = ConditionFromJson(Json::Parse(R"({"type":"random"})").ValueOrDie());
  EXPECT_EQ(c.status().code(), StatusCode::kNotFound);
}

TEST(ConfigTest, TimestampStringsAccepted) {
  auto condition = ConditionFromJson(
      Json::Parse(R"({"type":"time_window","start":"2016-02-27 00:00:00"})")
          .ValueOrDie());
  ASSERT_TRUE(condition.ok());
  SchemaPtr schema = SensorSchema();
  Tuple t = SensorTuple(schema, 0);
  PollutionContext ctx;
  ctx.tau = TimestampFromCivil({2016, 2, 27, 5, 0, 0});
  EXPECT_TRUE(condition.ValueOrDie()->Evaluate(t, &ctx));
  ctx.tau = TimestampFromCivil({2016, 2, 26, 5, 0, 0});
  EXPECT_FALSE(condition.ValueOrDie()->Evaluate(t, &ctx));
}

TEST(ConfigTest, SetConstantIntTypeRoundTrips) {
  auto error = ErrorFunctionFromJson(
      Json::Parse(R"({"type":"set_constant","value":5,"value_type":"int64"})")
          .ValueOrDie());
  ASSERT_TRUE(error.ok());
  SchemaPtr schema = SensorSchema();
  Tuple t = SensorTuple(schema, 0);
  Rng rng(1);
  PollutionContext ctx;
  ctx.rng = &rng;
  error.ValueOrDie()->Apply(&t, {2}, &ctx);
  EXPECT_TRUE(t.value(2).is_int64());
  EXPECT_EQ(t.value(2).AsInt64(), 5);
}

TEST(ConfigTest, PipelineRoundTripsThroughJson) {
  // Build the paper's software-update pipeline programmatically, dump it,
  // re-parse it, and compare the JSON representations.
  auto composite = std::make_unique<SequentialPolluter>(
      "software_update",
      TimeWindowCondition::After(TimestampFromCivil({2016, 2, 27, 0, 0, 0})));
  composite->Register(std::make_unique<StandardPolluter>(
      "km_to_cm",
      std::make_unique<UnitConversionError>(100000.0, "km", "cm"),
      std::make_unique<AlwaysCondition>(),
      std::vector<std::string>{"Distance"}));
  auto bpm = std::make_unique<SequentialPolluter>(
      "wrong_bpm",
      std::make_unique<ValueCondition>("BPM", CompareOp::kGt, Value(100.0)));
  bpm->Register(std::make_unique<StandardPolluter>(
      "bpm_zero", std::make_unique<SetConstantError>(Value(0.0)),
      std::make_unique<AlwaysCondition>(), std::vector<std::string>{"BPM"}));
  bpm->Register(std::make_unique<StandardPolluter>(
      "bpm_null", std::make_unique<MissingValueError>(),
      std::make_unique<RandomCondition>(0.2),
      std::vector<std::string>{"BPM"}));
  composite->Register(std::move(bpm));

  PollutionPipeline pipeline("software_update_pipeline");
  pipeline.Add(std::move(composite));

  const Json dumped = pipeline.ToJson();
  auto reparsed = PipelineFromJson(dumped);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.ValueOrDie().ToJson(), dumped);
  EXPECT_EQ(reparsed.ValueOrDie().name(), "software_update_pipeline");
}

TEST(ConfigTest, DerivedErrorRoundTrips) {
  DerivedTemporalError error(
      std::make_unique<GaussianNoiseError>(2.0),
      std::make_unique<IncrementalProfile>(0, 300, 0.4, 0.9));
  auto reparsed = ErrorFunctionFromJson(error.ToJson());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.ValueOrDie()->ToJson(), error.ToJson());
}

TEST(ConfigTest, ConfiguredPipelineActuallyPollutes) {
  const char* config = R"({
    "name": "from_config",
    "polluters": [
      {"type": "standard", "label": "null_temp",
       "attributes": ["temp"],
       "condition": {"type": "always"},
       "error": {"type": "missing_value"}}
    ]
  })";
  auto pipeline = PipelineFromConfigString(config);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  SchemaPtr schema = SensorSchema();
  TupleVector tuples;
  for (int i = 0; i < 5; ++i) tuples.push_back(SensorTuple(schema, i));
  VectorSource source(schema, tuples);
  auto result = PollutionProcess::Pollute(
      &source, std::move(pipeline).ValueOrDie(), 1);
  ASSERT_TRUE(result.ok());
  for (const Tuple& t : result.ValueOrDie().polluted) {
    EXPECT_TRUE(t.value(1).is_null());
  }
}

TEST(ConfigTest, ExclusiveWeightsParse) {
  const char* config = R"({
    "type": "exclusive", "label": "one_of",
    "condition": {"type": "always"},
    "weights": [3, 1],
    "children": [
      {"type": "standard", "label": "a", "attributes": ["temp"],
       "error": {"type": "missing_value"}},
      {"type": "standard", "label": "b", "attributes": ["count"],
       "error": {"type": "missing_value"}}
    ]
  })";
  auto polluter = PolluterFromJson(Json::Parse(config).ValueOrDie());
  ASSERT_TRUE(polluter.ok()) << polluter.status().ToString();
  auto* exclusive = dynamic_cast<ExclusivePolluter*>(
      polluter.ValueOrDie().get());
  ASSERT_NE(exclusive, nullptr);
  EXPECT_EQ(exclusive->num_children(), 2u);
}

TEST(ConfigTest, DefaultsAreAlwaysConditionAndTypeLabel) {
  const char* config = R"({
    "type": "standard",
    "attributes": ["temp"],
    "error": {"type": "missing_value"}
  })";
  auto polluter = PolluterFromJson(Json::Parse(config).ValueOrDie());
  ASSERT_TRUE(polluter.ok());
  EXPECT_EQ(polluter.ValueOrDie()->label(), "standard");
  const Json j = polluter.ValueOrDie()->ToJson();
  EXPECT_EQ(j.Get("condition").ValueOrDie().GetString("type", ""), "always");
}

TEST(ConfigTest, MissingFileIsIOError) {
  EXPECT_EQ(PipelineFromConfigFile("/does/not/exist.json").status().code(),
            StatusCode::kIOError);
}

TEST(ConfigTest, MalformedJsonIsParseError) {
  EXPECT_EQ(PipelineFromConfigString("{not json").status().code(),
            StatusCode::kParseError);
}

}  // namespace
}  // namespace icewafl
