// Error paths of the declarative config loaders: every rejection names
// the offending fragment by its JSON pointer so a user can find it in a
// large pipeline file.
#include <gtest/gtest.h>

#include <string>

#include "core/config.h"
#include "dq/config.h"

namespace icewafl {
namespace {

testing::AssertionResult MessageContains(const Status& status,
                                         const std::string& needle) {
  if (status.ok()) {
    return testing::AssertionFailure() << "expected an error status";
  }
  if (status.message().find(needle) == std::string::npos) {
    return testing::AssertionFailure()
           << "message '" << status.message() << "' lacks '" << needle << "'";
  }
  return testing::AssertionSuccess();
}

TEST(ConfigErrorsTest, MalformedJsonRejected) {
  auto pipeline = PipelineFromConfigString("{not json at all");
  EXPECT_FALSE(pipeline.ok());
}

TEST(ConfigErrorsTest, TruncatedJsonRejected) {
  // A document cut off mid-structure, as from a partial write.
  auto pipeline = PipelineFromConfigString(
      R"({"name": "t", "polluters": [{"type": "standard", "label")");
  EXPECT_FALSE(pipeline.ok());
}

TEST(ConfigErrorsTest, UnknownPolluterKindNamesThePath) {
  auto pipeline = PipelineFromConfigString(
      R"({"name": "t", "polluters": [
          {"type": "standard", "label": "ok", "error":
           {"type": "missing_value"}},
          {"type": "mystery"}]})");
  ASSERT_FALSE(pipeline.ok());
  EXPECT_TRUE(MessageContains(pipeline.status(), "mystery"));
  EXPECT_TRUE(MessageContains(pipeline.status(), "/polluters/1"));
}

TEST(ConfigErrorsTest, UnknownErrorTypeNamesThePath) {
  auto pipeline = PipelineFromConfigString(
      R"({"name": "t", "polluters": [
          {"type": "standard", "label": "p",
           "error": {"type": "gaussian_typo"}}]})");
  ASSERT_FALSE(pipeline.ok());
  EXPECT_TRUE(MessageContains(pipeline.status(), "/polluters/0/error"));
}

TEST(ConfigErrorsTest, MissingFieldNamesThePath) {
  auto pipeline = PipelineFromConfigString(
      R"({"name": "t", "polluters": [
          {"type": "standard", "label": "p",
           "error": {"type": "gaussian_noise"}}]})");
  ASSERT_FALSE(pipeline.ok());
  EXPECT_EQ(pipeline.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(MessageContains(pipeline.status(), "stddev"));
  EXPECT_TRUE(MessageContains(pipeline.status(), "/polluters/0/error"));
}

TEST(ConfigErrorsTest, WrongTypedFieldNamesThePath) {
  auto pipeline = PipelineFromConfigString(
      R"({"name": "t", "polluters": [
          {"type": "standard", "label": "p",
           "error": {"type": "gaussian_noise", "stddev": "big"}}]})");
  ASSERT_FALSE(pipeline.ok());
  EXPECT_EQ(pipeline.status().code(), StatusCode::kTypeError);
  EXPECT_TRUE(
      MessageContains(pipeline.status(), "/polluters/0/error/stddev"));
}

TEST(ConfigErrorsTest, NestedConditionErrorNamesTheFullPath) {
  auto pipeline = PipelineFromConfigString(
      R"({"name": "t", "polluters": [
          {"type": "standard", "label": "p",
           "error": {"type": "missing_value"},
           "condition": {"type": "and", "children": [
             {"type": "always"},
             {"type": "random"}]}}]})");
  ASSERT_FALSE(pipeline.ok());
  EXPECT_TRUE(MessageContains(pipeline.status(),
                              "/polluters/0/condition/children/1"));
}

TEST(ConfigErrorsTest, CompositeChildErrorNamesTheFullPath) {
  auto pipeline = PipelineFromConfigString(
      R"({"name": "t", "polluters": [
          {"type": "sequential", "label": "seq", "children": [
            {"type": "standard", "label": "c",
             "error": {"type": "scale"}}]}]})");
  ASSERT_FALSE(pipeline.ok());
  EXPECT_TRUE(MessageContains(pipeline.status(),
                              "/polluters/0/children/0/error"));
}

TEST(ConfigErrorsTest, InvalidTimestampNamesTheField) {
  auto condition = ConditionFromJson(
      Json::Parse(R"({"type": "time_window", "start": "not-a-date"})")
          .ValueOrDie(),
      "/polluters/3/condition");
  ASSERT_FALSE(condition.ok());
  EXPECT_TRUE(
      MessageContains(condition.status(), "/polluters/3/condition/start"));
}

TEST(ConfigErrorsTest, WrongTypedArrayRejected) {
  auto polluter = PolluterFromJson(
      Json::Parse(R"({"type": "standard", "label": "p",
                      "attributes": "Distance",
                      "error": {"type": "missing_value"}})")
          .ValueOrDie(),
      "/polluters/0");
  ASSERT_FALSE(polluter.ok());
  EXPECT_TRUE(MessageContains(polluter.status(), "/polluters/0/attributes"));
}

TEST(ConfigErrorsTest, SuiteErrorsNameThePath) {
  auto suite = dq::SuiteFromConfigString(
      R"({"name": "s", "expectations": [
          {"type": "expect_column_values_to_not_be_null", "column": "A"},
          {"type": "expect_column_values_to_be_between", "column": "B",
           "min": "low", "max": 5}]})");
  ASSERT_FALSE(suite.ok());
  EXPECT_TRUE(MessageContains(suite.status(), "/expectations/1"));
}

TEST(ConfigErrorsTest, SuiteUnknownTypeNamesThePath) {
  auto suite = dq::SuiteFromConfigString(
      R"({"name": "s", "expectations": [{"type": "expect_magic"}]})");
  ASSERT_FALSE(suite.ok());
  EXPECT_TRUE(MessageContains(suite.status(), "/expectations/0"));
}

}  // namespace
}  // namespace icewafl
