#include "core/polluter.h"

#include <gtest/gtest.h>

#include "core/composite_polluter.h"
#include "core/errors_numeric.h"
#include "core/errors_value.h"
#include "test_helpers.h"

namespace icewafl {
namespace {

using testing_helpers::ContextFor;
using testing_helpers::SensorSchema;
using testing_helpers::SensorTuple;

std::unique_ptr<StandardPolluter> MakeNullPolluter(double p) {
  return std::make_unique<StandardPolluter>(
      "nuller", std::make_unique<MissingValueError>(),
      std::make_unique<RandomCondition>(p),
      std::vector<std::string>{"temp"});
}

TEST(StandardPolluterTest, ConditionGatesError) {
  SchemaPtr schema = SensorSchema();
  auto polluter = std::make_unique<StandardPolluter>(
      "hot_to_null", std::make_unique<MissingValueError>(),
      std::make_unique<ValueCondition>("temp", CompareOp::kGt, Value(25.0)),
      std::vector<std::string>{"temp"});
  Rng master(1);
  polluter->Seed(&master);
  Tuple hot = SensorTuple(schema, 1, 30.0);
  Tuple cold = SensorTuple(schema, 2, 20.0);
  auto ctx_h = ContextFor(hot, nullptr);
  auto ctx_c = ContextFor(cold, nullptr);
  ASSERT_TRUE(polluter->Pollute(&hot, &ctx_h, nullptr).ok());
  ASSERT_TRUE(polluter->Pollute(&cold, &ctx_c, nullptr).ok());
  EXPECT_TRUE(hot.value(1).is_null());
  EXPECT_FALSE(cold.value(1).is_null());
  EXPECT_EQ(polluter->applied_count(), 1u);
}

TEST(StandardPolluterTest, EquationTwoSemantics) {
  // p(t, tau) = e(t, A_p, tau) if c(t, tau), else t — the untouched
  // branch must return the tuple bit-identical.
  SchemaPtr schema = SensorSchema();
  auto polluter = std::make_unique<StandardPolluter>(
      "never", std::make_unique<GaussianNoiseError>(100.0),
      std::make_unique<NeverCondition>(), std::vector<std::string>{"temp"});
  Rng master(2);
  polluter->Seed(&master);
  Tuple t = SensorTuple(schema, 3, 21.5);
  Tuple original = t;
  auto ctx = ContextFor(t, nullptr);
  ASSERT_TRUE(polluter->Pollute(&t, &ctx, nullptr).ok());
  EXPECT_TRUE(t.ValuesEqual(original));
  EXPECT_EQ(polluter->applied_count(), 0u);
}

TEST(StandardPolluterTest, AppliedFractionMatchesProbability) {
  SchemaPtr schema = SensorSchema();
  auto polluter = MakeNullPolluter(0.25);
  Rng master(3);
  polluter->Seed(&master);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    Tuple t = SensorTuple(schema, i % 24);
    auto ctx = ContextFor(t, nullptr);
    ASSERT_TRUE(polluter->Pollute(&t, &ctx, nullptr).ok());
  }
  EXPECT_NEAR(static_cast<double>(polluter->applied_count()) / n, 0.25, 0.01);
}

TEST(StandardPolluterTest, LogsEveryInjection) {
  SchemaPtr schema = SensorSchema();
  auto polluter = MakeNullPolluter(1.0);
  Rng master(4);
  polluter->Seed(&master);
  PollutionLog log;
  for (int i = 0; i < 5; ++i) {
    Tuple t = SensorTuple(schema, i);
    t.set_id(static_cast<TupleId>(100 + i));
    t.set_substream(2);
    auto ctx = ContextFor(t, nullptr);
    ASSERT_TRUE(polluter->Pollute(&t, &ctx, &log).ok());
  }
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(log.entries()[0].tuple_id, 100u);
  EXPECT_EQ(log.entries()[0].substream, 2);
  EXPECT_EQ(log.entries()[0].polluter, "nuller");
  EXPECT_EQ(log.entries()[0].error_type, "missing_value");
  EXPECT_EQ(log.entries()[0].attributes, std::vector<std::string>{"temp"});
}

TEST(StandardPolluterTest, UnknownAttributeFailsAtFirstTuple) {
  SchemaPtr schema = SensorSchema();
  StandardPolluter polluter("bad", std::make_unique<MissingValueError>(),
                            std::make_unique<AlwaysCondition>(),
                            {"no_such_attr"});
  Rng master(5);
  polluter.Seed(&master);
  Tuple t = SensorTuple(schema, 0);
  auto ctx = ContextFor(t, nullptr);
  EXPECT_EQ(polluter.Pollute(&t, &ctx, nullptr).code(),
            StatusCode::kNotFound);
}

TEST(StandardPolluterTest, SameSeedSameDecisions) {
  SchemaPtr schema = SensorSchema();
  auto run = [&](uint64_t seed) {
    auto polluter = MakeNullPolluter(0.5);
    Rng master(seed);
    polluter->Seed(&master);
    std::vector<bool> decisions;
    for (int i = 0; i < 200; ++i) {
      Tuple t = SensorTuple(schema, i % 24);
      auto ctx = ContextFor(t, nullptr);
      EXPECT_TRUE(polluter->Pollute(&t, &ctx, nullptr).ok());
      decisions.push_back(t.value(1).is_null());
    }
    return decisions;
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));
}

TEST(StandardPolluterTest, ResetStatsClearsCounter) {
  SchemaPtr schema = SensorSchema();
  auto polluter = MakeNullPolluter(1.0);
  Rng master(6);
  polluter->Seed(&master);
  Tuple t = SensorTuple(schema, 0);
  auto ctx = ContextFor(t, nullptr);
  ASSERT_TRUE(polluter->Pollute(&t, &ctx, nullptr).ok());
  EXPECT_EQ(polluter->applied_count(), 1u);
  polluter->ResetStats();
  EXPECT_EQ(polluter->applied_count(), 0u);
}

TEST(StandardPolluterTest, CloneSharesConfigNotState) {
  SchemaPtr schema = SensorSchema();
  auto polluter = MakeNullPolluter(1.0);
  Rng master(7);
  polluter->Seed(&master);
  Tuple t = SensorTuple(schema, 0);
  auto ctx = ContextFor(t, nullptr);
  ASSERT_TRUE(polluter->Pollute(&t, &ctx, nullptr).ok());
  PolluterPtr clone = polluter->Clone();
  EXPECT_EQ(clone->applied_count(), 0u);
  EXPECT_EQ(clone->ToJson(), polluter->ToJson());
}

TEST(SequentialPolluterTest, GateDelegatesToAllChildren) {
  SchemaPtr schema = SensorSchema();
  // Software-update shape: after a date, several errors occur together.
  auto composite = std::make_unique<SequentialPolluter>(
      "software_update",
      TimeWindowCondition::After(TimestampFromCivil({2016, 3, 1, 12, 0, 0})));
  composite->Register(std::make_unique<StandardPolluter>(
      "scale", std::make_unique<ScaleError>(100.0),
      std::make_unique<AlwaysCondition>(), std::vector<std::string>{"temp"}));
  composite->Register(std::make_unique<StandardPolluter>(
      "null_count", std::make_unique<MissingValueError>(),
      std::make_unique<AlwaysCondition>(), std::vector<std::string>{"count"}));
  Rng master(8);
  composite->Seed(&master);

  Tuple before = SensorTuple(schema, 10, 20.0);
  Tuple after = SensorTuple(schema, 14, 20.0);
  auto ctx_b = ContextFor(before, nullptr);
  auto ctx_a = ContextFor(after, nullptr);
  ASSERT_TRUE(composite->Pollute(&before, &ctx_b, nullptr).ok());
  ASSERT_TRUE(composite->Pollute(&after, &ctx_a, nullptr).ok());
  // Gate closed: children never ran.
  EXPECT_DOUBLE_EQ(before.value(1).AsDouble(), 20.0);
  EXPECT_FALSE(before.value(2).is_null());
  // Gate open: both children ran.
  EXPECT_DOUBLE_EQ(after.value(1).AsDouble(), 2000.0);
  EXPECT_TRUE(after.value(2).is_null());
  EXPECT_EQ(composite->applied_count(), 1u);
}

TEST(SequentialPolluterTest, ChildrenChainOnEachOthersOutput) {
  SchemaPtr schema = SensorSchema();
  // BPM-style chain: set to 0, then (p=1 here) to NULL — the second child
  // sees the output of the first.
  auto composite = std::make_unique<SequentialPolluter>(
      "bpm_chain",
      std::make_unique<ValueCondition>("temp", CompareOp::kGt, Value(100.0)));
  composite->Register(std::make_unique<StandardPolluter>(
      "to_zero", std::make_unique<SetConstantError>(Value(0.0)),
      std::make_unique<AlwaysCondition>(), std::vector<std::string>{"temp"}));
  composite->Register(std::make_unique<StandardPolluter>(
      "zero_to_null", std::make_unique<MissingValueError>(),
      std::make_unique<ValueCondition>("temp", CompareOp::kEq, Value(0.0)),
      std::vector<std::string>{"temp"}));
  Rng master(9);
  composite->Seed(&master);
  Tuple t = SensorTuple(schema, 10, 150.0);
  auto ctx = ContextFor(t, nullptr);
  ASSERT_TRUE(composite->Pollute(&t, &ctx, nullptr).ok());
  EXPECT_TRUE(t.value(1).is_null());
}

TEST(SequentialPolluterTest, NestedCompositesWork) {
  SchemaPtr schema = SensorSchema();
  auto inner = std::make_unique<SequentialPolluter>(
      "inner", std::make_unique<AlwaysCondition>());
  inner->Register(std::make_unique<StandardPolluter>(
      "null_temp", std::make_unique<MissingValueError>(),
      std::make_unique<AlwaysCondition>(), std::vector<std::string>{"temp"}));
  auto outer = std::make_unique<SequentialPolluter>(
      "outer", std::make_unique<AlwaysCondition>());
  outer->Register(std::move(inner));
  Rng master(10);
  outer->Seed(&master);
  Tuple t = SensorTuple(schema, 10);
  auto ctx = ContextFor(t, nullptr);
  ASSERT_TRUE(outer->Pollute(&t, &ctx, nullptr).ok());
  EXPECT_TRUE(t.value(1).is_null());
}

TEST(ExclusivePolluterTest, ExactlyOneChildRunsPerTuple) {
  SchemaPtr schema = SensorSchema();
  auto composite = std::make_unique<ExclusivePolluter>(
      "either_or", std::make_unique<AlwaysCondition>());
  composite->Register(std::make_unique<StandardPolluter>(
      "null_temp", std::make_unique<MissingValueError>(),
      std::make_unique<AlwaysCondition>(), std::vector<std::string>{"temp"}));
  composite->Register(std::make_unique<StandardPolluter>(
      "null_count", std::make_unique<MissingValueError>(),
      std::make_unique<AlwaysCondition>(), std::vector<std::string>{"count"}));
  Rng master(11);
  composite->Seed(&master);
  int temp_nulled = 0;
  int count_nulled = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    Tuple t = SensorTuple(schema, i % 24);
    auto ctx = ContextFor(t, nullptr);
    ASSERT_TRUE(composite->Pollute(&t, &ctx, nullptr).ok());
    const bool a = t.value(1).is_null();
    const bool b = t.value(2).is_null();
    ASSERT_NE(a, b);  // mutually exclusive, and exactly one fires
    if (a) ++temp_nulled;
    if (b) ++count_nulled;
  }
  // Uniform weights: roughly half each.
  EXPECT_NEAR(static_cast<double>(temp_nulled) / n, 0.5, 0.03);
  EXPECT_NEAR(static_cast<double>(count_nulled) / n, 0.5, 0.03);
}

TEST(ExclusivePolluterTest, WeightsBiasTheDraw) {
  SchemaPtr schema = SensorSchema();
  auto composite = std::make_unique<ExclusivePolluter>(
      "weighted", std::make_unique<AlwaysCondition>());
  composite->RegisterWeighted(
      std::make_unique<StandardPolluter>(
          "null_temp", std::make_unique<MissingValueError>(),
          std::make_unique<AlwaysCondition>(),
          std::vector<std::string>{"temp"}),
      9.0);
  composite->RegisterWeighted(
      std::make_unique<StandardPolluter>(
          "null_count", std::make_unique<MissingValueError>(),
          std::make_unique<AlwaysCondition>(),
          std::vector<std::string>{"count"}),
      1.0);
  Rng master(12);
  composite->Seed(&master);
  int temp_nulled = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    Tuple t = SensorTuple(schema, i % 24);
    auto ctx = ContextFor(t, nullptr);
    ASSERT_TRUE(composite->Pollute(&t, &ctx, nullptr).ok());
    if (t.value(1).is_null()) ++temp_nulled;
  }
  EXPECT_NEAR(static_cast<double>(temp_nulled) / n, 0.9, 0.01);
}

TEST(ExclusivePolluterTest, EmptyCompositeIsNoOp) {
  SchemaPtr schema = SensorSchema();
  ExclusivePolluter composite("empty", std::make_unique<AlwaysCondition>());
  Rng master(13);
  composite.Seed(&master);
  Tuple t = SensorTuple(schema, 0);
  Tuple original = t;
  auto ctx = ContextFor(t, nullptr);
  ASSERT_TRUE(composite.Pollute(&t, &ctx, nullptr).ok());
  EXPECT_TRUE(t.ValuesEqual(original));
}

TEST(CompositePolluterTest, ResetStatsRecurses) {
  SchemaPtr schema = SensorSchema();
  auto composite = std::make_unique<SequentialPolluter>(
      "outer", std::make_unique<AlwaysCondition>());
  composite->Register(MakeNullPolluter(1.0));
  Rng master(14);
  composite->Seed(&master);
  Tuple t = SensorTuple(schema, 0);
  auto ctx = ContextFor(t, nullptr);
  ASSERT_TRUE(composite->Pollute(&t, &ctx, nullptr).ok());
  EXPECT_EQ(composite->applied_count(), 1u);
  EXPECT_EQ(composite->children()[0]->applied_count(), 1u);
  composite->ResetStats();
  EXPECT_EQ(composite->applied_count(), 0u);
  EXPECT_EQ(composite->children()[0]->applied_count(), 0u);
}

TEST(CompositePolluterTest, CloneIsDeep) {
  auto composite = std::make_unique<SequentialPolluter>(
      "outer", std::make_unique<AlwaysCondition>());
  composite->Register(MakeNullPolluter(0.5));
  PolluterPtr clone = composite->Clone();
  EXPECT_EQ(clone->ToJson(), composite->ToJson());
  auto* cloned_composite = dynamic_cast<SequentialPolluter*>(clone.get());
  ASSERT_NE(cloned_composite, nullptr);
  EXPECT_EQ(cloned_composite->num_children(), 1u);
  EXPECT_NE(cloned_composite->children()[0].get(),
            composite->children()[0].get());
}

}  // namespace
}  // namespace icewafl
