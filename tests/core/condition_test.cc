#include "core/condition.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace icewafl {
namespace {

using testing_helpers::ContextFor;
using testing_helpers::SensorSchema;
using testing_helpers::SensorTuple;

TEST(AlwaysNeverConditionTest, Constants) {
  SchemaPtr schema = SensorSchema();
  Rng rng(1);
  Tuple t = SensorTuple(schema, 10);
  auto ctx = ContextFor(t, &rng);
  EXPECT_TRUE(AlwaysCondition().Evaluate(t, &ctx).ValueOrDie());
  EXPECT_FALSE(NeverCondition().Evaluate(t, &ctx).ValueOrDie());
}

TEST(RandomConditionTest, FiresWithConfiguredProbability) {
  SchemaPtr schema = SensorSchema();
  Rng rng(2);
  RandomCondition condition(0.2);
  Tuple t = SensorTuple(schema, 10);
  int fired = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    auto ctx = ContextFor(t, &rng);
    if (condition.Evaluate(t, &ctx).ValueOrDie()) ++fired;
  }
  EXPECT_NEAR(static_cast<double>(fired) / n, 0.2, 0.01);
}

TEST(RandomConditionTest, ClampsProbability) {
  EXPECT_DOUBLE_EQ(RandomCondition(1.7).probability(), 1.0);
  EXPECT_DOUBLE_EQ(RandomCondition(-0.3).probability(), 0.0);
}

TEST(RandomConditionTest, RequiresRng) {
  SchemaPtr schema = SensorSchema();
  RandomCondition condition(0.5);
  Tuple t = SensorTuple(schema, 10);
  PollutionContext ctx;  // no rng
  EXPECT_EQ(condition.Evaluate(t, &ctx).status().code(),
            StatusCode::kInternal);
}

TEST(ValueConditionTest, NumericComparisons) {
  SchemaPtr schema = SensorSchema();
  Rng rng(3);
  Tuple t = SensorTuple(schema, 10, 120.0);
  auto ctx = ContextFor(t, &rng);
  // The paper's "BPM > 100" style condition.
  EXPECT_TRUE(ValueCondition("temp", CompareOp::kGt, Value(100.0))
                  .Evaluate(t, &ctx)
                  .ValueOrDie());
  EXPECT_FALSE(ValueCondition("temp", CompareOp::kGt, Value(120.0))
                   .Evaluate(t, &ctx)
                   .ValueOrDie());
  EXPECT_TRUE(ValueCondition("temp", CompareOp::kGe, Value(120.0))
                  .Evaluate(t, &ctx)
                  .ValueOrDie());
  EXPECT_TRUE(ValueCondition("temp", CompareOp::kLt, Value(121.0))
                  .Evaluate(t, &ctx)
                  .ValueOrDie());
  EXPECT_TRUE(ValueCondition("temp", CompareOp::kLe, Value(120.0))
                  .Evaluate(t, &ctx)
                  .ValueOrDie());
  EXPECT_TRUE(ValueCondition("temp", CompareOp::kEq, Value(120.0))
                  .Evaluate(t, &ctx)
                  .ValueOrDie());
  EXPECT_TRUE(ValueCondition("temp", CompareOp::kNe, Value(0.0))
                  .Evaluate(t, &ctx)
                  .ValueOrDie());
}

TEST(ValueConditionTest, IntDoubleCrossComparison) {
  SchemaPtr schema = SensorSchema();
  Rng rng(4);
  Tuple t = SensorTuple(schema, 10, 20.0, 100);
  auto ctx = ContextFor(t, &rng);
  // count is int64(100); operand double 100.0 compares equal numerically.
  EXPECT_TRUE(ValueCondition("count", CompareOp::kEq, Value(100.0))
                  .Evaluate(t, &ctx)
                  .ValueOrDie());
}

TEST(ValueConditionTest, StringComparison) {
  SchemaPtr schema = SensorSchema();
  Rng rng(5);
  Tuple t = SensorTuple(schema, 10, 20.0, 100, "42");
  auto ctx = ContextFor(t, &rng);
  // The paper's Figure 2 example: "if attribute1.value == 42 then pollute".
  EXPECT_TRUE(ValueCondition("label", CompareOp::kEq, Value("42"))
                  .Evaluate(t, &ctx)
                  .ValueOrDie());
  EXPECT_FALSE(ValueCondition("label", CompareOp::kEq, Value("43"))
                   .Evaluate(t, &ctx)
                   .ValueOrDie());
}

TEST(ValueConditionTest, NullHandling) {
  SchemaPtr schema = SensorSchema();
  Rng rng(6);
  Tuple t = SensorTuple(schema, 10);
  t.set_value(1, Value::Null());
  auto ctx = ContextFor(t, &rng);
  EXPECT_TRUE(ValueCondition("temp", CompareOp::kIsNull)
                  .Evaluate(t, &ctx)
                  .ValueOrDie());
  EXPECT_FALSE(ValueCondition("temp", CompareOp::kNotNull)
                   .Evaluate(t, &ctx)
                   .ValueOrDie());
  // Ordering against NULL is false (SQL-like), equality with explicit
  // NULL operand is true.
  EXPECT_FALSE(ValueCondition("temp", CompareOp::kGt, Value(0.0))
                   .Evaluate(t, &ctx)
                   .ValueOrDie());
  EXPECT_TRUE(ValueCondition("temp", CompareOp::kEq, Value::Null())
                  .Evaluate(t, &ctx)
                  .ValueOrDie());
  EXPECT_TRUE(ValueCondition("count", CompareOp::kNe, Value::Null())
                  .Evaluate(t, &ctx)
                  .ValueOrDie());
}

TEST(ValueConditionTest, UnknownAttributeIsError) {
  SchemaPtr schema = SensorSchema();
  Rng rng(7);
  Tuple t = SensorTuple(schema, 10);
  auto ctx = ContextFor(t, &rng);
  EXPECT_EQ(ValueCondition("bogus", CompareOp::kEq, Value(1))
                .Evaluate(t, &ctx)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(CompareOpTest, ParseAndNameRoundTrip) {
  for (const char* text :
       {"==", "!=", "<", "<=", ">", ">=", "is_null", "not_null"}) {
    auto op = ParseCompareOp(text);
    ASSERT_TRUE(op.ok()) << text;
    EXPECT_STREQ(CompareOpName(op.ValueOrDie()), text);
  }
  EXPECT_FALSE(ParseCompareOp("~=").ok());
}

TEST(TimeWindowConditionTest, HalfOpenWindowOnEventTime) {
  SchemaPtr schema = SensorSchema();
  Rng rng(8);
  const Timestamp start = TimestampFromCivil({2016, 3, 1, 10, 0, 0});
  const Timestamp end = TimestampFromCivil({2016, 3, 1, 12, 0, 0});
  TimeWindowCondition condition(start, end);
  for (int hour : {9, 10, 11, 12, 13}) {
    Tuple t = SensorTuple(schema, hour);
    auto ctx = ContextFor(t, &rng);
    const bool expected = hour >= 10 && hour < 12;
    EXPECT_EQ(condition.Evaluate(t, &ctx).ValueOrDie(), expected) << hour;
  }
}

TEST(TimeWindowConditionTest, AfterFactoryIsOpenEnded) {
  SchemaPtr schema = SensorSchema();
  Rng rng(9);
  ConditionPtr condition =
      TimeWindowCondition::After(TimestampFromCivil({2016, 3, 1, 5, 0, 0}));
  Tuple before = SensorTuple(schema, 4);
  Tuple at = SensorTuple(schema, 5);
  Tuple after = SensorTuple(schema, 23);
  auto ctx_b = ContextFor(before, &rng);
  auto ctx_at = ContextFor(at, &rng);
  auto ctx_a = ContextFor(after, &rng);
  EXPECT_FALSE(condition->Evaluate(before, &ctx_b).ValueOrDie());
  EXPECT_TRUE(condition->Evaluate(at, &ctx_at).ValueOrDie());
  EXPECT_TRUE(condition->Evaluate(after, &ctx_a).ValueOrDie());
}

TEST(DailyWindowConditionTest, MatchesPaperNetworkScenarioWindow) {
  SchemaPtr schema = SensorSchema();
  Rng rng(10);
  // 13:00-14:59 (Experiment 3.1.3).
  DailyWindowCondition condition(13 * 60, 14 * 60 + 59);
  for (int hour = 0; hour < 24; ++hour) {
    Tuple t = SensorTuple(schema, hour);
    auto ctx = ContextFor(t, &rng);
    const bool expected = hour == 13 || hour == 14;
    EXPECT_EQ(condition.Evaluate(t, &ctx).ValueOrDie(), expected) << hour;
  }
}

TEST(DailyWindowConditionTest, WrapsAroundMidnight) {
  SchemaPtr schema = SensorSchema();
  Rng rng(11);
  DailyWindowCondition condition(23 * 60, 1 * 60);  // 23:00-01:00
  for (int hour : {22, 23, 0, 1, 2}) {
    Tuple t = SensorTuple(schema, hour);
    auto ctx = ContextFor(t, &rng);
    const bool expected = hour == 23 || hour == 0 || hour == 1;
    EXPECT_EQ(condition.Evaluate(t, &ctx).ValueOrDie(), expected) << hour;
  }
}

TEST(ProfileProbabilityConditionTest, SinusoidalDailyErrorRate) {
  SchemaPtr schema = SensorSchema();
  Rng rng(12);
  // Experiment 3.1.1's p(t) = 0.25 cos(pi/12 t) + 0.25.
  ProfileProbabilityCondition condition(
      std::make_unique<SinusoidalProfile>(24.0, 0.25, 0.25));
  const int n = 20000;
  int fired_midnight = 0;
  int fired_noon = 0;
  for (int i = 0; i < n; ++i) {
    Tuple midnight = SensorTuple(schema, 0);
    Tuple noon = SensorTuple(schema, 12);
    auto ctx_m = ContextFor(midnight, &rng);
    auto ctx_n = ContextFor(noon, &rng);
    if (condition.Evaluate(midnight, &ctx_m).ValueOrDie()) ++fired_midnight;
    if (condition.Evaluate(noon, &ctx_n).ValueOrDie()) ++fired_noon;
  }
  EXPECT_NEAR(static_cast<double>(fired_midnight) / n, 0.5, 0.02);
  EXPECT_EQ(fired_noon, 0);
}

TEST(CompositeConditionTest, AndShortCircuits) {
  SchemaPtr schema = SensorSchema();
  Rng rng(13);
  std::vector<ConditionPtr> children;
  children.push_back(std::make_unique<NeverCondition>());
  // A condition on a missing attribute would error if evaluated.
  children.push_back(
      std::make_unique<ValueCondition>("missing", CompareOp::kEq, Value(1)));
  AndCondition condition(std::move(children));
  Tuple t = SensorTuple(schema, 10);
  auto ctx = ContextFor(t, &rng);
  auto r = condition.Evaluate(t, &ctx);
  ASSERT_TRUE(r.ok());  // short-circuited before the bad child
  EXPECT_FALSE(r.ValueOrDie());
}

TEST(CompositeConditionTest, AndRequiresAll) {
  SchemaPtr schema = SensorSchema();
  Rng rng(14);
  // The paper's nested network-error condition: daily window AND p=0.2.
  std::vector<ConditionPtr> children;
  children.push_back(std::make_unique<DailyWindowCondition>(13 * 60, 899));
  children.push_back(std::make_unique<RandomCondition>(0.2));
  AndCondition condition(std::move(children));
  int fired_in_window = 0;
  int fired_outside = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    Tuple in_window = SensorTuple(schema, 13);
    Tuple outside = SensorTuple(schema, 9);
    auto ctx_i = ContextFor(in_window, &rng);
    auto ctx_o = ContextFor(outside, &rng);
    if (condition.Evaluate(in_window, &ctx_i).ValueOrDie()) ++fired_in_window;
    if (condition.Evaluate(outside, &ctx_o).ValueOrDie()) ++fired_outside;
  }
  EXPECT_NEAR(static_cast<double>(fired_in_window) / n, 0.2, 0.02);
  EXPECT_EQ(fired_outside, 0);
}

TEST(CompositeConditionTest, OrFiresOnAny) {
  SchemaPtr schema = SensorSchema();
  Rng rng(15);
  std::vector<ConditionPtr> children;
  children.push_back(std::make_unique<NeverCondition>());
  children.push_back(
      std::make_unique<ValueCondition>("temp", CompareOp::kGt, Value(15.0)));
  OrCondition condition(std::move(children));
  Tuple hot = SensorTuple(schema, 10, 20.0);
  Tuple cold = SensorTuple(schema, 10, 10.0);
  auto ctx_h = ContextFor(hot, &rng);
  auto ctx_c = ContextFor(cold, &rng);
  EXPECT_TRUE(condition.Evaluate(hot, &ctx_h).ValueOrDie());
  EXPECT_FALSE(condition.Evaluate(cold, &ctx_c).ValueOrDie());
}

TEST(CompositeConditionTest, NotInverts) {
  SchemaPtr schema = SensorSchema();
  Rng rng(16);
  NotCondition condition(std::make_unique<NeverCondition>());
  Tuple t = SensorTuple(schema, 10);
  auto ctx = ContextFor(t, &rng);
  EXPECT_TRUE(condition.Evaluate(t, &ctx).ValueOrDie());
}

TEST(CompositeConditionTest, EmptyAndIsTrueEmptyOrIsFalse) {
  SchemaPtr schema = SensorSchema();
  Rng rng(17);
  Tuple t = SensorTuple(schema, 10);
  auto ctx = ContextFor(t, &rng);
  EXPECT_TRUE(AndCondition({}).Evaluate(t, &ctx).ValueOrDie());
  EXPECT_FALSE(OrCondition({}).Evaluate(t, &ctx).ValueOrDie());
}

TEST(WindowAggregateConditionTest, MotivatingExampleAvgTemp) {
  // Figure 1: "if Avg(Temp) > 20 then ...". Evaluate over a 3-hour
  // trailing window.
  SchemaPtr schema = SensorSchema();
  Rng rng(30);
  WindowAggregateCondition condition("temp", 3 * 3600, WindowAgg::kMean,
                                     CompareOp::kGt, 20.0);
  const std::vector<double> temps = {16, 17, 30, 29, 21, 10, 5, 5};
  std::vector<bool> fired;
  for (size_t h = 0; h < temps.size(); ++h) {
    Tuple t = SensorTuple(schema, static_cast<int>(h), temps[h]);
    auto ctx = ContextFor(t, &rng);
    fired.push_back(condition.Evaluate(t, &ctx).ValueOrDie());
  }
  // Trailing 3h means (incl. current): 16, 16.5, 21, 25.3, 26.7, 20, 12,
  // 6.7 -> fires at hours 2-4 only... (mean at h=5 is (29+21+10)/3 = 20,
  // not > 20).
  const std::vector<bool> expected = {false, false, true, true,
                                      true,  false, false, false};
  EXPECT_EQ(fired, expected);
}

TEST(WindowAggregateConditionTest, CountAndSumAggregates) {
  SchemaPtr schema = SensorSchema();
  Rng rng(31);
  WindowAggregateCondition count_cond("temp", 2 * 3600, WindowAgg::kCount,
                                      CompareOp::kGe, 2.0);
  WindowAggregateCondition sum_cond("temp", 3 * 3600, WindowAgg::kSum,
                                    CompareOp::kGt, 45.0);
  for (int h = 0; h < 3; ++h) {
    Tuple t = SensorTuple(schema, h, 20.0);
    auto ctx = ContextFor(t, &rng);
    const bool count_fired = count_cond.Evaluate(t, &ctx).ValueOrDie();
    const bool sum_fired = sum_cond.Evaluate(t, &ctx).ValueOrDie();
    EXPECT_EQ(count_fired, h >= 1) << h;   // window holds 2+ from hour 1
    EXPECT_EQ(sum_fired, h >= 2) << h;     // sum 60 > 45 from hour 2
  }
}

TEST(WindowAggregateConditionTest, MinMaxAggregates) {
  SchemaPtr schema = SensorSchema();
  Rng rng(32);
  WindowAggregateCondition max_cond("temp", 2 * 3600, WindowAgg::kMax,
                                    CompareOp::kGe, 100.0);
  const std::vector<double> temps = {50, 120, 50, 50, 50};
  std::vector<bool> fired;
  for (size_t h = 0; h < temps.size(); ++h) {
    Tuple t = SensorTuple(schema, static_cast<int>(h), temps[h]);
    auto ctx = ContextFor(t, &rng);
    fired.push_back(max_cond.Evaluate(t, &ctx).ValueOrDie());
  }
  // The 120 spike keeps max >= 100 while it remains inside the
  // half-open 2h window (hours 1-2; at hour 3 it is evicted).
  EXPECT_EQ(fired, (std::vector<bool>{false, true, true, false, false}));
}

TEST(WindowAggregateConditionTest, NullValuesSkipped) {
  SchemaPtr schema = SensorSchema();
  Rng rng(33);
  WindowAggregateCondition condition("temp", 10 * 3600, WindowAgg::kMean,
                                     CompareOp::kGt, 0.0);
  Tuple t = SensorTuple(schema, 0);
  t.set_value(1, Value::Null());
  auto ctx = ContextFor(t, &rng);
  // Empty window -> mean never fires.
  EXPECT_FALSE(condition.Evaluate(t, &ctx).ValueOrDie());
}

TEST(WindowAggregateConditionTest, NullOperatorRejected) {
  SchemaPtr schema = SensorSchema();
  Rng rng(34);
  WindowAggregateCondition condition("temp", 3600, WindowAgg::kMean,
                                     CompareOp::kIsNull, 0.0);
  Tuple t = SensorTuple(schema, 0);
  auto ctx = ContextFor(t, &rng);
  EXPECT_FALSE(condition.Evaluate(t, &ctx).ok());
}

TEST(WindowAggregateConditionTest, CloneStartsEmptyAndJsonRoundTrips) {
  WindowAggregateCondition condition("temp", 3600, WindowAgg::kMax,
                                     CompareOp::kGt, 5.0);
  ConditionPtr clone = condition.Clone();
  EXPECT_EQ(clone->ToJson(), condition.ToJson());
  EXPECT_EQ(condition.ToJson().GetString("agg", ""), "max");
  EXPECT_EQ(condition.ToJson().GetString("op", ""), ">");
}

TEST(WindowAggParseTest, RoundTrip) {
  for (const char* text : {"mean", "min", "max", "sum", "count"}) {
    auto agg = ParseWindowAgg(text);
    ASSERT_TRUE(agg.ok()) << text;
    EXPECT_STREQ(WindowAggName(agg.ValueOrDie()), text);
  }
  EXPECT_FALSE(ParseWindowAgg("median").ok());
}

TEST(HoldConditionTest, StaysActiveForHoldWindow) {
  SchemaPtr schema = SensorSchema();
  Rng rng(20);
  // Trigger exactly at hour 5; hold for 4 hours of event time.
  HoldCondition condition(
      std::make_unique<TimeWindowCondition>(
          TimestampFromCivil({2016, 3, 1, 5, 0, 0}),
          TimestampFromCivil({2016, 3, 1, 6, 0, 0})),
      4 * 3600);
  std::vector<bool> fired;
  for (int hour = 0; hour < 12; ++hour) {
    Tuple t = SensorTuple(schema, hour);
    auto ctx = ContextFor(t, &rng);
    fired.push_back(condition.Evaluate(t, &ctx).ValueOrDie());
  }
  // Active at the trigger (5) and while held (6, 7, 8); off afterwards.
  const std::vector<bool> expected = {false, false, false, false, false,
                                      true,  true,  true,  true,  false,
                                      false, false};
  EXPECT_EQ(fired, expected);
}

TEST(HoldConditionTest, RetriggersAfterExpiry) {
  SchemaPtr schema = SensorSchema();
  Rng rng(21);
  HoldCondition condition(std::make_unique<AlwaysCondition>(), 3600);
  // Always retriggering: every tuple fires.
  for (int hour = 0; hour < 5; ++hour) {
    Tuple t = SensorTuple(schema, hour);
    auto ctx = ContextFor(t, &rng);
    EXPECT_TRUE(condition.Evaluate(t, &ctx).ValueOrDie());
  }
}

TEST(HoldConditionTest, CloneStartsInactive) {
  SchemaPtr schema = SensorSchema();
  Rng rng(22);
  HoldCondition condition(std::make_unique<NeverCondition>(), 1000000);
  ConditionPtr clone = condition.Clone();
  Tuple t = SensorTuple(schema, 0);
  auto ctx = ContextFor(t, &rng);
  EXPECT_FALSE(clone->Evaluate(t, &ctx).ValueOrDie());
  EXPECT_EQ(clone->ToJson().GetString("type", ""), "hold");
}

TEST(ConditionTest, CloneIsDeepAndEquivalent) {
  std::vector<ConditionPtr> children;
  children.push_back(std::make_unique<RandomCondition>(0.2));
  children.push_back(std::make_unique<DailyWindowCondition>(780, 899));
  AndCondition original(std::move(children));
  ConditionPtr clone = original.Clone();
  EXPECT_EQ(clone->ToJson(), original.ToJson());
  EXPECT_EQ(clone->name(), "and");
}

TEST(ConditionTest, ToJsonShapes) {
  EXPECT_EQ(RandomCondition(0.3).ToJson().GetString("type", ""), "random");
  EXPECT_DOUBLE_EQ(RandomCondition(0.3).ToJson().GetDouble("p", 0), 0.3);
  const Json vc =
      ValueCondition("BPM", CompareOp::kGt, Value(100.0)).ToJson();
  EXPECT_EQ(vc.GetString("attribute", ""), "BPM");
  EXPECT_EQ(vc.GetString("op", ""), ">");
  EXPECT_DOUBLE_EQ(vc.GetDouble("operand", 0), 100.0);
}

}  // namespace
}  // namespace icewafl
