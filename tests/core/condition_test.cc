#include "core/condition.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace icewafl {
namespace {

using testing_helpers::ContextFor;
using testing_helpers::SensorSchema;
using testing_helpers::SensorTuple;

// Binds `condition` against `schema` at the root path, as the pipeline
// Bind pass does before any Evaluate call.
Status BindTo(Condition* condition, const SchemaPtr& schema) {
  BindContext ctx(*schema);
  return condition->Bind(ctx);
}

TEST(AlwaysNeverConditionTest, Constants) {
  SchemaPtr schema = SensorSchema();
  Rng rng(1);
  Tuple t = SensorTuple(schema, 10);
  auto ctx = ContextFor(t, &rng);
  EXPECT_TRUE(AlwaysCondition().Evaluate(t, &ctx));
  EXPECT_FALSE(NeverCondition().Evaluate(t, &ctx));
}

TEST(RandomConditionTest, FiresWithConfiguredProbability) {
  SchemaPtr schema = SensorSchema();
  Rng rng(2);
  RandomCondition condition(0.2);
  Tuple t = SensorTuple(schema, 10);
  int fired = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    auto ctx = ContextFor(t, &rng);
    if (condition.Evaluate(t, &ctx)) ++fired;
  }
  EXPECT_NEAR(static_cast<double>(fired) / n, 0.2, 0.01);
}

TEST(RandomConditionTest, ClampsProbability) {
  EXPECT_DOUBLE_EQ(RandomCondition(1.7).probability(), 1.0);
  EXPECT_DOUBLE_EQ(RandomCondition(-0.3).probability(), 0.0);
}

TEST(RandomConditionTest, NeverFiresWithoutRng) {
  SchemaPtr schema = SensorSchema();
  RandomCondition condition(1.0);
  Tuple t = SensorTuple(schema, 10);
  PollutionContext ctx;  // no rng: no reproducible draw to make
  EXPECT_FALSE(condition.Evaluate(t, &ctx));
}

TEST(ValueConditionTest, NumericComparisons) {
  SchemaPtr schema = SensorSchema();
  Rng rng(3);
  Tuple t = SensorTuple(schema, 10, 120.0);
  auto ctx = ContextFor(t, &rng);
  // The paper's "BPM > 100" style condition.
  const struct {
    CompareOp op;
    double operand;
    bool expected;
  } cases[] = {
      {CompareOp::kGt, 100.0, true}, {CompareOp::kGt, 120.0, false},
      {CompareOp::kGe, 120.0, true}, {CompareOp::kLt, 121.0, true},
      {CompareOp::kLe, 120.0, true}, {CompareOp::kEq, 120.0, true},
      {CompareOp::kNe, 0.0, true},
  };
  for (const auto& c : cases) {
    ValueCondition condition("temp", c.op, Value(c.operand));
    ASSERT_TRUE(BindTo(&condition, schema).ok());
    EXPECT_EQ(condition.Evaluate(t, &ctx), c.expected)
        << CompareOpName(c.op) << " " << c.operand;
  }
}

TEST(ValueConditionTest, UnboundNeverFires) {
  SchemaPtr schema = SensorSchema();
  Rng rng(3);
  Tuple t = SensorTuple(schema, 10, 120.0);
  auto ctx = ContextFor(t, &rng);
  // Without Bind there is no resolved column to read.
  EXPECT_FALSE(
      ValueCondition("temp", CompareOp::kGt, Value(100.0)).Evaluate(t, &ctx));
}

TEST(ValueConditionTest, IntDoubleCrossComparison) {
  SchemaPtr schema = SensorSchema();
  Rng rng(4);
  Tuple t = SensorTuple(schema, 10, 20.0, 100);
  auto ctx = ContextFor(t, &rng);
  // count is int64(100); operand double 100.0 compares equal numerically.
  ValueCondition condition("count", CompareOp::kEq, Value(100.0));
  ASSERT_TRUE(BindTo(&condition, schema).ok());
  EXPECT_TRUE(condition.Evaluate(t, &ctx));
}

TEST(ValueConditionTest, StringComparison) {
  SchemaPtr schema = SensorSchema();
  Rng rng(5);
  Tuple t = SensorTuple(schema, 10, 20.0, 100, "42");
  auto ctx = ContextFor(t, &rng);
  // The paper's Figure 2 example: "if attribute1.value == 42 then pollute".
  ValueCondition eq42("label", CompareOp::kEq, Value("42"));
  ValueCondition eq43("label", CompareOp::kEq, Value("43"));
  ASSERT_TRUE(BindTo(&eq42, schema).ok());
  ASSERT_TRUE(BindTo(&eq43, schema).ok());
  EXPECT_TRUE(eq42.Evaluate(t, &ctx));
  EXPECT_FALSE(eq43.Evaluate(t, &ctx));
}

TEST(ValueConditionTest, NullHandling) {
  SchemaPtr schema = SensorSchema();
  Rng rng(6);
  Tuple t = SensorTuple(schema, 10);
  t.set_value(1, Value::Null());
  auto ctx = ContextFor(t, &rng);
  const struct {
    const char* attribute;
    CompareOp op;
    Value operand;
    bool expected;
  } cases[] = {
      {"temp", CompareOp::kIsNull, Value(), true},
      {"temp", CompareOp::kNotNull, Value(), false},
      // Ordering against NULL is false (SQL-like), equality with explicit
      // NULL operand is true.
      {"temp", CompareOp::kGt, Value(0.0), false},
      {"temp", CompareOp::kEq, Value::Null(), true},
      {"count", CompareOp::kNe, Value::Null(), true},
  };
  for (const auto& c : cases) {
    ValueCondition condition(c.attribute, c.op, c.operand);
    ASSERT_TRUE(BindTo(&condition, schema).ok());
    EXPECT_EQ(condition.Evaluate(t, &ctx), c.expected)
        << c.attribute << " " << CompareOpName(c.op);
  }
}

TEST(ValueConditionTest, UnknownAttributeRejectedAtBind) {
  SchemaPtr schema = SensorSchema();
  ValueCondition condition("bogus", CompareOp::kEq, Value(1));
  const Status status = BindTo(&condition, schema);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("bogus"), std::string::npos);
}

TEST(ValueConditionTest, OperandColumnTypeMismatchRejectedAtBind) {
  SchemaPtr schema = SensorSchema();
  // Numeric operand against the string column and vice versa.
  ValueCondition numeric_on_string("label", CompareOp::kGt, Value(1.0));
  EXPECT_EQ(BindTo(&numeric_on_string, schema).code(), StatusCode::kTypeError);
  ValueCondition string_on_numeric("temp", CompareOp::kEq, Value("hot"));
  EXPECT_EQ(BindTo(&string_on_numeric, schema).code(), StatusCode::kTypeError);
}

TEST(CompareOpTest, ParseAndNameRoundTrip) {
  for (const char* text :
       {"==", "!=", "<", "<=", ">", ">=", "is_null", "not_null"}) {
    auto op = ParseCompareOp(text);
    ASSERT_TRUE(op.ok()) << text;
    EXPECT_STREQ(CompareOpName(op.ValueOrDie()), text);
  }
  EXPECT_FALSE(ParseCompareOp("~=").ok());
}

TEST(TimeWindowConditionTest, HalfOpenWindowOnEventTime) {
  SchemaPtr schema = SensorSchema();
  Rng rng(8);
  const Timestamp start = TimestampFromCivil({2016, 3, 1, 10, 0, 0});
  const Timestamp end = TimestampFromCivil({2016, 3, 1, 12, 0, 0});
  TimeWindowCondition condition(start, end);
  for (int hour : {9, 10, 11, 12, 13}) {
    Tuple t = SensorTuple(schema, hour);
    auto ctx = ContextFor(t, &rng);
    const bool expected = hour >= 10 && hour < 12;
    EXPECT_EQ(condition.Evaluate(t, &ctx), expected) << hour;
  }
}

TEST(TimeWindowConditionTest, AfterFactoryIsOpenEnded) {
  SchemaPtr schema = SensorSchema();
  Rng rng(9);
  ConditionPtr condition =
      TimeWindowCondition::After(TimestampFromCivil({2016, 3, 1, 5, 0, 0}));
  Tuple before = SensorTuple(schema, 4);
  Tuple at = SensorTuple(schema, 5);
  Tuple after = SensorTuple(schema, 23);
  auto ctx_b = ContextFor(before, &rng);
  auto ctx_at = ContextFor(at, &rng);
  auto ctx_a = ContextFor(after, &rng);
  EXPECT_FALSE(condition->Evaluate(before, &ctx_b));
  EXPECT_TRUE(condition->Evaluate(at, &ctx_at));
  EXPECT_TRUE(condition->Evaluate(after, &ctx_a));
}

TEST(DailyWindowConditionTest, MatchesPaperNetworkScenarioWindow) {
  SchemaPtr schema = SensorSchema();
  Rng rng(10);
  // 13:00-14:59 (Experiment 3.1.3).
  DailyWindowCondition condition(13 * 60, 14 * 60 + 59);
  for (int hour = 0; hour < 24; ++hour) {
    Tuple t = SensorTuple(schema, hour);
    auto ctx = ContextFor(t, &rng);
    const bool expected = hour == 13 || hour == 14;
    EXPECT_EQ(condition.Evaluate(t, &ctx), expected) << hour;
  }
}

TEST(DailyWindowConditionTest, WrapsAroundMidnight) {
  SchemaPtr schema = SensorSchema();
  Rng rng(11);
  DailyWindowCondition condition(23 * 60, 1 * 60);  // 23:00-01:00
  for (int hour : {22, 23, 0, 1, 2}) {
    Tuple t = SensorTuple(schema, hour);
    auto ctx = ContextFor(t, &rng);
    const bool expected = hour == 23 || hour == 0 || hour == 1;
    EXPECT_EQ(condition.Evaluate(t, &ctx), expected) << hour;
  }
}

TEST(ProfileProbabilityConditionTest, SinusoidalDailyErrorRate) {
  SchemaPtr schema = SensorSchema();
  Rng rng(12);
  // Experiment 3.1.1's p(t) = 0.25 cos(pi/12 t) + 0.25.
  ProfileProbabilityCondition condition(
      std::make_unique<SinusoidalProfile>(24.0, 0.25, 0.25));
  const int n = 20000;
  int fired_midnight = 0;
  int fired_noon = 0;
  for (int i = 0; i < n; ++i) {
    Tuple midnight = SensorTuple(schema, 0);
    Tuple noon = SensorTuple(schema, 12);
    auto ctx_m = ContextFor(midnight, &rng);
    auto ctx_n = ContextFor(noon, &rng);
    if (condition.Evaluate(midnight, &ctx_m)) ++fired_midnight;
    if (condition.Evaluate(noon, &ctx_n)) ++fired_noon;
  }
  EXPECT_NEAR(static_cast<double>(fired_midnight) / n, 0.5, 0.02);
  EXPECT_EQ(fired_noon, 0);
}

TEST(CompositeConditionTest, BindRecursesIntoChildren) {
  SchemaPtr schema = SensorSchema();
  std::vector<ConditionPtr> children;
  children.push_back(std::make_unique<NeverCondition>());
  children.push_back(
      std::make_unique<ValueCondition>("missing", CompareOp::kEq, Value(1)));
  AndCondition condition(std::move(children));
  // The bad child is rejected at bind time with its path, even though
  // evaluation would short-circuit before reaching it.
  const Status status = BindTo(&condition, schema);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("missing"), std::string::npos);
}

TEST(CompositeConditionTest, AndRequiresAll) {
  SchemaPtr schema = SensorSchema();
  Rng rng(14);
  // The paper's nested network-error condition: daily window AND p=0.2.
  std::vector<ConditionPtr> children;
  children.push_back(std::make_unique<DailyWindowCondition>(13 * 60, 899));
  children.push_back(std::make_unique<RandomCondition>(0.2));
  AndCondition condition(std::move(children));
  ASSERT_TRUE(BindTo(&condition, schema).ok());
  int fired_in_window = 0;
  int fired_outside = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    Tuple in_window = SensorTuple(schema, 13);
    Tuple outside = SensorTuple(schema, 9);
    auto ctx_i = ContextFor(in_window, &rng);
    auto ctx_o = ContextFor(outside, &rng);
    if (condition.Evaluate(in_window, &ctx_i)) ++fired_in_window;
    if (condition.Evaluate(outside, &ctx_o)) ++fired_outside;
  }
  EXPECT_NEAR(static_cast<double>(fired_in_window) / n, 0.2, 0.02);
  EXPECT_EQ(fired_outside, 0);
}

TEST(CompositeConditionTest, OrFiresOnAny) {
  SchemaPtr schema = SensorSchema();
  Rng rng(15);
  std::vector<ConditionPtr> children;
  children.push_back(std::make_unique<NeverCondition>());
  children.push_back(
      std::make_unique<ValueCondition>("temp", CompareOp::kGt, Value(15.0)));
  OrCondition condition(std::move(children));
  ASSERT_TRUE(BindTo(&condition, schema).ok());
  Tuple hot = SensorTuple(schema, 10, 20.0);
  Tuple cold = SensorTuple(schema, 10, 10.0);
  auto ctx_h = ContextFor(hot, &rng);
  auto ctx_c = ContextFor(cold, &rng);
  EXPECT_TRUE(condition.Evaluate(hot, &ctx_h));
  EXPECT_FALSE(condition.Evaluate(cold, &ctx_c));
}

TEST(CompositeConditionTest, NotInverts) {
  SchemaPtr schema = SensorSchema();
  Rng rng(16);
  NotCondition condition(std::make_unique<NeverCondition>());
  Tuple t = SensorTuple(schema, 10);
  auto ctx = ContextFor(t, &rng);
  EXPECT_TRUE(condition.Evaluate(t, &ctx));
}

TEST(CompositeConditionTest, EmptyAndIsTrueEmptyOrIsFalse) {
  SchemaPtr schema = SensorSchema();
  Rng rng(17);
  Tuple t = SensorTuple(schema, 10);
  auto ctx = ContextFor(t, &rng);
  EXPECT_TRUE(AndCondition({}).Evaluate(t, &ctx));
  EXPECT_FALSE(OrCondition({}).Evaluate(t, &ctx));
}

TEST(WindowAggregateConditionTest, MotivatingExampleAvgTemp) {
  // Figure 1: "if Avg(Temp) > 20 then ...". Evaluate over a 3-hour
  // trailing window.
  SchemaPtr schema = SensorSchema();
  Rng rng(30);
  WindowAggregateCondition condition("temp", 3 * 3600, WindowAgg::kMean,
                                     CompareOp::kGt, 20.0);
  ASSERT_TRUE(BindTo(&condition, schema).ok());
  const std::vector<double> temps = {16, 17, 30, 29, 21, 10, 5, 5};
  std::vector<bool> fired;
  for (size_t h = 0; h < temps.size(); ++h) {
    Tuple t = SensorTuple(schema, static_cast<int>(h), temps[h]);
    auto ctx = ContextFor(t, &rng);
    fired.push_back(condition.Evaluate(t, &ctx));
  }
  // Trailing 3h means (incl. current): 16, 16.5, 21, 25.3, 26.7, 20, 12,
  // 6.7 -> fires at hours 2-4 only... (mean at h=5 is (29+21+10)/3 = 20,
  // not > 20).
  const std::vector<bool> expected = {false, false, true, true,
                                      true,  false, false, false};
  EXPECT_EQ(fired, expected);
}

TEST(WindowAggregateConditionTest, CountAndSumAggregates) {
  SchemaPtr schema = SensorSchema();
  Rng rng(31);
  WindowAggregateCondition count_cond("temp", 2 * 3600, WindowAgg::kCount,
                                      CompareOp::kGe, 2.0);
  WindowAggregateCondition sum_cond("temp", 3 * 3600, WindowAgg::kSum,
                                    CompareOp::kGt, 45.0);
  ASSERT_TRUE(BindTo(&count_cond, schema).ok());
  ASSERT_TRUE(BindTo(&sum_cond, schema).ok());
  for (int h = 0; h < 3; ++h) {
    Tuple t = SensorTuple(schema, h, 20.0);
    auto ctx = ContextFor(t, &rng);
    const bool count_fired = count_cond.Evaluate(t, &ctx);
    const bool sum_fired = sum_cond.Evaluate(t, &ctx);
    EXPECT_EQ(count_fired, h >= 1) << h;   // window holds 2+ from hour 1
    EXPECT_EQ(sum_fired, h >= 2) << h;     // sum 60 > 45 from hour 2
  }
}

TEST(WindowAggregateConditionTest, MinMaxAggregates) {
  SchemaPtr schema = SensorSchema();
  Rng rng(32);
  WindowAggregateCondition max_cond("temp", 2 * 3600, WindowAgg::kMax,
                                    CompareOp::kGe, 100.0);
  ASSERT_TRUE(BindTo(&max_cond, schema).ok());
  const std::vector<double> temps = {50, 120, 50, 50, 50};
  std::vector<bool> fired;
  for (size_t h = 0; h < temps.size(); ++h) {
    Tuple t = SensorTuple(schema, static_cast<int>(h), temps[h]);
    auto ctx = ContextFor(t, &rng);
    fired.push_back(max_cond.Evaluate(t, &ctx));
  }
  // The 120 spike keeps max >= 100 while it remains inside the
  // half-open 2h window (hours 1-2; at hour 3 it is evicted).
  EXPECT_EQ(fired, (std::vector<bool>{false, true, true, false, false}));
}

TEST(WindowAggregateConditionTest, NullValuesSkipped) {
  SchemaPtr schema = SensorSchema();
  Rng rng(33);
  WindowAggregateCondition condition("temp", 10 * 3600, WindowAgg::kMean,
                                     CompareOp::kGt, 0.0);
  ASSERT_TRUE(BindTo(&condition, schema).ok());
  Tuple t = SensorTuple(schema, 0);
  t.set_value(1, Value::Null());
  auto ctx = ContextFor(t, &rng);
  // Empty window -> mean never fires.
  EXPECT_FALSE(condition.Evaluate(t, &ctx));
}

TEST(WindowAggregateConditionTest, NullOperatorRejectedAtBind) {
  SchemaPtr schema = SensorSchema();
  WindowAggregateCondition condition("temp", 3600, WindowAgg::kMean,
                                     CompareOp::kIsNull, 0.0);
  EXPECT_EQ(BindTo(&condition, schema).code(), StatusCode::kInvalidArgument);
}

TEST(WindowAggregateConditionTest, NonNumericColumnRejectedAtBind) {
  SchemaPtr schema = SensorSchema();
  WindowAggregateCondition condition("label", 3600, WindowAgg::kMean,
                                     CompareOp::kGt, 0.0);
  EXPECT_EQ(BindTo(&condition, schema).code(), StatusCode::kTypeError);
}

TEST(WindowAggregateConditionTest, CloneStartsEmptyAndJsonRoundTrips) {
  WindowAggregateCondition condition("temp", 3600, WindowAgg::kMax,
                                     CompareOp::kGt, 5.0);
  ConditionPtr clone = condition.Clone();
  EXPECT_EQ(clone->ToJson(), condition.ToJson());
  EXPECT_EQ(condition.ToJson().GetString("agg", ""), "max");
  EXPECT_EQ(condition.ToJson().GetString("op", ""), ">");
}

TEST(WindowAggParseTest, RoundTrip) {
  for (const char* text : {"mean", "min", "max", "sum", "count"}) {
    auto agg = ParseWindowAgg(text);
    ASSERT_TRUE(agg.ok()) << text;
    EXPECT_STREQ(WindowAggName(agg.ValueOrDie()), text);
  }
  EXPECT_FALSE(ParseWindowAgg("median").ok());
}

TEST(HoldConditionTest, StaysActiveForHoldWindow) {
  SchemaPtr schema = SensorSchema();
  Rng rng(20);
  // Trigger exactly at hour 5; hold for 4 hours of event time.
  HoldCondition condition(
      std::make_unique<TimeWindowCondition>(
          TimestampFromCivil({2016, 3, 1, 5, 0, 0}),
          TimestampFromCivil({2016, 3, 1, 6, 0, 0})),
      4 * 3600);
  std::vector<bool> fired;
  for (int hour = 0; hour < 12; ++hour) {
    Tuple t = SensorTuple(schema, hour);
    auto ctx = ContextFor(t, &rng);
    fired.push_back(condition.Evaluate(t, &ctx));
  }
  // Active at the trigger (5) and while held (6, 7, 8); off afterwards.
  const std::vector<bool> expected = {false, false, false, false, false,
                                      true,  true,  true,  true,  false,
                                      false, false};
  EXPECT_EQ(fired, expected);
}

TEST(HoldConditionTest, RetriggersAfterExpiry) {
  SchemaPtr schema = SensorSchema();
  Rng rng(21);
  HoldCondition condition(std::make_unique<AlwaysCondition>(), 3600);
  // Always retriggering: every tuple fires.
  for (int hour = 0; hour < 5; ++hour) {
    Tuple t = SensorTuple(schema, hour);
    auto ctx = ContextFor(t, &rng);
    EXPECT_TRUE(condition.Evaluate(t, &ctx));
  }
}

TEST(HoldConditionTest, CloneStartsInactive) {
  SchemaPtr schema = SensorSchema();
  Rng rng(22);
  HoldCondition condition(std::make_unique<NeverCondition>(), 1000000);
  ConditionPtr clone = condition.Clone();
  Tuple t = SensorTuple(schema, 0);
  auto ctx = ContextFor(t, &rng);
  EXPECT_FALSE(clone->Evaluate(t, &ctx));
  EXPECT_EQ(clone->ToJson().GetString("type", ""), "hold");
}

TEST(ConditionTest, CloneIsDeepAndEquivalent) {
  std::vector<ConditionPtr> children;
  children.push_back(std::make_unique<RandomCondition>(0.2));
  children.push_back(std::make_unique<DailyWindowCondition>(780, 899));
  AndCondition original(std::move(children));
  ConditionPtr clone = original.Clone();
  EXPECT_EQ(clone->ToJson(), original.ToJson());
  EXPECT_EQ(clone->name(), "and");
}

TEST(ConditionTest, CloneKeepsBoundState) {
  SchemaPtr schema = SensorSchema();
  Rng rng(23);
  ValueCondition condition("temp", CompareOp::kGt, Value(15.0));
  ASSERT_TRUE(BindTo(&condition, schema).ok());
  // Workers clone the bound plan; the clone must evaluate without a
  // fresh Bind call.
  ConditionPtr clone = condition.Clone();
  Tuple hot = SensorTuple(schema, 10, 20.0);
  auto ctx = ContextFor(hot, &rng);
  EXPECT_TRUE(clone->Evaluate(hot, &ctx));
}

TEST(ConditionTest, ToJsonShapes) {
  EXPECT_EQ(RandomCondition(0.3).ToJson().GetString("type", ""), "random");
  EXPECT_DOUBLE_EQ(RandomCondition(0.3).ToJson().GetDouble("p", 0), 0.3);
  const Json vc =
      ValueCondition("BPM", CompareOp::kGt, Value(100.0)).ToJson();
  EXPECT_EQ(vc.GetString("attribute", ""), "BPM");
  EXPECT_EQ(vc.GetString("op", ""), ">");
  EXPECT_DOUBLE_EQ(vc.GetDouble("operand", 0), 100.0);
}

}  // namespace
}  // namespace icewafl
