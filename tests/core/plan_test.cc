#include "core/plan.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "core/config.h"
#include "test_helpers.h"

namespace icewafl {
namespace {

using testing_helpers::SensorSchema;
using testing_helpers::SensorTuple;

constexpr const char* kPipelineDoc = R"({
  "name": "null_temp",
  "polluters": [
    {"type": "standard", "label": "null_temp",
     "attributes": ["temp"],
     "condition": {"type": "always"},
     "error": {"type": "missing_value"}}
  ]
})";

std::shared_ptr<const TupleVector> MakeClean(const SchemaPtr& schema, int n) {
  auto clean = std::make_shared<TupleVector>();
  for (int i = 0; i < n; ++i) clean->push_back(SensorTuple(schema, i % 24));
  return clean;
}

Result<std::shared_ptr<PlanSnapshot>> MakeTestPlan(
    const SchemaPtr& schema, std::shared_ptr<const TupleVector> clean,
    const char* doc = kPipelineDoc) {
  Json config = Json::Parse(doc).ValueOrDie();
  auto pipeline = PipelineFromJson(config);
  if (!pipeline.ok()) return pipeline.status();
  return MakePlanSnapshot("custom", config, schema, std::move(clean),
                          std::move(pipeline).ValueOrDie(), /*seed=*/7,
                          /*parallelism=*/2, /*stream_start=*/0,
                          /*stream_end=*/0, /*tuples_per_sec=*/0.0);
}

TEST(PlanSnapshotTest, MakeBindsAndCarriesEverything) {
  SchemaPtr schema = SensorSchema();
  auto plan = MakeTestPlan(schema, MakeClean(schema, 10));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const PlanSnapshot& snapshot = *plan.ValueOrDie();
  // Unpublished: version and timestamp are the publisher's to assign.
  EXPECT_EQ(snapshot.version, 0u);
  EXPECT_EQ(snapshot.scenario, "custom");
  EXPECT_EQ(snapshot.seed, 7u);
  EXPECT_EQ(snapshot.parallelism, 2);
  EXPECT_EQ(snapshot.clean->size(), 10u);
  // The pipeline came back bound against the plan's schema.
  EXPECT_EQ(snapshot.pipeline.bound_schema(), schema);
  EXPECT_TRUE(snapshot.config.is_object());
}

TEST(PlanSnapshotTest, MakeRejectsNullSchemaAndNullClean) {
  SchemaPtr schema = SensorSchema();
  auto clean = MakeClean(schema, 4);
  Json config = Json::Parse(kPipelineDoc).ValueOrDie();
  auto pipeline = PipelineFromJson(config);
  ASSERT_TRUE(pipeline.ok());

  auto no_schema =
      MakePlanSnapshot("s", config, nullptr, clean,
                       pipeline.ValueOrDie().Clone(), 1, 1, 0, 0);
  EXPECT_FALSE(no_schema.ok());

  auto no_clean =
      MakePlanSnapshot("s", config, schema, nullptr,
                       pipeline.ValueOrDie().Clone(), 1, 1, 0, 0);
  EXPECT_FALSE(no_clean.ok());
}

TEST(PlanSnapshotTest, MakeSurfacesBindErrorsBeforePublication) {
  SchemaPtr schema = SensorSchema();
  // "NoSuchColumn" cannot bind against the sensor schema.
  const char* bad = R"({
    "name": "bad",
    "polluters": [
      {"type": "standard", "label": "bad",
       "attributes": ["NoSuchColumn"],
       "condition": {"type": "always"},
       "error": {"type": "missing_value"}}
    ]
  })";
  auto plan = MakeTestPlan(schema, MakeClean(schema, 4), bad);
  EXPECT_FALSE(plan.ok());
}

TEST(PlanSnapshotTest, MakeClampsParallelismAndRate) {
  SchemaPtr schema = SensorSchema();
  Json config = Json::Parse(kPipelineDoc).ValueOrDie();
  auto pipeline = PipelineFromJson(config);
  ASSERT_TRUE(pipeline.ok());
  auto plan = MakePlanSnapshot("s", config, schema, MakeClean(schema, 4),
                               std::move(pipeline).ValueOrDie(), 1,
                               /*parallelism=*/0, 0, 0,
                               /*tuples_per_sec=*/-5.0);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.ValueOrDie()->parallelism, 1);
  EXPECT_EQ(plan.ValueOrDie()->tuples_per_sec, 0.0);
}

TEST(PlanSnapshotTest, CloneIsDeepAndUnpublished) {
  SchemaPtr schema = SensorSchema();
  auto plan = MakeTestPlan(schema, MakeClean(schema, 6));
  ASSERT_TRUE(plan.ok());
  // Simulate publication, then clone for a delta update.
  plan.ValueOrDie()->version = 3;
  std::shared_ptr<PlanSnapshot> clone = ClonePlan(*plan.ValueOrDie());
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->version, 0u) << "clones start unpublished";
  EXPECT_EQ(clone->scenario, "custom");
  EXPECT_EQ(clone->clean, plan.ValueOrDie()->clean)
      << "the clean stream is shared, not copied";
  EXPECT_EQ(clone->pipeline.bound_schema(), schema);
  // Mutating the clone leaves the original untouched.
  clone->tuples_per_sec = 123.0;
  EXPECT_EQ(plan.ValueOrDie()->tuples_per_sec, 0.0);
}

}  // namespace
}  // namespace icewafl
