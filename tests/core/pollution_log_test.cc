#include "core/pollution_log.h"

#include <gtest/gtest.h>

namespace icewafl {
namespace {

PollutionLogEntry Entry(TupleId id, int substream, const std::string& polluter,
                        int hour) {
  PollutionLogEntry e;
  e.tuple_id = id;
  e.substream = substream;
  e.polluter = polluter;
  e.error_type = "missing_value";
  e.attributes = {"Distance"};
  e.tau = TimestampFromCivil({2016, 3, 1, hour, 0, 0});
  return e;
}

TEST(PollutionLogTest, RecordsAndCounts) {
  PollutionLog log;
  EXPECT_TRUE(log.empty());
  log.Record(Entry(1, 0, "a", 0));
  log.Record(Entry(2, 0, "a", 1));
  log.Record(Entry(3, 0, "b", 2));
  EXPECT_EQ(log.size(), 3u);
  auto counts = log.CountsByPolluter();
  EXPECT_EQ(counts["a"], 2u);
  EXPECT_EQ(counts["b"], 1u);
}

TEST(PollutionLogTest, DistinctTupleCountDeduplicates) {
  PollutionLog log;
  log.Record(Entry(1, 0, "a", 0));
  log.Record(Entry(1, 0, "b", 0));  // same tuple hit twice
  log.Record(Entry(1, 1, "a", 0));  // same id but another sub-stream copy
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.DistinctTupleCount(), 2u);
}

TEST(PollutionLogTest, HourHistogramBucketsByTau) {
  PollutionLog log;
  log.Record(Entry(1, 0, "a", 3));
  log.Record(Entry(2, 0, "a", 3));
  log.Record(Entry(3, 0, "a", 17));
  const auto hist = log.HourOfDayHistogram();
  ASSERT_EQ(hist.size(), 24u);
  EXPECT_EQ(hist[3], 2u);
  EXPECT_EQ(hist[17], 1u);
  EXPECT_EQ(hist[0], 0u);
}

TEST(PollutionLogTest, JsonRoundTrip) {
  PollutionLog log;
  log.Record(Entry(1, 0, "a", 0));
  log.Record(Entry(2, 1, "b", 5));
  const Json j = log.ToJson();
  auto restored = PollutionLog::FromJson(j);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored.ValueOrDie().size(), 2u);
  EXPECT_EQ(restored.ValueOrDie().entries()[0], log.entries()[0]);
  EXPECT_EQ(restored.ValueOrDie().entries()[1], log.entries()[1]);
}

TEST(PollutionLogTest, FromJsonRejectsMalformed) {
  EXPECT_FALSE(PollutionLog::FromJson(Json::Parse("{}").ValueOrDie()).ok());
  EXPECT_FALSE(
      PollutionLog::FromJson(Json::Parse(R"({"entries": 5})").ValueOrDie())
          .ok());
  EXPECT_FALSE(
      PollutionLog::FromJson(Json::Parse(R"({"entries": [5]})").ValueOrDie())
          .ok());
}

TEST(PollutionLogTest, ClearEmpties) {
  PollutionLog log;
  log.Record(Entry(1, 0, "a", 0));
  log.Clear();
  EXPECT_TRUE(log.empty());
}

}  // namespace
}  // namespace icewafl
