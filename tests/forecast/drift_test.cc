#include "forecast/drift.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace icewafl {
namespace forecast {
namespace {

TEST(PageHinkleyTest, NoDetectionOnStationaryStream) {
  PageHinkley detector(0.05, 50.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_FALSE(detector.Update(std::abs(rng.Gaussian(1.0, 0.2))));
  }
}

TEST(PageHinkleyTest, DetectsMeanShiftPromptly) {
  PageHinkley detector(0.05, 20.0);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_FALSE(detector.Update(std::abs(rng.Gaussian(1.0, 0.2))));
  }
  // The error level triples: detection within a few dozen observations.
  int detected_at = -1;
  for (int i = 0; i < 500; ++i) {
    if (detector.Update(std::abs(rng.Gaussian(3.0, 0.2)))) {
      detected_at = i;
      break;
    }
  }
  ASSERT_GE(detected_at, 0);
  EXPECT_LT(detected_at, 100);
}

TEST(PageHinkleyTest, WarmupSuppressesEarlyDetections) {
  PageHinkley detector(0.0, 0.001, /*min_observations=*/50);
  // Even a wild first observation cannot fire during warm-up.
  for (int i = 0; i < 49; ++i) {
    ASSERT_FALSE(detector.Update(i == 10 ? 1000.0 : 1.0)) << i;
  }
}

TEST(PageHinkleyTest, ResetsAfterDetectionAndCanFireAgain) {
  PageHinkley detector(0.01, 5.0, 10);
  Rng rng(3);
  auto feed_until_detect = [&](double level) {
    for (int i = 0; i < 5000; ++i) {
      if (detector.Update(std::abs(rng.Gaussian(level, 0.1)))) return true;
      // Escalate to force the statistic upward.
      level += 0.01;
    }
    return false;
  };
  EXPECT_TRUE(feed_until_detect(1.0));
  EXPECT_EQ(detector.observed(), 0u);  // reset after detection
  EXPECT_TRUE(feed_until_detect(1.0));
}

TEST(PageHinkleyTest, StatisticGrowsUnderDrift) {
  PageHinkley detector(0.0, 1e9);  // threshold unreachably high
  for (int i = 0; i < 100; ++i) detector.Update(1.0);
  const double before = detector.statistic();
  for (int i = 0; i < 100; ++i) detector.Update(5.0);
  EXPECT_GT(detector.statistic(), before);
}

}  // namespace
}  // namespace forecast
}  // namespace icewafl
