#include "forecast/holt_winters.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace icewafl {
namespace forecast {
namespace {

HoltWintersOptions DefaultOptions() {
  HoltWintersOptions options;
  options.alpha = 0.3;
  options.beta = 0.05;
  options.gamma = 0.2;
  options.season_length = 24;
  return options;
}

TEST(HoltWintersTest, LearnsConstantSeries) {
  HoltWinters model(DefaultOptions());
  for (int i = 0; i < 500; ++i) model.LearnOne(42.0);
  auto forecast = model.Forecast(24);
  ASSERT_TRUE(forecast.ok());
  for (double v : forecast.ValueOrDie()) EXPECT_NEAR(v, 42.0, 0.5);
}

TEST(HoltWintersTest, CapturesSeasonalPattern) {
  HoltWinters model(DefaultOptions());
  // Daily sinusoid with period 24.
  auto signal = [](int t) {
    return 50.0 + 10.0 * std::sin(2.0 * M_PI * (t % 24) / 24.0);
  };
  for (int t = 0; t < 24 * 60; ++t) model.LearnOne(signal(t));
  auto forecast = model.Forecast(24);
  ASSERT_TRUE(forecast.ok());
  const auto& f = forecast.ValueOrDie();
  for (int h = 0; h < 24; ++h) {
    EXPECT_NEAR(f[static_cast<size_t>(h)], signal(24 * 60 + h), 2.0) << h;
  }
}

TEST(HoltWintersTest, TracksLinearTrend) {
  // Pure ramp: use season length 1 so no seasonal sawtooth interferes.
  HoltWintersOptions options = DefaultOptions();
  options.beta = 0.2;
  options.season_length = 1;
  HoltWinters model(options);
  for (int t = 0; t < 24 * 40; ++t) model.LearnOne(0.5 * t);
  auto forecast = model.Forecast(4);
  ASSERT_TRUE(forecast.ok());
  const int n = 24 * 40;
  for (int h = 1; h <= 4; ++h) {
    EXPECT_NEAR(forecast.ValueOrDie()[static_cast<size_t>(h - 1)],
                0.5 * (n - 1 + h), 3.0)
        << h;
  }
}

TEST(HoltWintersTest, WarmupForecastsRunningMean) {
  HoltWinters model(DefaultOptions());
  model.LearnOne(10.0);
  model.LearnOne(20.0);
  auto forecast = model.Forecast(3);  // still warming up (needs 24)
  ASSERT_TRUE(forecast.ok());
  for (double v : forecast.ValueOrDie()) EXPECT_DOUBLE_EQ(v, 15.0);
}

TEST(HoltWintersTest, EmptyModelForecastsZero) {
  HoltWinters model(DefaultOptions());
  auto forecast = model.Forecast(2);
  ASSERT_TRUE(forecast.ok());
  for (double v : forecast.ValueOrDie()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(HoltWintersTest, ZeroHorizonRejected) {
  HoltWinters model(DefaultOptions());
  EXPECT_EQ(model.Forecast(0).status().code(), StatusCode::kInvalidArgument);
}

TEST(HoltWintersTest, ResetRestartsWarmup) {
  HoltWinters model(DefaultOptions());
  for (int i = 0; i < 100; ++i) model.LearnOne(50.0);
  EXPECT_EQ(model.observed_count(), 100u);
  model.Reset();
  EXPECT_EQ(model.observed_count(), 0u);
  auto forecast = model.Forecast(1);
  ASSERT_TRUE(forecast.ok());
  EXPECT_DOUBLE_EQ(forecast.ValueOrDie()[0], 0.0);
}

TEST(HoltWintersTest, SeasonAlignmentAfterPartialCycle) {
  HoltWinters model(DefaultOptions());
  auto signal = [](int t) { return (t % 24 < 12) ? 100.0 : 0.0; };
  // Stop mid-cycle: next forecast step must continue from phase 30 % 24.
  const int n = 24 * 50 + 6;
  for (int t = 0; t < n; ++t) model.LearnOne(signal(t));
  auto forecast = model.Forecast(2);
  ASSERT_TRUE(forecast.ok());
  EXPECT_NEAR(forecast.ValueOrDie()[0], signal(n), 10.0);
  EXPECT_NEAR(forecast.ValueOrDie()[1], signal(n + 1), 10.0);
}

TEST(HoltWintersTest, CloneFreshSharesOptionsOnly) {
  HoltWintersOptions options = DefaultOptions();
  options.season_length = 7;
  HoltWinters model(options);
  for (int i = 0; i < 100; ++i) model.LearnOne(5.0);
  ForecasterPtr clone = model.CloneFresh();
  EXPECT_EQ(clone->observed_count(), 0u);
  auto* hw = dynamic_cast<HoltWinters*>(clone.get());
  ASSERT_NE(hw, nullptr);
  EXPECT_EQ(hw->options().season_length, 7);
}

TEST(HoltWintersTest, SeasonLengthOneDegradesToDoubleExponential) {
  HoltWintersOptions options = DefaultOptions();
  options.season_length = 1;
  HoltWinters model(options);
  for (int i = 0; i < 500; ++i) model.LearnOne(7.0);
  auto forecast = model.Forecast(3);
  ASSERT_TRUE(forecast.ok());
  for (double v : forecast.ValueOrDie()) EXPECT_NEAR(v, 7.0, 0.5);
}

}  // namespace
}  // namespace forecast
}  // namespace icewafl
