#include "forecast/seasonal_naive.h"

#include <gtest/gtest.h>

#include <cmath>

namespace icewafl {
namespace forecast {
namespace {

TEST(SeasonalNaiveTest, RepeatsLastSeason) {
  SeasonalNaive model(4);
  for (double v : {1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0}) {
    model.LearnOne(v);
  }
  auto forecast = model.Forecast(6);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast.ValueOrDie(),
            (std::vector<double>{10, 20, 30, 40, 10, 20}));
}

TEST(SeasonalNaiveTest, PlainNaiveBeforeFullSeason) {
  SeasonalNaive model(24);
  model.LearnOne(7.0);
  model.LearnOne(9.0);
  auto forecast = model.Forecast(3);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast.ValueOrDie(), (std::vector<double>{9, 9, 9}));
}

TEST(SeasonalNaiveTest, EmptyForecastsZero) {
  SeasonalNaive model(4);
  auto forecast = model.Forecast(2);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast.ValueOrDie(), (std::vector<double>{0, 0}));
  EXPECT_FALSE(model.Forecast(0).ok());
}

TEST(SeasonalNaiveTest, PerfectOnExactlyPeriodicSeries) {
  SeasonalNaive model(24);
  auto signal = [](int t) {
    return 50.0 + 10.0 * std::sin(2.0 * M_PI * (t % 24) / 24.0);
  };
  const int n = 24 * 10;
  for (int t = 0; t < n; ++t) model.LearnOne(signal(t));
  auto forecast = model.Forecast(24);
  ASSERT_TRUE(forecast.ok());
  for (int h = 0; h < 24; ++h) {
    EXPECT_NEAR(forecast.ValueOrDie()[static_cast<size_t>(h)],
                signal(n + h), 1e-9)
        << h;
  }
}

TEST(SeasonalNaiveTest, ResetAndCloneFresh) {
  SeasonalNaive model(4);
  for (int i = 0; i < 10; ++i) model.LearnOne(5.0);
  EXPECT_EQ(model.observed_count(), 10u);
  ForecasterPtr clone = model.CloneFresh();
  EXPECT_EQ(clone->observed_count(), 0u);
  model.Reset();
  EXPECT_EQ(model.observed_count(), 0u);
}

TEST(SeasonalNaiveTest, DegenerateSeasonLengthClamped) {
  SeasonalNaive model(0);  // clamped to 1 -> plain naive
  model.LearnOne(1.0);
  model.LearnOne(2.0);
  auto forecast = model.Forecast(3);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast.ValueOrDie(), (std::vector<double>{2, 2, 2}));
}

}  // namespace
}  // namespace forecast
}  // namespace icewafl
