#include "forecast/arima.h"

#include <gtest/gtest.h>

#include <cmath>

#include "forecast/metrics.h"
#include "util/rng.h"

namespace icewafl {
namespace forecast {
namespace {

/// Synthetic AR(1): y_t = c + phi * y_{t-1} + eps.
std::vector<double> Ar1Series(size_t n, double c, double phi, double noise,
                              uint64_t seed) {
  Rng rng(seed);
  std::vector<double> y(n);
  y[0] = c / (1.0 - phi);
  for (size_t i = 1; i < n; ++i) {
    y[i] = c + phi * y[i - 1] + rng.Gaussian(0.0, noise);
  }
  return y;
}

TEST(ArimaTest, LearnsConstantSeries) {
  ArimaOptions options;
  options.p = 1;
  options.learning_rate = 0.1;
  Arima model(options);
  for (int i = 0; i < 2000; ++i) model.LearnOne(10.0);
  auto forecast = model.Forecast(5);
  ASSERT_TRUE(forecast.ok());
  for (double v : forecast.ValueOrDie()) EXPECT_NEAR(v, 10.0, 0.5);
}

TEST(ArimaTest, LearnsAr1Structure) {
  ArimaOptions options;
  options.p = 2;
  options.q = 1;
  options.learning_rate = 0.05;
  Arima model(options);
  const auto y = Ar1Series(8000, 5.0, 0.8, 1.0, 42);
  for (double v : y) model.LearnOne(v);
  // One-step forecast from the end should be close to the AR(1)
  // conditional mean c + phi * y_n.
  auto forecast = model.Forecast(1);
  ASSERT_TRUE(forecast.ok());
  const double expected = 5.0 + 0.8 * y.back();
  EXPECT_NEAR(forecast.ValueOrDie()[0], expected, 3.0);
}

TEST(ArimaTest, DifferencingTracksLinearTrend) {
  ArimaOptions options;
  options.p = 1;
  options.d = 1;
  options.learning_rate = 0.05;
  Arima model(options);
  // y_t = 3t: after one difference the series is constant 3.
  for (int t = 0; t < 3000; ++t) model.LearnOne(3.0 * t);
  auto forecast = model.Forecast(4);
  ASSERT_TRUE(forecast.ok());
  const auto& f = forecast.ValueOrDie();
  // Next values continue the trend: 3*3000, 3*3001, ...
  for (size_t h = 0; h < f.size(); ++h) {
    EXPECT_NEAR(f[h], 3.0 * (3000 + static_cast<double>(h)), 50.0) << h;
  }
}

TEST(ArimaTest, SecondOrderDifferencingHandlesQuadratic) {
  ArimaOptions options;
  options.p = 1;
  options.d = 2;
  options.learning_rate = 0.05;
  Arima model(options);
  for (int t = 0; t < 4000; ++t) {
    model.LearnOne(0.01 * t * t);
  }
  auto forecast = model.Forecast(1);
  ASSERT_TRUE(forecast.ok());
  const double expected = 0.01 * 4000.0 * 4000.0;
  EXPECT_NEAR(forecast.ValueOrDie()[0], expected, expected * 0.02);
}

TEST(ArimaTest, MultiStepForecastRecursion) {
  ArimaOptions options;
  options.p = 1;
  options.learning_rate = 0.1;
  Arima model(options);
  for (int i = 0; i < 3000; ++i) model.LearnOne(20.0);
  auto forecast = model.Forecast(12);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast.ValueOrDie().size(), 12u);
  for (double v : forecast.ValueOrDie()) EXPECT_NEAR(v, 20.0, 1.5);
}

TEST(ArimaTest, ZeroHorizonRejected) {
  Arima model(ArimaOptions{});
  EXPECT_EQ(model.Forecast(0).status().code(), StatusCode::kInvalidArgument);
}

TEST(ArimaTest, ResetClearsState) {
  ArimaOptions options;
  options.p = 1;
  options.learning_rate = 0.1;
  Arima model(options);
  for (int i = 0; i < 500; ++i) model.LearnOne(100.0);
  EXPECT_EQ(model.observed_count(), 500u);
  model.Reset();
  EXPECT_EQ(model.observed_count(), 0u);
  auto forecast = model.Forecast(1);
  ASSERT_TRUE(forecast.ok());
  EXPECT_DOUBLE_EQ(forecast.ValueOrDie()[0], 0.0);  // untrained
}

TEST(ArimaTest, CloneFreshIsUntrained) {
  ArimaOptions options;
  options.p = 1;
  options.learning_rate = 0.1;
  Arima model(options);
  for (int i = 0; i < 500; ++i) model.LearnOne(100.0);
  ForecasterPtr clone = model.CloneFresh();
  EXPECT_EQ(clone->observed_count(), 0u);
  EXPECT_EQ(clone->name(), "arima");
}

TEST(ArimaTest, AdaptiveStatsDecayStillLearns) {
  ArimaOptions options;
  options.p = 2;
  options.learning_rate = 0.1;
  options.stats_decay = 0.99;
  Arima model(options);
  const auto y = Ar1Series(8000, 5.0, 0.8, 1.0, 43);
  for (double v : y) model.LearnOne(v);
  auto forecast = model.Forecast(1);
  ASSERT_TRUE(forecast.ok());
  EXPECT_NEAR(forecast.ValueOrDie()[0], 5.0 + 0.8 * y.back(), 4.0);
}

TEST(ArimaTest, ForecastClampBoundsRunaway) {
  // Feed a massive outlier right before forecasting: the recursive
  // 12-step forecast must stay within a sane multiple of the seen range.
  ArimaOptions options;
  options.p = 3;
  options.q = 1;
  options.learning_rate = 0.3;
  Arima model(options);
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) model.LearnOne(rng.Gaussian(50.0, 5.0));
  model.LearnOne(50000.0);  // shock
  auto forecast = model.Forecast(12);
  ASSERT_TRUE(forecast.ok());
  for (double v : forecast.ValueOrDie()) {
    ASSERT_LT(std::abs(v), 1e5);
  }
}

TEST(ArimaxTest, UsesExogenousSignal) {
  // Target is fully determined by the feature: y = 3 * x. ARIMAX should
  // exploit it; forecasts must follow the future x.
  ArimaOptions options;
  options.p = 1;
  options.learning_rate = 0.2;
  Arimax model(options, 1);
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Uniform(-1.0, 1.0);
    model.LearnOne(3.0 * x, {x});
  }
  auto forecast = model.Forecast(2, {{1.0}, {-1.0}});
  ASSERT_TRUE(forecast.ok());
  EXPECT_NEAR(forecast.ValueOrDie()[0], 3.0, 0.7);
  EXPECT_NEAR(forecast.ValueOrDie()[1], -3.0, 0.7);
}

TEST(ArimaxTest, MissingFutureFeaturesRejected) {
  Arimax model(ArimaOptions{}, 2);
  model.LearnOne(1.0, {0.5, 0.5});
  EXPECT_EQ(model.Forecast(3, {{0.5, 0.5}}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ArimaxTest, OutperformsArimaWhenFeatureDrivesTarget) {
  Rng rng(11);
  std::vector<double> y;
  std::vector<std::vector<double>> x;
  double carry = 0.0;
  for (int i = 0; i < 8000; ++i) {
    const double driver = std::sin(i / 10.0);
    carry = 0.5 * carry + rng.Gaussian(0.0, 0.1);
    y.push_back(5.0 * driver + carry);
    x.push_back({driver});
  }
  ArimaOptions options;
  options.p = 2;
  options.learning_rate = 0.1;
  Arima arima(options);
  Arimax arimax(options, 1);
  for (size_t i = 0; i + 12 < y.size(); ++i) {
    arima.LearnOne(y[i]);
    arimax.LearnOne(y[i], x[i]);
  }
  const size_t start = y.size() - 12;
  std::vector<std::vector<double>> future_x(x.begin() + start, x.end());
  const std::vector<double> actual(y.begin() + start, y.end());
  auto f_arima = arima.Forecast(12);
  auto f_arimax = arimax.Forecast(12, future_x);
  ASSERT_TRUE(f_arima.ok());
  ASSERT_TRUE(f_arimax.ok());
  const double mae_arima =
      MeanAbsoluteError(actual, f_arima.ValueOrDie()).ValueOrDie();
  const double mae_arimax =
      MeanAbsoluteError(actual, f_arimax.ValueOrDie()).ValueOrDie();
  EXPECT_LT(mae_arimax, mae_arima);
}

}  // namespace
}  // namespace forecast
}  // namespace icewafl
