#include "forecast/cv.h"

#include <gtest/gtest.h>

#include <cmath>

#include "forecast/arima.h"
#include "forecast/holt_winters.h"

namespace icewafl {
namespace forecast {
namespace {

TEST(TimeSeriesSplitTest, SklearnSemantics) {
  // n = 60, 5 splits -> 6 blocks of 10.
  auto folds = TimeSeriesSplit(60, 5);
  ASSERT_TRUE(folds.ok());
  const auto& f = folds.ValueOrDie();
  ASSERT_EQ(f.size(), 5u);
  EXPECT_EQ(f[0].train_end, 10u);
  EXPECT_EQ(f[0].test_begin, 10u);
  EXPECT_EQ(f[0].test_end, 20u);
  EXPECT_EQ(f[4].train_end, 50u);
  EXPECT_EQ(f[4].test_end, 60u);
}

TEST(TimeSeriesSplitTest, RemainderGoesToFirstTrainBlock) {
  // n = 64, 5 splits: test blocks of 10, first train block 14.
  auto folds = TimeSeriesSplit(64, 5);
  ASSERT_TRUE(folds.ok());
  EXPECT_EQ(folds.ValueOrDie()[0].train_end, 14u);
  EXPECT_EQ(folds.ValueOrDie()[4].test_end, 64u);
}

TEST(TimeSeriesSplitTest, TrainAlwaysPrecedesTest) {
  auto folds = TimeSeriesSplit(100, 4);
  ASSERT_TRUE(folds.ok());
  for (const Fold& fold : folds.ValueOrDie()) {
    EXPECT_EQ(fold.train_end, fold.test_begin);
    EXPECT_LT(fold.test_begin, fold.test_end);
  }
}

TEST(TimeSeriesSplitTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(TimeSeriesSplit(10, 0).ok());
  EXPECT_FALSE(TimeSeriesSplit(3, 5).ok());
}

TEST(GridSearchTest, FindsBetterLearningRate) {
  // Series with strong AR structure; lr=0 cannot learn anything, a
  // positive lr can. Grid search must not pick 0.
  std::vector<double> y;
  for (int i = 0; i < 600; ++i) {
    y.push_back(50.0 + 20.0 * std::sin(i / 5.0));
  }
  GridSearchOptions options;
  options.n_splits = 3;
  options.horizon = 6;
  auto result = GridSearch(
      {{"learning_rate", {0.0, 0.1}}, {"p", {2}}},
      [](const ParamMap& params) -> ForecasterPtr {
        ArimaOptions ao;
        ao.p = static_cast<int>(params.at("p"));
        ao.learning_rate = params.at("learning_rate");
        return std::make_unique<Arima>(ao);
      },
      y, {}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result.ValueOrDie().best_params.at("learning_rate"), 0.1);
  EXPECT_EQ(result.ValueOrDie().evaluated.size(), 2u);
  EXPECT_LT(result.ValueOrDie().best_score,
            result.ValueOrDie().evaluated[0].second +
                result.ValueOrDie().evaluated[1].second);
}

TEST(GridSearchTest, CartesianProductEvaluated) {
  std::vector<double> y(200, 5.0);
  auto result = GridSearch(
      {{"alpha", {0.1, 0.3, 0.5}}, {"beta", {0.0, 0.1}}},
      [](const ParamMap& params) -> ForecasterPtr {
        HoltWintersOptions options;
        options.alpha = params.at("alpha");
        options.beta = params.at("beta");
        options.season_length = 4;
        return std::make_unique<HoltWinters>(options);
      },
      y, {}, {2, 4});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().evaluated.size(), 6u);
}

TEST(GridSearchTest, FeatureLengthMismatchRejected) {
  std::vector<double> y(100, 1.0);
  std::vector<std::vector<double>> x(50, {1.0});
  auto result = GridSearch(
      {{"p", {1}}},
      [](const ParamMap&) -> ForecasterPtr {
        return std::make_unique<Arima>(ArimaOptions{});
      },
      y, x, {2, 4});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GridSearchTest, NullFactoryRejected) {
  std::vector<double> y(100, 1.0);
  auto result = GridSearch(
      {{"p", {1}}},
      [](const ParamMap&) -> ForecasterPtr { return nullptr; }, y, {},
      {2, 4});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GridSearchTest, HorizonLargerThanTestBlockRejected) {
  std::vector<double> y(30, 1.0);
  GridSearchOptions options;
  options.n_splits = 5;   // test blocks of 5
  options.horizon = 12;   // cannot fit
  auto result = GridSearch(
      {{"p", {1}}},
      [](const ParamMap&) -> ForecasterPtr {
        return std::make_unique<Arima>(ArimaOptions{});
      },
      y, {}, options);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace forecast
}  // namespace icewafl
