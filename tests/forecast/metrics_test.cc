#include "forecast/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace icewafl {
namespace forecast {
namespace {

TEST(MetricsTest, MaeBasic) {
  EXPECT_DOUBLE_EQ(
      MeanAbsoluteError({1, 2, 3}, {1, 2, 3}).ValueOrDie(), 0.0);
  EXPECT_DOUBLE_EQ(
      MeanAbsoluteError({1, 2, 3}, {2, 1, 5}).ValueOrDie(), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({-5}, {5}).ValueOrDie(), 10.0);
}

TEST(MetricsTest, RmseBasic) {
  EXPECT_DOUBLE_EQ(
      RootMeanSquaredError({0, 0}, {3, 4}).ValueOrDie(),
      std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(RootMeanSquaredError({7}, {7}).ValueOrDie(), 0.0);
}

TEST(MetricsTest, RmseDominatesMae) {
  const std::vector<double> a = {0, 0, 0, 0};
  const std::vector<double> p = {0, 0, 0, 8};
  EXPECT_GT(RootMeanSquaredError(a, p).ValueOrDie(),
            MeanAbsoluteError(a, p).ValueOrDie());
}

TEST(MetricsTest, SmapeBasic) {
  // actual 100, predicted 50: |50| / 75 = 2/3 -> 66.67%.
  EXPECT_NEAR(SymmetricMape({100}, {50}).ValueOrDie(), 200.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(SymmetricMape({5}, {5}).ValueOrDie(), 0.0);
  EXPECT_DOUBLE_EQ(SymmetricMape({0}, {0}).ValueOrDie(), 0.0);
}

TEST(MetricsTest, SizeMismatchRejected) {
  EXPECT_FALSE(MeanAbsoluteError({1, 2}, {1}).ok());
  EXPECT_FALSE(RootMeanSquaredError({}, {}).ok());
  EXPECT_FALSE(SymmetricMape({1}, {}).ok());
}

}  // namespace
}  // namespace forecast
}  // namespace icewafl
