#include "forecast/prequential.h"

#include <gtest/gtest.h>

#include <cmath>

#include "forecast/arima.h"
#include "forecast/holt_winters.h"

namespace icewafl {
namespace forecast {
namespace {

struct Series {
  std::vector<double> y;
  std::vector<Timestamp> ts;
};

Series HourlySine(size_t n) {
  Series s;
  for (size_t i = 0; i < n; ++i) {
    s.y.push_back(50.0 +
                  10.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / 24.0));
    s.ts.push_back(static_cast<Timestamp>(i) * 3600);
  }
  return s;
}

TEST(PrequentialTest, WindowCountAndLabels) {
  const Series s = HourlySine(504 * 3 + 12);
  HoltWintersOptions options;
  options.season_length = 24;
  HoltWinters model(options);
  auto points = RunPrequential(&model, s.y, s.y, {}, s.ts, {504, 12});
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  // Windows at 0, 504, 1008 — each needs 504 train + 12 eval.
  ASSERT_EQ(points.ValueOrDie().size(), 3u);
  EXPECT_EQ(points.ValueOrDie()[0].eval_start, 504 * 3600);
  EXPECT_EQ(points.ValueOrDie()[1].eval_start, 1008 * 3600);
}

TEST(PrequentialTest, SeasonalModelHasLowErrorOnCleanSine) {
  const Series s = HourlySine(504 * 4);
  HoltWintersOptions options;
  options.season_length = 24;
  options.gamma = 0.3;
  HoltWinters model(options);
  auto points = RunPrequential(&model, s.y, s.y, {}, s.ts, {504, 12});
  ASSERT_TRUE(points.ok());
  // After the first window the model has seen many full days.
  EXPECT_LT(points.ValueOrDie().back().mae, 2.0);
}

TEST(PrequentialTest, ScoringAgainstSeparateTargets) {
  // Observe a corrupted stream but score against the clean one — the
  // robustness measurement mode used for Figures 6 and 7.
  Series s = HourlySine(504 * 2 + 12);
  std::vector<double> corrupted = s.y;
  for (size_t i = 0; i < corrupted.size(); i += 7) corrupted[i] += 25.0;
  HoltWintersOptions options;
  options.season_length = 24;
  HoltWinters model(options);
  auto points =
      RunPrequential(&model, corrupted, s.y, {}, s.ts, {504, 12});
  ASSERT_TRUE(points.ok());
  EXPECT_FALSE(points.ValueOrDie().empty());
  // Error vs clean truth is nonzero because the model learned corruption.
  EXPECT_GT(points.ValueOrDie().back().mae, 0.5);
}

TEST(PrequentialTest, ExogenousFeaturesFlowToForecasts) {
  const size_t n = 504 * 2 + 12;
  Series s;
  std::vector<std::vector<double>> x;
  for (size_t i = 0; i < n; ++i) {
    const double driver = std::sin(static_cast<double>(i) / 6.0);
    s.y.push_back(4.0 * driver);
    s.ts.push_back(static_cast<Timestamp>(i) * 3600);
    x.push_back({driver});
  }
  ArimaOptions options;
  options.p = 1;
  options.learning_rate = 0.2;
  Arimax model(options, 1);
  auto points = RunPrequential(&model, s.y, s.y, x, s.ts, {504, 12});
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  EXPECT_LT(points.ValueOrDie().back().mae, 1.5);
}

TEST(PrequentialTest, InputValidation) {
  const Series s = HourlySine(600);
  HoltWinters model(HoltWintersOptions{});
  std::vector<double> short_targets(10, 0.0);
  EXPECT_FALSE(
      RunPrequential(&model, s.y, short_targets, {}, s.ts, {504, 12}).ok());
  std::vector<Timestamp> short_ts(10, 0);
  EXPECT_FALSE(
      RunPrequential(&model, s.y, s.y, {}, short_ts, {504, 12}).ok());
  EXPECT_FALSE(RunPrequential(&model, s.y, s.y, {}, s.ts, {0, 12}).ok());
  EXPECT_FALSE(RunPrequential(&model, s.y, s.y, {}, s.ts, {504, 0}).ok());
}

TEST(PrequentialTest, TooShortSeriesYieldsNoPoints) {
  const Series s = HourlySine(100);
  HoltWinters model(HoltWintersOptions{});
  auto points = RunPrequential(&model, s.y, s.y, {}, s.ts, {504, 12});
  ASSERT_TRUE(points.ok());
  EXPECT_TRUE(points.ValueOrDie().empty());
}

}  // namespace
}  // namespace forecast
}  // namespace icewafl
