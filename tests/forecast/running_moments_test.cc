#include "forecast/running_moments.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace icewafl {
namespace forecast {
namespace {

TEST(RunningMomentsTest, CumulativeMatchesBatchMoments) {
  RunningMoments stats;  // decay 1.0
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) stats.Update(x);
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.Variance(), 4.0, 1e-12);  // population variance
  EXPECT_NEAR(stats.Stddev(), 2.0, 1e-12);
}

TEST(RunningMomentsTest, FewSamplesHaveUnitStddev) {
  RunningMoments stats;
  EXPECT_DOUBLE_EQ(stats.Stddev(), 1.0);
  stats.Update(42.0);
  EXPECT_DOUBLE_EQ(stats.Stddev(), 1.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
}

TEST(RunningMomentsTest, ConstantStreamHitsStddevFloor) {
  RunningMoments stats;
  for (int i = 0; i < 100; ++i) stats.Update(7.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 7.0);
  EXPECT_DOUBLE_EQ(stats.Stddev(0.5), 0.5);
}

TEST(RunningMomentsTest, ExponentialDecayTracksRegimeChange) {
  RunningMoments cumulative(1.0);
  RunningMoments adaptive(0.97);
  Rng rng(1);
  // First regime: N(0, 1); second regime: N(100, 10).
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.Gaussian(0.0, 1.0);
    cumulative.Update(x);
    adaptive.Update(x);
  }
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.Gaussian(100.0, 10.0);
    cumulative.Update(x);
    adaptive.Update(x);
  }
  // The adaptive estimate converges to the new regime...
  EXPECT_NEAR(adaptive.mean(), 100.0, 3.0);
  EXPECT_NEAR(adaptive.Stddev(), 10.0, 3.0);
  // ...while the cumulative estimate stays anchored between regimes.
  EXPECT_NEAR(cumulative.mean(), 50.0, 2.0);
  EXPECT_GT(cumulative.Stddev(), 30.0);
}

TEST(RunningMomentsTest, DecayedVarianceApproximatesStationaryVariance) {
  RunningMoments stats(0.99);
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) stats.Update(rng.Gaussian(5.0, 3.0));
  EXPECT_NEAR(stats.mean(), 5.0, 1.0);
  EXPECT_NEAR(stats.Stddev(), 3.0, 1.0);
}

TEST(RunningMomentsTest, ResetClears) {
  RunningMoments stats(0.9);
  stats.Update(1.0);
  stats.Update(2.0);
  stats.Reset();
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Stddev(), 1.0);
}

}  // namespace
}  // namespace forecast
}  // namespace icewafl
