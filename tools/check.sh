#!/usr/bin/env bash
# Hygiene gates beyond the plain test suite.
#
#   tools/check.sh            # asan + tsan (the sanitizer gate)
#   tools/check.sh asan       # Address+UndefinedBehavior only
#   tools/check.sh tsan       # Thread sanitizer only
#   tools/check.sh tidy       # clang-tidy over src/, tools/, and tests/
#   tools/check.sh tsafety    # Clang -Wthread-safety over the full tree
#                             # (compile-time lock checking against the
#                             # annotations in src/util/sync.h), plus a
#                             # configure-time self-test proving the
#                             # analysis rejects a seeded GUARDED_BY
#                             # violation; skips when clang is absent
#   tools/check.sh lint       # icewafl_cli lint over configs/*.json
#   tools/check.sh obs        # end-to-end observability smoke: run a
#                             # scenario with --metrics-out/--trace-out
#                             # and validate both exports parse
#   tools/check.sh bench      # hot-path hygiene: grep-gate the per-tuple
#                             # pollute/validate sources against
#                             # Schema::IndexOf, then build Release and
#                             # smoke-run bench_micro_polluters (tiny
#                             # iteration budget) so its built-in
#                             # assertions break the build on regression
#   tools/check.sh net        # pollution-as-a-service smoke: serve a
#                             # scenario on an ephemeral loopback port,
#                             # tail it, and require the received CSV to
#                             # be byte-identical to the offline run;
#                             # then a two-named-session server tailed
#                             # with --session, each stream compared to
#                             # its per-session offline run, plus a
#                             # bench_net_server fan-out smoke emitting
#                             # BENCH_net.json
#   tools/check.sh admin      # live control-plane smoke: serve with
#                             # --admin-port 0, drive the admin channel
#                             # with icewafl_cli admin (list/get/swap/
#                             # set_rate/metrics), byte-compare a
#                             # post-swap tail to the offline run of the
#                             # swapped-in scenario, swap mid-stream
#                             # under an active tail, and require
#                             # lint-rejected swaps to exit 1 with
#                             # Diagnostics on stderr
#
# The sanitizer presets compile with -Werror, so this script is also the
# warning gate. (-Wmaybe-uninitialized is excluded there: GCC 12 emits
# false positives inside libstdc++'s <regex> and variant<string>
# machinery when sanitizers are enabled — see GCC PR105562.) The tsan pass is what keeps the pipelined runtime
# (stream/channel.h, stream/runtime.cc, the parallel pollution process)
# data-race free. The tidy and tsafety modes degrade to a skip (exit 0
# with a notice) when the clang tooling is not installed, so they can
# sit in the same CI matrix as the sanitizers without making clang a
# hard dependency. The tsafety preset promotes only the thread-safety
# diagnostic groups to errors (-Werror=thread-safety) rather than a
# blanket -Werror: the gate is about lock discipline, not about chasing
# clang/gcc differences in -Wall warnings.

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

run_preset() {
  local preset="$1"
  echo "=== ${preset}: configure ==="
  cmake --preset "${preset}"
  echo "=== ${preset}: build ==="
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "=== ${preset}: test ==="
  ctest --preset "${preset}" -j "${jobs}"
  echo "=== ${preset}: OK ==="
}

run_tidy() {
  local tidy=""
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      tidy="${candidate}"
      break
    fi
  done
  if [ -z "${tidy}" ]; then
    echo "=== tidy: SKIPPED (clang-tidy not installed) ==="
    return 0
  fi
  echo "=== tidy: configure (compile_commands.json) ==="
  cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  echo "=== tidy: ${tidy} over src/, tools/, and tests/ ==="
  # Checks come from the top-level .clang-tidy; -quiet keeps the output
  # to actual findings.
  local files
  files=$(find src tools tests -name '*.cc' -o -name '*.h' | sort)
  local status=0
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -clang-tidy-binary "${tidy}" -p build -quiet ${files} ||
      status=$?
  else
    # shellcheck disable=SC2086  # intentional word splitting of the list
    "${tidy}" -p build --quiet ${files} || status=$?
  fi
  if [ "${status}" -ne 0 ]; then
    echo "=== tidy: FAILED ==="
    return "${status}"
  fi
  echo "=== tidy: OK ==="
}

run_tsafety() {
  local cxx=""
  for candidate in clang++ clang++-19 clang++-18 clang++-17 clang++-16; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      cxx="${candidate}"
      break
    fi
  done
  if [ -z "${cxx}" ]; then
    echo "=== tsafety: SKIPPED (clang not installed) ==="
    return 0
  fi
  echo "=== tsafety: configure (${cxx}; negative self-test runs here) ==="
  # The configure step itself is a gate: ICEWAFL_TSAFETY_NEGATIVE_CHECK
  # try_compiles a correctly locked control (must pass) and a seeded
  # GUARDED_BY violation (must fail) before anything else builds.
  cmake --preset tsafety -DCMAKE_CXX_COMPILER="${cxx}"
  echo "=== tsafety: build full tree (-Werror=thread-safety) ==="
  cmake --build --preset tsafety -j "${jobs}"
  echo "=== tsafety: OK ==="
}

run_lint() {
  echo "=== lint: build icewafl_cli ==="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "${jobs}" --target icewafl_cli
  local cli=build/tools/icewafl_cli
  echo "=== lint: configs/*.json ==="
  local status=0
  for config in configs/random_temporal.json configs/software_update.json \
                configs/network_delay.json; do
    echo "--- ${config}"
    "${cli}" lint "${config}" --schema configs/wearable_schema.json ||
      status=$?
  done
  echo "--- configs/software_update.json + wearable_suite.json"
  "${cli}" lint configs/software_update.json \
    --schema configs/wearable_schema.json \
    --suite configs/wearable_suite.json || status=$?
  echo "--- configs/software_update_clean.json (IW70x cleaner surface)"
  "${cli}" lint configs/software_update_clean.json \
    --schema configs/wearable_schema.json || status=$?
  if [ "${status}" -ne 0 ]; then
    echo "=== lint: FAILED ==="
    return "${status}"
  fi
  echo "=== lint: OK ==="
}

run_obs() {
  echo "=== obs: build icewafl_cli ==="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "${jobs}" --target icewafl_cli
  local cli=build/tools/icewafl_cli
  local outdir
  outdir=$(mktemp -d)
  trap 'rm -rf "${outdir}"' RETURN
  echo "=== obs: run software_update with exports ==="
  "${cli}" run --scenario software_update --parallelism 2 \
    --metrics-out "${outdir}/metrics.prom" --trace-out "${outdir}/trace.json"
  echo "=== obs: validate Prometheus exposition ==="
  # Every non-comment line must be `name{labels} value` or `name value`,
  # and the series instrumented by the runtime must be present.
  if grep -vE '^(#|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$)' \
      "${outdir}/metrics.prom" | grep -q .; then
    echo "obs: malformed exposition line(s):"
    grep -vE '^(#|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$)' \
      "${outdir}/metrics.prom"
    return 1
  fi
  for metric in icewafl_stage_tuples_in_total icewafl_polluter_applied_total \
                icewafl_dq_expectations_total icewafl_runtime_wall_seconds; do
    if ! grep -q "^${metric}" "${outdir}/metrics.prom"; then
      echo "obs: missing metric family ${metric}"
      return 1
    fi
  done
  echo "=== obs: validate Chrome trace JSON ==="
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${outdir}/trace.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "no trace events"
for e in events:
    assert e["ph"] in ("X", "i"), e
    assert "ts" in e and "tid" in e and "name" in e, e
print(f"obs: {len(events)} trace events OK")
EOF
  else
    grep -q '"traceEvents"' "${outdir}/trace.json"
  fi
  echo "=== obs: determinism (instrumented == uninstrumented) ==="
  "${cli}" run --scenario software_update --output "${outdir}/plain.csv" \
    >/dev/null
  "${cli}" run --scenario software_update --output "${outdir}/obs.csv" \
    --metrics-out "${outdir}/m2.prom" --trace-out "${outdir}/t2.json" \
    >/dev/null
  cmp "${outdir}/plain.csv" "${outdir}/obs.csv"
  echo "=== obs: OK ==="
}

run_bench() {
  echo "=== bench: hot-path grep gate (no Schema::IndexOf) ==="
  # Two-phase bind/run lifecycle (DESIGN.md section 8): attribute names
  # resolve to column indices once at Bind time, so the per-tuple
  # pollute/validate sources must never call Schema::IndexOf.
  # keyed_polluter_operator.cc is deliberately absent from the list: it
  # re-resolves the key column only when the tuple schema changes, never
  # per tuple. stream/bind.h hosts the one sanctioned call site.
  local hot_files=(
    src/core/condition.h src/core/condition.cc
    src/core/error_function.h src/core/error_function.cc
    src/core/errors_numeric.h src/core/errors_numeric.cc
    src/core/errors_value.h src/core/errors_value.cc
    src/core/errors_temporal.h src/core/errors_temporal.cc
    src/core/derived_error.h src/core/derived_error.cc
    src/core/polluter.h src/core/polluter.cc
    src/core/composite_polluter.h src/core/composite_polluter.cc
    src/core/pipeline.h src/core/pipeline.cc
    src/dq/expectation.h src/dq/expectation.cc
    src/dq/suite.h src/dq/suite.cc
    src/forecast/encodings.h
  )
  if grep -n "IndexOf" "${hot_files[@]}"; then
    echo "bench: Schema::IndexOf crept back onto a pollute/validate hot" \
         "path — resolve names in Bind() instead (DESIGN.md section 8)"
    return 1
  fi
  echo "=== bench: Release build ==="
  cmake -S . -B build-rel -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-rel -j "${jobs}" --target bench_micro_polluters \
    --target bench_net_wire --target bench_runtime_pipeline \
    --target bench_clean
  echo "=== bench: smoke run ==="
  # The tiny time budget keeps this a compile-and-assert smoke, not a
  # measurement; the binaries' built-in ratio assertions (keyed
  # overhead, columnar speedup floor, batch-frame encode floor) still
  # run at full strength and emit BENCH_micro.json / BENCH_wire.json.
  ./build-rel/bench/bench_micro_polluters --benchmark_min_time=0.01 \
    --out BENCH_micro.json
  ./build-rel/bench/bench_net_wire --benchmark_min_time=0.01 \
    --out BENCH_wire.json
  if command -v python3 >/dev/null 2>&1; then
    python3 - BENCH_micro.json BENCH_wire.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    micro = json.load(f)
assert micro["median_columnar_speedup"] >= micro["floor"] == 2.0, micro
assert micro["families"], "no columnar families measured"
for name, entry in micro["families"].items():
    assert entry["tuple_seconds"] > 0 and entry["columnar_seconds"] > 0, name
with open(sys.argv[2]) as f:
    wire = json.load(f)
for key in ("tuple_encode_seconds", "batch_encode_seconds",
            "tuple_decode_seconds", "batch_decode_seconds",
            "tuple_wire_bytes", "batch_wire_bytes"):
    assert wire[key] > 0, key
assert wire["encode_speedup"] >= 1.0, wire["encode_speedup"]
print(f"bench: BENCH_micro.json OK "
      f"(columnar median {micro['median_columnar_speedup']:.2f}x), "
      f"BENCH_wire.json OK "
      f"(batch encode {wire['encode_speedup']:.2f}x)")
EOF
  else
    grep -q '"median_columnar_speedup"' BENCH_micro.json
    grep -q '"encode_speedup"' BENCH_wire.json
  fi
  echo "=== bench: bench_runtime_pipeline → BENCH_runtime.json ==="
  # Tiny stream: a schema/emission smoke, not a measurement. The real
  # numbers come from the default full-size run.
  ./build-rel/bench/bench_runtime_pipeline --tuples 20000 --reps 2 \
    --out BENCH_runtime.json >/dev/null
  if command -v python3 >/dev/null 2>&1; then
    python3 - BENCH_runtime.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["bench"] == "runtime_pipeline", report
assert report["tuples"] == 20000, report["tuples"]
assert report["materializing"]["seconds"] > 0, report["materializing"]
runs = report["pipelined"]
assert [r["parallelism"] for r in runs] == [1, 2, 4], runs
for r in runs:
    assert r["seconds"] > 0 and r["speedup"] > 0, r
    assert r["peak_buffered_tuples"] > 0, r
for variant in ("uninstrumented", "instrumented"):
    lat = report["wall_seconds_p4"][variant]
    assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"], lat
print(f"bench: BENCH_runtime.json OK "
      f"(pipelined P=4 speedup {report['speedup_p4']:.2f}x)")
EOF
  else
    grep -q '"speedup_p4"' BENCH_runtime.json
  fi
  echo "=== bench: bench_clean → BENCH_clean.json ==="
  # Tiny stream again: the binary's built-in assertions (every rule
  # family fires and measures, checksum-identical output at parallelism
  # 1/2/4) run at full strength regardless of stream size.
  ./build-rel/bench/bench_clean --tuples 50000 --out BENCH_clean.json \
    >/dev/null
  if command -v python3 >/dev/null 2>&1; then
    python3 - BENCH_clean.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["bench"] == "clean", report
assert report["tuples"] == 50000, report["tuples"]
families = report["families"]
expected = {"range", "not_null", "regex", "type", "cross_field",
            "rate_of_change", "stuck_at"}
assert set(families) == expected, set(families)
for name, entry in families.items():
    assert entry["seconds"] > 0 and entry["fired"] > 0, name
assert report["stateful_overhead"] > 0, report["stateful_overhead"]
assert [r["parallelism"] for r in report["parallel"]] == [1, 2, 4]
print(f"bench: BENCH_clean.json OK "
      f"(stateful overhead {report['stateful_overhead']:.2f}x)")
EOF
  else
    grep -q '"stateful_overhead"' BENCH_clean.json
  fi
  echo "=== bench: OK ==="
}

run_net() {
  echo "=== net: build icewafl_cli ==="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "${jobs}" --target icewafl_cli
  local cli=build/tools/icewafl_cli
  local outdir
  outdir=$(mktemp -d)
  trap 'rm -rf "${outdir}"' RETURN
  echo "=== net: offline reference run ==="
  "${cli}" run --scenario random_temporal --output "${outdir}/offline.csv" \
    >/dev/null
  echo "=== net: serve on an ephemeral loopback port ==="
  "${cli}" serve --scenario random_temporal --port 0 --max-sessions 2 \
    --metrics-out "${outdir}/serve.prom" >"${outdir}/serve.log" 2>&1 &
  local server_pid=$!
  # The server prints "serving scenario ... on 127.0.0.1:PORT (...)"
  # once it is listening; wait for that line and extract the port.
  local port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^serving scenario .* on [^ ]*:\([0-9]*\) .*/\1/p' \
      "${outdir}/serve.log")
    [ -n "${port}" ] && break
    if ! kill -0 "${server_pid}" 2>/dev/null; then
      echo "net: server exited before listening:"
      cat "${outdir}/serve.log"
      return 1
    fi
    sleep 0.1
  done
  if [ -z "${port}" ]; then
    echo "net: server never reported its port:"
    cat "${outdir}/serve.log"
    kill "${server_pid}" 2>/dev/null || true
    return 1
  fi
  echo "=== net: session 1 — full tail must equal the offline run ==="
  "${cli}" tail --connect "127.0.0.1:${port}" --csv-out "${outdir}/tail.csv"
  cmp "${outdir}/offline.csv" "${outdir}/tail.csv"
  echo "net: full-stream digest match ($(wc -c <"${outdir}/tail.csv")B)"
  echo "=== net: session 2 — tail --limit 1000 is an exact prefix ==="
  "${cli}" tail --connect "127.0.0.1:${port}" --limit 1000 \
    --csv-out "${outdir}/tail1000.csv"
  head -n 1001 "${outdir}/offline.csv" >"${outdir}/offline1000.csv"
  cmp "${outdir}/offline1000.csv" "${outdir}/tail1000.csv"
  echo "=== net: server drains after --max-sessions 2 ==="
  if ! wait "${server_pid}"; then
    echo "net: server exited non-zero:"
    cat "${outdir}/serve.log"
    return 1
  fi
  echo "=== net: serve metrics present in Prometheus export ==="
  for metric in icewafl_server_sessions_total \
                icewafl_server_tuples_sent_total \
                icewafl_server_clients_accepted_total; do
    if ! grep -q "^${metric}" "${outdir}/serve.prom"; then
      echo "net: missing metric family ${metric}"
      return 1
    fi
  done

  echo "=== net: two named sessions on one server ==="
  cat >"${outdir}/two_sessions.json" <<'EOF'
{
  "sessions": [
    {"name": "alpha", "scenario": "random_temporal", "seed": 42,
     "max_runs": 1},
    {"name": "beta", "scenario": "network_delay", "seed": 7, "max_runs": 1}
  ],
  "port": 0,
  "workers": 2
}
EOF
  "${cli}" lint "${outdir}/two_sessions.json"
  "${cli}" run --scenario random_temporal --seed 42 \
    --output "${outdir}/alpha_offline.csv" >/dev/null
  "${cli}" run --scenario network_delay --seed 7 \
    --output "${outdir}/beta_offline.csv" >/dev/null
  "${cli}" serve --config "${outdir}/two_sessions.json" \
    >"${outdir}/serve2.log" 2>&1 &
  server_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^serving scenario .* on [^ ]*:\([0-9]*\) .*/\1/p' \
      "${outdir}/serve2.log")
    [ -n "${port}" ] && break
    if ! kill -0 "${server_pid}" 2>/dev/null; then
      echo "net: two-session server exited before listening:"
      cat "${outdir}/serve2.log"
      return 1
    fi
    sleep 0.1
  done
  if [ -z "${port}" ]; then
    echo "net: two-session server never reported its port:"
    cat "${outdir}/serve2.log"
    kill "${server_pid}" 2>/dev/null || true
    return 1
  fi
  "${cli}" tail --connect "127.0.0.1:${port}" --session alpha \
    --csv-out "${outdir}/alpha_tail.csv" &
  local alpha_pid=$!
  "${cli}" tail --connect "127.0.0.1:${port}" --session beta \
    --csv-out "${outdir}/beta_tail.csv"
  wait "${alpha_pid}"
  if ! wait "${server_pid}"; then
    echo "net: two-session server exited non-zero:"
    cat "${outdir}/serve2.log"
    return 1
  fi
  cmp "${outdir}/alpha_offline.csv" "${outdir}/alpha_tail.csv"
  cmp "${outdir}/beta_offline.csv" "${outdir}/beta_tail.csv"
  echo "net: per-session digest match (alpha, beta)"

  echo "=== net: bench_net_server → BENCH_net.json ==="
  cmake --build --preset default -j "${jobs}" --target bench_net_server
  ./build/bench/bench_net_server --sessions 2 --subscribers 2 \
    --tuples 5000 --out BENCH_net.json >/dev/null
  if command -v python3 >/dev/null 2>&1; then
    python3 - BENCH_net.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
for key in ("fanout_tuples_per_sec", "bytes_per_sec", "wall_seconds",
            "tuples_fanned_out"):
    assert report[key] > 0, key
latency = report["send_latency_seconds"]
assert latency["p50"] <= latency["p90"] <= latency["p99"], latency
print(f"net: BENCH_net.json OK "
      f"({report['fanout_tuples_per_sec']:.0f} tuples/s fan-out)")
EOF
  else
    grep -q '"fanout_tuples_per_sec"' BENCH_net.json
  fi
  echo "=== net: OK ==="
}

# Scrapes "<banner> ... on HOST:PORT" from a serve log, polling until
# the server prints it (or dies). Echoes the port, empty on timeout.
scrape_port() {
  local log="$1" banner="$2" pid="$3" port=""
  for _ in $(seq 1 100); do
    port=$(sed -n "s/^${banner} .*:\([0-9]*\).*/\1/p" "${log}" | head -n 1)
    [ -n "${port}" ] && break
    kill -0 "${pid}" 2>/dev/null || break
    sleep 0.1
  done
  echo "${port}"
}

run_admin() {
  echo "=== admin: build icewafl_cli ==="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "${jobs}" --target icewafl_cli
  local cli=build/tools/icewafl_cli
  local outdir
  outdir=$(mktemp -d)
  trap 'rm -rf "${outdir}"' RETURN

  echo "=== admin: serve random_temporal with the admin channel ==="
  "${cli}" serve --scenario random_temporal --seed 7 --port 0 \
    --admin-port 0 --max-sessions 1 >"${outdir}/serve.log" 2>&1 &
  local server_pid=$!
  local port admin_port
  port=$(scrape_port "${outdir}/serve.log" "serving scenario" \
    "${server_pid}")
  admin_port=$(scrape_port "${outdir}/serve.log" "admin channel on" \
    "${server_pid}")
  if [ -z "${port}" ] || [ -z "${admin_port}" ]; then
    echo "admin: server never printed both banners:"
    cat "${outdir}/serve.log"
    kill "${server_pid}" 2>/dev/null || true
    return 1
  fi
  local connect="--connect 127.0.0.1:${admin_port}"

  echo "=== admin: list_sessions / get_config ==="
  # shellcheck disable=SC2086
  "${cli}" admin list_sessions ${connect} | grep -q random_temporal
  # shellcheck disable=SC2086
  "${cli}" admin get_config ${connect} --session random_temporal |
    grep -q '"plan_version": 1'

  echo "=== admin: lint-rejected swap exits 1 with Diagnostics ==="
  cat >"${outdir}/bad_pipeline.json" <<'EOF'
{
  "name": "broken",
  "polluters": [
    {"type": "standard", "label": "bad", "attributes": ["Nope"],
     "condition": {"type": "always"}, "error": {"type": "missing_value"}}
  ]
}
EOF
  local swap_status=0
  # shellcheck disable=SC2086
  "${cli}" admin swap_pipeline ${connect} --session random_temporal \
    --pipeline "${outdir}/bad_pipeline.json" \
    >"${outdir}/swap.out" 2>"${outdir}/swap.err" || swap_status=$?
  if [ "${swap_status}" -ne 1 ]; then
    echo "admin: lint-rejected swap exited ${swap_status}, want 1"
    return 1
  fi
  grep -q IW101 "${outdir}/swap.err"

  echo "=== admin: swap to software_update, then byte-compare a tail ==="
  # shellcheck disable=SC2086
  "${cli}" admin swap_pipeline ${connect} --session random_temporal \
    --scenario software_update | grep -q '"plan_version": 2'
  # The waiting session adopts the newest plan at its next run, with the
  # session's own seed (7): the tail must equal the offline run.
  "${cli}" run --scenario software_update --seed 7 \
    --output "${outdir}/offline.csv" >/dev/null
  "${cli}" tail --connect "127.0.0.1:${port}" \
    --csv-out "${outdir}/tail.csv"
  cmp "${outdir}/offline.csv" "${outdir}/tail.csv"
  echo "admin: post-swap digest match ($(wc -c <"${outdir}/tail.csv")B)"
  if ! wait "${server_pid}"; then
    echo "admin: server exited non-zero:"
    cat "${outdir}/serve.log"
    return 1
  fi

  echo "=== admin: mid-stream swap under an active tail ==="
  "${cli}" serve --scenario random_temporal --port 0 --admin-port 0 \
    --max-sessions 1 --metrics-out "${outdir}/serve2.prom" \
    >"${outdir}/serve2.log" 2>&1 &
  server_pid=$!
  port=$(scrape_port "${outdir}/serve2.log" "serving scenario" \
    "${server_pid}")
  admin_port=$(scrape_port "${outdir}/serve2.log" "admin channel on" \
    "${server_pid}")
  connect="--connect 127.0.0.1:${admin_port}"
  # Pace the stream so the swap lands mid-run, then tail through it.
  # shellcheck disable=SC2086
  "${cli}" admin set_rate ${connect} --session random_temporal \
    --rate 2000 >/dev/null
  "${cli}" tail --connect "127.0.0.1:${port}" \
    --csv-out "${outdir}/tail2.csv" &
  local tail_pid=$!
  sleep 0.3
  # shellcheck disable=SC2086
  "${cli}" admin swap_pipeline ${connect} --session random_temporal \
    --scenario software_update >/dev/null
  # The subscriber must ride through the swap on one connection.
  if ! wait "${tail_pid}"; then
    echo "admin: tail disconnected across the swap"
    return 1
  fi
  [ "$(wc -l <"${outdir}/tail2.csv")" -gt 1 ]
  if ! wait "${server_pid}"; then
    echo "admin: mid-stream server exited non-zero:"
    cat "${outdir}/serve2.log"
    return 1
  fi
  echo "=== admin: swap metrics in the Prometheus export ==="
  grep -q 'icewafl_server_plan_swaps_total{session="random_temporal"} 2' \
    "${outdir}/serve2.prom"
  grep -q 'icewafl_server_plan_version{session="random_temporal"} 3' \
    "${outdir}/serve2.prom"
  echo "=== admin: OK ==="
}

modes=("$@")
if [ "${#modes[@]}" -eq 0 ]; then
  modes=(asan tsan)
fi

for mode in "${modes[@]}"; do
  case "${mode}" in
    asan | tsan) run_preset "${mode}" ;;
    tidy) run_tidy ;;
    tsafety) run_tsafety ;;
    lint) run_lint ;;
    obs) run_obs ;;
    bench) run_bench ;;
    net) run_net ;;
    admin) run_admin ;;
    *)
      echo "unknown mode '${mode}' (expected asan, tsan, tidy, tsafety, lint, obs, bench, net, or admin)" >&2
      exit 2
      ;;
  esac
done
