#!/usr/bin/env bash
# Sanitizer gate: builds the asan (Address+UndefinedBehavior) and tsan
# (Thread) presets and runs the test suite under each. The tsan pass is
# what keeps the pipelined runtime (stream/channel.h, stream/runtime.cc,
# the parallel pollution process) data-race free.
#
# Usage: tools/check.sh [asan|tsan]      (default: both)

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
presets=("${@:-asan}" )
if [ "$#" -eq 0 ]; then
  presets=(asan tsan)
fi

for preset in "${presets[@]}"; do
  echo "=== ${preset}: configure ==="
  cmake --preset "${preset}"
  echo "=== ${preset}: build ==="
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "=== ${preset}: test ==="
  ctest --preset "${preset}" -j "${jobs}"
  echo "=== ${preset}: OK ==="
done
