// icewafl_cli — command-line front end to the pollution library.
//
// Subcommands:
//   pollute   --schema s.json --config pipeline.json --input in.csv
//             --output dirty.csv [--clean-output clean.csv]
//             [--log log.json] [--seed N] [--null-repr STR]
//   validate  --schema s.json --suite suite.json --input in.csv
//             [--null-repr STR]
//   generate  --dataset wearable|airquality --output out.csv
//             [--seed N] [--hours N] [--station NAME]
//   profile   --schema s.json --input in.csv [--null-repr STR]
//             [--suggest-suite out.json]  (column stats; optionally
//                                          writes a suggested suite)
//   schema    --dataset wearable|airquality        (prints schema JSON)
//   lint      PIPELINE.json [--schema s.json] [--suite suite.json]
//             [--stream-start T] [--stream-end T] [--json]
//             (static analysis; no stream is executed)
//   run       --scenario random_temporal|software_update|network_delay|
//                         temporal_noise|temporal_scale
//             [--seed N] [--parallelism P] [--output OUT.csv]
//             [--metrics-out METRICS.prom] [--trace-out TRACE.json]
//             (generates the scenario's dataset, streams it through the
//              pipelined runtime, validates the matching expectation
//              suite, and optionally exports Prometheus metrics and a
//              Chrome trace_event JSON)
//   clean     --rules R.json --schema s.json --input in.csv
//             [--output out.csv] [--log repairs.json] [--parallelism P]
//             [--metrics-out F.prom] [--null-repr STR]
//             (rule-based stream repair: lints the cleaning document —
//              IW70x — against the schema, then detects and repairs;
//              output is byte-identical at every --parallelism)
//             OR
//             --scenario software_update|random_temporal [--seed N]
//             [--parallelism P] [--output out.csv] [--report F.json]
//             [--metrics-out F.prom] [--window-seconds N]
//             (the closed pollute -> detect -> clean -> re-validate
//              loop with the scenario's stock cleaner; prints the
//              per-family precision/recall/F1 + repair-accuracy report)
//   serve     --scenario NAME [--port P] [--host H] [--seed N]
//             [--parallelism P] [--min-subscribers N] [--max-sessions N]
//             [--queue-capacity N] [--workers N]
//             [--slow-consumer block|drop_oldest|disconnect]
//             [--config serve.json] [--metrics-out F.prom]
//             [--admin-port P]
//             (pollution as a service: binds a TCP port and hosts one
//              or more named sessions — a --config document may carry a
//              "sessions" array — streaming each session's polluted
//              runs to its subscribers over a shared worker pool; the
//              config is linted — IW6xx — before the socket opens.
//              Every session runs a versioned plan snapshot; with
//              --admin-port the live control plane is exposed on its
//              own port for `icewafl_cli admin`)
//   admin     METHOD --connect HOST:PORT [--session NAME]
//             [--scenario NAME] [--pipeline P.json] [--rules R.json]
//             [--rate R] [--json]
//             (control plane of a running serve: METHOD is one of
//              list_sessions, get_config, swap_pipeline, set_rate,
//              stop_session, create_session, get_metrics, set_cleaner.
//              set_cleaner installs --rules R.json as the session's
//              live cleaner — lint-gated IW70x against the session's
//              schema — or removes it with `--rules null`. Requests are
//              linted client-side — IW61x — before the connection, and
//              again server-side; swapped pipeline documents pass the
//              full IW1xx..IW4xx analysis against the session's schema
//              before the new plan version is published. Running
//              subscribers keep streaming across a swap: in-flight rows
//              finish under the old plan, the next rows use the new one)
//   tail      --connect HOST:PORT [--session NAME] [--limit N]
//             [--csv-out OUT.csv]
//             (subscribes to one named session of a serve instance;
//              writes the received stream as CSV — byte-identical to
//              `run --output` of the same scenario/seed — to --csv-out
//              or stdout)
//
// Exit code: 0 on success (for `validate`: also when all expectations
// pass; for `lint`: no error-severity findings), 1 on failure, 2 on
// usage errors — including unknown flags and unknown subcommands, which
// are always usage errors, never silently ignored. `run` exits 0 even
// when the suite flags errors — a polluted stream is SUPPOSED to
// violate its expectations. `admin` follows the same contract: a
// malformed invocation (bad flags, client-side IW61x lint errors)
// exits 2 before connecting; a request the server rejects — e.g. a
// swap whose pipeline fails the lint gate — exits 1 with the
// Diagnostics JSON on stderr. `--version` prints the version and
// exits 0.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "analysis/analyzer.h"
#include "clean/cleaner.h"
#include "clean/config.h"
#include "core/config.h"
#include "core/process.h"
#include "data/airquality.h"
#include "data/wearable.h"
#include "dq/config.h"
#include "dq/profile.h"
#include "io/csv.h"
#include "io/schema_json.h"
#include "net/admin.h"
#include "net/client.h"
#include "net/serve_config.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenarios/closed_loop.h"
#include "scenarios/scenarios.h"

namespace {

using namespace icewafl;  // NOLINT

constexpr const char* kVersion = "0.6.0";

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  icewafl_cli pollute --schema S.json --config P.json --input IN.csv\n"
      "              --output OUT.csv [--clean-output C.csv] [--log L.json]\n"
      "              [--seed N] [--null-repr STR]\n"
      "  icewafl_cli validate --schema S.json --suite Q.json --input IN.csv\n"
      "              [--null-repr STR]\n"
      "  icewafl_cli generate --dataset wearable|airquality --output OUT.csv\n"
      "              [--seed N] [--hours N] [--station NAME]\n"
      "  icewafl_cli profile --schema S.json --input IN.csv\n"
      "              [--suggest-suite]\n"
      "  icewafl_cli schema --dataset wearable|airquality\n"
      "  icewafl_cli lint PIPELINE.json [--schema S.json] [--suite Q.json]\n"
      "              [--stream-start T] [--stream-end T] [--json]\n"
      "  icewafl_cli run --scenario random_temporal|software_update|\n"
      "              network_delay|temporal_noise|temporal_scale\n"
      "              [--seed N] [--parallelism P] [--output OUT.csv]\n"
      "              [--metrics-out F.prom] [--trace-out F.json]\n"
      "  icewafl_cli clean --rules R.json --schema S.json --input IN.csv\n"
      "              [--output OUT.csv] [--log L.json] [--parallelism P]\n"
      "              [--metrics-out F.prom] [--null-repr STR]\n"
      "  icewafl_cli clean --scenario software_update|random_temporal\n"
      "              [--seed N] [--parallelism P] [--output OUT.csv]\n"
      "              [--report F.json] [--metrics-out F.prom]\n"
      "              [--window-seconds N]\n"
      "  icewafl_cli serve --scenario NAME [--port P] [--host H] [--seed N]\n"
      "              [--parallelism P] [--min-subscribers N]\n"
      "              [--max-sessions N] [--queue-capacity N] [--workers N]\n"
      "              [--slow-consumer block|drop_oldest|disconnect]\n"
      "              [--config serve.json] [--metrics-out F.prom]\n"
      "              [--admin-port P]\n"
      "  icewafl_cli admin list_sessions|get_config|swap_pipeline|set_rate|\n"
      "              stop_session|create_session|get_metrics|set_cleaner\n"
      "              --connect HOST:PORT [--session NAME] [--scenario NAME]\n"
      "              [--pipeline P.json] [--rules R.json|null] [--rate R]\n"
      "              [--json]\n"
      "  icewafl_cli tail --connect HOST:PORT [--session NAME] [--limit N]\n"
      "              [--csv-out OUT.csv]\n"
      "  icewafl_cli --version\n");
  return 2;
}

/// Rejects flags outside the subcommand's documented surface: a typoed
/// flag must exit 2, not be silently dropped.
bool CheckFlags(const char* command,
                const std::map<std::string, std::string>& flags,
                std::initializer_list<const char*> allowed) {
  for (const auto& entry : flags) {
    bool known = false;
    for (const char* name : allowed) {
      if (entry.first == name) known = true;
    }
    if (!known) {
      std::fprintf(stderr, "%s: unknown flag --%s\n", command,
                   entry.first.c_str());
      return false;
    }
  }
  return true;
}

/// Strict integer flag parse; trailing garbage is a usage error.
bool ParseInt64Flag(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<int64_t>(value);
  return true;
}

/// Parses --key value pairs starting at argv[first]. `--json` is the one
/// boolean flag and takes no value.
bool ParseFlags(int argc, char** argv, int first,
                std::map<std::string, std::string>* out) {
  for (int i = first; i < argc; ++i) {
    const char* key = argv[i];
    if (std::strncmp(key, "--", 2) != 0) return false;
    // insert_or_assign with explicit std::string values dodges a GCC 12
    // -Wrestrict false positive (PR105651) on operator[] + char* assign.
    if (std::strcmp(key, "--json") == 0) {
      out->insert_or_assign(std::string("json"), std::string("1"));
      continue;
    }
    if (i + 1 >= argc) return false;
    out->insert_or_assign(std::string(key + 2), std::string(argv[++i]));
  }
  return true;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: '" + path + "'");
  out << text;
  out.flush();
  if (!out) return Status::IOError("write failed: '" + path + "'");
  return Status::OK();
}

int RunPollute(const std::map<std::string, std::string>& flags) {
  for (const char* required : {"schema", "config", "input", "output"}) {
    if (!flags.count(required)) {
      std::fprintf(stderr, "pollute: missing --%s\n", required);
      return 2;
    }
  }
  CsvOptions csv;
  csv.null_repr = FlagOr(flags, "null-repr", "");
  auto schema = SchemaFromJsonFile(flags.at("schema"));
  if (!schema.ok()) return Fail(schema.status());
  auto pipeline = PipelineFromConfigFile(flags.at("config"));
  if (!pipeline.ok()) return Fail(pipeline.status());
  auto tuples = ReadCsvFile(schema.ValueOrDie(), flags.at("input"), csv);
  if (!tuples.ok()) return Fail(tuples.status());

  const uint64_t seed = std::strtoull(
      FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  VectorSource source(schema.ValueOrDie(), std::move(tuples).ValueOrDie());
  auto result = PollutionProcess::Pollute(
      &source, std::move(pipeline).ValueOrDie(), seed);
  if (!result.ok()) return Fail(result.status());
  const PollutionResult& r = result.ValueOrDie();

  Status st = WriteCsvFile(r.schema, r.polluted, flags.at("output"), csv);
  if (!st.ok()) return Fail(st);
  if (flags.count("clean-output")) {
    st = WriteCsvFile(r.schema, r.clean, flags.at("clean-output"), csv);
    if (!st.ok()) return Fail(st);
  }
  if (flags.count("log")) {
    st = WriteTextFile(flags.at("log"), r.log.ToJson().DumpPretty());
    if (!st.ok()) return Fail(st);
  }
  std::printf("polluted %zu tuples, %zu injections, seed %llu\n",
              r.polluted.size(), r.log.size(),
              static_cast<unsigned long long>(seed));
  return 0;
}

int RunValidate(const std::map<std::string, std::string>& flags) {
  for (const char* required : {"schema", "suite", "input"}) {
    if (!flags.count(required)) {
      std::fprintf(stderr, "validate: missing --%s\n", required);
      return 2;
    }
  }
  CsvOptions csv;
  csv.null_repr = FlagOr(flags, "null-repr", "");
  auto schema = SchemaFromJsonFile(flags.at("schema"));
  if (!schema.ok()) return Fail(schema.status());
  auto suite = dq::SuiteFromConfigFile(flags.at("suite"));
  if (!suite.ok()) return Fail(suite.status());
  auto tuples = ReadCsvFile(schema.ValueOrDie(), flags.at("input"), csv);
  if (!tuples.ok()) return Fail(tuples.status());
  auto result = suite.ValueOrDie().Validate(tuples.ValueOrDie());
  if (!result.ok()) return Fail(result.status());
  std::printf("%s", result.ValueOrDie().ToReport().c_str());
  return result.ValueOrDie().success() ? 0 : 1;
}

int RunGenerate(const std::map<std::string, std::string>& flags) {
  if (!flags.count("dataset") || !flags.count("output")) {
    std::fprintf(stderr, "generate: need --dataset and --output\n");
    return 2;
  }
  const std::string dataset = flags.at("dataset");
  const uint64_t seed = std::strtoull(
      FlagOr(flags, "seed", "0").c_str(), nullptr, 10);
  Result<TupleVector> tuples = Status::Internal("unset");
  SchemaPtr schema;
  if (dataset == "wearable") {
    data::WearableOptions options;
    if (seed != 0) options.seed = seed;
    tuples = data::GenerateWearable(options);
    schema = data::WearableSchema();
  } else if (dataset == "airquality") {
    data::AirQualityOptions options;
    if (seed != 0) options.seed = seed;
    if (flags.count("hours")) {
      options.hours = std::strtoull(flags.at("hours").c_str(), nullptr, 10);
    }
    options.station = FlagOr(flags, "station", options.station);
    tuples = data::GenerateAirQuality(options);
    schema = data::AirQualitySchema();
  } else {
    std::fprintf(stderr, "unknown dataset: '%s'\n", dataset.c_str());
    return 2;
  }
  if (!tuples.ok()) return Fail(tuples.status());
  Status st =
      WriteCsvFile(schema, tuples.ValueOrDie(), flags.at("output"));
  if (!st.ok()) return Fail(st);
  std::printf("wrote %zu tuples to %s\n", tuples.ValueOrDie().size(),
              flags.at("output").c_str());
  return 0;
}

int RunProfile(const std::map<std::string, std::string>& flags) {
  for (const char* required : {"schema", "input"}) {
    if (!flags.count(required)) {
      std::fprintf(stderr, "profile: missing --%s\n", required);
      return 2;
    }
  }
  CsvOptions csv;
  csv.null_repr = FlagOr(flags, "null-repr", "");
  auto schema = SchemaFromJsonFile(flags.at("schema"));
  if (!schema.ok()) return Fail(schema.status());
  auto tuples = ReadCsvFile(schema.ValueOrDie(), flags.at("input"), csv);
  if (!tuples.ok()) return Fail(tuples.status());
  auto profiles = dq::ProfileColumns(tuples.ValueOrDie());
  if (!profiles.ok()) return Fail(profiles.status());
  std::printf("%s", dq::ProfilesToReport(profiles.ValueOrDie()).c_str());
  if (flags.count("suggest-suite")) {
    auto suite = dq::SuggestSuite(tuples.ValueOrDie());
    if (!suite.ok()) return Fail(suite.status());
    // Round-trip sanity: validate the stream against its own suite.
    auto self_check = suite.ValueOrDie().Validate(tuples.ValueOrDie());
    if (!self_check.ok()) return Fail(self_check.status());
    Status st = WriteTextFile(flags.at("suggest-suite"),
                              suite.ValueOrDie().ToJson().DumpPretty());
    if (!st.ok()) return Fail(st);
    std::printf("\nwrote %zu suggested expectations to %s "
                "(self-check: %s)\n",
                suite.ValueOrDie().size(),
                flags.at("suggest-suite").c_str(),
                self_check.ValueOrDie().success() ? "pass" : "FAIL");
  }
  return 0;
}

int RunSchema(const std::map<std::string, std::string>& flags) {
  const std::string dataset = FlagOr(flags, "dataset", "");
  SchemaPtr schema;
  if (dataset == "wearable") {
    schema = data::WearableSchema();
  } else if (dataset == "airquality") {
    schema = data::AirQualitySchema();
  } else {
    std::fprintf(stderr, "unknown dataset: '%s'\n", dataset.c_str());
    return 2;
  }
  std::printf("%s\n", SchemaToJson(*schema).DumpPretty().c_str());
  return 0;
}

Result<Json> ReadJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return Json::Parse(buf.str());
}

int RunLint(const std::string& config_path,
            const std::map<std::string, std::string>& flags) {
  auto pipeline_json = ReadJsonFile(config_path);
  if (!pipeline_json.ok()) return Fail(pipeline_json.status());

  analysis::AnalyzeOptions options;
  if (flags.count("schema")) {
    auto schema = SchemaFromJsonFile(flags.at("schema"));
    if (!schema.ok()) return Fail(schema.status());
    options.schema = std::move(schema).ValueOrDie();
  }
  for (const char* bound : {"stream-start", "stream-end"}) {
    if (!flags.count(bound)) continue;
    const std::string& text = flags.at(bound);
    auto parsed = ParseTimestamp(text);
    Timestamp value;
    if (parsed.ok()) {
      value = parsed.ValueOrDie();
    } else {
      char* end = nullptr;
      value = std::strtoll(text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') return Fail(parsed.status());
    }
    if (std::strcmp(bound, "stream-start") == 0) {
      options.stream_start = value;
    } else {
      options.stream_end = value;
    }
  }

  Diagnostics diags;
  if (analysis::LooksLikeServeConfig(pipeline_json.ValueOrDie())) {
    // A serve document (scenario, no polluters) gets the IW6xx surface.
    analysis::ServeAnalyzeOptions serve_options;
    serve_options.known_scenarios = scenarios::ScenarioNames();
    serve_options.known_policies = net::SlowConsumerPolicyNames();
    diags = analysis::AnalyzeServeConfig(pipeline_json.ValueOrDie(),
                                         serve_options);
  } else if (analysis::LooksLikeCleanerRules(pipeline_json.ValueOrDie())) {
    // A cleaning document (rules with repairs) gets the IW70x surface.
    analysis::CleanerAnalyzeOptions cleaner_options;
    cleaner_options.schema = options.schema;
    diags = analysis::AnalyzeCleanerRules(pipeline_json.ValueOrDie(),
                                          cleaner_options);
  } else if (flags.count("suite")) {
    auto suite_json = ReadJsonFile(flags.at("suite"));
    if (!suite_json.ok()) return Fail(suite_json.status());
    diags = analysis::AnalyzeArtifacts(pipeline_json.ValueOrDie(),
                                       &suite_json.ValueOrDie(), options);
  } else {
    diags = analysis::AnalyzePipeline(pipeline_json.ValueOrDie(), options);
  }

  if (flags.count("json")) {
    std::printf("%s\n", diags.ToJson().DumpPretty().c_str());
  } else {
    std::printf("%s", diags.ToReport().c_str());
  }
  return diags.HasErrors() ? 1 : 0;
}

int RunScenario(const std::map<std::string, std::string>& flags) {
  if (!flags.count("scenario")) {
    std::fprintf(stderr, "run: missing --scenario\n");
    return 2;
  }
  const std::string name = flags.at("scenario");
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  const int parallelism = static_cast<int>(
      std::strtol(FlagOr(flags, "parallelism", "1").c_str(), nullptr, 10));

  // Resolve the scenario: pipeline, dataset, suite, and stream bounds —
  // the same single definition `serve` uses, which is what makes the
  // served stream byte-identical to this offline run.
  auto resolved = scenarios::ResolveScenario(name, seed);
  if (!resolved.ok()) {
    std::fprintf(stderr, "%s\n", resolved.status().ToString().c_str());
    return 2;
  }
  scenarios::ResolvedScenario& scenario = resolved.ValueOrDie();

  // Observability is opt-in: the registry/recorder are only wired into
  // the run when an export path asks for them, so a plain run pays
  // nothing but a null check per batch.
  obs::MetricRegistry registry;
  obs::TraceRecorder trace;
  obs::MetricRegistry* metrics_ptr =
      flags.count("metrics-out") ? &registry : nullptr;
  obs::TraceRecorder* trace_ptr = flags.count("trace-out") ? &trace : nullptr;

  const size_t clean_size = scenario.clean.size();
  VectorSource source(scenario.schema, std::move(scenario.clean));
  RuntimeStats stats;
  auto polluted = scenarios::ApplyPipelineStreaming(
      &source, scenario.pipeline, seed, parallelism, &stats, metrics_ptr,
      trace_ptr, scenario.stream_start, scenario.stream_end);
  if (!polluted.ok()) return Fail(polluted.status());

  std::printf("scenario %s: %zu tuples in, %zu out (seed %llu, "
              "parallelism %d)\n",
              name.c_str(), clean_size, polluted.ValueOrDie().size(),
              static_cast<unsigned long long>(seed), parallelism);
  std::printf("%s\n", stats.ToString().c_str());

  if (scenario.suite.has_value()) {
    auto validation = scenario.suite->Validate(polluted.ValueOrDie());
    if (!validation.ok()) return Fail(validation.status());
    std::printf("%s", validation.ValueOrDie().ToReport().c_str());
    dq::PublishSuiteResult(validation.ValueOrDie(), scenario.suite->name(),
                           metrics_ptr);
  }

  if (flags.count("output")) {
    Status st = WriteCsvFile(scenario.schema, polluted.ValueOrDie(),
                             flags.at("output"));
    if (!st.ok()) return Fail(st);
  }
  if (metrics_ptr != nullptr) {
    Status st =
        WriteTextFile(flags.at("metrics-out"), registry.ToPrometheusText());
    if (!st.ok()) return Fail(st);
    std::printf("wrote %zu metric series to %s\n", registry.size(),
                flags.at("metrics-out").c_str());
  }
  if (trace_ptr != nullptr) {
    Status st =
        WriteTextFile(flags.at("trace-out"), trace.ToChromeTraceJson());
    if (!st.ok()) return Fail(st);
    std::printf("wrote %zu trace events to %s\n", trace.size(),
                flags.at("trace-out").c_str());
  }
  return 0;
}

/// The closed-loop scenario mode of `clean`: pollute with the stock
/// pipeline, repair with the stock cleaner, score against the tagged
/// ground truth, re-validate windowed.
int RunCleanScenario(const std::map<std::string, std::string>& flags) {
  const std::string name = flags.at("scenario");
  scenarios::ClosedLoopOptions options;
  options.seed =
      std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  options.parallelism = static_cast<int>(
      std::strtol(FlagOr(flags, "parallelism", "1").c_str(), nullptr, 10));
  if (flags.count("window-seconds")) {
    int64_t window = 0;
    if (!ParseInt64Flag(flags.at("window-seconds"), &window) || window < 1) {
      std::fprintf(stderr,
                   "clean: --window-seconds needs a positive integer\n");
      return 2;
    }
    options.window_seconds = window;
  }

  obs::MetricRegistry registry;
  obs::MetricRegistry* metrics_ptr =
      flags.count("metrics-out") ? &registry : nullptr;
  TupleVector cleaned;
  auto report = scenarios::RunClosedLoop(name, options, metrics_ptr,
                                         &cleaned);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 2;  // unknown scenario / no stock cleaner: a usage error
  }
  const scenarios::ClosedLoopReport& r = report.ValueOrDie();

  std::printf("closed loop %s: %llu rows, %llu injections, %llu "
              "detections (seed %llu, parallelism %d)\n",
              name.c_str(),
              static_cast<unsigned long long>(r.polluted_rows),
              static_cast<unsigned long long>(r.injections),
              static_cast<unsigned long long>(r.detections),
              static_cast<unsigned long long>(options.seed),
              options.parallelism);
  for (const scenarios::FamilyScore& f : r.families) {
    std::printf("  %-24s P %.3f  R %.3f  F1 %.3f  (gt %llu%s)\n",
                f.family.c_str(), f.precision, f.recall, f.f1,
                static_cast<unsigned long long>(f.ground_truth),
                f.deterministic ? "" : ", random");
  }
  std::printf("  min deterministic F1 %.3f, repair accuracy %.3f "
              "(%llu/%llu scored)\n",
              r.MinDeterministicF1(), r.repair_accuracy,
              static_cast<unsigned long long>(r.repairs_accurate),
              static_cast<unsigned long long>(r.repairs_scored));

  if (flags.count("output")) {
    auto resolved = scenarios::ResolveScenario(name, options.dataset_seed);
    if (!resolved.ok()) return Fail(resolved.status());
    Status st = WriteCsvFile(resolved.ValueOrDie().schema, cleaned,
                             flags.at("output"));
    if (!st.ok()) return Fail(st);
  }
  if (flags.count("report")) {
    Status st =
        WriteTextFile(flags.at("report"), r.ToJson().DumpPretty());
    if (!st.ok()) return Fail(st);
    std::printf("wrote closed-loop report to %s\n",
                flags.at("report").c_str());
  }
  if (metrics_ptr != nullptr) {
    Status st =
        WriteTextFile(flags.at("metrics-out"), registry.ToPrometheusText());
    if (!st.ok()) return Fail(st);
  }
  return 0;
}

int RunClean(const std::map<std::string, std::string>& flags) {
  if (flags.count("scenario")) return RunCleanScenario(flags);
  for (const char* required : {"rules", "schema", "input"}) {
    if (!flags.count(required)) {
      std::fprintf(stderr, "clean: missing --%s (or use --scenario)\n",
                   required);
      return 2;
    }
  }
  CsvOptions csv;
  csv.null_repr = FlagOr(flags, "null-repr", "");
  auto schema = SchemaFromJsonFile(flags.at("schema"));
  if (!schema.ok()) return Fail(schema.status());
  auto rules_json = ReadJsonFile(flags.at("rules"));
  if (!rules_json.ok()) return Fail(rules_json.status());

  // The lint gate: a statically broken document exits 1 with the
  // report before any tuple is read.
  analysis::CleanerAnalyzeOptions lint;
  lint.schema = schema.ValueOrDie();
  Diagnostics diags =
      analysis::AnalyzeCleanerRules(rules_json.ValueOrDie(), lint);
  if (!diags.empty()) std::fprintf(stderr, "%s", diags.ToReport().c_str());
  if (diags.HasErrors()) return 1;

  auto rules =
      clean::RulesFromJson(rules_json.ValueOrDie(), schema.ValueOrDie());
  if (!rules.ok()) return Fail(rules.status());
  auto tuples = ReadCsvFile(schema.ValueOrDie(), flags.at("input"), csv);
  if (!tuples.ok()) return Fail(tuples.status());

  int64_t parallelism = 1;
  if (flags.count("parallelism") &&
      (!ParseInt64Flag(flags.at("parallelism"), &parallelism) ||
       parallelism < 1)) {
    std::fprintf(stderr, "clean: --parallelism needs a positive integer\n");
    return 2;
  }

  obs::MetricRegistry registry;
  obs::MetricRegistry* metrics_ptr =
      flags.count("metrics-out") ? &registry : nullptr;
  const size_t rows_in = tuples.ValueOrDie().size();
  VectorSink cleaned;
  clean::RepairLog log;
  clean::CleanStats stats;
  Status st = clean::CleanTuples(rules.ValueOrDie(),
                                 std::move(tuples).ValueOrDie(),
                                 static_cast<int>(parallelism), &cleaned,
                                 metrics_ptr, &log, &stats);
  if (!st.ok()) return Fail(st);

  std::printf("cleaned %zu tuples: %llu kept, %llu dropped, %llu rule "
              "firings, %llu repairs\n",
              rows_in, static_cast<unsigned long long>(stats.tuples_out),
              static_cast<unsigned long long>(stats.tuples_dropped),
              static_cast<unsigned long long>(stats.fired),
              static_cast<unsigned long long>(stats.repaired));
  for (const clean::RuleStats& rule : stats.rules) {
    std::printf("  %-24s fired %llu, repaired %llu, dropped %llu\n",
                rule.label.c_str(),
                static_cast<unsigned long long>(rule.fired),
                static_cast<unsigned long long>(rule.repaired),
                static_cast<unsigned long long>(rule.dropped));
  }

  if (flags.count("output")) {
    st = WriteCsvFile(schema.ValueOrDie(), cleaned.tuples(),
                      flags.at("output"), csv);
    if (!st.ok()) return Fail(st);
  }
  if (flags.count("log")) {
    st = WriteTextFile(flags.at("log"), log.ToJson().DumpPretty());
    if (!st.ok()) return Fail(st);
  }
  if (metrics_ptr != nullptr) {
    st = WriteTextFile(flags.at("metrics-out"), registry.ToPrometheusText());
    if (!st.ok()) return Fail(st);
  }
  return 0;
}

/// Builds the serve JSON document from --config (file) or the flag set,
/// so both paths go through the same IW6xx lint and ServeConfig parse.
int BuildServeJson(const std::map<std::string, std::string>& flags,
                   Json* out) {
  if (flags.count("config")) {
    auto json = ReadJsonFile(flags.at("config"));
    if (!json.ok()) return Fail(json.status());
    *out = std::move(json).ValueOrDie();
    return 0;
  }
  Json doc = Json::MakeObject();
  if (flags.count("scenario")) doc.Set("scenario", flags.at("scenario"));
  if (flags.count("host")) doc.Set("host", flags.at("host"));
  struct IntFlag {
    const char* flag;
    const char* key;
  };
  for (const IntFlag& f :
       {IntFlag{"port", "port"}, IntFlag{"admin-port", "admin_port"},
        IntFlag{"seed", "seed"}, IntFlag{"parallelism", "parallelism"},
        IntFlag{"min-subscribers", "min_subscribers"},
        IntFlag{"max-sessions", "max_sessions"},
        IntFlag{"queue-capacity", "queue_capacity"},
        IntFlag{"workers", "workers"}}) {
    if (!flags.count(f.flag)) continue;
    int64_t value = 0;
    if (!ParseInt64Flag(flags.at(f.flag), &value)) {
      std::fprintf(stderr, "serve: --%s needs an integer, got '%s'\n", f.flag,
                   flags.at(f.flag).c_str());
      return 2;
    }
    doc.Set(f.key, Json(value));
  }
  if (flags.count("slow-consumer")) {
    doc.Set("slow_consumer", flags.at("slow-consumer"));
  }
  *out = std::move(doc);
  return 0;
}

/// Compiles one session entry into a versioned plan and registers it:
/// the session serves scenarios::ServePlanToSink, so SwapPlan /
/// `admin swap_pipeline` apply live.
Status AddPlanSession(net::PollutionServer* server,
                      const net::SessionConfig& entry) {
  auto plan = scenarios::BuildScenarioPlan(entry.scenario, entry.seed,
                                           entry.parallelism);
  if (!plan.ok()) return plan.status();
  net::SessionOptions options = entry.ToSessionOptions();
  options.plan = std::move(plan).ValueOrDie();
  if (!entry.cleaner.is_null()) {
    // The entry's cleaning document, schema-validated like a
    // set_cleaner mutation would be.
    auto with_cleaner =
        scenarios::BuildPlanWithCleaner(*options.plan, entry.cleaner);
    if (!with_cleaner.ok()) return with_cleaner.status();
    options.plan = std::move(with_cleaner).ValueOrDie();
  }
  return server->AddSession(entry.name, nullptr, scenarios::ServePlanToSink,
                            std::move(options));
}

/// The admin channel's mutation hooks: compile swap_pipeline /
/// create_session params through the scenarios layer, lint-gating
/// pipeline documents (full IW1xx..IW4xx analysis against the session's
/// schema and stream bounds) before any snapshot exists to publish.
net::AdminHooks MakeAdminHooks(net::PollutionServer* server) {
  net::AdminHooks hooks;
  hooks.known_scenarios = scenarios::ScenarioNames();
  hooks.compile_swap = [](const PlanSnapshot& current, const Json& params,
                          Json* diagnostics)
      -> Result<std::shared_ptr<PlanSnapshot>> {
    if (params.Has("scenario")) {
      return scenarios::BuildScenarioPlan(params.GetString("scenario", ""),
                                          current.seed, current.parallelism,
                                          current.tuples_per_sec);
    }
    auto pipeline_json = params.Get("pipeline");
    if (!pipeline_json.ok()) return pipeline_json.status();
    analysis::AnalyzeOptions options;
    options.schema = current.schema;
    options.stream_start = current.stream_start;
    options.stream_end = current.stream_end;
    Diagnostics diags =
        analysis::AnalyzePipeline(pipeline_json.ValueOrDie(), options);
    if (diags.HasErrors()) {
      *diagnostics = diags.ToJson();
      return Status::InvalidArgument("pipeline rejected by lint:\n" +
                                     diags.ToReport());
    }
    return scenarios::BuildPlanFromPipelineJson(current,
                                                pipeline_json.ValueOrDie());
  };
  hooks.compile_cleaner = [](const PlanSnapshot& current, const Json& params,
                             Json* diagnostics)
      -> Result<std::shared_ptr<PlanSnapshot>> {
    Json rules;
    if (params.Has("rules")) rules = params.Get("rules").ValueOrDie();
    if (!rules.is_null()) {
      // Schema-sharpened re-lint: the envelope gate already ran the
      // schemaless IW70x pass; this one catches unknown columns.
      analysis::CleanerAnalyzeOptions options;
      options.schema = current.schema;
      Diagnostics diags = analysis::AnalyzeCleanerRules(rules, options);
      if (diags.HasErrors()) {
        *diagnostics = diags.ToJson();
        return Status::InvalidArgument("cleaner rejected by lint:\n" +
                                       diags.ToReport());
      }
    }
    return scenarios::BuildPlanWithCleaner(current, rules);
  };
  hooks.create_session = [server](const Json& params,
                                  Json* diagnostics) -> Status {
    auto entry_json = params.Get("session");
    if (!entry_json.ok()) return entry_json.status();
    // Route the entry through the same IW6xx lint and ServeConfig parse
    // a --config sessions[] entry gets.
    Json doc = Json::MakeObject();
    Json sessions = Json::MakeArray();
    sessions.Append(entry_json.ValueOrDie());
    doc.Set("sessions", std::move(sessions));
    analysis::ServeAnalyzeOptions serve_options;
    serve_options.known_scenarios = scenarios::ScenarioNames();
    serve_options.known_policies = net::SlowConsumerPolicyNames();
    Diagnostics diags = analysis::AnalyzeServeConfig(doc, serve_options);
    if (diags.HasErrors()) {
      *diagnostics = diags.ToJson();
      return Status::InvalidArgument("session entry rejected by lint:\n" +
                                     diags.ToReport());
    }
    auto config = net::ServeConfig::FromJson(doc);
    if (!config.ok()) return config.status();
    return AddPlanSession(server, config.ValueOrDie().sessions[0]);
  };
  return hooks;
}

int RunServe(const std::map<std::string, std::string>& flags) {
  if (!flags.count("scenario") && !flags.count("config")) {
    std::fprintf(stderr, "serve: need --scenario or --config\n");
    return 2;
  }
  Json doc;
  if (const int rc = BuildServeJson(flags, &doc); rc != 0) return rc;

  // Static gate before the socket opens: the same IW6xx analysis
  // `icewafl_cli lint` applies to a serve document.
  analysis::ServeAnalyzeOptions serve_options;
  serve_options.known_scenarios = scenarios::ScenarioNames();
  serve_options.known_policies = net::SlowConsumerPolicyNames();
  Diagnostics diags = analysis::AnalyzeServeConfig(doc, serve_options);
  if (!diags.empty()) std::fprintf(stderr, "%s", diags.ToReport().c_str());
  if (diags.HasErrors()) return 2;

  auto config = net::ServeConfig::FromJson(doc);
  if (!config.ok()) return Fail(config.status());
  const net::ServeConfig& serve = config.ValueOrDie();

  // The admin channel reports metrics (get_metrics, plan_version), so
  // enabling it wires the registry in even without --metrics-out.
  obs::MetricRegistry registry;
  obs::MetricRegistry* metrics_ptr =
      (flags.count("metrics-out") || serve.admin_port >= 0) ? &registry
                                                            : nullptr;

  net::PollutionServer server(serve.ToServerOptions(metrics_ptr));
  for (const net::SessionConfig& entry : serve.sessions) {
    Status st = AddPlanSession(&server, entry);
    if (!st.ok()) return Fail(st);
  }
  Status st = server.Start();
  if (!st.ok()) return Fail(st);

  std::unique_ptr<net::AdminServer> admin;
  if (serve.admin_port >= 0) {
    net::AdminOptions admin_options;
    admin_options.host = serve.host;
    admin_options.port = static_cast<uint16_t>(serve.admin_port);
    admin = std::make_unique<net::AdminServer>(
        &server, metrics_ptr, admin_options, MakeAdminHooks(&server));
    st = admin->Start();
    if (!st.ok()) {
      server.RequestStop();
      server.Wait();
      return Fail(st);
    }
  }

  std::string desc;
  for (const net::SessionConfig& entry : serve.sessions) {
    if (!desc.empty()) desc += ", ";
    desc += entry.name == entry.scenario ? entry.scenario
                                         : entry.name + "=" + entry.scenario;
  }
  std::printf("serving scenario %s on %s:%u (workers %d, queue %zu, "
              "slow-consumer %s)\n",
              desc.c_str(), serve.host.c_str(),
              static_cast<unsigned>(server.port()), serve.workers,
              serve.queue_capacity,
              net::SlowConsumerPolicyName(serve.slow_consumer));
  if (admin != nullptr) {
    std::printf("admin channel on %s:%u\n", serve.host.c_str(),
                static_cast<unsigned>(admin->port()));
  }
  for (const net::SessionConfig& entry : serve.sessions) {
    std::printf("  session %s: seed %llu, parallelism %d, "
                "min-subscribers %d, %s\n",
                entry.name.c_str(),
                static_cast<unsigned long long>(entry.seed),
                entry.parallelism, entry.min_subscribers,
                entry.max_runs == 0
                    ? "until stopped"
                    : (std::to_string(entry.max_runs) + " run(s)").c_str());
  }
  std::fflush(stdout);
  st = server.Wait();
  if (admin != nullptr) admin->Stop();

  if (metrics_ptr != nullptr && flags.count("metrics-out")) {
    Status write_st = WriteTextFile(flags.at("metrics-out"),
                                    registry.ToPrometheusText());
    if (!write_st.ok()) return Fail(write_st);
    std::printf("wrote %zu metric series to %s\n", registry.size(),
                flags.at("metrics-out").c_str());
  }
  if (!st.ok()) return Fail(st);
  std::printf("served %llu run(s) across %zu session(s)\n",
              static_cast<unsigned long long>(server.runs_completed()),
              serve.sessions.size());
  return 0;
}

int RunTail(const std::map<std::string, std::string>& flags) {
  if (!flags.count("connect")) {
    std::fprintf(stderr, "tail: missing --connect HOST:PORT\n");
    return 2;
  }
  const std::string& endpoint = flags.at("connect");
  const size_t colon = endpoint.rfind(':');
  int64_t port = 0;
  if (colon == std::string::npos || colon == 0 ||
      !ParseInt64Flag(endpoint.substr(colon + 1), &port) || port < 1 ||
      port > 65535) {
    std::fprintf(stderr, "tail: --connect needs HOST:PORT, got '%s'\n",
                 endpoint.c_str());
    return 2;
  }
  const std::string host = endpoint.substr(0, colon);
  int64_t limit = 0;  // 0 = until end of stream
  if (flags.count("limit") &&
      (!ParseInt64Flag(flags.at("limit"), &limit) || limit < 1)) {
    std::fprintf(stderr, "tail: --limit needs a positive integer\n");
    return 2;
  }

  auto client = net::StreamClient::Connect(host, static_cast<uint16_t>(port),
                                           FlagOr(flags, "session", ""));
  if (!client.ok()) return Fail(client.status());
  net::StreamClient& stream = *client.ValueOrDie();

  TupleVector tuples;
  Tuple tuple;
  bool truncated = false;
  while (true) {
    auto next = stream.Next(&tuple);
    if (!next.ok()) return Fail(next.status());
    if (!next.ValueOrDie()) break;
    tuples.push_back(std::move(tuple));
    if (limit > 0 && tuples.size() >= static_cast<size_t>(limit)) {
      truncated = true;  // deliberate early hang-up, not an error
      break;
    }
  }

  // Default CsvOptions on both sides keep `tail --csv-out` byte-identical
  // to `run --output` of the same scenario and seed.
  if (flags.count("csv-out")) {
    Status st = WriteCsvFile(stream.schema(), tuples, flags.at("csv-out"));
    if (!st.ok()) return Fail(st);
    std::printf("received %zu tuples%s, wrote %s\n", tuples.size(),
                truncated ? " (limit reached)" : "",
                flags.at("csv-out").c_str());
  } else {
    std::printf("%s", ToCsvString(stream.schema(), tuples).c_str());
  }
  return 0;
}

int RunAdmin(const std::string& method,
             const std::map<std::string, std::string>& flags) {
  if (!flags.count("connect")) {
    std::fprintf(stderr, "admin: missing --connect HOST:PORT\n");
    return 2;
  }
  const std::string& endpoint = flags.at("connect");
  const size_t colon = endpoint.rfind(':');
  int64_t port = 0;
  if (colon == std::string::npos || colon == 0 ||
      !ParseInt64Flag(endpoint.substr(colon + 1), &port) || port < 1 ||
      port > 65535) {
    std::fprintf(stderr, "admin: --connect needs HOST:PORT, got '%s'\n",
                 endpoint.c_str());
    return 2;
  }
  const std::string host = endpoint.substr(0, colon);

  Json params = Json::MakeObject();
  if (flags.count("session")) params.Set("session", flags.at("session"));
  if (flags.count("scenario")) params.Set("scenario", flags.at("scenario"));
  if (flags.count("pipeline")) {
    auto doc = ReadJsonFile(flags.at("pipeline"));
    if (!doc.ok()) {
      std::fprintf(stderr, "admin: --pipeline: %s\n",
                   doc.status().ToString().c_str());
      return 2;
    }
    params.Set("pipeline", std::move(doc).ValueOrDie());
  }
  if (flags.count("rules")) {
    // `--rules null` removes the session's cleaner; a path installs
    // the file's cleaning document.
    if (flags.at("rules") == "null") {
      params.Set("rules", Json());
    } else {
      auto doc = ReadJsonFile(flags.at("rules"));
      if (!doc.ok()) {
        std::fprintf(stderr, "admin: --rules: %s\n",
                     doc.status().ToString().c_str());
        return 2;
      }
      params.Set("rules", std::move(doc).ValueOrDie());
    }
  }
  if (flags.count("rate")) {
    const std::string& text = flags.at("rate");
    char* end = nullptr;
    errno = 0;
    const double rate = std::strtod(text.c_str(), &end);
    if (text.empty() || errno != 0 || end == nullptr || *end != '\0') {
      std::fprintf(stderr, "admin: --rate needs a number, got '%s'\n",
                   text.c_str());
      return 2;
    }
    params.Set("tuples_per_sec", Json(rate));
  }

  // Client-side gate: a request the server would reject as malformed
  // (IW61x) is a usage error here, caught before any connection.
  Json request = Json::MakeObject();
  request.Set("id", Json(static_cast<int64_t>(1)));
  request.Set("method", Json(method));
  request.Set("params", params);
  analysis::AdminAnalyzeOptions lint;
  lint.known_methods = net::AdminMethodNames();
  lint.known_scenarios = scenarios::ScenarioNames();
  Diagnostics diags = analysis::AnalyzeAdminRequest(request, lint);
  if (!diags.empty()) std::fprintf(stderr, "%s", diags.ToReport().c_str());
  if (diags.HasErrors()) return 2;

  auto client = net::AdminClient::Connect(host, static_cast<uint16_t>(port));
  if (!client.ok()) return Fail(client.status());
  auto response = client.ValueOrDie()->Call(method, params);
  if (!response.ok()) return Fail(response.status());
  const Json& body = response.ValueOrDie();
  if (body.Has("error")) {
    // The server's rejection — lint-gated swaps land here with the full
    // Diagnostics JSON.
    const Json error = body.Get("error").ValueOrDie();
    std::fprintf(stderr, "admin %s failed [%s]: %s\n", method.c_str(),
                 error.GetString("code", "?").c_str(),
                 error.GetString("message", "").c_str());
    if (error.Has("diagnostics")) {
      std::fprintf(
          stderr, "%s\n",
          error.Get("diagnostics").ValueOrDie().DumpPretty().c_str());
    }
    return 1;
  }
  Json result =
      body.Has("result") ? body.Get("result").ValueOrDie() : Json();
  if (!flags.count("json") && method == "get_metrics" &&
      result.is_object() && result.Has("text")) {
    std::printf("%s", result.GetString("text", "").c_str());
  } else {
    std::printf("%s\n", result.DumpPretty().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "--version" || command == "version") {
    std::printf("icewafl_cli %s\n", kVersion);
    return 0;
  }
  std::map<std::string, std::string> flags;
  if (command == "lint") {
    // lint takes the pipeline as a positional argument.
    if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) return Usage();
    if (!ParseFlags(argc, argv, 3, &flags)) return Usage();
    if (!CheckFlags("lint", flags,
                    {"schema", "suite", "stream-start", "stream-end", "json"}))
      return 2;
    return RunLint(argv[2], flags);
  }
  if (command == "admin") {
    // admin takes the method as a positional argument.
    if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) return Usage();
    if (!ParseFlags(argc, argv, 3, &flags)) return Usage();
    if (!CheckFlags("admin", flags,
                    {"connect", "session", "scenario", "pipeline", "rules",
                     "rate", "json"}))
      return 2;
    return RunAdmin(argv[2], flags);
  }
  if (!ParseFlags(argc, argv, 2, &flags)) return Usage();
  if (command == "pollute") {
    if (!CheckFlags("pollute", flags,
                    {"schema", "config", "input", "output", "clean-output",
                     "log", "seed", "null-repr"}))
      return 2;
    return RunPollute(flags);
  }
  if (command == "validate") {
    if (!CheckFlags("validate", flags,
                    {"schema", "suite", "input", "null-repr"}))
      return 2;
    return RunValidate(flags);
  }
  if (command == "generate") {
    if (!CheckFlags("generate", flags,
                    {"dataset", "output", "seed", "hours", "station"}))
      return 2;
    return RunGenerate(flags);
  }
  if (command == "profile") {
    if (!CheckFlags("profile", flags,
                    {"schema", "input", "null-repr", "suggest-suite"}))
      return 2;
    return RunProfile(flags);
  }
  if (command == "schema") {
    if (!CheckFlags("schema", flags, {"dataset"})) return 2;
    return RunSchema(flags);
  }
  if (command == "clean") {
    if (!CheckFlags("clean", flags,
                    {"rules", "schema", "input", "output", "log",
                     "parallelism", "metrics-out", "null-repr", "scenario",
                     "seed", "report", "window-seconds"}))
      return 2;
    return RunClean(flags);
  }
  if (command == "run") {
    if (!CheckFlags("run", flags,
                    {"scenario", "seed", "parallelism", "output",
                     "metrics-out", "trace-out"}))
      return 2;
    return RunScenario(flags);
  }
  if (command == "serve") {
    if (!CheckFlags("serve", flags,
                    {"scenario", "config", "host", "port", "admin-port",
                     "seed", "parallelism", "min-subscribers",
                     "max-sessions", "workers", "queue-capacity",
                     "slow-consumer", "metrics-out"}))
      return 2;
    return RunServe(flags);
  }
  if (command == "tail") {
    if (!CheckFlags("tail", flags,
                    {"connect", "session", "limit", "csv-out"}))
      return 2;
    return RunTail(flags);
  }
  std::fprintf(stderr, "unknown subcommand: '%s'\n", command.c_str());
  return Usage();
}
