// icewafl_cli — command-line front end to the pollution library.
//
// Subcommands:
//   pollute   --schema s.json --config pipeline.json --input in.csv
//             --output dirty.csv [--clean-output clean.csv]
//             [--log log.json] [--seed N] [--null-repr STR]
//   validate  --schema s.json --suite suite.json --input in.csv
//             [--null-repr STR]
//   generate  --dataset wearable|airquality --output out.csv
//             [--seed N] [--hours N] [--station NAME]
//   profile   --schema s.json --input in.csv [--null-repr STR]
//             [--suggest-suite out.json]  (column stats; optionally
//                                          writes a suggested suite)
//   schema    --dataset wearable|airquality        (prints schema JSON)
//   lint      PIPELINE.json [--schema s.json] [--suite suite.json]
//             [--stream-start T] [--stream-end T] [--json]
//             (static analysis; no stream is executed)
//   run       --scenario random_temporal|software_update|network_delay|
//                         temporal_noise|temporal_scale
//             [--seed N] [--parallelism P] [--output OUT.csv]
//             [--metrics-out METRICS.prom] [--trace-out TRACE.json]
//             (generates the scenario's dataset, streams it through the
//              pipelined runtime, validates the matching expectation
//              suite, and optionally exports Prometheus metrics and a
//              Chrome trace_event JSON)
//
// Exit code: 0 on success (for `validate`: also when all expectations
// pass; for `lint`: no error-severity findings), 1 on failure, 2 on
// usage errors. `run` exits 0 even when the suite flags errors — a
// polluted stream is SUPPOSED to violate its expectations.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>

#include "analysis/analyzer.h"
#include "core/config.h"
#include "core/process.h"
#include "data/airquality.h"
#include "data/wearable.h"
#include "dq/config.h"
#include "dq/profile.h"
#include "io/csv.h"
#include "io/schema_json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenarios/scenarios.h"

namespace {

using namespace icewafl;  // NOLINT

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  icewafl_cli pollute --schema S.json --config P.json --input IN.csv\n"
      "              --output OUT.csv [--clean-output C.csv] [--log L.json]\n"
      "              [--seed N] [--null-repr STR]\n"
      "  icewafl_cli validate --schema S.json --suite Q.json --input IN.csv\n"
      "              [--null-repr STR]\n"
      "  icewafl_cli generate --dataset wearable|airquality --output OUT.csv\n"
      "              [--seed N] [--hours N] [--station NAME]\n"
      "  icewafl_cli profile --schema S.json --input IN.csv\n"
      "              [--suggest-suite]\n"
      "  icewafl_cli schema --dataset wearable|airquality\n"
      "  icewafl_cli lint PIPELINE.json [--schema S.json] [--suite Q.json]\n"
      "              [--stream-start T] [--stream-end T] [--json]\n"
      "  icewafl_cli run --scenario random_temporal|software_update|\n"
      "              network_delay|temporal_noise|temporal_scale\n"
      "              [--seed N] [--parallelism P] [--output OUT.csv]\n"
      "              [--metrics-out F.prom] [--trace-out F.json]\n");
  return 2;
}

/// Parses --key value pairs starting at argv[first]. `--json` is the one
/// boolean flag and takes no value.
bool ParseFlags(int argc, char** argv, int first,
                std::map<std::string, std::string>* out) {
  for (int i = first; i < argc; ++i) {
    const char* key = argv[i];
    if (std::strncmp(key, "--", 2) != 0) return false;
    // insert_or_assign with explicit std::string values dodges a GCC 12
    // -Wrestrict false positive (PR105651) on operator[] + char* assign.
    if (std::strcmp(key, "--json") == 0) {
      out->insert_or_assign(std::string("json"), std::string("1"));
      continue;
    }
    if (i + 1 >= argc) return false;
    out->insert_or_assign(std::string(key + 2), std::string(argv[++i]));
  }
  return true;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: '" + path + "'");
  out << text;
  out.flush();
  if (!out) return Status::IOError("write failed: '" + path + "'");
  return Status::OK();
}

int RunPollute(const std::map<std::string, std::string>& flags) {
  for (const char* required : {"schema", "config", "input", "output"}) {
    if (!flags.count(required)) {
      std::fprintf(stderr, "pollute: missing --%s\n", required);
      return 2;
    }
  }
  CsvOptions csv;
  csv.null_repr = FlagOr(flags, "null-repr", "");
  auto schema = SchemaFromJsonFile(flags.at("schema"));
  if (!schema.ok()) return Fail(schema.status());
  auto pipeline = PipelineFromConfigFile(flags.at("config"));
  if (!pipeline.ok()) return Fail(pipeline.status());
  auto tuples = ReadCsvFile(schema.ValueOrDie(), flags.at("input"), csv);
  if (!tuples.ok()) return Fail(tuples.status());

  const uint64_t seed = std::strtoull(
      FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  VectorSource source(schema.ValueOrDie(), std::move(tuples).ValueOrDie());
  auto result = PollutionProcess::Pollute(
      &source, std::move(pipeline).ValueOrDie(), seed);
  if (!result.ok()) return Fail(result.status());
  const PollutionResult& r = result.ValueOrDie();

  Status st = WriteCsvFile(r.schema, r.polluted, flags.at("output"), csv);
  if (!st.ok()) return Fail(st);
  if (flags.count("clean-output")) {
    st = WriteCsvFile(r.schema, r.clean, flags.at("clean-output"), csv);
    if (!st.ok()) return Fail(st);
  }
  if (flags.count("log")) {
    st = WriteTextFile(flags.at("log"), r.log.ToJson().DumpPretty());
    if (!st.ok()) return Fail(st);
  }
  std::printf("polluted %zu tuples, %zu injections, seed %llu\n",
              r.polluted.size(), r.log.size(),
              static_cast<unsigned long long>(seed));
  return 0;
}

int RunValidate(const std::map<std::string, std::string>& flags) {
  for (const char* required : {"schema", "suite", "input"}) {
    if (!flags.count(required)) {
      std::fprintf(stderr, "validate: missing --%s\n", required);
      return 2;
    }
  }
  CsvOptions csv;
  csv.null_repr = FlagOr(flags, "null-repr", "");
  auto schema = SchemaFromJsonFile(flags.at("schema"));
  if (!schema.ok()) return Fail(schema.status());
  auto suite = dq::SuiteFromConfigFile(flags.at("suite"));
  if (!suite.ok()) return Fail(suite.status());
  auto tuples = ReadCsvFile(schema.ValueOrDie(), flags.at("input"), csv);
  if (!tuples.ok()) return Fail(tuples.status());
  auto result = suite.ValueOrDie().Validate(tuples.ValueOrDie());
  if (!result.ok()) return Fail(result.status());
  std::printf("%s", result.ValueOrDie().ToReport().c_str());
  return result.ValueOrDie().success() ? 0 : 1;
}

int RunGenerate(const std::map<std::string, std::string>& flags) {
  if (!flags.count("dataset") || !flags.count("output")) {
    std::fprintf(stderr, "generate: need --dataset and --output\n");
    return 2;
  }
  const std::string dataset = flags.at("dataset");
  const uint64_t seed = std::strtoull(
      FlagOr(flags, "seed", "0").c_str(), nullptr, 10);
  Result<TupleVector> tuples = Status::Internal("unset");
  SchemaPtr schema;
  if (dataset == "wearable") {
    data::WearableOptions options;
    if (seed != 0) options.seed = seed;
    tuples = data::GenerateWearable(options);
    schema = data::WearableSchema();
  } else if (dataset == "airquality") {
    data::AirQualityOptions options;
    if (seed != 0) options.seed = seed;
    if (flags.count("hours")) {
      options.hours = std::strtoull(flags.at("hours").c_str(), nullptr, 10);
    }
    options.station = FlagOr(flags, "station", options.station);
    tuples = data::GenerateAirQuality(options);
    schema = data::AirQualitySchema();
  } else {
    std::fprintf(stderr, "unknown dataset: '%s'\n", dataset.c_str());
    return 2;
  }
  if (!tuples.ok()) return Fail(tuples.status());
  Status st =
      WriteCsvFile(schema, tuples.ValueOrDie(), flags.at("output"));
  if (!st.ok()) return Fail(st);
  std::printf("wrote %zu tuples to %s\n", tuples.ValueOrDie().size(),
              flags.at("output").c_str());
  return 0;
}

int RunProfile(const std::map<std::string, std::string>& flags) {
  for (const char* required : {"schema", "input"}) {
    if (!flags.count(required)) {
      std::fprintf(stderr, "profile: missing --%s\n", required);
      return 2;
    }
  }
  CsvOptions csv;
  csv.null_repr = FlagOr(flags, "null-repr", "");
  auto schema = SchemaFromJsonFile(flags.at("schema"));
  if (!schema.ok()) return Fail(schema.status());
  auto tuples = ReadCsvFile(schema.ValueOrDie(), flags.at("input"), csv);
  if (!tuples.ok()) return Fail(tuples.status());
  auto profiles = dq::ProfileColumns(tuples.ValueOrDie());
  if (!profiles.ok()) return Fail(profiles.status());
  std::printf("%s", dq::ProfilesToReport(profiles.ValueOrDie()).c_str());
  if (flags.count("suggest-suite")) {
    auto suite = dq::SuggestSuite(tuples.ValueOrDie());
    if (!suite.ok()) return Fail(suite.status());
    // Round-trip sanity: validate the stream against its own suite.
    auto self_check = suite.ValueOrDie().Validate(tuples.ValueOrDie());
    if (!self_check.ok()) return Fail(self_check.status());
    Status st = WriteTextFile(flags.at("suggest-suite"),
                              suite.ValueOrDie().ToJson().DumpPretty());
    if (!st.ok()) return Fail(st);
    std::printf("\nwrote %zu suggested expectations to %s "
                "(self-check: %s)\n",
                suite.ValueOrDie().size(),
                flags.at("suggest-suite").c_str(),
                self_check.ValueOrDie().success() ? "pass" : "FAIL");
  }
  return 0;
}

int RunSchema(const std::map<std::string, std::string>& flags) {
  const std::string dataset = FlagOr(flags, "dataset", "");
  SchemaPtr schema;
  if (dataset == "wearable") {
    schema = data::WearableSchema();
  } else if (dataset == "airquality") {
    schema = data::AirQualitySchema();
  } else {
    std::fprintf(stderr, "unknown dataset: '%s'\n", dataset.c_str());
    return 2;
  }
  std::printf("%s\n", SchemaToJson(*schema).DumpPretty().c_str());
  return 0;
}

Result<Json> ReadJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return Json::Parse(buf.str());
}

int RunLint(const std::string& config_path,
            const std::map<std::string, std::string>& flags) {
  auto pipeline_json = ReadJsonFile(config_path);
  if (!pipeline_json.ok()) return Fail(pipeline_json.status());

  analysis::AnalyzeOptions options;
  if (flags.count("schema")) {
    auto schema = SchemaFromJsonFile(flags.at("schema"));
    if (!schema.ok()) return Fail(schema.status());
    options.schema = std::move(schema).ValueOrDie();
  }
  for (const char* bound : {"stream-start", "stream-end"}) {
    if (!flags.count(bound)) continue;
    const std::string& text = flags.at(bound);
    auto parsed = ParseTimestamp(text);
    Timestamp value;
    if (parsed.ok()) {
      value = parsed.ValueOrDie();
    } else {
      char* end = nullptr;
      value = std::strtoll(text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') return Fail(parsed.status());
    }
    if (std::strcmp(bound, "stream-start") == 0) {
      options.stream_start = value;
    } else {
      options.stream_end = value;
    }
  }

  Diagnostics diags;
  if (flags.count("suite")) {
    auto suite_json = ReadJsonFile(flags.at("suite"));
    if (!suite_json.ok()) return Fail(suite_json.status());
    diags = analysis::AnalyzeArtifacts(pipeline_json.ValueOrDie(),
                                       &suite_json.ValueOrDie(), options);
  } else {
    diags = analysis::AnalyzePipeline(pipeline_json.ValueOrDie(), options);
  }

  if (flags.count("json")) {
    std::printf("%s\n", diags.ToJson().DumpPretty().c_str());
  } else {
    std::printf("%s", diags.ToReport().c_str());
  }
  return diags.HasErrors() ? 1 : 0;
}

int RunScenario(const std::map<std::string, std::string>& flags) {
  if (!flags.count("scenario")) {
    std::fprintf(stderr, "run: missing --scenario\n");
    return 2;
  }
  const std::string name = flags.at("scenario");
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  const int parallelism = static_cast<int>(
      std::strtol(FlagOr(flags, "parallelism", "1").c_str(), nullptr, 10));

  // Resolve the scenario: pipeline, dataset, and (where the paper
  // defines one) the matching expectation suite.
  PollutionPipeline pipeline;
  std::optional<dq::ExpectationSuite> suite;
  Result<TupleVector> tuples = Status::Internal("unset");
  SchemaPtr schema;
  if (name == "random_temporal" || name == "software_update" ||
      name == "network_delay") {
    data::WearableOptions options;
    if (seed != 0) options.seed = seed;
    tuples = data::GenerateWearable(options);
    schema = data::WearableSchema();
    if (name == "random_temporal") {
      pipeline = scenarios::RandomTemporalErrorsPipeline();
      suite = scenarios::RandomTemporalErrorsSuite();
    } else if (name == "software_update") {
      pipeline = scenarios::SoftwareUpdatePipeline();
      suite = scenarios::SoftwareUpdateSuite();
    } else {
      pipeline = scenarios::NetworkDelayPipeline();
      suite = scenarios::NetworkDelaySuite();
    }
  } else if (name == "temporal_noise" || name == "temporal_scale") {
    data::AirQualityOptions options;
    if (seed != 0) options.seed = seed;
    tuples = data::GenerateAirQuality(options);
    schema = data::AirQualitySchema();
    if (name == "temporal_noise") {
      pipeline = scenarios::TemporalNoisePipeline(
          scenarios::AirQualityNumericAttributes(), 0.5);
    } else {
      pipeline = scenarios::TemporalScalePipeline(
          scenarios::AirQualityNumericAttributes(), 10.0, 0.1, 24);
    }
  } else {
    std::fprintf(stderr, "unknown scenario: '%s'\n", name.c_str());
    return 2;
  }
  if (!tuples.ok()) return Fail(tuples.status());
  TupleVector clean = std::move(tuples).ValueOrDie();
  if (clean.empty()) return Fail(Status::Internal("empty dataset"));

  // Stream bounds for stream-relative profiles (Equations 3/4).
  auto start_ts = clean.front().GetTimestamp();
  auto end_ts = clean.back().GetTimestamp();
  if (!start_ts.ok()) return Fail(start_ts.status());
  if (!end_ts.ok()) return Fail(end_ts.status());

  // Observability is opt-in: the registry/recorder are only wired into
  // the run when an export path asks for them, so a plain run pays
  // nothing but a null check per batch.
  obs::MetricRegistry registry;
  obs::TraceRecorder trace;
  obs::MetricRegistry* metrics_ptr =
      flags.count("metrics-out") ? &registry : nullptr;
  obs::TraceRecorder* trace_ptr = flags.count("trace-out") ? &trace : nullptr;

  const size_t clean_size = clean.size();
  VectorSource source(schema, std::move(clean));
  RuntimeStats stats;
  auto polluted = scenarios::ApplyPipelineStreaming(
      &source, pipeline, seed, parallelism, &stats, metrics_ptr, trace_ptr,
      start_ts.ValueOrDie(), end_ts.ValueOrDie());
  if (!polluted.ok()) return Fail(polluted.status());

  std::printf("scenario %s: %zu tuples in, %zu out (seed %llu, "
              "parallelism %d)\n",
              name.c_str(), clean_size, polluted.ValueOrDie().size(),
              static_cast<unsigned long long>(seed), parallelism);
  std::printf("%s\n", stats.ToString().c_str());

  if (suite.has_value()) {
    auto validation = suite->Validate(polluted.ValueOrDie());
    if (!validation.ok()) return Fail(validation.status());
    std::printf("%s", validation.ValueOrDie().ToReport().c_str());
    dq::PublishSuiteResult(validation.ValueOrDie(), suite->name(),
                           metrics_ptr);
  }

  if (flags.count("output")) {
    Status st =
        WriteCsvFile(schema, polluted.ValueOrDie(), flags.at("output"));
    if (!st.ok()) return Fail(st);
  }
  if (metrics_ptr != nullptr) {
    Status st =
        WriteTextFile(flags.at("metrics-out"), registry.ToPrometheusText());
    if (!st.ok()) return Fail(st);
    std::printf("wrote %zu metric series to %s\n", registry.size(),
                flags.at("metrics-out").c_str());
  }
  if (trace_ptr != nullptr) {
    Status st =
        WriteTextFile(flags.at("trace-out"), trace.ToChromeTraceJson());
    if (!st.ok()) return Fail(st);
    std::printf("wrote %zu trace events to %s\n", trace.size(),
                flags.at("trace-out").c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  std::map<std::string, std::string> flags;
  if (command == "lint") {
    // lint takes the pipeline as a positional argument.
    if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) return Usage();
    if (!ParseFlags(argc, argv, 3, &flags)) return Usage();
    return RunLint(argv[2], flags);
  }
  if (!ParseFlags(argc, argv, 2, &flags)) return Usage();
  if (command == "pollute") return RunPollute(flags);
  if (command == "validate") return RunValidate(flags);
  if (command == "generate") return RunGenerate(flags);
  if (command == "profile") return RunProfile(flags);
  if (command == "schema") return RunSchema(flags);
  if (command == "run") return RunScenario(flags);
  return Usage();
}
