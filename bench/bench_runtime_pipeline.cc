// Pipelined runtime vs. materializing execution. The materializing
// ParallelExecutor first buffers the entire stream, partitions it, runs
// the per-worker chains, and finally merges the per-worker outputs —
// three full materializations, and no overlap between producing the
// input and polluting it. The pipelined runtime runs source, workers,
// and sink concurrently over bounded channels, so (a) peak buffering is
// O(channel capacity x batch size x parallelism) regardless of stream
// length and (b) source-side work (parsing / generation / IO) overlaps
// with pollution.
//
// The harness streams a synthetic wearable-style stream from a
// GeneratorSource (generation cost models a real ingest stage) through
// identical pollution chains on both paths and reports throughput, the
// speedup of the pipelined path, and the runtime's peak channel
// buffering next to the stream length. Alongside the human-readable
// table it emits a machine-readable JSON report (BENCH_runtime.json in
// CI, validated by tools/check.sh bench) so the runtime perf trajectory
// lives in a tracked artifact.
//
// Usage: bench_runtime_pipeline [--tuples N] [--reps R] [--out PATH]

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/errors_numeric.h"
#include "core/polluter_operator.h"
#include "obs/metrics.h"
#include "stream/executor.h"
#include "stream/runtime.h"
#include "stream/sink.h"
#include "stream/source.h"
#include "util/json.h"

namespace {

using namespace icewafl;  // NOLINT

uint64_t kTuples = 300000;  // --tuples
constexpr int kPipelineLength = 12;
constexpr uint64_t kSeed = 0x1CE3AF1ULL;

int64_t IntFlag(int argc, char** argv, const char* name, int64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

std::string StringFlag(int argc, char** argv, const char* name,
                       const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

SchemaPtr WearableSchema() {
  return Schema::Make({{"ts", ValueType::kInt64},
                       {"heart_rate", ValueType::kDouble},
                       {"steps", ValueType::kInt64},
                       {"calories", ValueType::kDouble}},
                      "ts")
      .ValueOrDie();
}

/// Synthetic wearable-style tuple: diurnal heart-rate curve plus
/// activity bursts. The transcendental math models the per-tuple cost of
/// a real ingest stage (parsing, unit conversion).
Tuple MakeTuple(const SchemaPtr& schema, uint64_t i) {
  const double phase = static_cast<double>(i % 86400) / 86400.0;
  const double hr = 62.0 + 24.0 * std::sin(phase * 6.283185307179586) +
                    8.0 * std::cos(phase * 43.982297150257104);
  const auto steps =
      static_cast<int64_t>(40.0 + 35.0 * std::sin(phase * 12.566370614359172));
  const double calories = 0.04 * hr + 0.02 * static_cast<double>(steps);
  return Tuple(schema, {Value(static_cast<int64_t>(1456790400 + i * 60)),
                        Value(hr), Value(steps < 0 ? int64_t{0} : steps),
                        Value(calories)});
}

PollutionPipeline MakePipeline() {
  PollutionPipeline pipeline("bench");
  for (int i = 0; i < kPipelineLength; ++i) {
    pipeline.Add(std::make_unique<StandardPolluter>(
        "noise_" + std::to_string(i),
        std::make_unique<GaussianNoiseError>(0.75),
        std::make_unique<RandomCondition>(0.2),
        std::vector<std::string>{"heart_rate"}));
  }
  return pipeline;
}

ParallelExecutor::ChainFactory MakeFactory(
    obs::MetricRegistry* metrics = nullptr) {
  return [metrics](int worker) {
    OperatorChain chain;
    auto polluter = std::make_unique<PolluterOperator>(
        MakePipeline(), kSeed + static_cast<uint64_t>(worker));
    polluter->BindMetrics(metrics);
    chain.push_back(std::move(polluter));
    return chain;
  };
}

struct RunResult {
  double seconds = 0.0;
  uint64_t tuples = 0;
  uint64_t checksum = 0;
  uint64_t peak_buffered = 0;  // 0 = whole stream (materializing)
  uint64_t blocked_pushes = 0;
};

double Mtps(const RunResult& r) {
  // Sub-tick runs would divide by zero; report 0 rather than inf/nan.
  if (r.seconds <= 0.0) return 0.0;
  return static_cast<double>(r.tuples) / r.seconds / 1e6;
}

RunResult RunMaterializing(int parallelism) {
  SchemaPtr schema = WearableSchema();
  GeneratorSource source(schema, [&](uint64_t i) -> std::optional<Tuple> {
    if (i >= kTuples) return std::nullopt;
    return MakeTuple(schema, i);
  });
  CountingSink sink;
  ParallelExecutor executor(parallelism);
  const auto start = std::chrono::steady_clock::now();
  Status st = executor.RunMaterializing(&source, MakeFactory(), &sink);
  const auto end = std::chrono::steady_clock::now();
  if (!st.ok()) {
    std::fprintf(stderr, "materializing run failed: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  RunResult r;
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.tuples = sink.count();
  r.checksum = sink.checksum();
  return r;
}

RunResult RunPipelined(int parallelism,
                       obs::MetricRegistry* metrics = nullptr) {
  SchemaPtr schema = WearableSchema();
  GeneratorSource source(schema, [&](uint64_t i) -> std::optional<Tuple> {
    if (i >= kTuples) return std::nullopt;
    return MakeTuple(schema, i);
  });
  CountingSink sink;
  RuntimeOptions options;
  options.parallelism = parallelism;
  options.metrics = metrics;
  PipelineRuntime runtime(options);
  auto factory = MakeFactory(metrics);
  const auto start = std::chrono::steady_clock::now();
  Status st = runtime.Run(&source, factory, &sink);
  const auto end = std::chrono::steady_clock::now();
  if (!st.ok()) {
    std::fprintf(stderr, "pipelined run failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  RunResult r;
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.tuples = sink.count();
  r.checksum = sink.checksum();
  r.peak_buffered = runtime.stats().peak_buffered_tuples;
  r.blocked_pushes = runtime.stats().blocked_pushes;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  kTuples = static_cast<uint64_t>(
      IntFlag(argc, argv, "--tuples", static_cast<int64_t>(kTuples)));
  const int reps = static_cast<int>(IntFlag(argc, argv, "--reps", 7));
  const std::string out =
      StringFlag(argc, argv, "--out", "BENCH_runtime.json");

  std::printf("Pipelined runtime vs. materializing executor\n");
  std::printf("stream: %llu synthetic wearable tuples, pipeline length %d\n\n",
              static_cast<unsigned long long>(kTuples), kPipelineLength);

  // Warm-up (page in code and allocator arenas).
  (void)RunPipelined(1);

  std::printf("%-24s %4s %10s %10s %9s %14s %9s\n", "mode", "P", "seconds",
              "Mtuples/s", "speedup", "peak_buffered", "blocked");
  const RunResult base = RunMaterializing(4);
  std::printf("%-24s %4d %10.3f %10.2f %9s %14s %9s\n", "materializing", 4,
              base.seconds, Mtps(base), "1.00x", "whole stream", "-");

  double speedup_p4 = 0.0;
  Json pipelined_runs = Json::MakeArray();
  for (int p : {1, 2, 4}) {
    const RunResult r = RunPipelined(p);
    const double speedup = base.seconds / r.seconds;
    if (p == 4) speedup_p4 = speedup;
    std::printf("%-24s %4d %10.3f %10.2f %8.2fx %14llu %9llu\n", "pipelined",
                p, r.seconds, Mtps(r), speedup,
                static_cast<unsigned long long>(r.peak_buffered),
                static_cast<unsigned long long>(r.blocked_pushes));
    if (r.tuples != base.tuples) {
      std::fprintf(stderr, "tuple count mismatch: %llu vs %llu\n",
                   static_cast<unsigned long long>(r.tuples),
                   static_cast<unsigned long long>(base.tuples));
      return 1;
    }
    Json run = Json::MakeObject();
    run.Set("parallelism", Json(static_cast<int64_t>(p)));
    run.Set("seconds", Json(r.seconds));
    run.Set("mtuples_per_sec", Json(Mtps(r)));
    run.Set("speedup", Json(speedup));
    run.Set("peak_buffered_tuples",
            Json(static_cast<int64_t>(r.peak_buffered)));
    run.Set("blocked_pushes", Json(static_cast<int64_t>(r.blocked_pushes)));
    pipelined_runs.Append(std::move(run));
  }

  std::printf("\npipelined P=4 speedup over materializing P=4: %.2fx %s\n",
              speedup_p4, speedup_p4 >= 1.5 ? "(>= 1.5x target)" : "");

  // Latency distribution + instrumentation overhead. Repeated runs feed
  // an obs::Histogram so the report shows tail latency, not just one
  // sample; the instrumented column carries a live MetricRegistry
  // through the runtime and every polluter (the overhead contract in
  // DESIGN.md section 7 is <5% on this comparison).
  const std::vector<double> bounds = obs::ExponentialBounds(0.001, 16.0, 2.0);
  obs::Histogram plain(bounds);
  obs::Histogram instrumented(bounds);
  for (int i = 0; i < reps; ++i) {
    plain.Observe(RunPipelined(4).seconds);
    obs::MetricRegistry registry;
    instrumented.Observe(RunPipelined(4, &registry).seconds);
  }
  std::printf("\npipelined P=4 wall seconds over %d reps:\n", reps);
  std::printf("%-24s %10s %10s %10s %10s\n", "variant", "p50", "p95", "p99",
              "mean");
  for (const auto& [label, hist] :
       {std::pair<const char*, const obs::Histogram*>{"uninstrumented",
                                                      &plain},
        std::pair<const char*, const obs::Histogram*>{"instrumented",
                                                      &instrumented}}) {
    const double mean =
        hist->count() > 0 ? hist->sum() / static_cast<double>(hist->count())
                          : 0.0;
    std::printf("%-24s %10.4f %10.4f %10.4f %10.4f\n", label,
                hist->Quantile(0.5), hist->Quantile(0.95),
                hist->Quantile(0.99), mean);
  }
  const double plain_mean =
      plain.sum() / static_cast<double>(plain.count());
  const double inst_mean =
      instrumented.sum() / static_cast<double>(instrumented.count());
  const double overhead =
      plain_mean > 0.0 ? (inst_mean / plain_mean - 1.0) * 100.0 : 0.0;
  std::printf("instrumentation overhead on mean wall time: %+.1f%%\n",
              overhead);

  // The tracked artifact: same numbers as the tables above.
  Json latency = Json::MakeObject();
  for (const auto& [label, hist] :
       {std::pair<const char*, const obs::Histogram*>{"uninstrumented",
                                                      &plain},
        std::pair<const char*, const obs::Histogram*>{"instrumented",
                                                      &instrumented}}) {
    Json variant = Json::MakeObject();
    variant.Set("p50", Json(hist->Quantile(0.5)));
    variant.Set("p95", Json(hist->Quantile(0.95)));
    variant.Set("p99", Json(hist->Quantile(0.99)));
    variant.Set("mean",
                Json(hist->count() > 0
                         ? hist->sum() / static_cast<double>(hist->count())
                         : 0.0));
    latency.Set(label, std::move(variant));
  }

  Json materializing = Json::MakeObject();
  materializing.Set("parallelism", Json(static_cast<int64_t>(4)));
  materializing.Set("seconds", Json(base.seconds));
  materializing.Set("mtuples_per_sec", Json(Mtps(base)));

  Json report = Json::MakeObject();
  report.Set("bench", Json(std::string("runtime_pipeline")));
  report.Set("tuples", Json(static_cast<int64_t>(kTuples)));
  report.Set("pipeline_length", Json(static_cast<int64_t>(kPipelineLength)));
  report.Set("reps", Json(static_cast<int64_t>(reps)));
  report.Set("materializing", std::move(materializing));
  report.Set("pipelined", std::move(pipelined_runs));
  report.Set("speedup_p4", Json(speedup_p4));
  report.Set("wall_seconds_p4", std::move(latency));
  report.Set("instrumentation_overhead_pct", Json(overhead));

  const std::string text = report.DumpPretty() + "\n";
  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
