// Reproduces Figure 6: MAE over time for ARIMA, ARIMAX and Holt-Winters
// on the Wanshouxigong evaluation year polluted with temporally
// increasing multiplicative uniform noise (Equation 3). The expected
// shape: MAE grows strongly as the noise magnitude ramps up, and ARIMAX
// (which also sees the exogenous weather covariates) stays markedly more
// robust than the purely auto-regressive competitors.

#include "forecast_bench_common.h"

int main() {
  icewafl::bench::ForecastBenchOptions options;
  options.title =
      "Figure 6: temporally increasing noise (D_noise, Wanshouxigong)";
  options.paper_shape =
      "MAE rises steeply over the year; arimax clearly most robust";
  options.pipeline_factory = [] {
    return icewafl::scenarios::TemporalNoisePipeline(
        icewafl::scenarios::AirQualityNumericAttributes(), /*pi_max=*/2.0);
  };
  return icewafl::bench::RunForecastBenchAllRegions(options);
}
