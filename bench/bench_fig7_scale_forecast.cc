// Reproduces Figure 7: MAE over time for ARIMA, ARIMAX and Holt-Winters
// on the Wanshouxigong evaluation year polluted with temporally
// increasing scale errors (factor 0.125 for four-hour intervals, gated
// by a 0.01 prior probability AND the activation ramp of Equation 4).
// Expected shape: a mild upward trend, with all three methods behaving
// similarly (ARIMAX only slightly better early on).

#include "forecast_bench_common.h"

int main() {
  icewafl::bench::ForecastBenchOptions options;
  options.title =
      "Figure 7: temporally increasing scale errors (D_scale, "
      "Wanshouxigong)";
  options.paper_shape =
      "mild MAE growth; all three methods behave very similarly";
  options.pipeline_factory = [] {
    return icewafl::scenarios::TemporalScalePipeline(
        icewafl::scenarios::AirQualityNumericAttributes(), /*factor=*/0.125,
        /*prior=*/0.01, /*hold_hours=*/4);
  };
  return icewafl::bench::RunForecastBenchAllRegions(options);
}
