// Serving-core benchmark (ROADMAP item 5b): sessions × subscribers
// fan-out throughput of the multi-tenant PollutionServer over loopback
// TCP, with send-latency percentiles from the server's own
// `icewafl_server_send_latency_seconds` histograms. Emits a
// machine-readable JSON report (BENCH_net.json in CI) so the serving
// perf trajectory lives in a tracked file rather than log scrollback.
//
// Usage: bench_net_server [--sessions N] [--subscribers M]
//                         [--tuples T] [--out PATH]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/net_metrics.h"
#include "stream/schema.h"
#include "stream/sink.h"
#include "stream/tuple.h"
#include "util/json.h"

namespace {

using namespace icewafl;  // NOLINT

SchemaPtr BenchSchema() {
  auto schema = Schema::Make({{"t", ValueType::kInt64},
                              {"bpm", ValueType::kDouble},
                              {"label", ValueType::kString}},
                             "t");
  return schema.ValueOrDie();
}

/// One run: `count` synthetic wearable-ish tuples (~40 wire bytes each).
net::PollutionServer::SessionFn MakeBenchSession(SchemaPtr schema,
                                                 int64_t count) {
  return [schema, count](const PlanContext&, Sink* sink) {
    for (int64_t i = 0; i < count; ++i) {
      Tuple tuple(schema, {Value(i), Value(60.0 + (i % 40)),
                           Value(std::string("beat"))});
      tuple.set_id(static_cast<TupleId>(i));
      tuple.set_event_time(i);
      ICEWAFL_RETURN_NOT_OK(sink->Write(tuple));
    }
    return Status::OK();
  };
}

/// Drains one subscription; returns tuples received (0 on error).
uint64_t Drain(uint16_t port, const std::string& session_id) {
  auto client = net::StreamClient::Connect("127.0.0.1", port, session_id);
  if (!client.ok()) {
    std::fprintf(stderr, "subscriber failed: %s\n",
                 client.status().ToString().c_str());
    return 0;
  }
  Tuple tuple;
  while (true) {
    auto next = client.ValueOrDie()->Next(&tuple);
    if (!next.ok()) {
      std::fprintf(stderr, "subscriber failed: %s\n",
                   next.status().ToString().c_str());
      return 0;
    }
    if (!next.ValueOrDie()) break;
  }
  return client.ValueOrDie()->tuples_received();
}

/// Quantile over the merged per-session latency buckets — the same
/// linear interpolation obs::Histogram::Quantile applies to one series.
double MergedQuantile(const std::vector<double>& bounds,
                      const std::vector<uint64_t>& buckets, uint64_t total,
                      double q) {
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t before = seen;
    seen += buckets[i];
    if (static_cast<double>(seen) < rank) continue;
    if (i >= bounds.size()) return bounds.back();  // +Inf bucket clamps
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double fraction =
        (rank - static_cast<double>(before)) / static_cast<double>(buckets[i]);
    return lo + (bounds[i] - lo) * fraction;
  }
  return bounds.back();
}

int64_t IntFlag(int argc, char** argv, const char* name, int64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

std::string StringFlag(int argc, char** argv, const char* name,
                       const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t sessions = IntFlag(argc, argv, "--sessions", 3);
  const int64_t subscribers = IntFlag(argc, argv, "--subscribers", 4);
  const int64_t tuples = IntFlag(argc, argv, "--tuples", 20000);
  const std::string out = StringFlag(argc, argv, "--out", "BENCH_net.json");

  SchemaPtr schema = BenchSchema();
  obs::MetricRegistry registry;
  net::ServerOptions options;
  options.metrics = &registry;
  net::PollutionServer server(options);
  std::vector<std::string> names;
  for (int64_t s = 0; s < sessions; ++s) {
    names.push_back("bench" + std::to_string(s));
    net::SessionOptions session;
    session.min_subscribers = static_cast<int>(subscribers);
    session.max_runs = 1;
    Status st = server.AddSession(names.back(), schema,
                                  MakeBenchSession(schema, tuples), session);
    if (!st.ok()) {
      std::fprintf(stderr, "AddSession: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "Start: %s\n", st.ToString().c_str());
    return 1;
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> tails;
  std::vector<uint64_t> received(
      static_cast<size_t>(sessions * subscribers), 0);
  for (int64_t s = 0; s < sessions; ++s) {
    for (int64_t i = 0; i < subscribers; ++i) {
      const size_t slot = static_cast<size_t>(s * subscribers + i);
      const std::string name = names[static_cast<size_t>(s)];
      tails.emplace_back(
          [&, slot, name] { received[slot] = Drain(server.port(), name); });
    }
  }
  for (std::thread& t : tails) t.join();
  st = server.Wait();
  const auto t1 = std::chrono::steady_clock::now();
  if (!st.ok()) {
    std::fprintf(stderr, "Wait: %s\n", st.ToString().c_str());
    return 1;
  }
  uint64_t fanned_out = 0;
  for (const uint64_t r : received) fanned_out += r;
  if (fanned_out !=
      static_cast<uint64_t>(sessions) * static_cast<uint64_t>(subscribers) *
          static_cast<uint64_t>(tuples)) {
    std::fprintf(stderr, "short fan-out: %llu tuples received\n",
                 static_cast<unsigned long long>(fanned_out));
    return 1;
  }
  const double wall =
      std::chrono::duration<double>(t1 - t0).count();

  // Merge the per-session send-latency histograms (identical bounds).
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;
  uint64_t observations = 0;
  for (const std::string& name : names) {
    obs::SessionMetrics metrics = obs::SessionMetrics::Bind(&registry, name);
    if (bounds.empty()) {
      bounds = metrics.send_latency->bounds();
      buckets.assign(bounds.size() + 1, 0);
    }
    const std::vector<uint64_t> counts =
        metrics.send_latency->BucketCounts();
    for (size_t i = 0; i < counts.size(); ++i) buckets[i] += counts[i];
    observations += metrics.send_latency->count();
  }

  const uint64_t bytes_sent =
      obs::ServerMetrics::Bind(&registry).bytes_sent->value();

  Json latency = Json::MakeObject();
  latency.Set("observations", Json(static_cast<int64_t>(observations)));
  latency.Set("p50", Json(MergedQuantile(bounds, buckets, observations, 0.5)));
  latency.Set("p90", Json(MergedQuantile(bounds, buckets, observations, 0.9)));
  latency.Set("p99",
              Json(MergedQuantile(bounds, buckets, observations, 0.99)));

  Json report = Json::MakeObject();
  report.Set("bench", Json(std::string("net_server_fanout")));
  report.Set("sessions", Json(sessions));
  report.Set("subscribers_per_session", Json(subscribers));
  report.Set("tuples_per_run", Json(tuples));
  report.Set("wall_seconds", Json(wall));
  report.Set("tuples_fanned_out", Json(static_cast<int64_t>(fanned_out)));
  report.Set("fanout_tuples_per_sec",
             Json(static_cast<double>(fanned_out) / wall));
  report.Set("bytes_sent", Json(static_cast<int64_t>(bytes_sent)));
  report.Set("bytes_per_sec", Json(static_cast<double>(bytes_sent) / wall));
  report.Set("send_latency_seconds", std::move(latency));

  const std::string text = report.DumpPretty() + "\n";
  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  std::printf("%s", text.c_str());
  return 0;
}
