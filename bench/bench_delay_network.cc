// Reproduces the Section 3.1.3 "bad network connection" numbers: tuples
// between 13:00 and 14:59 are delayed by one hour with probability 0.2.
// The stream contains 88 tuples in that window, so ~17.6 delays are
// expected per run; the DQ engine detects them as violations of the
// increasing-timestamp expectation (paper: 17.02 measured on average —
// slightly under the injected count because some delayed tuples land in
// positions that do not break monotonicity).

#include <cstdio>

#include "core/process.h"
#include "data/wearable.h"
#include "scenarios/scenarios.h"

namespace {

using namespace icewafl;  // NOLINT

constexpr int kRepetitions = 50;

int Run() {
  auto stream = data::GenerateWearable();
  if (!stream.ok()) {
    std::fprintf(stderr, "wearable generation failed: %s\n",
                 stream.status().ToString().c_str());
    return 1;
  }
  const TupleVector clean = std::move(stream).ValueOrDie();
  SchemaPtr schema = clean.front().schema();

  int in_window = 0;
  for (const Tuple& t : clean) {
    const int minute = MinuteOfDay(t.GetTimestamp().ValueOrDie());
    if (minute >= 13 * 60 && minute <= 14 * 60 + 59) ++in_window;
  }

  const dq::ExpectationSuite suite = scenarios::NetworkDelaySuite();
  double injected = 0.0;
  double measured = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    VectorSource source(schema, clean);
    auto result = PollutionProcess::Pollute(
        &source, scenarios::NetworkDelayPipeline(),
        /*seed=*/3000 + static_cast<uint64_t>(rep));
    if (!result.ok()) {
      std::fprintf(stderr, "pollution failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    injected += static_cast<double>(result.ValueOrDie().log.size());
    auto validation = suite.Validate(result.ValueOrDie().polluted);
    if (!validation.ok()) {
      std::fprintf(stderr, "validation failed: %s\n",
                   validation.status().ToString().c_str());
      return 1;
    }
    measured +=
        static_cast<double>(validation.ValueOrDie().TotalUnexpected());
  }
  injected /= kRepetitions;
  measured /= kRepetitions;

  std::printf("=== Section 3.1.3: bad network connection ===\n");
  std::printf("tuples in 13:00-14:59 window: %d (paper: 88)\n", in_window);
  std::printf("expected delayed tuples/run:  %.1f (paper: 17.6)\n",
              0.2 * in_window);
  std::printf("injected delays/run (log):    %.2f\n", injected);
  std::printf("measured via increasing-timestamp expectation: %.2f "
              "(paper: 17.02)\n",
              measured);
  std::printf("repetitions: %d\n", kRepetitions);
  return 0;
}

}  // namespace

int main() { return Run(); }
