// Extension experiment (beyond the paper): localizing the onset of
// pollution with a concept-drift detector. Icewafl injects noise into
// the air-quality stream starting abruptly at a known event time; a
// Page-Hinkley detector monitoring the absolute one-step-ahead residuals
// of a seasonal-naive forecaster should fire shortly after the onset —
// closing the loop between the pollution model (which *creates* drift)
// and drift-adaptation tooling (which must *detect* it).

#include <cstdio>

#include "core/derived_error.h"
#include "core/errors_numeric.h"
#include "core/process.h"
#include "data/airquality.h"
#include "forecast/drift.h"
#include "forecast/seasonal_naive.h"
#include "scenarios/scenarios.h"

namespace {

using namespace icewafl;  // NOLINT

constexpr int kRepetitions = 20;

int Run() {
  data::AirQualityOptions options;
  options.hours = 24 * 120;  // 120 days
  auto stream = data::GenerateAirQuality(options);
  if (!stream.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }
  const TupleVector& clean = stream.ValueOrDie();
  // Pollution begins abruptly at day 60.
  const Timestamp onset = clean.front().GetTimestamp().ValueOrDie() +
                          60 * kSecondsPerDay;

  std::printf("=== Extension: drift detection of pollution onset ===\n");
  std::printf("stream: %zu hourly tuples; noise onset at t+%d days\n\n",
              clean.size(), 60);

  double total_delay = 0.0;
  int detected = 0;
  int false_alarms = 0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    // Abrupt-onset multiplicative noise on NO2 only.
    PollutionPipeline pipeline("abrupt_noise");
    pipeline.Add(std::make_unique<StandardPolluter>(
        "noise_after_onset",
        std::make_unique<DerivedTemporalError>(
            std::make_unique<UniformNoiseError>(0.0, 0.8),
            std::make_unique<AbruptProfile>(onset)),
        std::make_unique<AlwaysCondition>(),
        std::vector<std::string>{"NO2"}));
    VectorSource source(clean.front().schema(), clean);
    auto result = PollutionProcess::Pollute(
        &source, std::move(pipeline), 7000 + static_cast<uint64_t>(rep),
        /*enable_log=*/false);
    if (!result.ok()) {
      std::fprintf(stderr, "pollution failed\n");
      return 1;
    }
    auto no2 =
        data::ColumnAsDoubles(result.ValueOrDie().polluted, "NO2");
    if (!no2.ok()) return 1;

    forecast::SeasonalNaive model(24);
    forecast::PageHinkley detector(/*delta=*/2.5, /*lambda=*/500.0,
                                   /*min_observations=*/48);
    Timestamp detected_at = -1;
    for (size_t i = 0; i < no2.ValueOrDie().size(); ++i) {
      const double y = no2.ValueOrDie()[i];
      double residual = 0.0;
      if (i >= 24) {
        auto forecast_one = model.Forecast(1);
        if (!forecast_one.ok()) return 1;
        residual = std::abs(y - forecast_one.ValueOrDie()[0]);
      }
      const Timestamp now =
          result.ValueOrDie().polluted[i].GetTimestamp().ValueOrDie();
      if (detector.Update(residual) && detected_at < 0) {
        detected_at = now;
        if (now < onset) ++false_alarms;
      }
      model.LearnOne(y);
    }
    if (detected_at >= onset) {
      ++detected;
      total_delay += HoursBetween(onset, detected_at);
    }
  }

  std::printf("runs with detection after the true onset: %d/%d\n", detected,
              kRepetitions);
  std::printf("false alarms before onset:                %d\n", false_alarms);
  if (detected > 0) {
    std::printf("mean detection delay:                     %.1f hours\n",
                total_delay / detected);
  }
  std::printf("\nexpected shape: near-zero false alarms on 60 clean days,\n"
              "detection within a few days of the onset.\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
