// Ablation A1: single-polluter throughput. Measures tuples/second for
// each error-function family and each condition type in isolation, so
// the cost structure behind Figure 8's end-to-end overhead is visible.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "core/composite_polluter.h"
#include "core/derived_error.h"
#include "core/errors_numeric.h"
#include "core/errors_temporal.h"
#include "core/errors_value.h"
#include "core/keyed_polluter_operator.h"
#include "core/pipeline.h"
#include "data/wearable.h"
#include "stream/bind.h"

namespace {

using namespace icewafl;  // NOLINT

const TupleVector& WearableStream() {
  static const TupleVector stream = [] {
    auto generated = data::GenerateWearable();
    return std::move(generated).ValueOrDie();
  }();
  return stream;
}

/// Drives one polluter over the wearable stream repeatedly. The polluter
/// is bound once up front (two-phase lifecycle, DESIGN.md section 8) so
/// the loop measures the indexed per-tuple path.
void RunPolluter(benchmark::State& state, PolluterPtr polluter) {
  const TupleVector& stream = WearableStream();
  BindContext bind_ctx(*stream.front().schema());
  if (Status bound = polluter->Bind(bind_ctx); !bound.ok()) {
    state.SkipWithError(bound.ToString().c_str());
    return;
  }
  Rng master(1);
  polluter->Seed(&master);
  PollutionContext ctx;
  ctx.stream_start = stream.front().GetTimestamp().ValueOrDie();
  ctx.stream_end = stream.back().GetTimestamp().ValueOrDie();
  for (auto _ : state) {
    for (const Tuple& original : stream) {
      Tuple t = original;
      t.set_event_time(t.GetTimestamp().ValueOrDie());
      t.set_arrival_time(t.event_time());
      ctx.tau = t.event_time();
      ctx.severity = 1.0;
      ctx.rng = nullptr;
      Status st = polluter->Pollute(&t, &ctx, nullptr);
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
      benchmark::DoNotOptimize(t);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}

PolluterPtr Standard(ErrorFunctionPtr error, ConditionPtr condition,
                     std::vector<std::string> attrs) {
  return std::make_unique<StandardPolluter>("bench", std::move(error),
                                            std::move(condition),
                                            std::move(attrs));
}

void BM_GaussianNoise(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<GaussianNoiseError>(1.0),
                       std::make_unique<AlwaysCondition>(), {"BPM"}));
}
BENCHMARK(BM_GaussianNoise);

void BM_UniformNoise(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<UniformNoiseError>(0.0, 0.5),
                       std::make_unique<AlwaysCondition>(), {"BPM"}));
}
BENCHMARK(BM_UniformNoise);

void BM_Scale(benchmark::State& state) {
  RunPolluter(state, Standard(std::make_unique<ScaleError>(0.125),
                              std::make_unique<AlwaysCondition>(), {"BPM"}));
}
BENCHMARK(BM_Scale);

void BM_MissingValue(benchmark::State& state) {
  RunPolluter(state, Standard(std::make_unique<MissingValueError>(),
                              std::make_unique<AlwaysCondition>(), {"BPM"}));
}
BENCHMARK(BM_MissingValue);

void BM_Round(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<RoundError>(2),
                       std::make_unique<AlwaysCondition>(),
                       {"CaloriesBurned"}));
}
BENCHMARK(BM_Round);

void BM_Delay(benchmark::State& state) {
  RunPolluter(state, Standard(std::make_unique<DelayError>(3600),
                              std::make_unique<AlwaysCondition>(), {}));
}
BENCHMARK(BM_Delay);

void BM_FrozenValue(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<FrozenValueError>(3600),
                       std::make_unique<RandomCondition>(0.1), {"BPM"}));
}
BENCHMARK(BM_FrozenValue);

void BM_DerivedNoiseRamp(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<DerivedTemporalError>(
                           std::make_unique<GaussianNoiseError>(1.0),
                           std::make_unique<StreamRampProfile>()),
                       std::make_unique<AlwaysCondition>(), {"BPM"}));
}
BENCHMARK(BM_DerivedNoiseRamp);

void BM_ConditionRandom(benchmark::State& state) {
  RunPolluter(state, Standard(std::make_unique<MissingValueError>(),
                              std::make_unique<RandomCondition>(0.2),
                              {"BPM"}));
}
BENCHMARK(BM_ConditionRandom);

void BM_ConditionValue(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<MissingValueError>(),
                       std::make_unique<ValueCondition>(
                           "BPM", CompareOp::kGt, Value(100.0)),
                       {"BPM"}));
}
BENCHMARK(BM_ConditionValue);

void BM_ConditionSinusoidalProfile(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<MissingValueError>(),
                       std::make_unique<ProfileProbabilityCondition>(
                           std::make_unique<SinusoidalProfile>(24, 0.25,
                                                               0.25)),
                       {"BPM"}));
}
BENCHMARK(BM_ConditionSinusoidalProfile);

void BM_ConditionComposite(benchmark::State& state) {
  std::vector<ConditionPtr> children;
  children.push_back(std::make_unique<DailyWindowCondition>(780, 899));
  children.push_back(std::make_unique<RandomCondition>(0.2));
  RunPolluter(state,
              Standard(std::make_unique<MissingValueError>(),
                       std::make_unique<AndCondition>(std::move(children)),
                       {"BPM"}));
}
BENCHMARK(BM_ConditionComposite);

void BM_CompositeSequential(benchmark::State& state) {
  auto composite = std::make_unique<SequentialPolluter>(
      "composite", std::make_unique<AlwaysCondition>());
  composite->Register(Standard(std::make_unique<ScaleError>(2.0),
                               std::make_unique<AlwaysCondition>(),
                               {"Distance"}));
  composite->Register(Standard(std::make_unique<RoundError>(2),
                               std::make_unique<AlwaysCondition>(),
                               {"CaloriesBurned"}));
  RunPolluter(state, std::move(composite));
}
BENCHMARK(BM_CompositeSequential);

// ---------------------------------------------------------------------------
// Keyed pollution: per-partition pipeline clones sharing the bound plan.

SchemaPtr KeyedSchema() {
  return Schema::Make({{"ts", ValueType::kInt64},
                       {"sensor", ValueType::kString},
                       {"temp", ValueType::kDouble}},
                      "ts")
      .ValueOrDie();
}

/// 16k readings interleaved round-robin over eight sensors.
const TupleVector& KeyedStream() {
  static const TupleVector stream = [] {
    const SchemaPtr schema = KeyedSchema();
    const char* kSensors[] = {"s0", "s1", "s2", "s3",
                              "s4", "s5", "s6", "s7"};
    TupleVector tuples;
    tuples.reserve(16384);
    for (int i = 0; i < 16384; ++i) {
      tuples.emplace_back(
          schema,
          std::vector<Value>{Value(int64_t{60} * i), Value(kSensors[i % 8]),
                             Value(20.0 + (i % 100) * 0.1)});
    }
    return tuples;
  }();
  return stream;
}

/// A conditioned noise pipeline, bound against the keyed schema so every
/// per-key clone inherits the compiled plan.
PollutionPipeline KeyedPipeline() {
  PollutionPipeline pipeline("keyed");
  pipeline.Add(std::make_unique<StandardPolluter>(
      "noise", std::make_unique<GaussianNoiseError>(0.5),
      std::make_unique<ValueCondition>("temp", CompareOp::kGt, Value(25.0)),
      std::vector<std::string>{"temp"}));
  Status bound = pipeline.Bind(KeyedStream().front().schema());
  if (!bound.ok()) {
    std::fprintf(stderr, "keyed pipeline bind failed: %s\n",
                 bound.ToString().c_str());
    std::abort();
  }
  return pipeline;
}

class DiscardEmitter : public Emitter {
 public:
  Status Emit(Tuple tuple) override {
    benchmark::DoNotOptimize(tuple);
    ++count_;
    return Status::OK();
  }
  size_t count() const { return count_; }

 private:
  size_t count_ = 0;
};

void BM_KeyedPolluter(benchmark::State& state) {
  const TupleVector& stream = KeyedStream();
  KeyedPolluterOperator op(KeyedPipeline(), "sensor", /*seed=*/7);
  DiscardEmitter out;
  for (auto _ : state) {
    TupleVector batch = stream;
    Status st = op.ProcessBatch(&batch, &out);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  if (op.num_partitions() != 8) {
    state.SkipWithError("keyed partitioning broke: expected 8 partitions");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_KeyedPolluter);

/// Throughput assertion for the keyed path: keying must cost no more
/// than one transparent-hash probe plus id assignment per tuple, so a
/// full keyed pass has to stay within 4x of the direct (unkeyed) pass
/// over the same stream. The ratio of two passes measured back-to-back
/// in the same process is robust to machine load, unlike an absolute
/// tuples/second floor. A regression (say, re-introducing a per-tuple
/// key copy through Result<Value>) fails the binary, which fails the
/// bench-smoke CI job.
bool KeyedOverheadWithinBudget() {
  const TupleVector& stream = KeyedStream();
  const auto best_of = [](auto&& pass) {
    double best = 1e100;
    for (int rep = 0; rep < 5; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      pass();
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() < best) best = elapsed.count();
    }
    return best;
  };

  PollutionPipeline direct = KeyedPipeline();
  direct.Seed(7);
  PollutionContext ctx;
  ctx.stream_start = stream.front().GetTimestamp().ValueOrDie();
  ctx.stream_end = stream.back().GetTimestamp().ValueOrDie();
  const double direct_seconds = best_of([&] {
    for (const Tuple& original : stream) {
      Tuple t = original;
      t.set_event_time(t.GetTimestamp().ValueOrDie());
      t.set_arrival_time(t.event_time());
      ctx.tau = t.event_time();
      ctx.severity = 1.0;
      ctx.rng = nullptr;
      Status st = direct.Apply(&t, &ctx, nullptr);
      if (!st.ok()) std::abort();
      benchmark::DoNotOptimize(t);
    }
  });

  KeyedPolluterOperator op(KeyedPipeline(), "sensor", /*seed=*/7);
  DiscardEmitter out;
  const double keyed_seconds = best_of([&] {
    TupleVector batch = stream;
    Status st = op.ProcessBatch(&batch, &out);
    if (!st.ok()) std::abort();
  });

  const double ratio = keyed_seconds / direct_seconds;
  std::fprintf(stderr,
               "keyed-overhead check: direct=%.3fms keyed=%.3fms "
               "ratio=%.2fx (budget 4x)\n",
               direct_seconds * 1e3, keyed_seconds * 1e3, ratio);
  if (ratio > 4.0) {
    std::fprintf(stderr,
                 "FAIL: keyed pollution is %.2fx slower than the direct "
                 "pipeline (budget 4x) — per-tuple key handling regressed\n",
                 ratio);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!KeyedOverheadWithinBudget()) return 2;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
