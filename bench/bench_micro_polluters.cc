// Ablation A1: single-polluter throughput. Measures tuples/second for
// each error-function family and each condition type in isolation, so
// the cost structure behind Figure 8's end-to-end overhead is visible.

#include <benchmark/benchmark.h>

#include "core/composite_polluter.h"
#include "core/derived_error.h"
#include "core/errors_numeric.h"
#include "core/errors_temporal.h"
#include "core/errors_value.h"
#include "core/pipeline.h"
#include "data/wearable.h"

namespace {

using namespace icewafl;  // NOLINT

const TupleVector& WearableStream() {
  static const TupleVector stream = [] {
    auto generated = data::GenerateWearable();
    return std::move(generated).ValueOrDie();
  }();
  return stream;
}

/// Drives one polluter over the wearable stream repeatedly.
void RunPolluter(benchmark::State& state, PolluterPtr polluter) {
  const TupleVector& stream = WearableStream();
  Rng master(1);
  polluter->Seed(&master);
  PollutionContext ctx;
  ctx.stream_start = stream.front().GetTimestamp().ValueOrDie();
  ctx.stream_end = stream.back().GetTimestamp().ValueOrDie();
  for (auto _ : state) {
    for (const Tuple& original : stream) {
      Tuple t = original;
      t.set_event_time(t.GetTimestamp().ValueOrDie());
      t.set_arrival_time(t.event_time());
      ctx.tau = t.event_time();
      ctx.severity = 1.0;
      ctx.rng = nullptr;
      Status st = polluter->Pollute(&t, &ctx, nullptr);
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
      benchmark::DoNotOptimize(t);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}

PolluterPtr Standard(ErrorFunctionPtr error, ConditionPtr condition,
                     std::vector<std::string> attrs) {
  return std::make_unique<StandardPolluter>("bench", std::move(error),
                                            std::move(condition),
                                            std::move(attrs));
}

void BM_GaussianNoise(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<GaussianNoiseError>(1.0),
                       std::make_unique<AlwaysCondition>(), {"BPM"}));
}
BENCHMARK(BM_GaussianNoise);

void BM_UniformNoise(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<UniformNoiseError>(0.0, 0.5),
                       std::make_unique<AlwaysCondition>(), {"BPM"}));
}
BENCHMARK(BM_UniformNoise);

void BM_Scale(benchmark::State& state) {
  RunPolluter(state, Standard(std::make_unique<ScaleError>(0.125),
                              std::make_unique<AlwaysCondition>(), {"BPM"}));
}
BENCHMARK(BM_Scale);

void BM_MissingValue(benchmark::State& state) {
  RunPolluter(state, Standard(std::make_unique<MissingValueError>(),
                              std::make_unique<AlwaysCondition>(), {"BPM"}));
}
BENCHMARK(BM_MissingValue);

void BM_Round(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<RoundError>(2),
                       std::make_unique<AlwaysCondition>(),
                       {"CaloriesBurned"}));
}
BENCHMARK(BM_Round);

void BM_Delay(benchmark::State& state) {
  RunPolluter(state, Standard(std::make_unique<DelayError>(3600),
                              std::make_unique<AlwaysCondition>(), {}));
}
BENCHMARK(BM_Delay);

void BM_FrozenValue(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<FrozenValueError>(3600),
                       std::make_unique<RandomCondition>(0.1), {"BPM"}));
}
BENCHMARK(BM_FrozenValue);

void BM_DerivedNoiseRamp(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<DerivedTemporalError>(
                           std::make_unique<GaussianNoiseError>(1.0),
                           std::make_unique<StreamRampProfile>()),
                       std::make_unique<AlwaysCondition>(), {"BPM"}));
}
BENCHMARK(BM_DerivedNoiseRamp);

void BM_ConditionRandom(benchmark::State& state) {
  RunPolluter(state, Standard(std::make_unique<MissingValueError>(),
                              std::make_unique<RandomCondition>(0.2),
                              {"BPM"}));
}
BENCHMARK(BM_ConditionRandom);

void BM_ConditionValue(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<MissingValueError>(),
                       std::make_unique<ValueCondition>(
                           "BPM", CompareOp::kGt, Value(100.0)),
                       {"BPM"}));
}
BENCHMARK(BM_ConditionValue);

void BM_ConditionSinusoidalProfile(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<MissingValueError>(),
                       std::make_unique<ProfileProbabilityCondition>(
                           std::make_unique<SinusoidalProfile>(24, 0.25,
                                                               0.25)),
                       {"BPM"}));
}
BENCHMARK(BM_ConditionSinusoidalProfile);

void BM_ConditionComposite(benchmark::State& state) {
  std::vector<ConditionPtr> children;
  children.push_back(std::make_unique<DailyWindowCondition>(780, 899));
  children.push_back(std::make_unique<RandomCondition>(0.2));
  RunPolluter(state,
              Standard(std::make_unique<MissingValueError>(),
                       std::make_unique<AndCondition>(std::move(children)),
                       {"BPM"}));
}
BENCHMARK(BM_ConditionComposite);

void BM_CompositeSequential(benchmark::State& state) {
  auto composite = std::make_unique<SequentialPolluter>(
      "composite", std::make_unique<AlwaysCondition>());
  composite->Register(Standard(std::make_unique<ScaleError>(2.0),
                               std::make_unique<AlwaysCondition>(),
                               {"Distance"}));
  composite->Register(Standard(std::make_unique<RoundError>(2),
                               std::make_unique<AlwaysCondition>(),
                               {"CaloriesBurned"}));
  RunPolluter(state, std::move(composite));
}
BENCHMARK(BM_CompositeSequential);

}  // namespace

BENCHMARK_MAIN();
