// Ablation A1: single-polluter throughput. Measures tuples/second for
// each error-function family and each condition type in isolation, so
// the cost structure behind Figure 8's end-to-end overhead is visible.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/composite_polluter.h"
#include "core/derived_error.h"
#include "core/errors_numeric.h"
#include "core/errors_temporal.h"
#include "core/errors_value.h"
#include "core/keyed_polluter_operator.h"
#include "core/pipeline.h"
#include "data/wearable.h"
#include "stream/batch.h"
#include "stream/bind.h"
#include "util/json.h"

namespace {

using namespace icewafl;  // NOLINT

const TupleVector& WearableStream() {
  static const TupleVector stream = [] {
    auto generated = data::GenerateWearable();
    return std::move(generated).ValueOrDie();
  }();
  return stream;
}

/// Drives one polluter over the wearable stream repeatedly. The polluter
/// is bound once up front (two-phase lifecycle, DESIGN.md section 8) so
/// the loop measures the indexed per-tuple path.
void RunPolluter(benchmark::State& state, PolluterPtr polluter) {
  const TupleVector& stream = WearableStream();
  BindContext bind_ctx(*stream.front().schema());
  if (Status bound = polluter->Bind(bind_ctx); !bound.ok()) {
    state.SkipWithError(bound.ToString().c_str());
    return;
  }
  Rng master(1);
  polluter->Seed(&master);
  PollutionContext ctx;
  ctx.stream_start = stream.front().GetTimestamp().ValueOrDie();
  ctx.stream_end = stream.back().GetTimestamp().ValueOrDie();
  for (auto _ : state) {
    for (const Tuple& original : stream) {
      Tuple t = original;
      t.set_event_time(t.GetTimestamp().ValueOrDie());
      t.set_arrival_time(t.event_time());
      ctx.tau = t.event_time();
      ctx.severity = 1.0;
      ctx.rng = nullptr;
      Status st = polluter->Pollute(&t, &ctx, nullptr);
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
      benchmark::DoNotOptimize(t);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}

PolluterPtr Standard(ErrorFunctionPtr error, ConditionPtr condition,
                     std::vector<std::string> attrs) {
  return std::make_unique<StandardPolluter>("bench", std::move(error),
                                            std::move(condition),
                                            std::move(attrs));
}

void BM_GaussianNoise(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<GaussianNoiseError>(1.0),
                       std::make_unique<AlwaysCondition>(), {"BPM"}));
}
BENCHMARK(BM_GaussianNoise);

void BM_UniformNoise(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<UniformNoiseError>(0.0, 0.5),
                       std::make_unique<AlwaysCondition>(), {"BPM"}));
}
BENCHMARK(BM_UniformNoise);

void BM_Scale(benchmark::State& state) {
  RunPolluter(state, Standard(std::make_unique<ScaleError>(0.125),
                              std::make_unique<AlwaysCondition>(), {"BPM"}));
}
BENCHMARK(BM_Scale);

void BM_MissingValue(benchmark::State& state) {
  RunPolluter(state, Standard(std::make_unique<MissingValueError>(),
                              std::make_unique<AlwaysCondition>(), {"BPM"}));
}
BENCHMARK(BM_MissingValue);

void BM_Round(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<RoundError>(2),
                       std::make_unique<AlwaysCondition>(),
                       {"CaloriesBurned"}));
}
BENCHMARK(BM_Round);

void BM_Delay(benchmark::State& state) {
  RunPolluter(state, Standard(std::make_unique<DelayError>(3600),
                              std::make_unique<AlwaysCondition>(), {}));
}
BENCHMARK(BM_Delay);

void BM_FrozenValue(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<FrozenValueError>(3600),
                       std::make_unique<RandomCondition>(0.1), {"BPM"}));
}
BENCHMARK(BM_FrozenValue);

void BM_DerivedNoiseRamp(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<DerivedTemporalError>(
                           std::make_unique<GaussianNoiseError>(1.0),
                           std::make_unique<StreamRampProfile>()),
                       std::make_unique<AlwaysCondition>(), {"BPM"}));
}
BENCHMARK(BM_DerivedNoiseRamp);

void BM_ConditionRandom(benchmark::State& state) {
  RunPolluter(state, Standard(std::make_unique<MissingValueError>(),
                              std::make_unique<RandomCondition>(0.2),
                              {"BPM"}));
}
BENCHMARK(BM_ConditionRandom);

void BM_ConditionValue(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<MissingValueError>(),
                       std::make_unique<ValueCondition>(
                           "BPM", CompareOp::kGt, Value(100.0)),
                       {"BPM"}));
}
BENCHMARK(BM_ConditionValue);

void BM_ConditionSinusoidalProfile(benchmark::State& state) {
  RunPolluter(state,
              Standard(std::make_unique<MissingValueError>(),
                       std::make_unique<ProfileProbabilityCondition>(
                           std::make_unique<SinusoidalProfile>(24, 0.25,
                                                               0.25)),
                       {"BPM"}));
}
BENCHMARK(BM_ConditionSinusoidalProfile);

void BM_ConditionComposite(benchmark::State& state) {
  std::vector<ConditionPtr> children;
  children.push_back(std::make_unique<DailyWindowCondition>(780, 899));
  children.push_back(std::make_unique<RandomCondition>(0.2));
  RunPolluter(state,
              Standard(std::make_unique<MissingValueError>(),
                       std::make_unique<AndCondition>(std::move(children)),
                       {"BPM"}));
}
BENCHMARK(BM_ConditionComposite);

void BM_CompositeSequential(benchmark::State& state) {
  auto composite = std::make_unique<SequentialPolluter>(
      "composite", std::make_unique<AlwaysCondition>());
  composite->Register(Standard(std::make_unique<ScaleError>(2.0),
                               std::make_unique<AlwaysCondition>(),
                               {"Distance"}));
  composite->Register(Standard(std::make_unique<RoundError>(2),
                               std::make_unique<AlwaysCondition>(),
                               {"CaloriesBurned"}));
  RunPolluter(state, std::move(composite));
}
BENCHMARK(BM_CompositeSequential);

// ---------------------------------------------------------------------------
// Keyed pollution: per-partition pipeline clones sharing the bound plan.

SchemaPtr KeyedSchema() {
  return Schema::Make({{"ts", ValueType::kInt64},
                       {"sensor", ValueType::kString},
                       {"temp", ValueType::kDouble}},
                      "ts")
      .ValueOrDie();
}

/// 16k readings interleaved round-robin over eight sensors.
const TupleVector& KeyedStream() {
  static const TupleVector stream = [] {
    const SchemaPtr schema = KeyedSchema();
    const char* kSensors[] = {"s0", "s1", "s2", "s3",
                              "s4", "s5", "s6", "s7"};
    TupleVector tuples;
    tuples.reserve(16384);
    for (int i = 0; i < 16384; ++i) {
      tuples.emplace_back(
          schema,
          std::vector<Value>{Value(int64_t{60} * i), Value(kSensors[i % 8]),
                             Value(20.0 + (i % 100) * 0.1)});
    }
    return tuples;
  }();
  return stream;
}

/// A conditioned noise pipeline, bound against the keyed schema so every
/// per-key clone inherits the compiled plan.
PollutionPipeline KeyedPipeline() {
  PollutionPipeline pipeline("keyed");
  pipeline.Add(std::make_unique<StandardPolluter>(
      "noise", std::make_unique<GaussianNoiseError>(0.5),
      std::make_unique<ValueCondition>("temp", CompareOp::kGt, Value(25.0)),
      std::vector<std::string>{"temp"}));
  Status bound = pipeline.Bind(KeyedStream().front().schema());
  if (!bound.ok()) {
    std::fprintf(stderr, "keyed pipeline bind failed: %s\n",
                 bound.ToString().c_str());
    std::abort();
  }
  return pipeline;
}

class DiscardEmitter : public Emitter {
 public:
  Status Emit(Tuple tuple) override {
    benchmark::DoNotOptimize(tuple);
    ++count_;
    return Status::OK();
  }
  size_t count() const { return count_; }

 private:
  size_t count_ = 0;
};

void BM_KeyedPolluter(benchmark::State& state) {
  const TupleVector& stream = KeyedStream();
  KeyedPolluterOperator op(KeyedPipeline(), "sensor", /*seed=*/7);
  DiscardEmitter out;
  for (auto _ : state) {
    TupleVector batch = stream;
    Status st = op.ProcessBatch(&batch, &out);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  if (op.num_partitions() != 8) {
    state.SkipWithError("keyed partitioning broke: expected 8 partitions");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_KeyedPolluter);

// ---------------------------------------------------------------------------
// Columnar batch execution (DESIGN.md section 13): the same bound
// pipeline driven tuple-at-a-time vs. transposed into a Batch and run
// as tight typed loops. The registered benches make the two paths
// visible in benchmark output; ColumnarSpeedupReport below turns the
// ratio into a CI artifact and a hard floor.

/// A bound, seeded single-polluter pipeline over the wearable schema.
PollutionPipeline SinglePipeline(const std::string& name,
                                 ErrorFunctionPtr error,
                                 ConditionPtr condition,
                                 std::vector<std::string> attrs) {
  PollutionPipeline pipeline(name);
  pipeline.Add(std::make_unique<StandardPolluter>(
      name, std::move(error), std::move(condition), std::move(attrs)));
  Status bound = pipeline.Bind(WearableStream().front().schema());
  if (!bound.ok()) {
    std::fprintf(stderr, "bench pipeline bind failed: %s\n",
                 bound.ToString().c_str());
    std::abort();
  }
  pipeline.Seed(7);
  return pipeline;
}

/// One tuple-path pass: per-tuple copy + Apply, as the operator's
/// fallback loop does.
void TuplePass(const PollutionPipeline& pipeline, PollutionContext* ctx) {
  for (const Tuple& original : WearableStream()) {
    Tuple t = original;
    t.set_event_time(t.GetTimestamp().ValueOrDie());
    t.set_arrival_time(t.event_time());
    ctx->tau = t.event_time();
    ctx->severity = 1.0;
    ctx->rng = nullptr;
    Status st = pipeline.Apply(&t, ctx, nullptr);
    if (!st.ok()) std::abort();
    benchmark::DoNotOptimize(t);
  }
}

/// The wearable stream transposed once — the batch-resident input the
/// columnar engine executes over. Each pass restores pristine data by
/// copying it (contiguous column memcpy), mirroring the per-tuple copy
/// on the tuple path; the tuples↔batch transposition itself is a
/// boundary cost measured separately (BM_BatchTranspose).
const Batch& PristineBatch() {
  static const Batch batch = [] {
    auto transposed = Batch::FromTuples(WearableStream());
    if (!transposed.ok()) std::abort();
    return std::move(transposed).ValueOrDie();
  }();
  return batch;
}

/// One columnar pass: column copy + tight typed loops.
void ColumnarPass(const PollutionPipeline& pipeline, PollutionContext* ctx,
                  std::vector<uint8_t>* polluted) {
  Batch batch = PristineBatch();
  ctx->severity = 1.0;
  ctx->rng = nullptr;
  polluted->assign(batch.rows(), 0);
  Status st = pipeline.ApplyColumnar(&batch, ctx, polluted->data());
  if (!st.ok()) std::abort();
  benchmark::DoNotOptimize(batch);
}

void BM_ScaleTuplePath(benchmark::State& state) {
  PollutionPipeline pipeline = SinglePipeline(
      "scale", std::make_unique<ScaleError>(0.125),
      std::make_unique<AlwaysCondition>(), {"BPM"});
  PollutionContext ctx;
  ctx.stream_start = WearableStream().front().GetTimestamp().ValueOrDie();
  ctx.stream_end = WearableStream().back().GetTimestamp().ValueOrDie();
  for (auto _ : state) TuplePass(pipeline, &ctx);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(WearableStream().size()));
}
BENCHMARK(BM_ScaleTuplePath);

void BM_ScaleColumnarPath(benchmark::State& state) {
  PollutionPipeline pipeline = SinglePipeline(
      "scale", std::make_unique<ScaleError>(0.125),
      std::make_unique<AlwaysCondition>(), {"BPM"});
  PollutionContext ctx;
  ctx.stream_start = WearableStream().front().GetTimestamp().ValueOrDie();
  ctx.stream_end = WearableStream().back().GetTimestamp().ValueOrDie();
  std::vector<uint8_t> polluted;
  for (auto _ : state) ColumnarPass(pipeline, &ctx, &polluted);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(WearableStream().size()));
}
BENCHMARK(BM_ScaleColumnarPath);

void BM_BatchTranspose(benchmark::State& state) {
  // The tuples → Batch → tuples boundary the operator pays once per
  // micro-batch, amortized over every polluter in the pipeline.
  for (auto _ : state) {
    auto transposed = Batch::FromTuples(WearableStream());
    if (!transposed.ok()) std::abort();
    TupleVector back = transposed.ValueOrDie().ToTuples();
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(WearableStream().size()));
}
BENCHMARK(BM_BatchTranspose);

/// Measures tuple-path vs columnar-path wall time for every
/// columnar-eligible polluter family, writes the per-family ratios to
/// `out` (BENCH_micro.json in CI), and fails the binary when the
/// median speedup drops under 2x — the floor the columnar engine is
/// specified to hold on batch-resident data. The transposition
/// boundary is reported alongside (`transpose_seconds`), not folded
/// into each family: the operator pays it once per micro-batch, the
/// engine pays per polluter.
bool ColumnarSpeedupReport(const std::string& out) {
  struct Config {
    const char* name;
    PollutionPipeline pipeline;
  };
  std::vector<Config> configs;
  configs.push_back({"scale", SinglePipeline(
      "scale", std::make_unique<ScaleError>(0.125),
      std::make_unique<AlwaysCondition>(), {"BPM"})});
  configs.push_back({"offset", SinglePipeline(
      "offset", std::make_unique<OffsetError>(3.0),
      std::make_unique<AlwaysCondition>(), {"BPM"})});
  configs.push_back({"round", SinglePipeline(
      "round", std::make_unique<RoundError>(2),
      std::make_unique<AlwaysCondition>(), {"CaloriesBurned"})});
  configs.push_back({"sign_flip", SinglePipeline(
      "sign_flip", std::make_unique<SignFlipError>(),
      std::make_unique<AlwaysCondition>(), {"Distance"})});
  configs.push_back({"set_constant", SinglePipeline(
      "set_constant", std::make_unique<SetConstantError>(Value(60.0)),
      std::make_unique<AlwaysCondition>(), {"BPM"})});
  configs.push_back({"missing_value", SinglePipeline(
      "missing_value", std::make_unique<MissingValueError>(),
      std::make_unique<AlwaysCondition>(), {"BPM"})});
  configs.push_back({"scale_value_cond", SinglePipeline(
      "scale_value_cond", std::make_unique<ScaleError>(2.0),
      std::make_unique<ValueCondition>("BPM", CompareOp::kGt, Value(100.0)),
      {"BPM"})});

  const auto best_of = [](auto&& pass) {
    double best = 1e100;
    for (int rep = 0; rep < 5; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      pass();
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() < best) best = elapsed.count();
    }
    return best;
  };

  PollutionContext ctx;
  ctx.stream_start = WearableStream().front().GetTimestamp().ValueOrDie();
  ctx.stream_end = WearableStream().back().GetTimestamp().ValueOrDie();
  std::vector<uint8_t> polluted;
  std::vector<double> ratios;
  Json families = Json::MakeObject();
  for (Config& config : configs) {
    if (!config.pipeline.SupportsColumnar()) {
      std::fprintf(stderr, "FAIL: pipeline '%s' lost columnar support\n",
                   config.name);
      return false;
    }
    const double tuple_s =
        best_of([&] { TuplePass(config.pipeline, &ctx); });
    const double columnar_s =
        best_of([&] { ColumnarPass(config.pipeline, &ctx, &polluted); });
    const double ratio = tuple_s / columnar_s;
    ratios.push_back(ratio);
    Json entry = Json::MakeObject();
    entry.Set("tuple_seconds", Json(tuple_s));
    entry.Set("columnar_seconds", Json(columnar_s));
    entry.Set("speedup", Json(ratio));
    families.Set(config.name, std::move(entry));
    std::fprintf(stderr,
                 "columnar-speedup %-18s tuple=%.3fms columnar=%.3fms "
                 "%.2fx\n",
                 config.name, tuple_s * 1e3, columnar_s * 1e3, ratio);
  }
  std::sort(ratios.begin(), ratios.end());
  const double median = ratios[ratios.size() / 2];
  const double transpose_s = best_of([&] {
    auto transposed = Batch::FromTuples(WearableStream());
    if (!transposed.ok()) std::abort();
    TupleVector back = transposed.ValueOrDie().ToTuples();
    benchmark::DoNotOptimize(back);
  });

  Json report = Json::MakeObject();
  report.Set("bench", Json(std::string("micro_polluters_columnar")));
  report.Set("rows", Json(static_cast<int64_t>(WearableStream().size())));
  report.Set("transpose_seconds", Json(transpose_s));
  report.Set("families", std::move(families));
  report.Set("median_columnar_speedup", Json(median));
  report.Set("floor", Json(2.0));
  const std::string text = report.DumpPretty() + "\n";
  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  std::fprintf(stderr, "columnar-speedup median %.2fx (floor 2x) → %s\n",
               median, out.c_str());
  if (median < 2.0) {
    std::fprintf(stderr,
                 "FAIL: columnar execution is only %.2fx the tuple path "
                 "(floor 2x) — the typed loops regressed\n",
                 median);
    return false;
  }
  return true;
}

/// Throughput assertion for the keyed path: keying must cost no more
/// than one transparent-hash probe plus id assignment per tuple, so a
/// full keyed pass has to stay within 4x of the direct (unkeyed) pass
/// over the same stream. The ratio of two passes measured back-to-back
/// in the same process is robust to machine load, unlike an absolute
/// tuples/second floor. A regression (say, re-introducing a per-tuple
/// key copy through Result<Value>) fails the binary, which fails the
/// bench-smoke CI job.
bool KeyedOverheadWithinBudget() {
  const TupleVector& stream = KeyedStream();
  const auto best_of = [](auto&& pass) {
    double best = 1e100;
    for (int rep = 0; rep < 5; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      pass();
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() < best) best = elapsed.count();
    }
    return best;
  };

  PollutionPipeline direct = KeyedPipeline();
  direct.Seed(7);
  PollutionContext ctx;
  ctx.stream_start = stream.front().GetTimestamp().ValueOrDie();
  ctx.stream_end = stream.back().GetTimestamp().ValueOrDie();
  const double direct_seconds = best_of([&] {
    for (const Tuple& original : stream) {
      Tuple t = original;
      t.set_event_time(t.GetTimestamp().ValueOrDie());
      t.set_arrival_time(t.event_time());
      ctx.tau = t.event_time();
      ctx.severity = 1.0;
      ctx.rng = nullptr;
      Status st = direct.Apply(&t, &ctx, nullptr);
      if (!st.ok()) std::abort();
      benchmark::DoNotOptimize(t);
    }
  });

  KeyedPolluterOperator op(KeyedPipeline(), "sensor", /*seed=*/7);
  DiscardEmitter out;
  const double keyed_seconds = best_of([&] {
    TupleVector batch = stream;
    Status st = op.ProcessBatch(&batch, &out);
    if (!st.ok()) std::abort();
  });

  const double ratio = keyed_seconds / direct_seconds;
  std::fprintf(stderr,
               "keyed-overhead check: direct=%.3fms keyed=%.3fms "
               "ratio=%.2fx (budget 4x)\n",
               direct_seconds * 1e3, keyed_seconds * 1e3, ratio);
  if (ratio > 4.0) {
    std::fprintf(stderr,
                 "FAIL: keyed pollution is %.2fx slower than the direct "
                 "pipeline (budget 4x) — per-tuple key handling regressed\n",
                 ratio);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our own --out flag before google-benchmark sees the args.
  std::string out = "BENCH_micro.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!KeyedOverheadWithinBudget()) return 2;
  if (!ColumnarSpeedupReport(out)) return 3;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
