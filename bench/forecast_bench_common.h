#ifndef ICEWAFL_BENCH_FORECAST_BENCH_COMMON_H_
#define ICEWAFL_BENCH_FORECAST_BENCH_COMMON_H_

// Shared harness for the Figure 6 / Figure 7 forecasting experiments
// (Section 3.2): generate the air-quality stream for a region, apply the
// Table 2 splits, pollute D_eval with a scenario pipeline (10 replicas),
// run ARIMA / ARIMAX / Holt-Winters prequentially (train 504 h, forecast
// 12 h), and print the mean MAE series over time.

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/process.h"
#include "data/airquality.h"
#include "data/splits.h"
#include "forecast/arima.h"
#include "forecast/encodings.h"
#include "forecast/holt_winters.h"
#include "forecast/prequential.h"
#include "forecast/seasonal_naive.h"
#include "scenarios/scenarios.h"
#include "util/ascii_chart.h"

namespace icewafl {
namespace bench {

struct ForecastBenchOptions {
  std::string region = "Wanshouxigong";
  int replicas = 10;  ///< polluted replicas per model (paper: 10)
  std::function<PollutionPipeline()> pipeline_factory;
  const char* title = "";
  const char* paper_shape = "";
};

/// Exogenous feature vectors for ARIMAX: TEMP, PRES, WSPM plus sine and
/// cosine encodings of hour and month (Section 3.2.2). Pressure enters
/// as an offset from one atmosphere to keep the NLMS feature norm
/// balanced. One bound pass instead of three per-column extractions.
inline Result<std::vector<std::vector<double>>> ArimaxFeatures(
    const TupleVector& tuples) {
  forecast::FeatureEncoder encoder;
  encoder.AddColumn("TEMP", /*scale=*/0.1);
  encoder.AddColumn("PRES", /*scale=*/0.1, /*offset=*/-1012.0);
  encoder.AddColumn("WSPM");
  return encoder.EncodeAll(tuples);
}

inline std::map<std::string, forecast::ForecasterPtr> MakeModels() {
  std::map<std::string, forecast::ForecasterPtr> models;
  forecast::ArimaOptions arima_options;
  arima_options.p = 3;
  arima_options.d = 0;
  arima_options.q = 1;
  arima_options.learning_rate = 0.3;
  arima_options.stats_decay = 0.995;
  models["arima"] = std::make_unique<forecast::Arima>(arima_options);
  models["arimax"] =
      std::make_unique<forecast::Arimax>(arima_options, /*num_features=*/7);
  forecast::HoltWintersOptions hw_options;
  hw_options.alpha = 0.5;
  hw_options.beta = 0.05;
  hw_options.gamma = 0.3;
  hw_options.season_length = 24;
  hw_options.trend_damping = 0.9;
  models["holt_winters"] =
      std::make_unique<forecast::HoltWinters>(hw_options);
  // Baseline comparator (not in the paper): a seasonal-naive floor that
  // shows how much signal each model actually extracts.
  models["snaive"] = std::make_unique<forecast::SeasonalNaive>(24);
  return models;
}

inline int RunForecastBench(const ForecastBenchOptions& options) {
  data::AirQualityOptions aq;
  aq.station = options.region;
  auto stream = data::GenerateAirQuality(aq);
  if (!stream.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 stream.status().ToString().c_str());
    return 1;
  }
  auto splits = data::SplitByYear(stream.ValueOrDie());
  if (!splits.ok()) {
    std::fprintf(stderr, "split failed: %s\n",
                 splits.status().ToString().c_str());
    return 1;
  }
  const TupleVector& eval = splits.ValueOrDie().eval;
  SchemaPtr schema = eval.front().schema();

  std::printf("=== %s ===\n", options.title);
  std::printf("Table 2 splits: train=%zu valid=%zu eval=%zu tuples "
              "(region %s)\n\n",
              splits.ValueOrDie().train.size(),
              splits.ValueOrDie().valid.size(), eval.size(),
              options.region.c_str());

  auto clean_no2 = data::ColumnAsDoubles(eval, "NO2");
  auto clean_ts = data::ColumnAsTimestamps(eval);
  if (!clean_no2.ok() || !clean_ts.ok()) {
    std::fprintf(stderr, "column extraction failed\n");
    return 1;
  }

  const forecast::PrequentialOptions prequential{504, 12};
  // model -> MAE series summed over replicas.
  std::map<std::string, std::vector<double>> mae_series;
  std::vector<Timestamp> labels;
  for (int rep = 0; rep < options.replicas; ++rep) {
    VectorSource source(schema, eval);
    auto polluted = PollutionProcess::Pollute(
        &source, options.pipeline_factory(),
        /*seed=*/5000 + static_cast<uint64_t>(rep), /*enable_log=*/false);
    if (!polluted.ok()) {
      std::fprintf(stderr, "pollution failed: %s\n",
                   polluted.status().ToString().c_str());
      return 1;
    }
    const TupleVector& dirty = polluted.ValueOrDie().polluted;
    auto dirty_no2 = data::ColumnAsDoubles(dirty, "NO2");
    auto features = ArimaxFeatures(dirty);
    if (!dirty_no2.ok() || !features.ok()) {
      std::fprintf(stderr, "feature extraction failed\n");
      return 1;
    }
    for (auto& [name, prototype] : MakeModels()) {
      forecast::ForecasterPtr model = prototype->CloneFresh();
      const bool exogenous = name == "arimax";
      // The models observe only the polluted stream; forecasts are
      // scored against the clean values (Icewafl's pollution process
      // returns the clean stream as ground truth), so the MAE isolates
      // model corruption from the unavoidable per-tuple noise floor.
      auto points = forecast::RunPrequential(
          model.get(), dirty_no2.ValueOrDie(), clean_no2.ValueOrDie(),
          exogenous ? features.ValueOrDie()
                    : std::vector<std::vector<double>>{},
          clean_ts.ValueOrDie(), prequential);
      if (!points.ok()) {
        std::fprintf(stderr, "prequential failed: %s\n",
                     points.status().ToString().c_str());
        return 1;
      }
      auto& series = mae_series[name];
      if (series.empty()) {
        series.assign(points.ValueOrDie().size(), 0.0);
      }
      for (size_t i = 0; i < points.ValueOrDie().size(); ++i) {
        series[i] += points.ValueOrDie()[i].mae;
      }
      if (labels.empty()) {
        for (const auto& p : points.ValueOrDie()) {
          labels.push_back(p.eval_start);
        }
      }
    }
  }

  std::printf("mean MAE per evaluation window (over %d polluted replicas)\n",
              options.replicas);
  std::printf("%-12s", "eval_start");
  for (const auto& [name, series] : mae_series) {
    std::printf(" %-14s", name.c_str());
  }
  std::printf("\n");
  std::map<std::string, double> overall;
  for (size_t i = 0; i < labels.size(); ++i) {
    std::printf("%-12s", FormatMonthDay(labels[i]).c_str());
    for (const auto& [name, series] : mae_series) {
      const double mae = series[i] / options.replicas;
      std::printf(" %-14.2f", mae);
      overall[name] += mae;
    }
    std::printf("\n");
  }
  std::printf("\noverall mean MAE:");
  for (const auto& [name, total] : overall) {
    std::printf("  %s=%.2f", name.c_str(),
                total / static_cast<double>(labels.size()));
  }
  std::printf("\nexpected shape (paper): %s\n\n", options.paper_shape);
  AsciiChartOptions chart;
  chart.title = "mean MAE per evaluation window";
  std::vector<std::vector<double>> chart_series;
  for (const auto& [name, series] : mae_series) {
    chart.series_names.push_back(name);
    std::vector<double> scaled = series;
    for (double& v : scaled) v /= options.replicas;
    chart_series.push_back(std::move(scaled));
  }
  if (!labels.empty()) {
    chart.x_labels = {FormatMonthDay(labels.front()),
                      FormatMonthDay(labels.back())};
  }
  std::printf("%s", RenderAsciiChart(chart_series, chart).c_str());
  return 0;
}

/// Runs the full table for the primary region plus overall-MAE summaries
/// for the paper's other two regions ("the results for the other regions
/// are similar").
inline int RunForecastBenchAllRegions(ForecastBenchOptions options) {
  const int rc = RunForecastBench(options);
  if (rc != 0) return rc;
  std::printf("\nother regions (overall mean MAE, 1 replica):\n");
  for (const char* region : {"Gucheng", "Wanliu"}) {
    data::AirQualityOptions aq;
    aq.station = region;
    auto stream = data::GenerateAirQuality(aq);
    if (!stream.ok()) return 1;
    auto splits = data::SplitByYear(stream.ValueOrDie());
    if (!splits.ok()) return 1;
    const TupleVector& eval = splits.ValueOrDie().eval;
    auto clean_no2 = data::ColumnAsDoubles(eval, "NO2");
    auto clean_ts = data::ColumnAsTimestamps(eval);
    if (!clean_no2.ok() || !clean_ts.ok()) return 1;
    VectorSource source(eval.front().schema(), eval);
    auto polluted = PollutionProcess::Pollute(&source,
                                              options.pipeline_factory(),
                                              6000, /*enable_log=*/false);
    if (!polluted.ok()) return 1;
    auto dirty_no2 =
        data::ColumnAsDoubles(polluted.ValueOrDie().polluted, "NO2");
    auto features = ArimaxFeatures(polluted.ValueOrDie().polluted);
    if (!dirty_no2.ok() || !features.ok()) return 1;
    std::printf("  %-14s", region);
    for (auto& [name, prototype] : MakeModels()) {
      forecast::ForecasterPtr model = prototype->CloneFresh();
      auto points = forecast::RunPrequential(
          model.get(), dirty_no2.ValueOrDie(), clean_no2.ValueOrDie(),
          name == "arimax" ? features.ValueOrDie()
                           : std::vector<std::vector<double>>{},
          clean_ts.ValueOrDie(), forecast::PrequentialOptions{504, 12});
      if (!points.ok()) return 1;
      double total = 0.0;
      for (const auto& p : points.ValueOrDie()) total += p.mae;
      std::printf(" %s=%.2f", name.c_str(),
                  total / static_cast<double>(points.ValueOrDie().size()));
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace bench
}  // namespace icewafl

#endif  // ICEWAFL_BENCH_FORECAST_BENCH_COMMON_H_
