// Reproduces Figure 4 and the Section 3.1.1 numbers: NULL values are
// injected into the wearable stream's Distance attribute with the daily
// sinusoidal probability p(t) = 0.25*cos(pi/12*t) + 0.25; the polluted
// streams are validated with the DQ engine's not-null expectation. The
// harness prints, per hour of day, the expected number of polluted
// tuples (from the pollution process) against the number measured by the
// expectation, plus the overall error proportion and its variance over
// the repetitions (paper: avg 259.6 errors, 24.58% +- 1.22% variance).

#include <cstdio>
#include <vector>

#include "core/process.h"
#include "data/wearable.h"
#include "scenarios/scenarios.h"
#include "util/ascii_chart.h"

namespace {

using namespace icewafl;  // NOLINT

constexpr int kRepetitions = 50;

int Run() {
  auto stream = data::GenerateWearable();
  if (!stream.ok()) {
    std::fprintf(stderr, "wearable generation failed: %s\n",
                 stream.status().ToString().c_str());
    return 1;
  }
  const TupleVector clean = std::move(stream).ValueOrDie();
  SchemaPtr schema = clean.front().schema();

  // Tuple-count histogram of the clean stream (for the expected series).
  std::vector<uint64_t> tuples_per_hour(24, 0);
  for (const Tuple& t : clean) {
    ++tuples_per_hour[static_cast<size_t>(
        HourOfDay(t.GetTimestamp().ValueOrDie()))];
  }
  const std::vector<double> expected =
      scenarios::RandomTemporalExpectedPerHour(tuples_per_hour);

  std::vector<double> measured(24, 0.0);
  std::vector<double> totals;
  totals.reserve(kRepetitions);
  const dq::ExpectationSuite suite = scenarios::RandomTemporalErrorsSuite();
  for (int rep = 0; rep < kRepetitions; ++rep) {
    VectorSource source(schema, clean);
    auto result = PollutionProcess::Pollute(
        &source, scenarios::RandomTemporalErrorsPipeline(),
        /*seed=*/1000 + static_cast<uint64_t>(rep));
    if (!result.ok()) {
      std::fprintf(stderr, "pollution failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    auto validation = suite.Validate(result.ValueOrDie().polluted);
    if (!validation.ok()) {
      std::fprintf(stderr, "validation failed: %s\n",
                   validation.status().ToString().c_str());
      return 1;
    }
    const dq::SuiteResult& sr = validation.ValueOrDie();
    const auto hist = sr.FailureHourHistogram();
    for (int h = 0; h < 24; ++h) {
      measured[static_cast<size_t>(h)] +=
          static_cast<double>(hist[static_cast<size_t>(h)]);
    }
    totals.push_back(static_cast<double>(sr.TotalUnexpected()));
  }
  for (double& m : measured) m /= kRepetitions;

  std::printf("=== Figure 4: random temporal errors (sinusoidal nulls) ===\n");
  std::printf("%-6s %-28s %-24s\n", "hour", "expected_from_pollution",
              "measured_with_DQ_suite");
  double expected_total = 0.0;
  double measured_total = 0.0;
  for (int h = 0; h < 24; ++h) {
    std::printf("%02d     %-28.2f %-24.2f\n", h,
                expected[static_cast<size_t>(h)],
                measured[static_cast<size_t>(h)]);
    expected_total += expected[static_cast<size_t>(h)];
    measured_total += measured[static_cast<size_t>(h)];
  }
  double mean = 0.0;
  for (double t : totals) mean += t;
  mean /= totals.size();
  double var = 0.0;
  for (double t : totals) var += (t - mean) * (t - mean);
  var /= totals.size();
  const double n = static_cast<double>(clean.size());
  std::printf("\nexpected errors/run: %.1f (%.2f%% of %zu tuples)\n",
              expected_total, 100.0 * expected_total / n, clean.size());
  std::printf("measured errors/run: %.1f avg (%.2f%%), "
              "variance of proportion: %.2f%%\n",
              mean, 100.0 * mean / n,
              100.0 * 100.0 * var / (n * n));
  std::printf("paper reference:     259.6 avg (24.58%%), variance 1.22%%\n");
  std::printf("repetitions: %d\n\n", kRepetitions);
  AsciiChartOptions chart;
  chart.title = "errors per hour of day (expected vs measured)";
  chart.series_names = {"expected", "measured"};
  chart.x_labels = {"00h", "23h"};
  std::printf("%s", RenderAsciiChart({expected, measured}, chart).c_str());
  return 0;
}

}  // namespace

int main() { return Run(); }
