// Reproduces Table 1 (and the Figure 5 tuple counts) of the paper: the
// composite software-update polluter runs 50 times over the wearable
// stream; each output is validated with the four GX-style expectations,
// and the average measured error counts are compared against the counts
// expected from the pollution configuration.

#include <cstdio>
#include <vector>

#include "core/process.h"
#include "data/wearable.h"
#include "scenarios/scenarios.h"

namespace {

using namespace icewafl;  // NOLINT

constexpr int kRepetitions = 50;

int Run() {
  auto stream = data::GenerateWearable();
  if (!stream.ok()) {
    std::fprintf(stderr, "wearable generation failed: %s\n",
                 stream.status().ToString().c_str());
    return 1;
  }
  const TupleVector clean = std::move(stream).ValueOrDie();
  SchemaPtr schema = clean.front().schema();

  // Suite order: steps>=distance, calories regex, BPM-zero activity sum,
  // BPM not null (see scenarios::SoftwareUpdateSuite).
  const dq::ExpectationSuite suite = scenarios::SoftwareUpdateSuite();

  double measured_distance = 0.0;
  double measured_calories = 0.0;
  double measured_bpm_zero = 0.0;
  double measured_bpm_null = 0.0;
  double gated = 0.0;
  double bpm_gated = 0.0;
  double bpm_nulled = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    VectorSource source(schema, clean);
    auto result = PollutionProcess::Pollute(
        &source, scenarios::SoftwareUpdatePipeline(),
        /*seed=*/2000 + static_cast<uint64_t>(rep));
    if (!result.ok()) {
      std::fprintf(stderr, "pollution failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    // Figure 5 counts from the ground-truth log.
    const auto counts = result.ValueOrDie().log.CountsByPolluter();
    auto count_of = [&](const char* label) -> double {
      auto it = counts.find(label);
      return it == counts.end() ? 0.0 : static_cast<double>(it->second);
    };
    gated += count_of("distance_km_to_cm");  // fires for every gated tuple
    bpm_gated += count_of("bpm_to_zero");
    bpm_nulled += count_of("bpm_to_null");

    auto validation = suite.Validate(result.ValueOrDie().polluted);
    if (!validation.ok()) {
      std::fprintf(stderr, "validation failed: %s\n",
                   validation.status().ToString().c_str());
      return 1;
    }
    const auto& results = validation.ValueOrDie().results;
    measured_distance += static_cast<double>(results[0].unexpected);
    measured_calories += static_cast<double>(results[1].unexpected);
    measured_bpm_zero += static_cast<double>(results[2].unexpected);
    measured_bpm_null += static_cast<double>(results[3].unexpected);
  }
  measured_distance /= kRepetitions;
  measured_calories /= kRepetitions;
  measured_bpm_zero /= kRepetitions;
  measured_bpm_null /= kRepetitions;
  gated /= kRepetitions;
  bpm_gated /= kRepetitions;
  bpm_nulled /= kRepetitions;

  const auto expected = scenarios::SoftwareUpdateExpectedCounts();
  std::printf("=== Figure 5: software-update pipeline tuple counts ===\n");
  std::printf("tuples after update gate:   %.1f (paper: %d)\n", gated,
              expected.gated_tuples);
  std::printf("tuples with BPM > 100:      %.1f (paper: %d)\n", bpm_gated,
              expected.bpm_gated);
  std::printf("tuples BPM set to NULL:     %.1f (paper expectation: %.1f)\n\n",
              bpm_nulled, expected.bpm_null);

  std::printf("=== Table 1: expected vs measured error counts ===\n");
  std::printf("%-24s %-26s %-20s\n", "attribute/error",
              "expected_after_pollution", "measured_with_suite");
  std::printf("%-24s %-26s %-20.2f\n", "BPM=0 (prob 0.8)",
              "26.4 (+2 pre-existing)", measured_bpm_zero);
  std::printf("%-24s %-26.2f %-20.2f\n", "BPM=null (prob 0.2)",
              expected.bpm_null, measured_bpm_null);
  std::printf("%-24s %-26d %-20.2f\n", "Distance (km->cm)",
              expected.distance, measured_distance);
  std::printf("%-24s %-26d %-20.2f\n", "CaloriesBurned (round)",
              expected.calories, measured_calories);
  std::printf("\npaper reference (measured with GX): "
              "BPM=0: 28, BPM=null: 6, Distance: 374, Calories: 960\n");
  std::printf("repetitions: %d\n", kRepetitions);
  return 0;
}

}  // namespace

int main() { return Run(); }
