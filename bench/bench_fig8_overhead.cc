// Reproduces Figure 8: runtime overhead of the three Section 3.1
// pollution scenarios against an unpolluted baseline pipeline. Like the
// paper, each configuration executes 50 times over the wearable stream
// (load -> [pollute] -> serialize to CSV); the harness prints box-plot
// statistics (min / Q1 / median / Q3 / max) and the median overhead in
// percent (paper: 3-7% across scenarios).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/process.h"
#include "data/wearable.h"
#include "io/csv.h"
#include "scenarios/scenarios.h"
#include "util/strings.h"

namespace {

using namespace icewafl;  // NOLINT

constexpr int kRepetitions = 50;

struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
};

BoxStats Summarize(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  return {samples.front(), quantile(0.25), quantile(0.5), quantile(0.75),
          samples.back()};
}

/// One end-to-end pipeline execution: replay the stream, optionally
/// pollute it, serialize the output to CSV (discarded). Returns elapsed
/// microseconds.
double RunOnce(const TupleVector& clean, const SchemaPtr& schema,
               const std::function<PollutionPipeline()>* pipeline_factory,
               uint64_t seed, uint64_t* sink_bytes) {
  const auto start = std::chrono::steady_clock::now();
  TupleVector output;
  if (pipeline_factory != nullptr) {
    VectorSource source(schema, clean);
    auto result = PollutionProcess::Pollute(&source, (*pipeline_factory)(),
                                            seed, /*enable_log=*/false);
    if (!result.ok()) {
      std::fprintf(stderr, "pollution failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    output = std::move(result.ValueOrDie().polluted);
  } else {
    VectorSource source(schema, clean);
    auto collected = CollectAll(&source);
    if (!collected.ok()) std::exit(1);
    output = std::move(collected).ValueOrDie();
  }
  const std::string csv = ToCsvString(schema, output);
  *sink_bytes += csv.size();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count();
}

int Run() {
  auto stream = data::GenerateWearable();
  if (!stream.ok()) {
    std::fprintf(stderr, "wearable generation failed\n");
    return 1;
  }
  const TupleVector clean = std::move(stream).ValueOrDie();
  SchemaPtr schema = clean.front().schema();

  struct Config {
    const char* name;
    std::optional<std::function<PollutionPipeline()>> factory;
  };
  const std::vector<Config> configs = {
      {"no_pollution", std::nullopt},
      {"software_update",
       std::make_optional<std::function<PollutionPipeline()>>(
           [] { return scenarios::SoftwareUpdatePipeline(); })},
      {"bad_network", std::make_optional<std::function<PollutionPipeline()>>(
                          [] { return scenarios::NetworkDelayPipeline(); })},
      {"random_temporal",
       std::make_optional<std::function<PollutionPipeline()>>(
           [] { return scenarios::RandomTemporalErrorsPipeline(); })},
  };

  uint64_t sink_bytes = 0;
  std::printf("=== Figure 8: runtime overhead of pollution scenarios ===\n");
  std::printf("%-18s %-10s %-10s %-10s %-10s %-10s %-10s\n", "scenario",
              "min_us", "q1_us", "median_us", "q3_us", "max_us",
              "overhead");
  double baseline_median = 0.0;
  for (const Config& config : configs) {
    std::vector<double> samples;
    samples.reserve(kRepetitions);
    // Warm-up run outside the measurement.
    RunOnce(clean, schema,
            config.factory ? &config.factory.value() : nullptr, 1,
            &sink_bytes);
    for (int rep = 0; rep < kRepetitions; ++rep) {
      samples.push_back(RunOnce(
          clean, schema, config.factory ? &config.factory.value() : nullptr,
          4000 + static_cast<uint64_t>(rep), &sink_bytes));
    }
    const BoxStats stats = Summarize(std::move(samples));
    std::string overhead = "baseline";
    if (config.factory) {
      overhead =
          FormatDouble(100.0 * (stats.median / baseline_median - 1.0), 1) +
          "%";
    } else {
      baseline_median = stats.median;
    }
    std::printf("%-18s %-10.0f %-10.0f %-10.0f %-10.0f %-10.0f %-10s\n",
                config.name, stats.min, stats.q1, stats.median, stats.q3,
                stats.max, overhead.c_str());
  }
  std::printf("\npaper reference: 3-7%% overhead for all scenarios\n");
  std::printf("repetitions: %d (plus 1 warm-up each); sink=%llu bytes\n",
              kRepetitions, static_cast<unsigned long long>(sink_bytes));
  return 0;
}

}  // namespace

int main() { return Run(); }
