// Cleaning-engine microbench: per-rule-family detection throughput,
// the cost of a stateful (windowed-repair) document next to a pure
// stateless one, and the split runner's parallel scaling on the pure
// subset. The stream is a synthetic wearable trace with deterministic
// arithmetic pollution (no RNG), so every run evaluates the same rule
// firings and the cross-parallelism checksum assertion is exact.
//
// Alongside the human-readable table it emits a machine-readable JSON
// report (BENCH_clean.json in CI, validated by tools/check.sh bench) so
// the cleaning perf trajectory lives in a tracked artifact next to
// BENCH_micro.json / BENCH_runtime.json.
//
// Built-in assertions (exit 1 on violation, so CI turns a regression
// into a red build instead of a silently worse number):
//   - every family measures > 0 tuples/s and fires at least once
//   - the pure-rule document produces checksum-identical output at
//     parallelism 1, 2, and 4 (the determinism contract of CleanTuples)
//
// Usage: bench_clean [--tuples N] [--out PATH]

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "clean/cleaner.h"
#include "clean/config.h"
#include "stream/sink.h"
#include "stream/tuple.h"
#include "util/json.h"

namespace {

using namespace icewafl;  // NOLINT

uint64_t kTuples = 200000;  // --tuples

int64_t IntFlag(int argc, char** argv, const char* name, int64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

std::string StringFlag(int argc, char** argv, const char* name,
                       const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

SchemaPtr WearableSchema() {
  return Schema::Make({{"Time", ValueType::kInt64},
                       {"BPM", ValueType::kDouble},
                       {"Steps", ValueType::kInt64},
                       {"Distance", ValueType::kDouble}},
                      "Time")
      .ValueOrDie();
}

/// Deterministic dirty stream: a diurnal BPM curve with arithmetic
/// pollution — every 37th BPM is an out-of-range spike, every 53rd is
/// NULL, every 97th Distance outruns its Steps, and tuples 41..48 of
/// every 1000 repeat the same BPM (a stuck sensor). The co-prime strides
/// keep each family's firing rate stable as --tuples grows.
TupleVector MakeStream(const SchemaPtr& schema) {
  TupleVector tuples;
  tuples.reserve(kTuples);
  for (uint64_t i = 0; i < kTuples; ++i) {
    const double phase = static_cast<double>(i % 86400) / 86400.0;
    double bpm = 72.0 + 26.0 * std::sin(phase * 6.283185307179586);
    const auto steps = static_cast<int64_t>(
        45.0 + 40.0 * std::sin(phase * 12.566370614359172));
    double distance = 0.0007 * static_cast<double>(steps < 0 ? 0 : steps);
    if (i % 37 == 0) bpm = 400.0 + static_cast<double>(i % 7);
    if (i % 97 == 0) distance = static_cast<double>(steps) + 5.0;
    if (i % 1000 >= 41 && i % 1000 < 49) bpm = 88.0;
    Value bpm_value = (i % 53 == 0) ? Value() : Value(bpm);
    // Schema drift: every 211th Steps arrives as a double (Tuple does
    // not enforce column types), feeding the type-rule family.
    Value steps_value = (i % 211 == 0)
                            ? Value(static_cast<double>(steps) + 0.5)
                            : Value(steps < 0 ? int64_t{0} : steps);
    Tuple tuple(schema,
                {Value(static_cast<int64_t>(1456790400 + i * 60)),
                 std::move(bpm_value), std::move(steps_value),
                 Value(distance)});
    tuple.set_id(i);
    tuple.set_event_time(static_cast<int64_t>(1456790400 + i * 60));
    tuples.push_back(std::move(tuple));
  }
  return tuples;
}

clean::CleaningRules RulesFromText(const SchemaPtr& schema,
                                   const std::string& text) {
  Json json = Json::Parse(text).ValueOrDie();
  auto rules = clean::RulesFromJson(json, schema);
  if (!rules.ok()) {
    std::fprintf(stderr, "bad bench rules: %s\n",
                 rules.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(rules).ValueOrDie();
}

struct Measurement {
  double seconds = 0.0;
  uint64_t fired = 0;
  uint64_t out = 0;
  uint64_t checksum = 0;
};

Measurement Run(const clean::CleaningRules& rules, const TupleVector& input,
                int parallelism) {
  CountingSink sink;
  clean::CleanStats stats;
  const auto start = std::chrono::steady_clock::now();
  Status st = clean::CleanTuples(rules, input, parallelism, &sink,
                                 /*metrics=*/nullptr, /*log=*/nullptr,
                                 &stats);
  const auto end = std::chrono::steady_clock::now();
  if (!st.ok()) {
    std::fprintf(stderr, "clean run failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  Measurement m;
  m.seconds = std::chrono::duration<double>(end - start).count();
  m.fired = stats.fired;
  m.out = sink.count();
  m.checksum = sink.checksum();
  return m;
}

double Mtps(const Measurement& m) {
  if (m.seconds <= 0.0) return 0.0;
  return static_cast<double>(kTuples) / m.seconds / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  kTuples = static_cast<uint64_t>(
      IntFlag(argc, argv, "--tuples", static_cast<int64_t>(kTuples)));
  const std::string out = StringFlag(argc, argv, "--out", "BENCH_clean.json");

  SchemaPtr schema = WearableSchema();
  const TupleVector input = MakeStream(schema);

  std::printf("Cleaning engine microbench\n");
  std::printf("stream: %llu synthetic wearable tuples, deterministic "
              "pollution\n\n",
              static_cast<unsigned long long>(kTuples));

  // One single-rule document per detect family. set_null keeps every
  // family's repair cost identical, so the column isolates detection.
  struct Family {
    const char* name;
    const char* doc;
  };
  const Family families[] = {
      {"range", R"({"rules": [{"label": "r", "column": "BPM",
          "detect": {"type": "range", "min": 30, "max": 220},
          "repair": "set_null"}]})"},
      {"not_null", R"({"rules": [{"label": "r", "column": "BPM",
          "detect": {"type": "not_null"}, "repair": "drop"}]})"},
      {"regex", R"({"rules": [{"label": "r", "column": "BPM",
          "detect": {"type": "regex", "pattern": "\\d{2}(\\.\\d+)?"},
          "repair": "set_null"}]})"},
      {"type", R"({"rules": [{"label": "r", "column": "Steps",
          "detect": {"type": "type", "value_type": "int64"},
          "repair": "set_null"}]})"},
      {"cross_field", R"({"rules": [{"label": "r", "column": "Distance",
          "detect": {"type": "cross_field", "op": "le", "other": "Steps"},
          "repair": "set_null"}]})"},
      {"rate_of_change", R"({"rules": [{"label": "r", "column": "BPM",
          "detect": {"type": "rate_of_change", "max_change": 50},
          "repair": "last_good"}]})"},
      {"stuck_at", R"({"rules": [{"label": "r", "column": "BPM",
          "detect": {"type": "stuck_at", "min_repeats": 4},
          "repair": "set_null"}]})"},
  };

  std::printf("%-16s %10s %10s %12s\n", "family", "seconds", "Mtuples/s",
              "rule_fired");
  Json family_json = Json::MakeObject();
  for (const Family& family : families) {
    clean::CleaningRules rules = RulesFromText(schema, family.doc);
    const Measurement m = Run(rules, input, 1);
    std::printf("%-16s %10.3f %10.2f %12llu\n", family.name, m.seconds,
                Mtps(m), static_cast<unsigned long long>(m.fired));
    if (m.seconds <= 0.0 || m.fired == 0) {
      std::fprintf(stderr, "family %s measured nothing (%.6fs, %llu fired)\n",
                   family.name, m.seconds,
                   static_cast<unsigned long long>(m.fired));
      return 1;
    }
    Json entry = Json::MakeObject();
    entry.Set("seconds", Json(m.seconds));
    entry.Set("mtuples_per_sec", Json(Mtps(m)));
    entry.Set("fired", Json(static_cast<int64_t>(m.fired)));
    family_json.Set(family.name, std::move(entry));
  }

  // Stateless vs stateful: the same three detections, once with pure
  // repairs (runs fully parallel) and once with windowed repairs (the
  // sequential tail).
  const char* pure_doc = R"({"name": "pure", "rules": [
      {"label": "bpm_range", "column": "BPM",
       "detect": {"type": "range", "min": 30, "max": 220},
       "repair": "set_null"},
      {"label": "bpm_null", "column": "BPM",
       "detect": {"type": "not_null"}, "repair": "drop"},
      {"label": "distance", "column": "Distance",
       "detect": {"type": "cross_field", "op": "le", "other": "Steps"},
       "repair": "set_null"}]})";
  const char* stateful_doc = R"({"name": "stateful", "history": 16, "rules": [
      {"label": "bpm_range", "column": "BPM",
       "detect": {"type": "range", "min": 30, "max": 220},
       "repair": "window_mean"},
      {"label": "bpm_null", "column": "BPM",
       "detect": {"type": "not_null"}, "repair": "last_good"},
      {"label": "distance", "column": "Distance",
       "detect": {"type": "cross_field", "op": "le", "other": "Steps"},
       "repair": "window_median"}]})";
  clean::CleaningRules pure = RulesFromText(schema, pure_doc);
  clean::CleaningRules stateful = RulesFromText(schema, stateful_doc);

  const Measurement pure_run = Run(pure, input, 1);
  const Measurement stateful_run = Run(stateful, input, 1);
  const double overhead =
      pure_run.seconds > 0.0 ? stateful_run.seconds / pure_run.seconds : 0.0;
  std::printf("\n%-16s %10.3f %10.2f\n", "pure x3", pure_run.seconds,
              Mtps(pure_run));
  std::printf("%-16s %10.3f %10.2f   (%.2fx the pure document)\n",
              "stateful x3", stateful_run.seconds, Mtps(stateful_run),
              overhead);

  // Parallel scaling on the pure document — and the determinism
  // contract: the checksum must not depend on the worker count.
  std::printf("\n%-16s %10s %10s %9s\n", "pure document", "P", "seconds",
              "speedup");
  Json parallel_json = Json::MakeArray();
  for (int p : {1, 2, 4}) {
    const Measurement m = Run(pure, input, p);
    const double speedup = m.seconds > 0.0 ? pure_run.seconds / m.seconds : 0;
    std::printf("%-16s %10d %10.3f %8.2fx\n", "", p, m.seconds, speedup);
    if (m.checksum != pure_run.checksum || m.out != pure_run.out) {
      std::fprintf(stderr,
                   "parallelism %d broke determinism: checksum %llx vs "
                   "%llx, %llu vs %llu tuples\n",
                   p, static_cast<unsigned long long>(m.checksum),
                   static_cast<unsigned long long>(pure_run.checksum),
                   static_cast<unsigned long long>(m.out),
                   static_cast<unsigned long long>(pure_run.out));
      return 1;
    }
    Json run = Json::MakeObject();
    run.Set("parallelism", Json(static_cast<int64_t>(p)));
    run.Set("seconds", Json(m.seconds));
    run.Set("speedup", Json(speedup));
    parallel_json.Append(std::move(run));
  }

  Json report = Json::MakeObject();
  report.Set("bench", Json("clean"));
  report.Set("tuples", Json(static_cast<int64_t>(kTuples)));
  report.Set("families", std::move(family_json));
  report.Set("pure_seconds", Json(pure_run.seconds));
  report.Set("stateful_seconds", Json(stateful_run.seconds));
  report.Set("stateful_overhead", Json(overhead));
  report.Set("parallel", std::move(parallel_json));

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  const std::string text = report.DumpPretty();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
