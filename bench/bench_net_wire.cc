// Ablation A4: wire-codec throughput. Measures tuple encode and decode
// rates for the length-prefixed binary frame format that
// `icewafl_cli serve` fans out, so serving overhead can be attributed
// to codec vs. socket cost. Reported counters are tuples/s and bytes/s.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "data/wearable.h"
#include "net/wire.h"
#include "stream/tuple.h"

namespace {

using namespace icewafl;  // NOLINT

const TupleVector& WearableStream() {
  static const TupleVector stream = [] {
    auto generated = data::GenerateWearable();
    return std::move(generated).ValueOrDie();
  }();
  return stream;
}

void BM_EncodeTupleFrames(benchmark::State& state) {
  const TupleVector& stream = WearableStream();
  size_t bytes = 0;
  size_t tuples = 0;
  for (auto _ : state) {
    for (const Tuple& tuple : stream) {
      const std::string frame = net::EncodeTupleFrame(tuple);
      benchmark::DoNotOptimize(frame.data());
      bytes += frame.size();
    }
    tuples += stream.size();
  }
  state.counters["tuples/s"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
  state.counters["bytes/s"] = benchmark::Counter(
      static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EncodeTupleFrames)->Unit(benchmark::kMillisecond);

void BM_DecodeTupleFrames(benchmark::State& state) {
  const TupleVector& stream = WearableStream();
  const SchemaPtr schema = stream.front().schema();
  // Pre-encode the whole stream once; the loop measures decode only.
  std::string wire;
  for (const Tuple& tuple : stream) wire += net::EncodeTupleFrame(tuple);
  size_t tuples = 0;
  for (auto _ : state) {
    net::FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    uint8_t type = 0;
    std::string payload;
    Tuple decoded;
    while (true) {
      auto next = decoder.Next(&type, &payload);
      if (!next.ok() || !next.ValueOrDie()) break;
      auto tuple = net::DecodeTuplePayload(payload, schema);
      if (!tuple.ok()) {
        state.SkipWithError(tuple.status().ToString().c_str());
        return;
      }
      decoded = std::move(tuple).ValueOrDie();
      benchmark::DoNotOptimize(decoded.id());
      ++tuples;
    }
  }
  state.counters["tuples/s"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
  state.SetBytesProcessed(static_cast<int64_t>(
      wire.size() * static_cast<size_t>(state.iterations())));
}
BENCHMARK(BM_DecodeTupleFrames)->Unit(benchmark::kMillisecond);

void BM_FrameDecoderChunkedFeed(benchmark::State& state) {
  // Decode under adversarial fragmentation: the wire arrives in chunks
  // of the given size, as a real TCP stream would.
  const size_t chunk = static_cast<size_t>(state.range(0));
  const TupleVector& stream = WearableStream();
  std::string wire;
  for (const Tuple& tuple : stream) wire += net::EncodeTupleFrame(tuple);
  for (auto _ : state) {
    net::FrameDecoder decoder;
    uint8_t type = 0;
    std::string payload;
    size_t frames = 0;
    for (size_t off = 0; off < wire.size(); off += chunk) {
      decoder.Feed(wire.data() + off, std::min(chunk, wire.size() - off));
      while (true) {
        auto next = decoder.Next(&type, &payload);
        if (!next.ok() || !next.ValueOrDie()) break;
        ++frames;
      }
    }
    benchmark::DoNotOptimize(frames);
  }
  state.SetBytesProcessed(static_cast<int64_t>(
      wire.size() * static_cast<size_t>(state.iterations())));
}
BENCHMARK(BM_FrameDecoderChunkedFeed)
    ->Arg(64)
    ->Arg(1460)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
