// Ablation A4: wire-codec throughput. Measures tuple encode and decode
// rates for the length-prefixed binary frame format that
// `icewafl_cli serve` fans out, so serving overhead can be attributed
// to codec vs. socket cost. Reported counters are tuples/s and bytes/s.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "data/wearable.h"
#include "net/wire.h"
#include "stream/batch.h"
#include "stream/tuple.h"
#include "util/json.h"

namespace {

using namespace icewafl;  // NOLINT

const TupleVector& WearableStream() {
  static const TupleVector stream = [] {
    auto generated = data::GenerateWearable();
    return std::move(generated).ValueOrDie();
  }();
  return stream;
}

void BM_EncodeTupleFrames(benchmark::State& state) {
  const TupleVector& stream = WearableStream();
  size_t bytes = 0;
  size_t tuples = 0;
  for (auto _ : state) {
    for (const Tuple& tuple : stream) {
      const std::string frame = net::EncodeTupleFrame(tuple);
      benchmark::DoNotOptimize(frame.data());
      bytes += frame.size();
    }
    tuples += stream.size();
  }
  state.counters["tuples/s"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
  state.counters["bytes/s"] = benchmark::Counter(
      static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EncodeTupleFrames)->Unit(benchmark::kMillisecond);

void BM_DecodeTupleFrames(benchmark::State& state) {
  const TupleVector& stream = WearableStream();
  const SchemaPtr schema = stream.front().schema();
  // Pre-encode the whole stream once; the loop measures decode only.
  std::string wire;
  for (const Tuple& tuple : stream) wire += net::EncodeTupleFrame(tuple);
  size_t tuples = 0;
  for (auto _ : state) {
    net::FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    uint8_t type = 0;
    std::string payload;
    Tuple decoded;
    while (true) {
      auto next = decoder.Next(&type, &payload);
      if (!next.ok() || !next.ValueOrDie()) break;
      auto tuple = net::DecodeTuplePayload(payload, schema);
      if (!tuple.ok()) {
        state.SkipWithError(tuple.status().ToString().c_str());
        return;
      }
      decoded = std::move(tuple).ValueOrDie();
      benchmark::DoNotOptimize(decoded.id());
      ++tuples;
    }
  }
  state.counters["tuples/s"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
  state.SetBytesProcessed(static_cast<int64_t>(
      wire.size() * static_cast<size_t>(state.iterations())));
}
BENCHMARK(BM_DecodeTupleFrames)->Unit(benchmark::kMillisecond);

void BM_FrameDecoderChunkedFeed(benchmark::State& state) {
  // Decode under adversarial fragmentation: the wire arrives in chunks
  // of the given size, as a real TCP stream would.
  const size_t chunk = static_cast<size_t>(state.range(0));
  const TupleVector& stream = WearableStream();
  std::string wire;
  for (const Tuple& tuple : stream) wire += net::EncodeTupleFrame(tuple);
  for (auto _ : state) {
    net::FrameDecoder decoder;
    uint8_t type = 0;
    std::string payload;
    size_t frames = 0;
    for (size_t off = 0; off < wire.size(); off += chunk) {
      decoder.Feed(wire.data() + off, std::min(chunk, wire.size() - off));
      while (true) {
        auto next = decoder.Next(&type, &payload);
        if (!next.ok() || !next.ValueOrDie()) break;
        ++frames;
      }
    }
    benchmark::DoNotOptimize(frames);
  }
  state.SetBytesProcessed(static_cast<int64_t>(
      wire.size() * static_cast<size_t>(state.iterations())));
}
BENCHMARK(BM_FrameDecoderChunkedFeed)
    ->Arg(64)
    ->Arg(1460)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Batch frame (v2 capability, DESIGN.md section 13): the same stream
// shipped as one column-blob frame per micro-batch instead of one
// frame per tuple.

/// The wearable stream transposed into batch_rows-sized batches.
std::vector<Batch> WearableBatches(size_t batch_rows) {
  const TupleVector& stream = WearableStream();
  std::vector<Batch> batches;
  for (size_t off = 0; off < stream.size(); off += batch_rows) {
    TupleVector slice(
        stream.begin() + static_cast<ptrdiff_t>(off),
        stream.begin() +
            static_cast<ptrdiff_t>(std::min(off + batch_rows, stream.size())));
    auto batch = Batch::FromTuples(slice);
    if (!batch.ok()) std::abort();
    batches.push_back(std::move(batch).ValueOrDie());
  }
  return batches;
}

void BM_EncodeBatchFrames(benchmark::State& state) {
  const std::vector<Batch> batches =
      WearableBatches(static_cast<size_t>(state.range(0)));
  size_t bytes = 0;
  size_t tuples = 0;
  for (auto _ : state) {
    for (const Batch& batch : batches) {
      const std::string frame = net::EncodeBatchFrame(batch);
      benchmark::DoNotOptimize(frame.data());
      bytes += frame.size();
      tuples += batch.rows();
    }
  }
  state.counters["tuples/s"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
  state.counters["bytes/s"] = benchmark::Counter(
      static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EncodeBatchFrames)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_DecodeBatchFrames(benchmark::State& state) {
  const SchemaPtr schema = WearableStream().front().schema();
  std::string wire;
  for (const Batch& batch :
       WearableBatches(static_cast<size_t>(state.range(0)))) {
    wire += net::EncodeBatchFrame(batch);
  }
  size_t tuples = 0;
  for (auto _ : state) {
    net::FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    uint8_t type = 0;
    std::string payload;
    while (true) {
      auto next = decoder.Next(&type, &payload);
      if (!next.ok() || !next.ValueOrDie()) break;
      auto batch = net::DecodeBatchPayload(payload, schema);
      if (!batch.ok()) {
        state.SkipWithError(batch.status().ToString().c_str());
        return;
      }
      tuples += batch.ValueOrDie().rows();
      benchmark::DoNotOptimize(batch.ValueOrDie().rows());
    }
  }
  state.counters["tuples/s"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
  state.SetBytesProcessed(static_cast<int64_t>(
      wire.size() * static_cast<size_t>(state.iterations())));
}
BENCHMARK(BM_DecodeBatchFrames)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// Measures tuple-frame vs batch-frame codec wall time over the same
/// stream and writes BENCH_wire.json: per-path seconds, bytes on the
/// wire, and the encode/decode speedups. The encode floor is 1x — the
/// batch framing exists so FanoutSink can encode once per micro-batch,
/// so it must never be slower than per-tuple framing.
bool WireCodecReport(const std::string& out) {
  const TupleVector& stream = WearableStream();
  const SchemaPtr schema = stream.front().schema();
  const std::vector<Batch> batches = WearableBatches(256);

  const auto best_of = [](auto&& pass) {
    double best = 1e100;
    for (int rep = 0; rep < 5; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      pass();
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() < best) best = elapsed.count();
    }
    return best;
  };

  size_t tuple_bytes = 0;
  const double tuple_encode_s = best_of([&] {
    tuple_bytes = 0;
    for (const Tuple& tuple : stream) {
      const std::string frame = net::EncodeTupleFrame(tuple);
      benchmark::DoNotOptimize(frame.data());
      tuple_bytes += frame.size();
    }
  });
  size_t batch_bytes = 0;
  const double batch_encode_s = best_of([&] {
    batch_bytes = 0;
    for (const Batch& batch : batches) {
      const std::string frame = net::EncodeBatchFrame(batch);
      benchmark::DoNotOptimize(frame.data());
      batch_bytes += frame.size();
    }
  });

  std::string tuple_wire;
  for (const Tuple& tuple : stream) tuple_wire += net::EncodeTupleFrame(tuple);
  std::string batch_wire;
  for (const Batch& batch : batches) batch_wire += net::EncodeBatchFrame(batch);
  const auto drain = [&](const std::string& wire, auto&& decode_payload) {
    net::FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    uint8_t type = 0;
    std::string payload;
    while (true) {
      auto next = decoder.Next(&type, &payload);
      if (!next.ok() || !next.ValueOrDie()) break;
      decode_payload(payload);
    }
  };
  const double tuple_decode_s = best_of([&] {
    drain(tuple_wire, [&](const std::string& payload) {
      auto tuple = net::DecodeTuplePayload(payload, schema);
      if (!tuple.ok()) std::abort();
      benchmark::DoNotOptimize(tuple.ValueOrDie().id());
    });
  });
  const double batch_decode_s = best_of([&] {
    drain(batch_wire, [&](const std::string& payload) {
      auto batch = net::DecodeBatchPayload(payload, schema);
      if (!batch.ok()) std::abort();
      benchmark::DoNotOptimize(batch.ValueOrDie().rows());
    });
  });

  const double encode_speedup = tuple_encode_s / batch_encode_s;
  const double decode_speedup = tuple_decode_s / batch_decode_s;
  Json report = Json::MakeObject();
  report.Set("bench", Json(std::string("net_wire_codec")));
  report.Set("tuples", Json(static_cast<int64_t>(stream.size())));
  report.Set("batch_rows", Json(int64_t{256}));
  report.Set("tuple_encode_seconds", Json(tuple_encode_s));
  report.Set("batch_encode_seconds", Json(batch_encode_s));
  report.Set("tuple_decode_seconds", Json(tuple_decode_s));
  report.Set("batch_decode_seconds", Json(batch_decode_s));
  report.Set("tuple_wire_bytes", Json(static_cast<int64_t>(tuple_bytes)));
  report.Set("batch_wire_bytes", Json(static_cast<int64_t>(batch_bytes)));
  report.Set("encode_speedup", Json(encode_speedup));
  report.Set("decode_speedup", Json(decode_speedup));
  const std::string text = report.DumpPretty() + "\n";
  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  std::fprintf(stderr,
               "wire-codec: encode %.2fx, decode %.2fx (batch vs tuple "
               "frames) → %s\n",
               encode_speedup, decode_speedup, out.c_str());
  if (encode_speedup < 1.0) {
    std::fprintf(stderr,
                 "FAIL: batch-frame encoding is slower than per-tuple "
                 "framing (%.2fx) — the encode-once path regressed\n",
                 encode_speedup);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our own --out flag before google-benchmark sees the args.
  std::string out = "BENCH_wire.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!WireCodecReport(out)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
