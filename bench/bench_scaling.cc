// Ablation A2: scaling behaviour of the pollution process. Sweeps the
// pipeline length l, the number of sub-streams m, and sequential vs
// parallel sub-stream execution — the dimensions of the complexity bound
// O(n * m * (1/m + l + log(n*m))) given in Section 2.3.

#include <benchmark/benchmark.h>

#include <chrono>

#include "core/errors_numeric.h"
#include "core/keyed_polluter_operator.h"
#include "core/polluter_operator.h"
#include "obs/metrics.h"
#include "stream/executor.h"
#include "stream/runtime.h"
#include "core/process.h"
#include "data/airquality.h"

namespace {

using namespace icewafl;  // NOLINT

const TupleVector& Stream() {
  static const TupleVector stream = [] {
    data::AirQualityOptions options;
    options.hours = 8760;  // one year of hourly tuples
    auto generated = data::GenerateAirQuality(options);
    return std::move(generated).ValueOrDie();
  }();
  return stream;
}

PollutionPipeline MakePipeline(int length) {
  PollutionPipeline pipeline("bench");
  for (int i = 0; i < length; ++i) {
    pipeline.Add(std::make_unique<StandardPolluter>(
        "noise_" + std::to_string(i),
        std::make_unique<GaussianNoiseError>(0.5),
        std::make_unique<RandomCondition>(0.1),
        std::vector<std::string>{"NO2"}));
  }
  return pipeline;
}

void BM_PipelineLength(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  const TupleVector& stream = Stream();
  SchemaPtr schema = stream.front().schema();
  for (auto _ : state) {
    VectorSource source(schema, stream);
    auto result = PollutionProcess::Pollute(&source, MakePipeline(length), 1,
                                            /*enable_log=*/false);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_PipelineLength)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void RunSubstreams(benchmark::State& state, int m, bool parallel) {
  const TupleVector& stream = Stream();
  SchemaPtr schema = stream.front().schema();
  for (auto _ : state) {
    ProcessOptions options;
    options.num_substreams = m;
    options.parallel = parallel;
    options.enable_log = false;
    options.seed = 1;
    PollutionProcess process(options);
    for (int i = 0; i < m; ++i) process.AddPipeline(MakePipeline(4));
    VectorSource source(schema, stream);
    auto result = process.Run(&source);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}

void BM_SubstreamsSequential(benchmark::State& state) {
  RunSubstreams(state, static_cast<int>(state.range(0)), false);
}
BENCHMARK(BM_SubstreamsSequential)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SubstreamsParallel(benchmark::State& state) {
  RunSubstreams(state, static_cast<int>(state.range(0)), true);
}
BENCHMARK(BM_SubstreamsParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_OverlapFraction(benchmark::State& state) {
  const double overlap = static_cast<double>(state.range(0)) / 100.0;
  const TupleVector& stream = Stream();
  SchemaPtr schema = stream.front().schema();
  for (auto _ : state) {
    ProcessOptions options;
    options.num_substreams = 2;
    options.overlap_fraction = overlap;
    options.enable_log = false;
    options.seed = 1;
    PollutionProcess process(options);
    process.AddPipeline(MakePipeline(2));
    process.AddPipeline(MakePipeline(2));
    VectorSource source(schema, stream);
    auto result = process.Run(&source);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_OverlapFraction)->Arg(0)->Arg(25)->Arg(50)->Arg(100);

void BM_GlobalPolluterOperator(benchmark::State& state) {
  const TupleVector& stream = Stream();
  SchemaPtr schema = stream.front().schema();
  for (auto _ : state) {
    VectorSource source(schema, stream);
    PolluterOperator op(MakePipeline(4), 1);
    CountingSink sink;
    std::vector<Operator*> ops = {&op};
    Status st = StreamExecutor::Run(&source, ops, &sink);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(sink.checksum());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_GlobalPolluterOperator);

void BM_RuntimeParallelism(benchmark::State& state) {
  // The pipelined runtime end to end; RuntimeStats counters expose the
  // pipeline's behaviour (batches, backpressure, peak buffering) next to
  // the throughput numbers.
  const int parallelism = static_cast<int>(state.range(0));
  const TupleVector& stream = Stream();
  SchemaPtr schema = stream.front().schema();
  RuntimeStats last_stats;
  // Per-iteration wall times land in a histogram so the counters expose
  // tail latency (p50/p95/p99) instead of only google-benchmark's mean.
  obs::Histogram wall_hist(obs::ExponentialBounds(1e-4, 64.0, 2.0));
  for (auto _ : state) {
    VectorSource source(schema, stream);
    CountingSink sink;
    RuntimeOptions options;
    options.parallelism = parallelism;
    PipelineRuntime runtime(options);
    const auto start = std::chrono::steady_clock::now();
    Status st = runtime.Run(
        &source,
        [](int worker) {
          OperatorChain chain;
          chain.push_back(std::make_unique<PolluterOperator>(
              MakePipeline(4), 1 + static_cast<uint64_t>(worker)));
          return chain;
        },
        &sink);
    const auto end = std::chrono::steady_clock::now();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(sink.checksum());
    last_stats = runtime.stats();
    wall_hist.Observe(std::chrono::duration<double>(end - start).count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
  state.counters["source_tuples"] =
      static_cast<double>(last_stats.source_tuples);
  state.counters["sink_tuples"] = static_cast<double>(last_stats.sink_tuples);
  state.counters["batches"] = static_cast<double>(last_stats.batches);
  state.counters["blocked_pushes"] =
      static_cast<double>(last_stats.blocked_pushes);
  state.counters["blocked_pops"] =
      static_cast<double>(last_stats.blocked_pops);
  state.counters["peak_buffered"] =
      static_cast<double>(last_stats.peak_buffered_tuples);
  state.counters["wall_p50"] = wall_hist.Quantile(0.5);
  state.counters["wall_p95"] = wall_hist.Quantile(0.95);
  state.counters["wall_p99"] = wall_hist.Quantile(0.99);
}
BENCHMARK(BM_RuntimeParallelism)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_KeyedPolluterOperator(benchmark::State& state) {
  // Keyed by hour-of-day string: 24 partitions, per-key pipeline clones.
  const TupleVector& stream = Stream();
  SchemaPtr schema = stream.front().schema();
  for (auto _ : state) {
    VectorSource source(schema, stream);
    KeyedPolluterOperator op(MakePipeline(4), "WD", 1);
    CountingSink sink;
    std::vector<Operator*> ops = {&op};
    Status st = StreamExecutor::Run(&source, ops, &sink);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(sink.checksum());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_KeyedPolluterOperator);

}  // namespace

BENCHMARK_MAIN();
