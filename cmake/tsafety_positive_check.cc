// Positive control for the thread-safety gate (see CMakeLists.txt).
//
// A correctly locked GUARDED_BY access: this file MUST compile under
// -Wthread-safety -Werror=thread-safety. If it does not, the toolchain
// (not the tree) is misconfigured and the negative check below would be
// vacuous.

#include "util/sync.h"

namespace tsafety_check {

struct Counter {
  icewafl::Mutex mu;
  int value GUARDED_BY(mu) = 0;
};

int LockedRead(Counter& counter) {
  icewafl::MutexLock lock(&counter.mu);
  return counter.value;
}

}  // namespace tsafety_check
