// Negative control for the thread-safety gate (see CMakeLists.txt).
//
// A seeded GUARDED_BY violation: this file MUST FAIL to compile under
// -Wthread-safety -Werror=thread-safety. If it compiles, the analysis is
// not actually rejecting unlocked access and the whole tsafety preset is
// a rubber stamp — the configure step errors out in that case.

#include "util/sync.h"

namespace tsafety_check {

struct Counter {
  icewafl::Mutex mu;
  int value GUARDED_BY(mu) = 0;
};

int UnlockedRead(Counter& counter) {
  return counter.value;  // reads a guarded field without holding mu
}

}  // namespace tsafety_check
