// Integration scenarios (Section 2.2.2): the pollution process splits
// the input into overlapping sub-streams, applies a different pipeline
// to each, and merges them again — modeling several independently
// polluted sources whose integration produces fuzzy duplicates. The
// example also shows how the DQ engine's uniqueness expectation flags
// the duplicates afterwards.
//
// Run:  ./build/examples/multi_stream_integration

#include <cstdio>
#include <map>

#include "core/errors_numeric.h"
#include "core/errors_value.h"
#include "core/process.h"
#include "data/airquality.h"
#include "dq/suite.h"

using namespace icewafl;  // NOLINT

int main() {
  data::AirQualityOptions options;
  options.hours = 24 * 14;  // two weeks of hourly data
  auto stream = data::GenerateAirQuality(options);
  if (!stream.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }
  const TupleVector& clean = stream.ValueOrDie();

  // Two sub-streams with 30% overlap: overlapping tuples land in both
  // and get polluted independently.
  ProcessOptions process_options;
  process_options.num_substreams = 2;
  process_options.overlap_fraction = 0.3;
  process_options.seed = 99;
  process_options.parallel = true;  // one thread per sub-stream
  PollutionProcess process(process_options);

  // Sub-stream 0: a flaky sensor that drops NO2 readings.
  PollutionPipeline dropouts("dropouts");
  dropouts.Add(std::make_unique<StandardPolluter>(
      "no2_dropouts", std::make_unique<MissingValueError>(),
      std::make_unique<RandomCondition>(0.15),
      std::vector<std::string>{"NO2"}));
  process.AddPipeline(std::move(dropouts));

  // Sub-stream 1: a miscalibrated sensor with noisy, offset readings.
  PollutionPipeline miscalibrated("miscalibrated");
  miscalibrated.Add(std::make_unique<StandardPolluter>(
      "no2_offset", std::make_unique<OffsetError>(12.0),
      std::make_unique<AlwaysCondition>(), std::vector<std::string>{"NO2"}));
  miscalibrated.Add(std::make_unique<StandardPolluter>(
      "no2_noise", std::make_unique<GaussianNoiseError>(3.0),
      std::make_unique<AlwaysCondition>(), std::vector<std::string>{"NO2"}));
  process.AddPipeline(std::move(miscalibrated));

  VectorSource source(clean.front().schema(), clean);
  auto result = process.Run(&source);
  if (!result.ok()) {
    std::fprintf(stderr, "pollution failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const PollutionResult& r = result.ValueOrDie();

  std::printf("input tuples:  %zu\n", r.clean.size());
  std::printf("output tuples: %zu (overlap creates duplicates)\n",
              r.polluted.size());

  // Count fuzzy duplicates: same id in both sub-streams with differing
  // values after independent pollution.
  std::map<TupleId, const Tuple*> first_copy;
  int duplicates = 0;
  int fuzzy = 0;
  for (const Tuple& t : r.polluted) {
    auto [it, inserted] = first_copy.try_emplace(t.id(), &t);
    if (!inserted) {
      ++duplicates;
      if (!t.ValuesEqual(*it->second)) ++fuzzy;
    }
  }
  std::printf("duplicated ids: %d, of which fuzzy (values differ): %d\n\n",
              duplicates, fuzzy);

  // A DQ check on the merged stream: timestamps are no longer unique.
  dq::ExpectationSuite suite("integration");
  suite.Expect<dq::ExpectColumnValuesToBeUnique>("timestamp");
  suite.Expect<dq::ExpectColumnValuesToNotBeNull>("NO2");
  auto validation = suite.Validate(r.polluted);
  if (!validation.ok()) {
    std::fprintf(stderr, "validation failed\n");
    return 1;
  }
  std::printf("validation of the merged stream:\n%s",
              validation.ValueOrDie().ToReport().c_str());
  return 0;
}
