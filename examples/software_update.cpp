// The paper's "software update" scenario (Section 3.1.2 / Figure 5) end
// to end: a composite polluter gated on the update date injects four
// error types into the synthetic wearable stream, and the DQ engine's
// expectation suite detects them. Prints the pipeline configuration
// (JSON), the validation report, and the expected-vs-measured summary.
//
// Run:  ./build/examples/software_update

#include <cstdio>

#include "core/process.h"
#include "data/wearable.h"
#include "scenarios/scenarios.h"

using namespace icewafl;  // NOLINT

int main() {
  auto stream = data::GenerateWearable();
  if (!stream.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 stream.status().ToString().c_str());
    return 1;
  }
  const TupleVector clean = std::move(stream).ValueOrDie();
  std::printf("wearable stream: %zu tuples from %s to %s\n\n", clean.size(),
              FormatTimestamp(clean.front().GetTimestamp().ValueOrDie())
                  .c_str(),
              FormatTimestamp(clean.back().GetTimestamp().ValueOrDie())
                  .c_str());

  PollutionPipeline pipeline = scenarios::SoftwareUpdatePipeline();
  std::printf("pipeline configuration:\n%s\n\n",
              pipeline.ToJson().DumpPretty().c_str());

  VectorSource source(clean.front().schema(), clean);
  auto result =
      PollutionProcess::Pollute(&source, std::move(pipeline), /*seed=*/7);
  if (!result.ok()) {
    std::fprintf(stderr, "pollution failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const PollutionResult& r = result.ValueOrDie();

  const auto counts = r.log.CountsByPolluter();
  std::printf("injections per polluter:\n");
  for (const auto& [label, count] : counts) {
    std::printf("  %-24s %llu\n", label.c_str(),
                static_cast<unsigned long long>(count));
  }

  const dq::ExpectationSuite suite = scenarios::SoftwareUpdateSuite();
  auto validation = suite.Validate(r.polluted);
  if (!validation.ok()) {
    std::fprintf(stderr, "validation failed: %s\n",
                 validation.status().ToString().c_str());
    return 1;
  }
  std::printf("\nvalidation report:\n%s",
              validation.ValueOrDie().ToReport().c_str());

  // Sanity reference: the clean stream already violates the BPM-activity
  // constraint twice (the pre-existing errors the paper found with GX).
  auto clean_validation = suite.Validate(r.clean);
  if (clean_validation.ok()) {
    std::printf("\nviolations already present in the clean stream: %llu "
                "(paper found 2 pre-existing)\n",
                static_cast<unsigned long long>(
                    clean_validation.ValueOrDie().TotalUnexpected()));
  }
  return 0;
}
