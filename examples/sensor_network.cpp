// The paper's motivating scenario (Figure 1): a network of weather
// sensors whose errors are *dependent*.
//
//   S1, S2  physical sensors in spatial proximity — a drifting cloud
//           shades both at the same time (shared confounder),
//   S4      a sensor further away — the same cloud reaches it with a
//           one-hour delay,
//   S3      a logical sensor deriving its value from S1 and S2 — it
//           inherits their errors (error propagation).
//
// The example wires Icewafl into a streaming topology: a
// PolluterOperator injects the correlated cloud errors, a MapOperator
// derives S3 downstream (so the propagation is structural, not
// simulated), and a windowed-aggregate condition implements the
// "if Avg(Temp) > 20 then Weather = hot" rule from the figure.
//
// Run:  ./build/examples/sensor_network

#include <cmath>
#include <cstdio>

#include "core/errors_numeric.h"
#include "core/polluter_operator.h"
#include "stream/runtime.h"

using namespace icewafl;  // NOLINT

int main() {
  // --- The clean sensor network stream ---------------------------------
  SchemaPtr schema =
      Schema::Make({{"ts", ValueType::kInt64},
                    {"S1", ValueType::kDouble},
                    {"S2", ValueType::kDouble},
                    {"S3", ValueType::kDouble},   // derived downstream
                    {"S4", ValueType::kDouble},
                    {"Weather", ValueType::kString}},
                   "ts")
          .ValueOrDie();
  const Timestamp start = ParseTimestamp("2025-07-01 06:00:00").ValueOrDie();
  TupleVector tuples;
  Rng rng(2025);
  for (int hour = 0; hour < 18; ++hour) {
    // A warm day: temperatures climb toward mid-afternoon.
    const double base =
        16.0 + 10.0 * std::sin(M_PI * (hour + 2) / 20.0);
    tuples.emplace_back(
        schema,
        std::vector<Value>{Value(start + hour * kSecondsPerHour),
                           Value(base + rng.Gaussian(0.0, 0.3)),
                           Value(base + rng.Gaussian(0.0, 0.3)),
                           Value(0.0),  // S3 filled in downstream
                           Value(base + rng.Gaussian(0.0, 0.3)),
                           Value("")});
  }

  // --- Correlated cloud errors -----------------------------------------
  // The cloud shades S1 and S2 from 11:00 to 13:59 and, drifting on,
  // S4 from 12:00 to 14:59 (one hour later).
  const Timestamp cloud_start = ParseTimestamp("2025-07-01 11:00:00").ValueOrDie();
  const Timestamp cloud_end = ParseTimestamp("2025-07-01 14:00:00").ValueOrDie();
  PollutionPipeline pipeline("cloud");
  pipeline.Add(std::make_unique<StandardPolluter>(
      "cloud_over_S1_S2", std::make_unique<OffsetError>(-6.0),
      std::make_unique<TimeWindowCondition>(cloud_start, cloud_end),
      std::vector<std::string>{"S1", "S2"}));
  pipeline.Add(std::make_unique<StandardPolluter>(
      "cloud_over_S4_delayed", std::make_unique<OffsetError>(-6.0),
      std::make_unique<TimeWindowCondition>(cloud_start + kSecondsPerHour,
                                            cloud_end + kSecondsPerHour),
      std::vector<std::string>{"S4"}));

  // --- The streaming topology ------------------------------------------
  PollutionLog log;
  PolluterOperator polluter(std::move(pipeline), /*seed=*/1,
                            tuples.front().GetTimestamp().ValueOrDie(),
                            tuples.back().GetTimestamp().ValueOrDie(), &log);
  // Downstream of the polluter: S3 derives from the (possibly polluted)
  // S1/S2 — errors propagate through the derivation — and the Weather
  // label applies Figure 1's rule on the average temperature.
  MapOperator derive([](Tuple t) -> Result<Tuple> {
    ICEWAFL_ASSIGN_OR_RETURN(Value s1, t.Get("S1"));
    ICEWAFL_ASSIGN_OR_RETURN(Value s2, t.Get("S2"));
    const double avg =
        (s1.ToDouble().ValueOrDie() + s2.ToDouble().ValueOrDie()) / 2.0;
    ICEWAFL_RETURN_NOT_OK(t.Set("S3", Value(avg)));
    ICEWAFL_RETURN_NOT_OK(t.Set("Weather", Value(avg > 20.0 ? "hot" : "cold")));
    return t;
  });

  VectorSource source(schema, tuples);
  VectorSink sink;
  // Run on the pipelined runtime: source, operator chain, and sink are
  // concurrent stages over bounded channels (order preserved here since
  // the topology runs at parallelism 1).
  PipelineRuntime runtime;
  Status st = runtime.Run(&source, {&polluter, &derive}, &sink);
  if (!st.ok()) {
    std::fprintf(stderr, "topology failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // --- Show the dependent errors ---------------------------------------
  std::printf("%-7s %-7s %-7s %-7s %-7s %-8s %s\n", "time", "S1", "S2",
              "S3", "S4", "Weather", "cloud?");
  for (const Tuple& t : sink.tuples()) {
    const Timestamp ts = t.GetTimestamp().ValueOrDie();
    bool shaded = false;
    for (const PollutionLogEntry& e : log.entries()) {
      if (e.tuple_id == t.id()) shaded = true;
    }
    std::printf("%-7s %-7.1f %-7.1f %-7.1f %-7.1f %-8s %s\n",
                FormatTimestamp(ts).substr(11, 5).c_str(),
                t.Get("S1").ValueOrDie().AsDouble(),
                t.Get("S2").ValueOrDie().AsDouble(),
                t.Get("S3").ValueOrDie().AsDouble(),
                t.Get("S4").ValueOrDie().AsDouble(),
                t.Get("Weather").ValueOrDie().AsString().c_str(),
                shaded ? "<- polluted" : "");
  }
  std::printf(
      "\nNote how S3 (derived from S1/S2) inherits the cloud error, and\n"
      "S4 shows the same dip one hour later — the dependency structure\n"
      "of Figure 1. During the cloud, the Weather rule misclassifies\n"
      "'hot' hours as 'cold'.\n");
  std::printf("\nruntime: %s\n", runtime.stats().ToString().c_str());
  return 0;
}
