// Mini version of the paper's Experiment 2: how robust are online
// forecasting methods against injected data errors? Generates two years
// of synthetic air-quality data, pollutes the second year with
// temporally increasing noise (Equation 3), and compares ARIMA, ARIMAX,
// and Holt-Winters prequentially (train 504 h, forecast 12 h) on clean
// vs polluted input. Also demonstrates hyperparameter selection with
// grid search + time-series cross validation on the clean first year.
//
// Run:  ./build/examples/forecast_robustness

#include <cstdio>

#include "core/process.h"
#include "data/airquality.h"
#include "forecast/arima.h"
#include "forecast/cv.h"
#include "forecast/holt_winters.h"
#include "forecast/prequential.h"
#include "scenarios/scenarios.h"

using namespace icewafl;  // NOLINT

namespace {

double MeanMae(const std::vector<forecast::PrequentialPoint>& points) {
  double sum = 0.0;
  for (const auto& p : points) sum += p.mae;
  return points.empty() ? 0.0 : sum / static_cast<double>(points.size());
}

}  // namespace

int main() {
  data::AirQualityOptions options;
  options.hours = 2 * 8760;  // two years
  auto stream = data::GenerateAirQuality(options);
  if (!stream.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }
  const TupleVector& all = stream.ValueOrDie();
  const TupleVector year1(all.begin(), all.begin() + 8760);
  const TupleVector year2(all.begin() + 8760, all.end());

  // --- Hyperparameter selection on the clean first year ----------------
  auto year1_no2 = data::ColumnAsDoubles(year1, "NO2").ValueOrDie();
  auto grid = forecast::GridSearch(
      {{"alpha", {0.2, 0.5}}, {"gamma", {0.1, 0.3}}},
      [](const forecast::ParamMap& params) -> forecast::ForecasterPtr {
        forecast::HoltWintersOptions hw;
        hw.alpha = params.at("alpha");
        hw.gamma = params.at("gamma");
        hw.season_length = 24;
        return std::make_unique<forecast::HoltWinters>(hw);
      },
      year1_no2, {}, {/*n_splits=*/3, /*horizon=*/12});
  if (!grid.ok()) {
    std::fprintf(stderr, "grid search failed: %s\n",
                 grid.status().ToString().c_str());
    return 1;
  }
  std::printf("grid search (Holt-Winters on clean year 1): best CV MAE "
              "%.2f with",
              grid.ValueOrDie().best_score);
  for (const auto& [key, value] : grid.ValueOrDie().best_params) {
    std::printf(" %s=%.2f", key.c_str(), value);
  }
  std::printf("\n\n");

  // --- Robustness: clean vs noisy second year --------------------------
  VectorSource source(year2.front().schema(), year2);
  auto polluted = PollutionProcess::Pollute(
      &source,
      scenarios::TemporalNoisePipeline(
          scenarios::AirQualityNumericAttributes(), /*pi_max=*/1.5),
      /*seed=*/11, /*enable_log=*/false);
  if (!polluted.ok()) {
    std::fprintf(stderr, "pollution failed\n");
    return 1;
  }

  auto clean_no2 = data::ColumnAsDoubles(year2, "NO2").ValueOrDie();
  auto dirty_no2 =
      data::ColumnAsDoubles(polluted.ValueOrDie().polluted, "NO2")
          .ValueOrDie();
  auto ts = data::ColumnAsTimestamps(year2).ValueOrDie();

  forecast::ArimaOptions arima_options;
  arima_options.p = 3;
  arima_options.q = 1;
  arima_options.learning_rate = 0.3;
  arima_options.stats_decay = 0.995;
  forecast::HoltWintersOptions hw_options;
  hw_options.alpha = grid.ValueOrDie().best_params.at("alpha");
  hw_options.gamma = grid.ValueOrDie().best_params.at("gamma");
  hw_options.season_length = 24;
  hw_options.trend_damping = 0.9;

  std::printf("%-14s %-18s %-18s %-12s\n", "model", "MAE_clean_input",
              "MAE_noisy_input", "degradation");
  for (const char* name : {"arima", "holt_winters"}) {
    forecast::ForecasterPtr clean_model;
    forecast::ForecasterPtr dirty_model;
    if (std::string(name) == "arima") {
      clean_model = std::make_unique<forecast::Arima>(arima_options);
      dirty_model = std::make_unique<forecast::Arima>(arima_options);
    } else {
      clean_model = std::make_unique<forecast::HoltWinters>(hw_options);
      dirty_model = std::make_unique<forecast::HoltWinters>(hw_options);
    }
    auto on_clean = forecast::RunPrequential(clean_model.get(), clean_no2,
                                             clean_no2, {}, ts, {504, 12});
    auto on_dirty = forecast::RunPrequential(dirty_model.get(), dirty_no2,
                                             clean_no2, {}, ts, {504, 12});
    if (!on_clean.ok() || !on_dirty.ok()) {
      std::fprintf(stderr, "prequential failed\n");
      return 1;
    }
    const double mae_clean = MeanMae(on_clean.ValueOrDie());
    const double mae_dirty = MeanMae(on_dirty.ValueOrDie());
    std::printf("%-14s %-18.2f %-18.2f %+.0f%%\n", name, mae_clean,
                mae_dirty, 100.0 * (mae_dirty / mae_clean - 1.0));
  }
  std::printf("\nSee bench_fig6_noise_forecast / bench_fig7_scale_forecast "
              "for the full Figure 6/7 reproduction (including ARIMAX).\n");
  return 0;
}
