// Quickstart: pollute a small sensor stream with Icewafl.
//
// Demonstrates the core workflow end to end:
//   1. define a stream schema and some tuples,
//   2. build a pollution pipeline (one polluter from the builder API and
//      one declared as JSON config),
//   3. run the pollution process (Algorithm 1),
//   4. inspect the polluted stream, the untouched clean stream, and the
//      ground-truth pollution log.
//
// Run:  ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/config.h"
#include "core/errors_numeric.h"
#include "core/errors_value.h"
#include "core/process.h"
#include "io/csv.h"

using namespace icewafl;  // NOLINT

int main() {
  // --- 1. A tiny temperature stream (one tuple per hour) --------------
  SchemaPtr schema =
      Schema::Make({{"ts", ValueType::kInt64},
                    {"temperature", ValueType::kDouble},
                    {"station", ValueType::kString}},
                   /*timestamp_attribute=*/"ts")
          .ValueOrDie();
  TupleVector tuples;
  const Timestamp start = ParseTimestamp("2025-06-01 00:00:00").ValueOrDie();
  for (int hour = 0; hour < 12; ++hour) {
    tuples.emplace_back(
        schema, std::vector<Value>{Value(start + hour * kSecondsPerHour),
                                   Value(18.0 + 0.5 * hour), Value("S1")});
  }

  // --- 2. A pollution pipeline ----------------------------------------
  PollutionPipeline pipeline("quickstart");

  // Builder API: additive Gaussian noise on every tuple.
  pipeline.Add(std::make_unique<StandardPolluter>(
      "noise", std::make_unique<GaussianNoiseError>(/*stddev=*/0.8),
      std::make_unique<AlwaysCondition>(),
      std::vector<std::string>{"temperature"}));

  // Declarative config: missing values with probability 0.25, but only
  // for afternoon tuples (hour of day >= 6 in this toy stream).
  const char* json = R"({
    "type": "standard", "label": "afternoon_dropouts",
    "attributes": ["temperature"],
    "condition": {"type": "and", "children": [
      {"type": "daily_window", "start_minute": 360, "end_minute": 1439},
      {"type": "random", "p": 0.25}
    ]},
    "error": {"type": "missing_value"}
  })";
  auto polluter = PolluterFromJson(Json::Parse(json).ValueOrDie());
  if (!polluter.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 polluter.status().ToString().c_str());
    return 1;
  }
  pipeline.Add(std::move(polluter).ValueOrDie());

  // --- 3. Run the pollution process ------------------------------------
  VectorSource source(schema, tuples);
  auto result = PollutionProcess::Pollute(&source, std::move(pipeline),
                                          /*seed=*/42);
  if (!result.ok()) {
    std::fprintf(stderr, "pollution failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const PollutionResult& r = result.ValueOrDie();

  // --- 4. Inspect the output -------------------------------------------
  std::printf("clean stream:\n%s\n",
              ToCsvString(schema, r.clean).c_str());
  std::printf("polluted stream:\n%s\n",
              ToCsvString(schema, r.polluted, {',', "NULL", true}).c_str());
  std::printf("pollution log (%zu injections):\n", r.log.size());
  for (const PollutionLogEntry& e : r.log.entries()) {
    std::printf("  tuple %llu <- %s (%s) at %s\n",
                static_cast<unsigned long long>(e.tuple_id),
                e.polluter.c_str(), e.error_type.c_str(),
                FormatTimestamp(e.tau).c_str());
  }
  std::printf("\nsame seed => same output (reproducible); "
              "change the seed to draw a new benchmark instance.\n");
  return 0;
}
